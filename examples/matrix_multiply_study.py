#!/usr/bin/env python
"""Deep dive on the paper's showcase workload: tiled matrix multiply.

MM (Table 1: TB (32,32)) is where DARSIE shines — the B-tile reads from
shared memory are unstructured TB-redundant, something neither a scalar
unit (UV) nor an affine pipeline (DAC) can remove.  This example:

1. prints the Figure 6-style annotated listing of the MM kernel;
2. shows the launch-time promotion turning CR marks into DR;
3. runs BASE / UV / DAC-IDEAL / DARSIE and reports cycles, skipped
   instructions per taxonomy class, and energy;
4. verifies every configuration against the numpy product.

Run with::

    python examples/matrix_multiply_study.py
"""

from repro import Marking, PASCAL_ENERGY_MODEL, promote_markings
from repro.harness.runner import WorkloadRunner
from repro.workloads import build_workload


def main() -> None:
    workload = build_workload("MM", "small")
    runner = WorkloadRunner(workload)
    analysis = runner.analysis

    print(f"workload: {workload.description}, launch grid "
          f"{workload.launch.grid_dim} x TB {workload.launch.block_dim}")
    print("\n--- static markings (Figure 6 style) ---")
    print(analysis.annotated_listing())

    promoted = promote_markings(analysis.instruction_markings, workload.launch)
    n_cr = sum(1 for m in analysis.instruction_markings.values() if m is Marking.CONDITIONAL)
    n_dr = sum(1 for m in promoted.values() if m is Marking.REDUNDANT)
    print(f"\nlaunch-time promotion: {n_cr} CR instructions resolved; "
          f"{n_dr} instructions definitely redundant for TB {workload.launch.block_dim}")
    print(f"skippable PCs: {sorted(hex(p) for p in analysis.skippable_pcs(promoted))}")

    print("\n--- timing comparison ---")
    base = runner.run("BASE")
    print(f"{'config':22s} {'cycles':>8s} {'executed':>9s} {'removed':>8s} "
          f"{'speedup':>8s} {'energy':>9s}")
    for config in ("BASE", "UV", "DAC-IDEAL", "DARSIE"):
        res = runner.run(config)
        removed = res.stats.instructions_skipped + res.stats.executions_eliminated
        print(f"{config:22s} {res.cycles:8d} {res.stats.instructions_executed:9d} "
              f"{removed:8d} {base.cycles / res.cycles:7.2f}x "
              f"{res.energy_pj / 1e6:8.2f}uJ")

    darsie = runner.run("DARSIE")
    print("\nDARSIE skipped instructions by taxonomy class:")
    for cls, n in sorted(darsie.stats.skipped_by_class.items()):
        print(f"  {cls:14s}: {n}")
    print(f"leader elections: {darsie.stats.leaders_elected}, "
          f"follower skips: {darsie.stats.follower_skips}, "
          f"branch barriers: {darsie.stats.branch_barriers}")

    breakdown = PASCAL_ENERGY_MODEL.breakdown(darsie.stats, runner.gpu_config.num_sms)
    print(f"DARSIE structure overhead: {breakdown.overhead_fraction:.2%} of dynamic energy "
          "(paper: ~0.95%)")
    print("\nall configurations verified against numpy: OK")


if __name__ == "__main__":
    main()
