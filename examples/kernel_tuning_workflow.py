#!/usr/bin/env python
"""A kernel author's DARSIE workflow: profile → diagnose → fix.

Shows the diagnostic tools on a kernel whose redundancy DARSIE *cannot*
capture — then restructures it so promotion applies:

1. the per-PC opportunity profiler explains why redundant executions are
   not skippable (a (48, 4) TB fails the power-of-two criterion);
2. the pipeline trace viewer makes the leader/follower choreography of
   Figure 5 visible once the launch geometry is fixed.

Run with::

    python examples/kernel_tuning_workflow.py
"""

import numpy as np

from repro import (
    DarsieFrontend,
    Dim3,
    GlobalMemory,
    LaunchConfig,
    Tracer,
    analyze_program,
    assemble,
    run_functional,
    small_config,
)
from repro.analysis import opportunity_report
from repro.core.promotion import describe_promotion
from repro.timing import PipelineTrace
from repro.timing.gpu import GPU

KERNEL = """
.kernel colsum
.param tab
.param out
    # column lookup indexed by tid.x
    mul.u32        $a, %tid.x, 4
    add.u32        $a, $a, %param.tab
    ld.global.s32  $v, [$a]
    mul.u32        $v, $v, 3
    # per-thread store
    mul.u32        $o, %tid.y, %ntid.x
    add.u32        $o, $o, %tid.x
    shl.u32        $o, $o, 2
    add.u32        $o, $o, %param.out
    st.global.s32  [$o], $v
    exit
"""


def profile(launch: LaunchConfig, label: str):
    program = assemble(KERNEL)
    analysis = analyze_program(program)
    mem = GlobalMemory(1 << 14)
    params = {"tab": mem.alloc_array(np.arange(100, 164)), "out": mem.alloc(2048)}
    tracer = Tracer()
    run_functional(program, launch, mem, params=params, tracer=tracer)
    report = opportunity_report(analysis, tracer.trace, launch)
    print(f"\n=== {label}: TB {launch.block_dim} ===")
    print(describe_promotion(launch))
    print(report.render(limit=6))
    print(f"captured: {report.captured_fraction():.0%} of TB-redundant executions")
    return program, analysis, params


def main() -> None:
    # Step 1: the original launch uses a 48-wide TB — every execution of
    # the tid.x chain is TB-redundant, but none of it is skippable.
    bad_launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(48, 4))
    profile(bad_launch, "original launch (48 is not a power of two)")

    # Step 2: reshape to (16, 12): same 192 threads, criterion satisfied.
    good_launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(16, 12))
    program, analysis, _ = profile(good_launch, "reshaped launch")

    # Step 3: watch the leader/follower choreography (Figure 5).
    mem = GlobalMemory(1 << 14)
    params = {"tab": mem.alloc_array(np.arange(100, 164)), "out": mem.alloc(2048)}
    gpu = GPU(program, good_launch, mem, params=params, config=small_config(1),
              frontend_factory=lambda: DarsieFrontend(analysis))
    trace = PipelineTrace()
    gpu.attach_trace(trace)
    result = gpu.run()
    print("\n=== pipeline view (one TB shown) ===")
    print(trace.render(max_cycles=100, max_warps=6))
    print(f"\nskipped {result.stats.instructions_skipped} instructions "
          f"({result.stats.leaders_elected} leader elections); "
          "output verified against the functional model by the harness tests.")


if __name__ == "__main__":
    main()
