#!/usr/bin/env python
"""Design-space exploration of the DARSIE hardware parameters.

Sweeps the knobs the paper fixes by construction and shows why its
choices are sensible on this substrate:

- PC-coalescer port count (paper: 2 ports suffice, Section 4.3.4);
- rename registers per TB (paper: 32, Section 4.3.1 — starving the
  freelist forces TB synchronization);
- versioning vs synchronize-on-every-redundant-write (Section 4.1);
- store handling: conservative load invalidation vs IGNORE-STORE
  (Section 4.4 / Figure 8).

Run with::

    python examples/design_space.py [ABBR]
"""

import sys

from repro import DarsieConfig
from repro.harness.runner import WorkloadRunner
from repro.workloads import build_workload


def sweep(runner: WorkloadRunner, title: str, variants) -> None:
    base = runner.run("BASE").cycles
    print(f"\n--- {title} ---")
    for label, cfg in variants:
        res = runner.run(f"DARSIE[{label}]", cfg)
        skipped = res.stats.instructions_skipped
        print(f"  {label:18s} speedup={base / res.cycles:5.2f}x "
              f"skipped={skipped:6d} sync_waits={res.stats.sync_wait_cycles:7d} "
              f"freelist_syncs={res.stats.freelist_syncs}")


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "MM"
    workload = build_workload(abbr, "small")
    runner = WorkloadRunner(workload)
    print(f"workload: {abbr} ({workload.description})")

    sweep(runner, "PC-coalescer ports (paper picks 2)", [
        (f"ports={p}", DarsieConfig(skip_ports=p)) for p in (1, 2, 4, 8)
    ])
    sweep(runner, "rename registers per TB (paper allows 32)", [
        (f"regs={n}", DarsieConfig(rename_regs_per_tb=n)) for n in (2, 4, 8, 16, 32)
    ])
    sweep(runner, "redundant-write policy (Section 4.1)", [
        ("versioning", DarsieConfig()),
        ("sync-on-write", DarsieConfig(sync_on_write=True)),
    ])
    sweep(runner, "store handling (Section 4.4)", [
        ("invalidate", DarsieConfig()),
        ("ignore-store", DarsieConfig(ignore_store=True)),
    ])
    sweep(runner, "skip-table entries per TB (paper allocates 8)", [
        (f"entries={n}", DarsieConfig(skip_entries_per_tb=n)) for n in (2, 4, 8, 16)
    ])


if __name__ == "__main__":
    main()
