#!/usr/bin/env python
"""Quickstart: write a kernel, find its redundancy, run it with DARSIE.

Walks the full public API in one sitting:

1. assemble a small 2D kernel in the PTXPlus-like DSL;
2. run the static compiler pass and inspect the DR/CR/V markings;
3. check the launch-time promotion rule for a 2D and a 1D launch;
4. execute functionally and verify the result;
5. simulate BASE vs DARSIE on the cycle-level model and compare.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    DarsieFrontend,
    Dim3,
    GlobalMemory,
    LaunchConfig,
    analyze_program,
    assemble,
    promotion_applies,
    run_functional,
    simulate,
    small_config,
)
from repro.core.promotion import describe_promotion

# A tiny image-processing kernel: scale each pixel of a row-major image
# by a per-column gain (gain index depends only on tid.x => redundant
# across the warps of a 2D threadblock).
KERNEL = """
.kernel column_gain
.param img
.param gains
.param out
.param width
    mov.u32        $tx, %tid.x
    mov.u32        $ty, %tid.y
    mul.u32        $gx, %ctaid.x, %ntid.x
    add.u32        $gx, $gx, $tx
    mul.u32        $gy, %ctaid.y, %ntid.y
    add.u32        $gy, $gy, $ty
    # gain[gx]: the address chain descends from tid.x only
    shl.u32        $ga, $gx, 2
    add.u32        $ga, $ga, %param.gains
    ld.global.f32  $gain, [$ga]
    # pixel load/store touch the row => true vector work
    mul.u32        $pi, $gy, %param.width
    add.u32        $pi, $pi, $gx
    shl.u32        $pa, $pi, 2
    add.u32        $ia, $pa, %param.img
    ld.global.f32  $v, [$ia]
    mul.f32        $v, $v, $gain
    add.u32        $oa, $pa, %param.out
    st.global.f32  [$oa], $v
    exit
"""


def main() -> None:
    program = assemble(KERNEL)
    print(f"assembled {program!r}")

    # -- static compiler pass (Section 4.2) -----------------------------
    analysis = analyze_program(program)
    print("\ncompiler markings (DR = definitely redundant, CR = conditional):")
    print(analysis.annotated_listing())

    # -- launch-time promotion (Section 4.2) -----------------------------
    launch_2d = LaunchConfig(grid_dim=Dim3(2, 2), block_dim=Dim3(16, 16))
    launch_1d = LaunchConfig(grid_dim=Dim3(8), block_dim=Dim3(128))
    for launch in (launch_2d, launch_1d):
        applies = promotion_applies(launch)
        print(f"\nTB {launch.block_dim}: promotion {'APPLIES' if applies else 'does not apply'}")
        print("  " + describe_promotion(launch))

    # -- data + functional oracle -------------------------------------------
    width, height = 32, 32
    rng = np.random.default_rng(0)
    img = rng.random((height, width))
    gains = rng.random(width)
    expected = img * gains[None, :]

    def fresh():
        mem = GlobalMemory(1 << 14)
        params = {
            "img": mem.alloc_array(img),
            "gains": mem.alloc_array(gains),
            "out": mem.alloc(width * height),
            "width": width,
        }
        return mem, params

    mem, params = fresh()
    engine = run_functional(program, launch_2d, mem, params=params)
    got = mem.read_array(params["out"], width * height).reshape(height, width)
    assert np.allclose(got, expected)
    print(f"\nfunctional run: {engine.instructions_executed} warp-instructions, output verified")

    # -- timing: BASE vs DARSIE --------------------------------------------------
    config = small_config(num_sms=1)
    mem, params = fresh()
    base = simulate(program, launch_2d, mem, params=params, config=config)

    mem, params = fresh()
    darsie = simulate(
        program, launch_2d, mem, params=params, config=config,
        frontend_factory=lambda: DarsieFrontend(analysis),
    )
    got = mem.read_array(params["out"], width * height).reshape(height, width)
    assert np.allclose(got, expected), "DARSIE must not change results"

    skipped = darsie.stats.instructions_skipped
    slots = darsie.stats.total_instruction_slots
    print(f"\nBASE   : {base.cycles} cycles, {base.stats.instructions_executed} executed")
    print(f"DARSIE : {darsie.cycles} cycles, {darsie.stats.instructions_executed} executed, "
          f"{skipped} skipped ({skipped / slots:.0%} of the stream)")
    print(f"speedup: {base.cycles / darsie.cycles:.2f}x — and the output is bit-identical")


if __name__ == "__main__":
    main()
