#!/usr/bin/env python
"""The 3D extension: tid.y-conditional redundancy on a volume kernel.

The paper evaluates 2D threadblocks and notes (Section 2) that the same
observations "apply to 3D TBs, where both the tid.x and tid.y registers
can be conditionally redundant".  This repository implements that
extension behind ``analyze_program(..., enable_3d=True)``: ``tid.y``
seeds a fourth marking class (CRy) that promotes when each warp covers
whole (x, y) planes identically — ``x*y`` a power of two ≤ the warp
size.

This example runs a small volume-smoothing kernel with (8,4,8) TBs —
each 32-thread warp is exactly one z-slice — and compares the paper's
2D analysis with the 3D extension.

Run with::

    python examples/volume_stencil_3d.py
"""

import numpy as np

from repro import (
    DarsieFrontend,
    Dim3,
    GlobalMemory,
    LaunchConfig,
    analyze_program,
    assemble,
    simulate,
    small_config,
)
from repro.core.promotion import promotion_applies, promotion_applies_y

# Per-voxel smoothing with per-(x,y)-column gains: the gain table index
# depends on tid.x AND tid.y — under the 2D analysis that chain is
# vector; under the 3D extension it is CRy and shared across the warps
# (z-slices) of each TB.
KERNEL = """
.kernel volume_gain
.param vol
.param gains
.param out
.param nx
.param nxy
    # in-plane coordinate (tid.y-conditional chain)
    mul.u32        $pi, %tid.y, %ntid.x
    add.u32        $pi, $pi, %tid.x
    shl.u32        $ga, $pi, 2
    add.u32        $ga, $ga, %param.gains
    ld.global.f32  $gain, [$ga]
    # voxel index (z makes it true vector work)
    mul.u32        $vz, %ctaid.x, %ntid.z
    add.u32        $vz, $vz, %tid.z
    mul.u32        $vi, $vz, %param.nxy
    add.u32        $vi, $vi, $pi
    shl.u32        $va, $vi, 2
    add.u32        $ia, $va, %param.vol
    ld.global.f32  $v, [$ia]
    mul.f32        $v, $v, $gain
    add.u32        $oa, $va, %param.out
    st.global.f32  [$oa], $v
    exit
"""


def main() -> None:
    program = assemble(KERNEL)
    block = Dim3(8, 4, 8)          # x*y = 32 = warp: one z-slice per warp
    launch = LaunchConfig(grid_dim=Dim3(16), block_dim=block)
    print(f"launch: TB {block}, warps/TB = {launch.warps_per_block}")
    print(f"tid.x promotion (paper criterion)   : {promotion_applies(launch)}")
    print(f"tid.y promotion (3D extension)      : {promotion_applies_y(launch)}")

    nx, ny, nz = block.x, block.y, block.z * launch.grid_dim.x
    rng = np.random.default_rng(3)
    vol = rng.random((nz, ny, nx))
    gains = rng.random((ny, nx))
    expected = vol * gains[None, :, :]

    def fresh():
        mem = GlobalMemory(1 << 14)
        return mem, {
            "vol": mem.alloc_array(vol),
            "gains": mem.alloc_array(gains),
            "out": mem.alloc(vol.size),
            "nx": nx,
            "nxy": nx * ny,
        }

    config = small_config(num_sms=1)
    for label, enable_3d in (("paper 2D analysis", False), ("3D extension", True)):
        analysis = analyze_program(program, enable_3d=enable_3d)
        mem, params = fresh()
        res = simulate(program, launch, mem, params=params, config=config,
                       frontend_factory=lambda: DarsieFrontend(analysis))
        got = mem.read_array(params["out"], vol.size).reshape(vol.shape)
        assert np.allclose(got, expected), "results must be identical"
        print(f"\n{label}:")
        print(f"  cycles={res.cycles}  executed={res.stats.instructions_executed}  "
              f"skipped={res.stats.instructions_skipped}  "
              f"classes={dict(res.stats.skipped_by_class)}")
    print("\nThe tid.y-derived gain chain (including its load) is only "
          "skippable\nwith the 3D extension — and the outputs are "
          "bit-identical either way.")


if __name__ == "__main__":
    main()
