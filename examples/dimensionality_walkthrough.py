#!/usr/bin/env python
"""Figure 3, executable: how TB dimensionality creates redundancy.

Reproduces the paper's worked example — a three-instruction sequence
reading an integer array indexed by ``tid.x`` — under a 1D and a 2D
threadblock with warp size 4, and classifies every output register
vector exactly as Figure 3 does:

- 1D (8,1): ``tid.x`` is laid out sequentially across warps, the address
  chain is *TB-affine but not redundant*, and the loaded values are
  unrelated between warps;
- 2D (4,2): every warp holds the same ``tid.x`` vector, the address
  chain is *affine redundant*, and the loads return identical,
  input-dependent values — *unstructured redundancy*.

Run with::

    python examples/dimensionality_walkthrough.py
"""

import numpy as np

from repro import Dim3, GlobalMemory, LaunchConfig, Tracer, assemble, run_functional
from repro.core import RedundancyClass, classify_group

# Figure 3's pseudo-assembly: MUL R1, tid.x, 4 / ADD R2, R1, #base /
# LD R3, MEM[R2], with the paper's memory contents.
KERNEL = """
.kernel figure3
.param base
.param out
    mul.u32        $r1, %tid.x, 4
    add.u32        $r2, $r1, %param.base
    ld.global.s32  $r3, [$r2]
    # store so the run has an observable effect
    mul.u32        $t, %tid.y, %ntid.x
    add.u32        $t, $t, %tid.x
    mul.u32        $w, %ctaid.x, %ntid.x
    add.u32        $t, $t, $w
    shl.u32        $t, $t, 2
    add.u32        $t, $t, %param.out
    st.global.s32  [$t], $r3
    exit
"""

#: Figure 3's memory image: addresses 10.. hold [7, 3, 0, 90, 55, 8, 22, 1].
#: (We place it at a word-aligned base; the values are what matter.)
MEMORY_VALUES = [7, 3, 0, 90, 55, 8, 22, 1]

WARP_SIZE = 4


def run_case(title: str, block_dim: Dim3) -> None:
    program = assemble(KERNEL)
    mem = GlobalMemory(1 << 12)
    base = mem.alloc_array(np.array(MEMORY_VALUES, dtype=np.int64))
    out = mem.alloc(16)
    launch = LaunchConfig(grid_dim=Dim3(1), block_dim=block_dim, warp_size=WARP_SIZE)
    tracer = Tracer()
    run_functional(program, launch, mem, params={"base": base, "out": out}, tracer=tracer)

    print(f"\n=== {title}: TB {block_dim}, warp size {WARP_SIZE} ===")
    groups = {key: recs for key, recs in tracer.trace.grouped_by_tb()}
    names = {0x00: "MUL R1, tid.x, 4", 0x08: "ADD R2, R1, #base", 0x10: "LD  R3, MEM[R2]"}
    for pc, name in names.items():
        records = groups[(0, pc, 0)]
        cls = classify_group(records, launch.warps_per_block)
        pattern = ", ".join(
            f"w{r.warp_id}:{r.summary.kind}(base={r.summary.base:g},stride={r.summary.stride:g})"
            if r.summary.kind == "affine"
            else f"w{r.warp_id}:{r.summary.kind}"
            for r in records
        )
        print(f"  {name:20s} -> {cls.value:14s} [{pattern}]")


def main() -> None:
    print("Figure 3: the same code, two threadblock shapes")
    run_case("Figure 3(a): 1D threadblock", Dim3(8, 1))
    run_case("Figure 3(b): 2D threadblock", Dim3(4, 2))
    print(
        "\nIn the 2D case all three instructions are TB-redundant — the"
        "\nload's output has no discernible pattern (input-dependent"
        "\nvalues) yet is identical in every warp: unstructured redundancy,"
        "\nwhich only DARSIE can eliminate (Table 3)."
    )
    # Machine-check the Figure 3 claims.
    program = assemble(KERNEL)
    mem = GlobalMemory(1 << 12)
    base = mem.alloc_array(np.array(MEMORY_VALUES, dtype=np.int64))
    out = mem.alloc(16)
    tracer = Tracer()
    run_functional(
        program,
        LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(4, 2), warp_size=WARP_SIZE),
        mem, params={"base": base, "out": out}, tracer=tracer,
    )
    groups = {key: recs for key, recs in tracer.trace.grouped_by_tb()}
    assert classify_group(groups[(0, 0x00, 0)], 2) is RedundancyClass.AFFINE
    assert classify_group(groups[(0, 0x08, 0)], 2) is RedundancyClass.AFFINE
    assert classify_group(groups[(0, 0x10, 0)], 2) is RedundancyClass.UNSTRUCTURED
    print("\nall Figure 3(b) classifications machine-checked: OK")


if __name__ == "__main__":
    main()
