"""Async load generator for the sweep service.

``python -m repro loadtest`` drives a :class:`~repro.serve.server.SweepServer`
with a configurable concurrency / duration / config mix and reports
achieved req/s plus p50/p95/p99 latency.  Three phases:

1. **coalesce probe** — a burst of identical requests against one cold
   config, proving duplicate in-flight requests collapse onto a single
   simulation (visible as ``source: "coalesced"`` responses);
2. **warmup** — every distinct config in the mix is requested once, so
   the store is warm (skippable with ``warm=False``);
3. **timed run** — ``concurrency`` workers, each on its own persistent
   connection, hammer the mix round-robin until the deadline.

With no ``--url`` the loadtest spawns its own server in-process on an
ephemeral port against a fresh working directory, which is what the CI
``serve-smoke`` job runs.  ``--check`` turns the report into a gate:
nonzero hit rate, zero 5xx, and demonstrated coalescing.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import RunConfig
from repro.serve.server import SweepServer

#: configs the default loadtest mix pairs with every app
DEFAULT_CONFIGS = ("BASE", "DARSIE")
DEFAULT_APPS = ("LIB", "FWS")


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 ≤ q ≤ 1)."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[idx]


class _Conn:
    """One persistent HTTP/1.1 connection with single-retry reconnect."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _ensure(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def request_raw(self, request: bytes) -> Tuple[int, bytes]:
        """Send prebuilt request bytes; returns (status, body)."""
        for attempt in (1, 2):
            try:
                await self._ensure()
                self._writer.write(request)
                await self._writer.drain()
                return await self._read_response()
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt == 2:
                    raise
        raise ConnectionError("unreachable")

    async def _read_response(self) -> Tuple[int, bytes]:
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        length = 0
        close = False
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if not sep:
                continue
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "connection" and value.strip().lower() == "close":
                close = True
        body = await self._reader.readexactly(length) if length else b""
        if close:
            await self.close()
        return status, body

    async def request(self, method: str, path: str, body: bytes = b"") -> Tuple[int, bytes]:
        return await self.request_raw(build_request(self.host, method, path, body))

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        self._reader = self._writer = None


def build_request(host: str, method: str, path: str, body: bytes = b"") -> bytes:
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n\r\n"
    )
    return head.encode("latin-1") + body


@dataclass
class LoadtestReport:
    """Everything one loadtest run observed, plus the gate verdict."""

    duration_s: float
    concurrency: int
    mix: List[str]
    requests: int = 0
    achieved_rps: float = 0.0
    #: client-observed HTTP status counts during the timed phase
    status_counts: Dict[int, int] = field(default_factory=dict)
    #: connection-level failures (reset mid-request, refused, ...)
    transport_errors: int = 0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    #: coalesce-probe observations (burst of identical cold requests)
    probe: Dict[str, int] = field(default_factory=dict)
    #: the server's /stats snapshot after the run
    server_stats: Dict = field(default_factory=dict)
    #: gate failures (empty = pass); filled by :meth:`check`
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def server_errors(self) -> int:
        return sum(n for s, n in self.status_counts.items() if s >= 500)

    def check(self, min_rps: float = 0.0) -> List[str]:
        """The serve-smoke gate: hits happened, nothing 5xx'd, duplicate
        requests coalesced.  Returns (and stores) the failures."""
        problems = []
        if not self.server_stats.get("hits"):
            problems.append("no cache hits were served (hit rate is zero)")
        if self.server_errors:
            problems.append(f"{self.server_errors} server error(s) (5xx) observed")
        if self.transport_errors:
            problems.append(f"{self.transport_errors} transport error(s)")
        if not self.server_stats.get("coalesced"):
            problems.append(
                "no requests coalesced (duplicate in-flight configs should "
                "share one simulation)"
            )
        if min_rps > 0 and self.achieved_rps < min_rps:
            problems.append(
                f"achieved {self.achieved_rps:.0f} req/s < required {min_rps:.0f}"
            )
        self.problems = problems
        return problems

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "concurrency": self.concurrency,
            "mix": self.mix,
            "requests": self.requests,
            "achieved_rps": round(self.achieved_rps, 1),
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "transport_errors": self.transport_errors,
            "latency_ms": {
                "p50": round(self.p50_ms, 3),
                "p95": round(self.p95_ms, 3),
                "p99": round(self.p99_ms, 3),
                "max": round(self.max_ms, 3),
            },
            "probe": self.probe,
            "server_stats": self.server_stats,
            "problems": self.problems,
            "ok": self.ok,
        }

    def write(self, path: str) -> None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render(self) -> str:
        lines = [
            f"[loadtest] {self.requests} requests in {self.duration_s:.1f}s "
            f"at concurrency {self.concurrency}: {self.achieved_rps:.0f} req/s",
            f"  latency: p50 {self.p50_ms:.2f}ms  p95 {self.p95_ms:.2f}ms  "
            f"p99 {self.p99_ms:.2f}ms  max {self.max_ms:.2f}ms",
            f"  statuses: " + ", ".join(
                f"{s}×{n}" for s, n in sorted(self.status_counts.items())
            ) + (f", {self.transport_errors} transport errors"
                 if self.transport_errors else ""),
        ]
        if self.probe:
            lines.append(
                f"  coalesce probe: {self.probe.get('requests', 0)} identical "
                f"requests -> {self.probe.get('simulated', 0)} simulated, "
                f"{self.probe.get('coalesced', 0)} coalesced, "
                f"{self.probe.get('hits', 0)} hits"
            )
        stats = self.server_stats
        if stats:
            lines.append(
                f"  server: hit_rate {stats.get('hit_rate', 0.0):.3f}, "
                f"{stats.get('coalesced', 0)} coalesced, "
                f"{stats.get('rejected', 0)} rejected, "
                f"{stats.get('sim_failures', 0)} sim failures, "
                f"queue peak {stats.get('queue_peak', 0)}"
            )
        if self.problems:
            lines.append(f"loadtest FAILED ({len(self.problems)} problem(s)):")
            lines.extend(f"  - {p}" for p in self.problems)
        return "\n".join(lines)


def _mix_bodies(apps: Sequence[str], configs: Sequence[str], scale: str) -> List[Tuple[str, bytes]]:
    """(label, canonical JSON body) for every (app, config) pair."""
    out = []
    for abbr in apps:
        for variant in configs:
            cfg = RunConfig(abbr=abbr, variant=variant, scale=scale)
            out.append((cfg.label, cfg.canonical_json().encode()))
    return out


async def _timed_worker(conn: _Conn, requests: List[bytes], start: int,
                        deadline: float, latencies: List[float],
                        statuses: Counter, errors: List[int]) -> None:
    i = start
    n = len(requests)
    while time.perf_counter() < deadline:
        t0 = time.perf_counter()
        try:
            status, _ = await conn.request_raw(requests[i % n])
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            errors[0] += 1
            continue
        finally:
            i += 1
        latencies.append(time.perf_counter() - t0)
        statuses[status] += 1
    await conn.close()


async def _run_async(
    host: str,
    port: int,
    bodies: List[Tuple[str, bytes]],
    duration_s: float,
    concurrency: int,
    warm: bool,
    probe_burst: int,
    report: LoadtestReport,
) -> None:
    requests = [build_request(host, "POST", "/run", body) for _label, body in bodies]

    # Phase 1: coalesce probe — identical concurrent requests on the
    # first config of the mix.  On a cold store exactly one simulates
    # and the rest coalesce; on a warm one they all hit (still recorded,
    # the /stats assertion then relies on the timed phase's misses).
    if probe_burst > 1:
        conns = [_Conn(host, port) for _ in range(probe_burst)]
        replies = await asyncio.gather(
            *(c.request_raw(requests[0]) for c in conns), return_exceptions=True
        )
        probe = Counter()
        for reply in replies:
            if isinstance(reply, BaseException):
                probe["errors"] += 1
                continue
            status, body = reply
            probe["requests"] += 1
            if status == 200:
                source = json.loads(body.decode()).get("source", "")
                if source in ("memory", "store"):
                    probe["hits"] += 1
                else:
                    probe[source] += 1
            else:
                probe[f"status_{status}"] += 1
        report.probe = dict(probe)
        await asyncio.gather(*(c.close() for c in conns))

    # Phase 2: warm the store so the timed phase measures the hit path.
    if warm:
        conn = _Conn(host, port)
        for request in requests:
            await conn.request_raw(request)
        await conn.close()

    # Phase 3: timed run.
    latencies: List[float] = []
    statuses: Counter = Counter()
    errors = [0]
    deadline = time.perf_counter() + duration_s
    t0 = time.perf_counter()
    workers = [
        _timed_worker(_Conn(host, port), requests, i, deadline,
                      latencies, statuses, errors)
        for i in range(concurrency)
    ]
    await asyncio.gather(*workers)
    elapsed = max(1e-9, time.perf_counter() - t0)

    latencies.sort()
    report.requests = len(latencies)
    report.achieved_rps = len(latencies) / elapsed
    report.status_counts = dict(statuses)
    report.transport_errors = errors[0]
    report.p50_ms = percentile(latencies, 0.50) * 1e3
    report.p95_ms = percentile(latencies, 0.95) * 1e3
    report.p99_ms = percentile(latencies, 0.99) * 1e3
    report.max_ms = latencies[-1] * 1e3 if latencies else 0.0

    # Final /stats snapshot.
    conn = _Conn(host, port)
    try:
        status, body = await conn.request("GET", "/stats")
        if status == 200:
            report.server_stats = json.loads(body.decode())
    finally:
        await conn.close()


def run_loadtest(
    url: Optional[str] = None,
    duration_s: float = 10.0,
    concurrency: int = 32,
    apps: Sequence[str] = DEFAULT_APPS,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    scale: str = "tiny",
    warm: bool = True,
    probe_burst: int = 8,
    jobs: int = 1,
    queue_limit: int = 64,
    workdir: Optional[str] = None,
    journal: Optional[str] = None,
    run_batch=None,
) -> LoadtestReport:
    """Run one loadtest; spawns an in-process server when ``url`` is None.

    The spawned server gets a fresh working directory (``workdir`` or a
    temp dir) holding its sharded cache and resume journal, so repeated
    loadtests are deterministic: the probe config is always cold.
    """
    if url is not None:
        stripped = url.replace("http://", "", 1).rstrip("/")
        host, _, port_text = stripped.partition(":")
        host = host or "127.0.0.1"
        port = int(port_text or 80)
    bodies = _mix_bodies(apps, configs, scale)
    report = LoadtestReport(
        duration_s=duration_s,
        concurrency=max(1, int(concurrency)),
        mix=[label for label, _ in bodies],
    )

    async def main() -> None:
        if url is not None:
            await _run_async(host, port, bodies, duration_s, report.concurrency,
                             warm, probe_burst, report)
            return
        owned = workdir or tempfile.mkdtemp(prefix="repro-loadtest-")
        os.makedirs(owned, exist_ok=True)
        server = SweepServer(
            port=0,
            jobs=jobs,
            queue_limit=queue_limit,
            cache_dir=os.path.join(owned, "cache"),
            journal=journal or os.path.join(owned, "journal.jsonl"),
            run_batch=run_batch,
        )
        await server.start()
        try:
            await _run_async(server.host, server.port, bodies, duration_s,
                             report.concurrency, warm, probe_burst, report)
        finally:
            await server.stop()
            if workdir is None:
                shutil.rmtree(owned, ignore_errors=True)

    asyncio.run(main())
    return report
