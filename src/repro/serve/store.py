"""Serving-side view of the content-addressed result store.

The sweep layer owns the store itself (sharded directories, atomic
writes, flat-layout migration — :mod:`repro.harness.parallel`); this
module adds what a request-serving hot path needs on top:

- one :func:`~repro.harness.parallel.cache_lookup` probe per miss,
  shared verbatim with the sweep layer so the two can never disagree
  about where an entry lives;
- an in-memory LRU of *pre-serialized* response payloads, so a warm key
  costs a dict lookup plus a socket write — no disk, no unpickle, no
  ``json.dumps`` — which is what makes thousands of hits per second
  feasible from a single event loop;
- hit/miss/corruption counters for the ``/stats`` endpoint.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Optional, Tuple

from repro.harness.parallel import RunSpec, cache_key, cache_lookup, resolve_cache_dir
from repro.harness.runner import RunResult


def encode_result(result: object) -> bytes:
    """Canonical JSON payload for one cached/simulated result.

    Timing runs (the only kind the service admits) serialize their full
    :meth:`~repro.timing.gpu.SimulationResult.to_dict` counters; anything
    else degrades to a ``repr`` so a foreign cache entry can never crash
    the response path.
    """
    if isinstance(result, RunResult):
        payload = {
            "workload": result.workload,
            "variant": result.config_name,
            "cycles": result.cycles,
            "energy_pj": result.energy_pj,
            "sim": result.sim.to_dict(),
        }
    else:
        payload = {"repr": repr(result)}
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


class ResultStore:
    """Read path of the service: memory LRU over the on-disk store."""

    def __init__(self, cache_dir: Optional[str] = None, memory_entries: int = 4096):
        self.cache_dir = resolve_cache_dir(cache_dir)
        self.memory_entries = max(0, int(memory_entries))
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self.memory_hits = 0
        self.store_hits = 0
        self.misses = 0
        self.corrupt_entries = 0

    def key_for(self, spec: RunSpec) -> str:
        return cache_key(spec)

    def get(self, spec: RunSpec, key: str) -> Tuple[Optional[bytes], Optional[str]]:
        """``(payload bytes, source)`` where source is ``"memory"``,
        ``"store"`` or ``None`` on a miss."""
        body = self._memory.get(key)
        if body is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return body, "memory"
        result, status = cache_lookup(spec, key, self.cache_dir)
        if status == "corrupt":
            self.corrupt_entries += 1
        if result is None:
            self.misses += 1
            return None, None
        body = encode_result(result)
        self.put(key, body)
        self.store_hits += 1
        return body, "store"

    def put(self, key: str, body: bytes) -> None:
        """Install one serialized payload in the memory LRU."""
        if self.memory_entries <= 0:
            return
        self._memory[key] = body
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def __len__(self) -> int:
        return len(self._memory)

    def counters(self) -> dict:
        return {
            "memory_entries": len(self._memory),
            "memory_hits": self.memory_hits,
            "store_hits": self.store_hits,
            "store_misses": self.misses,
            "corrupt_entries": self.corrupt_entries,
        }
