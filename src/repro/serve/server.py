"""Asyncio HTTP front end over the sweep cache and simulation pool.

One :class:`SweepServer` owns four pieces of state:

- a :class:`~repro.serve.store.ResultStore` (memory LRU over the
  sharded on-disk store) — the hit path;
- a **coalescing map** ``cache key -> flight``: every distinct config
  being simulated has exactly one in-flight future, and any number of
  requests await it behind :func:`asyncio.shield`, so a client
  disconnect can never cancel work other clients are waiting on;
- a **bounded admission backlog** of flights the pump has not yet picked
  up.  Admission is measured in *distinct configs pending anywhere*
  (backlog + running batch): coalesced duplicates are free, new work is
  bounded, and overflow is refused with ``429`` and a ``Retry-After``
  estimated from observed simulation times;
- a single **pump** task that drains the backlog in batches into
  :func:`~repro.harness.parallel.run_specs` on a worker thread — the
  full fault-tolerance machinery (per-request :class:`ExecPolicy`
  timeouts/retries, quarantine, resume journal) applies unchanged, and
  batching lets duplicate-free bursts share one process pool spin-up.

Wire protocol (HTTP/1.1, keep-alive):

``POST /run``
    body: canonical :class:`~repro.config.RunConfig` JSON.  ``200`` with
    ``{"key", "source", "result"}`` (source: ``memory`` / ``store`` /
    ``simulated`` / ``coalesced``), ``400`` on malformed or unknown-key
    config (the strict :meth:`RunConfig.from_dict` error verbatim),
    ``429`` + ``Retry-After`` when the admission queue is full, ``503``
    while draining, ``500`` when the simulation itself failed.
``GET /stats``
    service counters + aggregated sweep stats (JSON), including the
    checkpoint counters (``checkpoints_written`` / ``checkpoint_resumes``
    from the sweep layer) and the ``deadlocks`` watchdog counter.
``GET /healthz``
    liveness + draining flag, plus forward-progress degradation: when
    work is pending and the pump has not finished a batch for longer
    than ``stall_threshold_s``, the body reports
    ``{"status": "degraded", "reason": ...}`` (still HTTP 200 — the
    service is alive, just wedged; orchestrators alert on the body).

Shutdown is graceful: :meth:`SweepServer.stop` stops accepting, lets the
pump drain every admitted flight (each ``run_specs`` batch appends its
journal lines as outcomes land, so the journal is flushed by
construction), then waits for open connections to finish writing.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.config import ConfigError, RunConfig
from repro.harness.parallel import (
    RunOutcome,
    RunSpec,
    SweepStats,
    run_specs,
)
from repro.serve.store import ResultStore, encode_result
from repro.variants import REGISTRY
from repro.workloads import ALL_ABBRS, SCALES

#: default TCP port for ``python -m repro serve`` (0 = ephemeral)
DEFAULT_PORT = 8712

#: largest request head / body the server will read
_MAX_HEAD = 16 * 1024
_MAX_BODY = 256 * 1024

_JSON_HEADERS = (("Content-Type", "application/json"),)

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


@dataclass
class ServeStats:
    """Service-level counters (the sweep layer's live in ``sweep``)."""

    requests: int = 0
    #: requests answered straight from the store (memory or disk)
    hits: int = 0
    memory_hits: int = 0
    store_hits: int = 0
    #: distinct configs admitted for simulation
    misses: int = 0
    #: requests that attached to an already in-flight simulation
    coalesced: int = 0
    #: requests refused with 429 (admission queue full)
    rejected: int = 0
    #: requests refused with 400 (malformed / unknown-key / bad names)
    bad_requests: int = 0
    #: simulations that failed (each waiter got a 500)
    sim_failures: int = 0
    #: simulations the forward-progress watchdog aborted (DeadlockError)
    deadlocks: int = 0
    #: highest simultaneous distinct-config load observed
    queue_peak: int = 0

    @property
    def run_requests(self) -> int:
        return self.hits + self.misses + self.coalesced

    @property
    def hit_rate(self) -> float:
        return self.hits / max(1, self.run_requests)


@dataclass
class _Flight:
    """One distinct config on its way through the simulation pool."""

    key: str
    spec: RunSpec
    #: resolves to ``(RunOutcome, payload bytes | None)``; never
    #: cancelled and never carries an exception, so a waiterless flight
    #: (every client disconnected) finishes silently.
    future: "asyncio.Future[Tuple[RunOutcome, Optional[bytes]]]" = field(repr=False, default=None)  # type: ignore[assignment]


class SweepServer:
    """The memoizing simulation service (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        jobs: int = 1,
        queue_limit: int = 64,
        batch_max: int = 32,
        cache_dir: Optional[str] = None,
        journal: Optional[str] = None,
        memory_entries: int = 4096,
        stall_threshold_s: float = 120.0,
        run_batch: Optional[Callable[[Sequence[RunSpec]], Tuple[List[RunOutcome], SweepStats]]] = None,
        registry=REGISTRY,
    ):
        self.host = host
        self.port = port
        self.jobs = max(1, int(jobs))
        self.queue_limit = max(1, int(queue_limit))
        self.batch_max = max(1, int(batch_max))
        self.journal = journal
        self.registry = registry
        self.store = ResultStore(cache_dir, memory_entries=memory_entries)
        #: test seam: anything with run_specs's (outcomes, stats) shape
        self._run_batch = run_batch or partial(
            run_specs,
            jobs=self.jobs,
            cache_dir=self.store.cache_dir,
            strict=False,
            resume=journal if journal else False,
        )
        self.stats = ServeStats()
        self.sweep_totals = SweepStats(jobs=self.jobs)
        self._inflight: Dict[str, _Flight] = {}
        self._backlog: Deque[_Flight] = deque()
        self._batch_size = 0  # flights currently inside run_specs
        self._wakeup = asyncio.Event()
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._started_at = time.perf_counter()
        #: pump liveness: work pending for longer than this without a
        #: batch completing marks the service degraded (0 disables)
        self.stall_threshold_s = float(stall_threshold_s)
        self._progress_at = time.monotonic()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=_MAX_HEAD
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.ensure_future(self._pump())
        self._started_at = time.perf_counter()

    async def stop(self, conn_grace_s: float = 5.0) -> None:
        """Graceful shutdown: refuse new work, drain admitted work."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._wakeup.set()
        if self._pump_task is not None:
            await self._pump_task  # drains the backlog before exiting
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=conn_grace_s)

    @property
    def queue_depth(self) -> int:
        """Distinct configs pending anywhere (backlog + running batch)."""
        return len(self._backlog) + self._batch_size

    # -- simulation pump ---------------------------------------------------

    async def _pump(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            while not self._backlog and not self._draining:
                self._wakeup.clear()
                await self._wakeup.wait()
            if not self._backlog:
                return  # draining and empty
            batch: List[_Flight] = []
            while self._backlog and len(batch) < self.batch_max:
                batch.append(self._backlog.popleft())
            self._batch_size = len(batch)
            specs = [f.spec for f in batch]
            try:
                outcomes, stats = await loop.run_in_executor(
                    None, partial(self._run_batch, specs)
                )
            except Exception as exc:  # defensive: run_specs(strict=False) shouldn't raise
                outcomes = [
                    RunOutcome(spec=s, result=None, error=str(exc),
                               error_type=type(exc).__name__)
                    for s in specs
                ]
                stats = SweepStats(jobs=self.jobs)
            self._merge_sweep(stats)
            # run_specs returns outcomes in spec order; pad defensively
            # so a short list can never leave a flight unresolved.
            for i, flight in enumerate(batch):
                if i < len(outcomes):
                    outcome = outcomes[i]
                else:
                    outcome = RunOutcome(
                        spec=flight.spec, result=None,
                        error="simulation pool returned no outcome for this spec",
                        error_type="MissingOutcome",
                    )
                self._resolve(flight, outcome)
            self._batch_size = 0
            self._progress_at = time.monotonic()

    def _merge_sweep(self, stats: SweepStats) -> None:
        self.sweep_totals.merge(stats)
        # per_run is per-request observability; bound it so a long-lived
        # service cannot grow without limit.
        del self.sweep_totals.per_run[:-256]

    def _resolve(self, flight: _Flight, outcome: RunOutcome) -> None:
        payload: Optional[bytes] = None
        if outcome.ok:
            payload = encode_result(outcome.result)
            self.store.put(flight.key, payload)
        else:
            self.stats.sim_failures += 1
        if outcome.error_type == "DeadlockError":
            self.stats.deadlocks += 1
        self._inflight.pop(flight.key, None)
        if not flight.future.done():
            flight.future.set_result((outcome, payload))

    def _stalled_for_s(self) -> Optional[float]:
        """Seconds the pump has gone without progress while work is
        pending, once past the threshold; ``None`` while healthy."""
        if self.stall_threshold_s <= 0 or self.queue_depth == 0:
            return None
        stalled = time.monotonic() - self._progress_at
        return stalled if stalled > self.stall_threshold_s else None

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                status, extra, payload = await self._dispatch(method, path, body)
                await self._write_response(writer, status, extra, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away or spoke garbage; nothing to salvage
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # clean EOF between requests
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return None
        method, path = parts[0].upper(), parts[1]
        headers = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > _MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _write_response(self, writer: asyncio.StreamWriter, status: int,
                              extra_headers, payload: bytes, keep_alive: bool) -> None:
        reason = _REASONS.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}"]
        for name, value in _JSON_HEADERS + tuple(extra_headers):
            head.append(f"{name}: {value}")
        head.append(f"Content-Length: {len(payload)}")
        head.append("Connection: " + ("keep-alive" if keep_alive else "close"))
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + payload)
        await writer.drain()

    async def _dispatch(self, method: str, path: str, body: bytes):
        path = path.split("?", 1)[0]
        if path == "/run":
            if method != "POST":
                return 405, (), b'{"error":"use POST"}'
            return await self._handle_run(body)
        if path == "/stats":
            return 200, (), json.dumps(self.stats_dict(), sort_keys=True).encode()
        if path == "/healthz":
            stalled = self._stalled_for_s()
            health = {
                "ok": True,
                "status": "ok" if stalled is None else "degraded",
                "draining": self._draining,
            }
            if stalled is not None:
                health["reason"] = (
                    f"no pump progress for {stalled:.1f}s with "
                    f"{self.queue_depth} config(s) pending "
                    f"(threshold {self.stall_threshold_s:.1f}s)"
                )
            return 200, (), json.dumps(health, sort_keys=True).encode()
        return 404, (), b'{"error":"unknown path"}'

    # -- the /run path -----------------------------------------------------

    def _validate(self, body: bytes) -> Tuple[Optional[RunSpec], Optional[str]]:
        """Parse + strictly validate one request body into a RunSpec."""
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return None, f"body is not valid JSON: {exc}"
        try:
            cfg = RunConfig.from_dict(data)
        except ConfigError as exc:
            return None, str(exc)
        if cfg.abbr not in ALL_ABBRS:
            return None, f"unknown workload {cfg.abbr!r}; known: {list(ALL_ABBRS)}"
        if cfg.scale not in SCALES:
            return None, f"unknown scale {cfg.scale!r}; known: {list(SCALES)}"
        if cfg.darsie is None and cfg.variant not in self.registry:
            return None, (
                f"unknown variant {cfg.variant!r}; known: {self.registry.names()} "
                "(or supply explicit darsie knobs)"
            )
        return RunSpec.from_run_config(cfg), None

    def _retry_after_s(self) -> int:
        """Seconds a refused client should wait: the backlog's expected
        drain time under observed per-simulation wall times."""
        per_sim = self.sweep_totals.wall_time_s / max(1, self.sweep_totals.simulated)
        estimate = self.queue_depth * max(0.1, per_sim) / self.jobs
        return max(1, min(60, int(estimate + 0.999)))

    async def _handle_run(self, body: bytes):
        self.stats.requests += 1
        spec, error = self._validate(body)
        if spec is None:
            self.stats.bad_requests += 1
            return 400, (), json.dumps({"error": error}).encode()
        key = self.store.key_for(spec)

        payload, source = self.store.get(spec, key)
        if payload is not None:
            self.stats.hits += 1
            if source == "memory":
                self.stats.memory_hits += 1
            else:
                self.stats.store_hits += 1
            return 200, (), self._result_body(key, source, payload)

        flight = self._inflight.get(key)
        created = flight is None
        if created:
            if self._draining:
                return 503, (), b'{"error":"server is draining"}'
            if self.queue_depth >= self.queue_limit:
                self.stats.rejected += 1
                retry_after = self._retry_after_s()
                return (
                    429,
                    (("Retry-After", str(retry_after)),),
                    json.dumps({
                        "error": "admission queue is full",
                        "queue_depth": self.queue_depth,
                        "queue_limit": self.queue_limit,
                        "retry_after_s": retry_after,
                    }).encode(),
                )
            if self.queue_depth == 0:
                # the stall clock measures waiting work, so it starts
                # when an idle pump is first handed something to do
                self._progress_at = time.monotonic()
            flight = _Flight(key=key, spec=spec,
                             future=asyncio.get_running_loop().create_future())
            self._inflight[key] = flight
            self._backlog.append(flight)
            self.stats.misses += 1
            self.stats.queue_peak = max(self.stats.queue_peak, self.queue_depth)
            self._wakeup.set()
        else:
            self.stats.coalesced += 1

        # shield: this handler dying with its client must not cancel the
        # simulation other waiters (or the cache) depend on.
        outcome, payload = await asyncio.shield(flight.future)
        if payload is None:
            first_line = (outcome.error or "").splitlines() or [""]
            return 500, (), json.dumps({
                "error_type": outcome.error_type,
                "error": first_line[0],
                "quarantined": outcome.quarantined,
                "attempts": outcome.attempts,
            }).encode()
        return 200, (), self._result_body(
            key, "simulated" if created else "coalesced", payload
        )

    @staticmethod
    def _result_body(key: str, source: str, payload: bytes) -> bytes:
        # key/source are internally generated (hex / enum), so splicing
        # the pre-serialized result payload in is safe.
        return (
            b'{"key":"' + key.encode() + b'","source":"' + source.encode()
            + b'","result":' + payload + b"}"
        )

    # -- observability -----------------------------------------------------

    def stats_dict(self) -> dict:
        sweep = self.sweep_totals.to_dict()
        sweep.pop("per_run", None)  # unbounded detail; keep /stats small
        return {
            "uptime_s": round(time.perf_counter() - self._started_at, 3),
            "requests": self.stats.requests,
            "hits": self.stats.hits,
            "memory_hits": self.stats.memory_hits,
            "store_hits": self.stats.store_hits,
            "misses": self.stats.misses,
            "coalesced": self.stats.coalesced,
            "rejected": self.stats.rejected,
            "bad_requests": self.stats.bad_requests,
            "sim_failures": self.stats.sim_failures,
            "deadlocks": self.stats.deadlocks,
            "checkpoints_written": self.sweep_totals.checkpoints_written,
            "checkpoint_resumes": self.sweep_totals.checkpoint_resumes,
            "stalled": self._stalled_for_s() is not None,
            "hit_rate": round(self.stats.hit_rate, 6),
            "queue_depth": self.queue_depth,
            "queue_peak": self.stats.queue_peak,
            "queue_limit": self.queue_limit,
            "inflight": len(self._inflight),
            "draining": self._draining,
            "jobs": self.jobs,
            "store": self.store.counters(),
            "sweep": sweep,
        }


async def serve_forever(server: SweepServer, *, port_file: Optional[str] = None,
                        quiet: bool = False) -> None:
    """Run one server until SIGINT/SIGTERM, then drain and return."""
    import signal

    await server.start()
    if port_file:
        with open(port_file, "w") as fh:
            fh.write(str(server.port))
    if not quiet:
        print(f"[serve] listening on http://{server.host}:{server.port} "
              f"(jobs={server.jobs}, queue_limit={server.queue_limit}, "
              f"cache={server.store.cache_dir})", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread / platforms without signal support
    await stop.wait()
    if not quiet:
        print("[serve] draining...", flush=True)
    await server.stop()
    if not quiet:
        print(f"[serve] stopped; {json.dumps(server.stats_dict()['sweep'])}",
              flush=True)
