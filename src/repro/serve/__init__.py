"""Memoizing sweep service: an async front end over the
content-addressed result store.

``python -m repro serve`` boots an asyncio HTTP server that accepts
canonical :class:`~repro.config.RunConfig` JSON, serves hits straight
from the sharded result cache, coalesces duplicate in-flight requests
onto one simulation, and fans misses out to the fault-tolerant
:func:`~repro.harness.parallel.run_specs` pool.  ``python -m repro
loadtest`` is the matching async load generator.  See DESIGN §4g.
"""

from repro.serve.loadgen import LoadtestReport, run_loadtest
from repro.serve.server import ServeStats, SweepServer
from repro.serve.store import ResultStore, encode_result

__all__ = [
    "LoadtestReport",
    "ResultStore",
    "ServeStats",
    "SweepServer",
    "encode_result",
    "run_loadtest",
]
