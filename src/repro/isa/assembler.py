"""Assembler for the PTXPlus-like kernel language.

Grammar (one statement per line, ``#`` or ``//`` comments)::

    .kernel <name>
    .param <pname>            # declare a kernel launch parameter
    .shared <words>           # static shared-memory allocation, in words

    <label>:
    [@[!]$p] opcode[.mods] operands...

Operands:

- ``$r0`` / ``$ofs3``   named registers (names matching ``p<digits>`` are
  predicate registers, e.g. ``$p0``)
- ``%tid.x`` etc.       special registers
- ``%param.width``      kernel parameters
- ``123`` / ``0x1f`` / ``1.5``  immediates
- ``[$r1 + $r2 + 16]``  memory operands (space from the opcode modifier)

Examples::

    mul.u32        $r1, %tid.x, 4
    add.u32        $r2, $r1, 10
    ld.global.s32  $r3, [$r2]
    setp.lt.u32    $p0, $r4, %param.n
    @$p0 bra       loop
    st.global.f32  [$r5 + 4], $r6
    bar.sync
    exit
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.isa.instructions import (
    CmpOp,
    DType,
    INSTRUCTION_BYTES,
    Instruction,
    Opcode,
    source_arity,
)
from repro.isa.operands import Immediate, MemRef, MemSpace, Param, Predicate, Register, Special
from repro.isa.program import Program


class AssemblyError(ValueError):
    """Raised on any malformed kernel source, with line context."""

    def __init__(self, message: str, lineno: int = 0, line: str = ""):
        self.lineno = lineno
        self.line = line
        if lineno:
            message = f"line {lineno}: {message}: {line!r}"
        super().__init__(message)


_PRED_NAME = re.compile(r"^p\d+$")
_LABEL = re.compile(r"^([A-Za-z_][\w.$]*):$")
_GUARD = re.compile(r"^@(!?)\$([A-Za-z_]\w*)\s+")
_INT = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")
_FLOAT = re.compile(r"^-?(\d+\.\d*([eE][-+]?\d+)?|\d+[eE][-+]?\d+|\.\d+)$")

#: Modifier tokens that are accepted for PTXPlus fidelity but carry no
#: semantics in the functional model (width/rounding selectors).
_IGNORED_MODS = {"lo", "hi", "wide", "rn", "rz", "rm", "rp", "sat", "sync", "b32", "u16"}

_DTYPE_MODS = {d.value: d for d in DType if d is not DType.PRED}
_CMP_MODS = {c.value: c for c in CmpOp}
_SPACE_MODS = {"global": MemSpace.GLOBAL, "shared": MemSpace.SHARED, "param": MemSpace.PARAM}
#: Atomic sub-operations (only ``add`` is exercised by the workloads, but
#: the decoder accepts the usual set).
_ATOM_MODS = {"add", "min", "max", "exch", "cas"}


def _parse_scalar(token: str, lineno: int, line: str):
    """Parse one non-memory operand token."""
    token = token.strip()
    if token.startswith("$"):
        name = token[1:]
        if not name:
            raise AssemblyError("empty register name", lineno, line)
        if _PRED_NAME.match(name):
            return Predicate(name)
        return Register(name)
    if token.startswith("%param."):
        return Param(token[len("%param.") :])
    if token.startswith("%"):
        try:
            return Special(token[1:])
        except ValueError as exc:
            raise AssemblyError(str(exc), lineno, line) from exc
    if _INT.match(token):
        return Immediate(int(token, 0))
    if _FLOAT.match(token):
        return Immediate(float(token))
    raise AssemblyError(f"cannot parse operand {token!r}", lineno, line)


def _parse_memref(token: str, space: MemSpace, lineno: int, line: str) -> MemRef:
    inner = token[1:-1].strip()
    if not inner:
        raise AssemblyError("empty memory operand", lineno, line)
    parts = [p.strip() for p in inner.split("+")]
    base = None
    index: Optional[Register] = None
    offset = 0
    for part in parts:
        if _INT.match(part):
            offset += int(part, 0)
            continue
        operand = _parse_scalar(part, lineno, line)
        if base is None:
            base = operand
        elif isinstance(operand, Register) and index is None:
            index = operand
        else:
            raise AssemblyError("too many address components", lineno, line)
    if base is None:
        base = Immediate(0)
    if isinstance(base, Predicate):
        raise AssemblyError("predicate cannot address memory", lineno, line)
    return MemRef(space=space, base=base, offset=offset, index=index)


def _split_operands(rest: str) -> List[str]:
    """Split an operand list on commas that are outside brackets."""
    tokens, depth, cur = [], 0, []
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            tokens.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        tokens.append(tail)
    return [t for t in tokens if t]


def _decode_mnemonic(
    mnemonic: str, lineno: int, line: str
) -> Tuple[Opcode, DType, Optional[CmpOp], Optional[MemSpace], Optional[str]]:
    parts = mnemonic.split(".")
    try:
        opcode = Opcode(parts[0])
    except ValueError as exc:
        raise AssemblyError(f"unknown opcode {parts[0]!r}", lineno, line) from exc
    dtype = DType.S32
    cmp: Optional[CmpOp] = None
    space: Optional[MemSpace] = None
    atom_op: Optional[str] = None
    for mod in parts[1:]:
        if mod in _DTYPE_MODS:
            dtype = _DTYPE_MODS[mod]
        elif mod in _CMP_MODS:
            cmp = _CMP_MODS[mod]
        elif mod in _SPACE_MODS:
            space = _SPACE_MODS[mod]
        elif opcode is Opcode.ATOM and mod in _ATOM_MODS:
            atom_op = mod
        elif mod in _IGNORED_MODS:
            continue
        else:
            raise AssemblyError(f"unknown modifier .{mod}", lineno, line)
    if opcode is Opcode.SETP and cmp is None:
        raise AssemblyError("setp requires a comparison modifier", lineno, line)
    if opcode in (Opcode.LD, Opcode.ST, Opcode.ATOM) and space is None:
        raise AssemblyError(f"{opcode.value} requires an address-space modifier", lineno, line)
    return opcode, dtype, cmp, space, atom_op


def _build_instruction(
    pc: int,
    mnemonic: str,
    rest: str,
    guard: Optional[Predicate],
    guard_negated: bool,
    lineno: int,
    line: str,
) -> Instruction:
    opcode, dtype, cmp, space, atom_op = _decode_mnemonic(mnemonic, lineno, line)
    tokens = _split_operands(rest)

    if opcode is Opcode.BRA:
        if len(tokens) != 1 or tokens[0].startswith(("$", "%", "[")):
            raise AssemblyError("bra expects a single label", lineno, line)
        return Instruction(
            pc=pc, opcode=opcode, target=tokens[0], guard=guard,
            guard_negated=guard_negated, text=line,
        )
    if opcode in (Opcode.BAR, Opcode.EXIT, Opcode.NOP):
        if tokens:
            raise AssemblyError(f"{opcode.value} takes no operands", lineno, line)
        return Instruction(
            pc=pc, opcode=opcode, guard=guard, guard_negated=guard_negated, text=line
        )

    operands = []
    mem: Optional[MemRef] = None
    for token in tokens:
        if token.startswith("["):
            if mem is not None:
                raise AssemblyError("multiple memory operands", lineno, line)
            assert space is not None
            mem = _parse_memref(token, space, lineno, line)
        else:
            operands.append(_parse_scalar(token, lineno, line))

    if opcode is Opcode.ST:
        if mem is None or len(operands) != 1:
            raise AssemblyError("st expects [addr], value", lineno, line)
        return Instruction(
            pc=pc, opcode=opcode, dtype=dtype, srcs=(operands[0],), mem=mem,
            guard=guard, guard_negated=guard_negated, text=line,
        )
    if opcode is Opcode.LD:
        if mem is None or len(operands) != 1 or not isinstance(operands[0], Register):
            raise AssemblyError("ld expects $dst, [addr]", lineno, line)
        return Instruction(
            pc=pc, opcode=opcode, dtype=dtype, dst=operands[0], mem=mem,
            guard=guard, guard_negated=guard_negated, text=line,
        )
    if opcode is Opcode.ATOM:
        if mem is None or len(operands) != 2 or not isinstance(operands[0], Register):
            raise AssemblyError("atom expects $dst, [addr], value", lineno, line)
        return Instruction(
            pc=pc, opcode=opcode, dtype=dtype, dst=operands[0], srcs=(operands[1],),
            mem=mem, guard=guard, guard_negated=guard_negated, text=line,
        )

    # Plain register-to-register operation.
    if mem is not None:
        raise AssemblyError(f"{opcode.value} cannot take a memory operand", lineno, line)
    if not operands:
        raise AssemblyError("missing destination", lineno, line)
    dst, srcs = operands[0], tuple(operands[1:])
    if opcode is Opcode.SETP:
        if not isinstance(dst, Predicate):
            raise AssemblyError("setp destination must be a predicate", lineno, line)
        dtype_out = dtype
    else:
        if not isinstance(dst, Register):
            raise AssemblyError("destination must be a register", lineno, line)
        dtype_out = dtype
    expected = source_arity(opcode)
    if len(srcs) != expected:
        raise AssemblyError(
            f"{opcode.value} expects {expected} source operand(s), got {len(srcs)}",
            lineno,
            line,
        )
    return Instruction(
        pc=pc, opcode=opcode, dtype=dtype_out, cmp=cmp, dst=dst, srcs=srcs,
        guard=guard, guard_negated=guard_negated, text=line,
    )


def assemble(source: str, name: Optional[str] = None) -> Program:
    """Assemble kernel ``source`` text into a :class:`Program`.

    The returned program has resolved branch targets, a basic-block CFG
    and precomputed reconvergence PCs (immediate post-dominators) for
    every branch.
    """
    kernel_name = name or "kernel"
    params: List[str] = []
    shared_words = 0
    instructions: List[Instruction] = []
    labels = {}
    pending_labels: List[str] = []

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].split("//", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".kernel"):
            kernel_name = line.split(None, 1)[1].strip() if " " in line else kernel_name
            continue
        if line.startswith(".param"):
            try:
                params.append(line.split(None, 1)[1].strip())
            except IndexError:
                raise AssemblyError(".param requires a name", lineno, line) from None
            continue
        if line.startswith(".shared"):
            try:
                shared_words = int(line.split(None, 1)[1].strip(), 0)
            except (IndexError, ValueError):
                raise AssemblyError(".shared requires a word count", lineno, line) from None
            continue
        label_match = _LABEL.match(line)
        if label_match:
            pending_labels.append(label_match.group(1))
            continue

        guard = None
        guard_negated = False
        guard_match = _GUARD.match(line)
        body = line
        if guard_match:
            guard = Predicate(guard_match.group(2))
            guard_negated = bool(guard_match.group(1))
            body = line[guard_match.end() :]
        pieces = body.split(None, 1)
        mnemonic = pieces[0]
        rest = pieces[1] if len(pieces) > 1 else ""
        pc = len(instructions) * INSTRUCTION_BYTES
        inst = _build_instruction(pc, mnemonic, rest, guard, guard_negated, lineno, line)
        inst.index = len(instructions)
        for lbl in pending_labels:
            if lbl in labels:
                raise AssemblyError(f"duplicate label {lbl!r}", lineno, line)
            labels[lbl] = pc
        pending_labels = []
        instructions.append(inst)

    if pending_labels:
        raise AssemblyError(f"trailing labels with no instruction: {pending_labels}")
    if not instructions:
        raise AssemblyError("empty kernel")
    if not instructions[-1].is_exit:
        # Kernels must terminate; add an implicit exit for convenience.
        pc = len(instructions) * INSTRUCTION_BYTES
        inst = Instruction(pc=pc, opcode=Opcode.EXIT, text="exit")
        inst.index = len(instructions)
        instructions.append(inst)

    for inst in instructions:
        if inst.target is not None:
            if inst.target not in labels:
                raise AssemblyError(f"undefined label {inst.target!r} at pc {inst.pc:#x}")
            inst.target_pc = labels[inst.target]

    return Program(
        name=kernel_name,
        instructions=instructions,
        labels=labels,
        params=tuple(params),
        shared_words=shared_words,
    )
