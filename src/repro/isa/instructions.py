"""Instruction set definition.

Every instruction occupies :data:`INSTRUCTION_BYTES` (8) bytes, matching
the paper's observation that "as all instructions are 64-bits in length,
redundant ones can be skipped in the frontend of the pipeline by simply
adding eight to the program counter" (Section 4).

The opcode set is the subset of PTXPlus needed by the thirteen studied
workloads: integer/float ALU ops, transcendental SFU ops, predicate
set/select, typed loads and stores for the global and shared spaces, a
global atomic (to exercise DARSIE's load-invalidation rule), predicated
branches, ``bar.sync`` and ``exit``.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa.operands import MemRef, Operand, Predicate, Register

#: Size of every encoded instruction; PC advances in units of this.
INSTRUCTION_BYTES = 8


class Opcode(enum.Enum):
    """Base opcodes (type and comparison modifiers are carried separately)."""

    # Data movement / conversion.
    MOV = "mov"
    CVT = "cvt"
    SELP = "selp"
    # Integer & float arithmetic (ALU class).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAD = "mad"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    REM = "rem"
    # Long-latency transcendental / divide (SFU class).
    DIV = "div"
    RCP = "rcp"
    SQRT = "sqrt"
    EX2 = "ex2"
    LG2 = "lg2"
    SIN = "sin"
    COS = "cos"
    # Predicates.
    SETP = "setp"
    # Memory.
    LD = "ld"
    ST = "st"
    ATOM = "atom"
    # Control.
    BRA = "bra"
    BAR = "bar"
    EXIT = "exit"
    NOP = "nop"


class DType(enum.Enum):
    """Operation data type (``.u32`` / ``.s32`` / ``.f32`` suffixes)."""

    U32 = "u32"
    S32 = "s32"
    F32 = "f32"
    PRED = "pred"

    @property
    def is_float(self) -> bool:
        return self is DType.F32


class CmpOp(enum.Enum):
    """Comparison operators for ``setp``."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


#: Opcode groupings used by the timing model to pick a functional unit.
SFU_OPS = frozenset(
    {Opcode.DIV, Opcode.RCP, Opcode.SQRT, Opcode.EX2, Opcode.LG2, Opcode.SIN, Opcode.COS}
)
LOAD_OPS = frozenset({Opcode.LD})
STORE_OPS = frozenset({Opcode.ST})
MEMORY_OPS = frozenset({Opcode.LD, Opcode.ST, Opcode.ATOM})
BRANCH_OPS = frozenset({Opcode.BRA})
CONTROL_OPS = frozenset({Opcode.BRA, Opcode.BAR, Opcode.EXIT})
ALU_OPS = frozenset(
    {
        Opcode.MOV,
        Opcode.CVT,
        Opcode.SELP,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.MAD,
        Opcode.MIN,
        Opcode.MAX,
        Opcode.ABS,
        Opcode.NEG,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.NOT,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.REM,
        Opcode.SETP,
    }
)

#: Number of register source operands each opcode expects (memory and
#: control operands are validated separately by the assembler).
_ARITY = {
    Opcode.MOV: 1,
    Opcode.CVT: 1,
    Opcode.SELP: 3,
    Opcode.ADD: 2,
    Opcode.SUB: 2,
    Opcode.MUL: 2,
    Opcode.MAD: 3,
    Opcode.MIN: 2,
    Opcode.MAX: 2,
    Opcode.ABS: 1,
    Opcode.NEG: 1,
    Opcode.AND: 2,
    Opcode.OR: 2,
    Opcode.XOR: 2,
    Opcode.NOT: 1,
    Opcode.SHL: 2,
    Opcode.SHR: 2,
    Opcode.REM: 2,
    Opcode.DIV: 2,
    Opcode.RCP: 1,
    Opcode.SQRT: 1,
    Opcode.EX2: 1,
    Opcode.LG2: 1,
    Opcode.SIN: 1,
    Opcode.COS: 1,
    Opcode.SETP: 2,
    Opcode.LD: 0,
    Opcode.ST: 0,
    Opcode.ATOM: 1,
    Opcode.BRA: 0,
    Opcode.BAR: 0,
    Opcode.EXIT: 0,
    Opcode.NOP: 0,
}


def source_arity(opcode: Opcode) -> int:
    """Number of direct (non-memory) source operands ``opcode`` takes."""
    return _ARITY[opcode]


def stable_bank(key: Tuple[str, str], banks: int) -> int:
    """Map a scoreboard key to a register-file bank, deterministically.

    The builtin ``hash`` is randomized per process for strings, which
    made bank-conflict counters differ from run to run; CRC32 gives the
    same assignment in every interpreter.
    """
    return zlib.crc32(("%s:%s" % key).encode()) % banks


@dataclass
class Instruction:
    """One decoded 64-bit instruction.

    Attributes
    ----------
    pc:
        Byte address of the instruction (a multiple of 8).
    opcode / dtype / cmp:
        Operation, data type and (for ``setp``) comparison operator.
    dst:
        Destination register or predicate, or ``None``.
    srcs:
        Direct source operands in instruction order.
    mem:
        Memory operand for ``ld``/``st``/``atom``.
    target:
        Branch target label (``bra`` only); resolved to
        :attr:`target_pc` by the assembler.
    guard / guard_negated:
        Optional ``@$p`` / ``@!$p`` predication.
    mark:
        DARSIE redundancy marking attached by the compiler pass; one of
        the :class:`repro.core.taxonomy.Marking` values, stored loosely
        to keep this layer independent of the analysis layer.
    """

    pc: int
    opcode: Opcode
    dtype: DType = DType.S32
    cmp: Optional[CmpOp] = None
    dst: Optional[Operand] = None
    srcs: Tuple[Operand, ...] = ()
    mem: Optional[MemRef] = None
    target: Optional[str] = None
    target_pc: Optional[int] = None
    guard: Optional[Predicate] = None
    guard_negated: bool = False
    text: str = ""
    mark: object = None
    index: int = field(default=-1)

    def __post_init__(self) -> None:
        # Decode products are derived only from the opcode and operands,
        # neither of which is mutated after construction (the assembler
        # only back-patches ``index`` and ``target_pc``), so they are
        # computed once here instead of per simulated cycle.
        op = self.opcode
        self.is_branch = op in BRANCH_OPS
        self.is_load = op in LOAD_OPS
        self.is_store = op in STORE_OPS
        self.is_memory = op in MEMORY_OPS
        self.is_barrier = op is Opcode.BAR
        self.is_exit = op is Opcode.EXIT
        self.is_atomic = op is Opcode.ATOM
        self.uses_sfu = op in SFU_OPS
        self.src_regs = self._compute_source_registers()
        self.src_preds = self._compute_source_predicates()
        self.dst_reg = self.dst if isinstance(self.dst, Register) else None
        self.dst_pred = self.dst if isinstance(self.dst, Predicate) else None
        srcs = tuple(("r", r.name) for r in self.src_regs) + tuple(
            ("p", p.name) for p in self.src_preds
        )
        dests: Tuple[Tuple[str, str], ...] = ()
        if self.dst_reg is not None:
            dests += (("r", self.dst_reg.name),)
        if self.dst_pred is not None:
            dests += (("p", self.dst_pred.name),)
        self.sb_srcs = srcs
        self.sb_dests = dests
        # Primary destination key (register first, matching the DARSIE
        # rename unit's view of "the" written operand).
        self.dest_key: Optional[Tuple[str, str]] = dests[0] if dests else None
        self.hazard_keys = frozenset(srcs) | frozenset(dests)
        # Operand-collector reads per issue: register AND predicate
        # sources (matches the scoreboard source-key count).
        self.rf_read_count = len(srcs)
        # Lazily filled per rf_banks width; see :meth:`bank_info`.
        self._bank_info: Dict[int, Tuple[int, Tuple[int, ...]]] = {}

    def bank_info(self, rf_banks: int) -> Tuple[int, Tuple[int, ...]]:
        """Register-file bank picture for a ``rf_banks``-wide RF.

        Returns ``(conflicts, banks)`` where ``conflicts`` is the number
        of same-cycle operand-collector collisions among this
        instruction's register sources and ``banks`` is the bank index of
        each source operand.  Bank selection uses a stable CRC32-based
        hash so results are reproducible across processes (builtin
        ``hash`` is salted per interpreter for strings).
        """
        cached = self._bank_info.get(rf_banks)
        if cached is None:
            banks = tuple(stable_bank(k, rf_banks) for k in self.sb_srcs)
            conflicts = len(banks) - len(set(banks))
            cached = (conflicts, banks)
            self._bank_info[rf_banks] = cached
        return cached

    def source_registers(self) -> Tuple[Register, ...]:
        """All general registers read by this instruction.

        Includes address registers of a memory operand, the data sources
        of a store, and the guard predicate is *not* included (predicates
        live in a separate space; see :meth:`source_predicates`).
        """
        return self.src_regs

    def _compute_source_registers(self) -> Tuple[Register, ...]:
        regs = []
        for src in self.srcs:
            if isinstance(src, Register):
                regs.append(src)
        if self.mem is not None:
            regs.extend(self.mem.registers())
        return tuple(regs)

    def source_predicates(self) -> Tuple[Predicate, ...]:
        return self.src_preds

    def _compute_source_predicates(self) -> Tuple[Predicate, ...]:
        preds = [s for s in self.srcs if isinstance(s, Predicate)]
        if self.guard is not None:
            preds.append(self.guard)
        return tuple(preds)

    def dest_register(self) -> Optional[Register]:
        return self.dst_reg

    def dest_predicate(self) -> Optional[Predicate]:
        return self.dst_pred

    def __str__(self) -> str:
        if self.text:
            return self.text
        parts = []
        if self.guard is not None:
            bang = "!" if self.guard_negated else ""
            parts.append(f"@{bang}{self.guard}")
        name = self.opcode.value
        if self.cmp is not None:
            name += f".{self.cmp.value}"
        if self.opcode not in CONTROL_OPS and self.opcode is not Opcode.NOP:
            name += f".{self.dtype.value}"
        parts.append(name)
        ops = []
        if self.dst is not None and not (self.is_store or self.is_atomic):
            ops.append(str(self.dst))
        if self.is_store:
            ops.append(str(self.mem))
            ops.extend(str(s) for s in self.srcs)
        else:
            ops.extend(str(s) for s in self.srcs)
            if self.mem is not None:
                ops.append(str(self.mem))
        if self.target is not None:
            ops.append(self.target)
        return " ".join(parts) + (" " + ", ".join(ops) if ops else "")
