"""Operand model for the PTXPlus-like ISA.

Operands are small immutable value objects.  The assembler produces them;
the functional executor (:mod:`repro.simt.executor`) evaluates them; the
DARSIE compiler pass (:mod:`repro.core.compiler_pass`) walks them to
propagate redundancy classes.

The operand kinds mirror register-allocated PTXPlus:

``Register``
    A named general-purpose vector register, e.g. ``$r0`` or ``$ofs3``.
    Each warp owns a private 32-lane instance of every named register.
``Predicate``
    A named 1-bit-per-lane predicate register, e.g. ``$p0``.
``Immediate``
    An integer or float literal baked into the instruction.
``Special``
    A read-only intrinsic value: thread / block indices and dimensions
    (``tid.x``, ``ctaid.y``, ``ntid.x``, ...), ``laneid``, ``warpid`` and
    ``smem_base`` (the base of the TB's shared-memory allocation).
``Param``
    A kernel launch parameter (uniform across the grid), e.g.
    ``%param.width``.
``MemRef``
    A memory operand ``[base + offset]`` in a named address space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class MemSpace(enum.Enum):
    """Address spaces of the machine model."""

    GLOBAL = "global"
    SHARED = "shared"
    PARAM = "param"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Special register names understood by the executor.  The three counted
#: dimensions mirror CUDA's built-ins; DARSIE's analysis gives each a
#: distinct redundancy class (Section 4.2).
SPECIAL_NAMES = frozenset(
    {
        "tid.x",
        "tid.y",
        "tid.z",
        "ntid.x",
        "ntid.y",
        "ntid.z",
        "ctaid.x",
        "ctaid.y",
        "ctaid.z",
        "nctaid.x",
        "nctaid.y",
        "nctaid.z",
        "laneid",
        "warpid",
        "smem_base",
    }
)

#: Specials that are uniform across an entire threadblock.  These are the
#: intrinsics the paper marks *definitely redundant*: block indices, block
#: dimensions, grid dimensions and the shared-memory base (Section 4.2).
TB_UNIFORM_SPECIALS = frozenset(
    {
        "ntid.x",
        "ntid.y",
        "ntid.z",
        "ctaid.x",
        "ctaid.y",
        "ctaid.z",
        "nctaid.x",
        "nctaid.y",
        "nctaid.z",
        "smem_base",
    }
)

#: Specials that are *conditionally redundant*: their values repeat across
#: warps only when the TB dimensions meet the launch-time criterion.  The
#: paper limits the analysis to ``tid.x`` (Section 4.2); ``tid.y`` joins it
#: for 3D TBs, which none of the studied applications use.
CONDITIONALLY_REDUNDANT_SPECIALS = frozenset({"tid.x"})


@dataclass(frozen=True)
class Register:
    """A named general-purpose register, private to each warp."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class Predicate:
    """A named predicate register (one bit per lane)."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class Immediate:
    """A literal operand; ``value`` is an ``int`` or ``float``."""

    value: Union[int, float]

    def __str__(self) -> str:
        if isinstance(self.value, int):
            return hex(self.value) if abs(self.value) > 9 else str(self.value)
        return repr(self.value)

    @property
    def is_float(self) -> bool:
        return isinstance(self.value, float)


@dataclass(frozen=True)
class Special:
    """A read-only intrinsic register such as ``%tid.x``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in SPECIAL_NAMES:
            raise ValueError(f"unknown special register %{self.name}")

    def __str__(self) -> str:
        return f"%{self.name}"

    @property
    def is_tb_uniform(self) -> bool:
        """True when the value is identical for every thread in a TB."""
        return self.name in TB_UNIFORM_SPECIALS

    @property
    def is_conditionally_redundant(self) -> bool:
        """True for ``tid.x``, whose redundancy depends on TB sizing."""
        return self.name in CONDITIONALLY_REDUNDANT_SPECIALS


@dataclass(frozen=True)
class Param:
    """A kernel parameter operand, uniform across the whole grid."""

    name: str

    def __str__(self) -> str:
        return f"%param.{self.name}"


#: Anything that can appear as a direct (non-memory) source operand.
Scalar = Union[Register, Predicate, Immediate, Special, Param]


@dataclass(frozen=True)
class MemRef:
    """A memory operand ``[base (+ index) (+ offset)]``.

    ``base`` may be a register, special, param or immediate; ``index`` is
    an optional second register added to the base (common in PTXPlus
    shared-memory addressing such as ``s[$ofs3+0x10]``); ``offset`` is a
    constant byte displacement.
    """

    space: MemSpace
    base: Scalar
    offset: int = 0
    index: Union[Register, None] = None

    def __str__(self) -> str:
        parts = [str(self.base)]
        if self.index is not None:
            parts.append(str(self.index))
        if self.offset:
            parts.append(hex(self.offset))
        return f"[{' + '.join(parts)}]"

    def registers(self) -> tuple:
        """All register operands consumed when forming the address."""
        regs = []
        if isinstance(self.base, Register):
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return tuple(regs)


Operand = Union[Scalar, MemRef]
