"""PTXPlus-like instruction set architecture for the DARSIE reproduction.

The paper implements DARSIE inside GPGPU-Sim on *register-allocated
PTXPlus* code (Section 5).  This subpackage provides the equivalent
substrate: a small, explicit assembly language with named registers,
special registers (``%tid.x`` et al.), predicated branches and typed
memory operations, together with an assembler, a control-flow graph and a
64-bit instruction encoding that carries the redundancy hint bits of
Section 4.2.

Public entry points:

- :func:`repro.isa.assembler.assemble` — parse kernel assembly text into a
  :class:`repro.isa.program.Program`.
- :class:`repro.isa.program.Program` — instructions, labels, CFG and
  reconvergence points.
- :mod:`repro.isa.encoding` — pack/unpack instructions into the 64-bit
  machine form whose spare bit encodes TB-redundancy.
"""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import (
    ALU_OPS,
    BRANCH_OPS,
    INSTRUCTION_BYTES,
    Instruction,
    LOAD_OPS,
    MEMORY_OPS,
    Opcode,
    SFU_OPS,
    STORE_OPS,
)
from repro.isa.operands import (
    Immediate,
    MemRef,
    MemSpace,
    Operand,
    Param,
    Predicate,
    Register,
    Special,
)
from repro.isa.program import BasicBlock, Program

__all__ = [
    "AssemblyError",
    "assemble",
    "INSTRUCTION_BYTES",
    "ALU_OPS",
    "BRANCH_OPS",
    "LOAD_OPS",
    "MEMORY_OPS",
    "SFU_OPS",
    "STORE_OPS",
    "Instruction",
    "Opcode",
    "Immediate",
    "MemRef",
    "MemSpace",
    "Operand",
    "Param",
    "Predicate",
    "Register",
    "Special",
    "BasicBlock",
    "Program",
]
