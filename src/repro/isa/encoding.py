"""64-bit machine encoding with DARSIE redundancy hint bits.

Section 4.2 of the paper: the three-state ``<vector, conditionally
redundant, redundant>`` classification is encoded "in two bits of the
GPU's virtual ISA"; reverse-engineering of the 64-bit SASS encoding shows
"many unused bits", one (or two, if promotion is deferred past JIT) of
which carries the marking.  We reproduce that shape: every instruction
packs into one 64-bit word, two bits of which hold the redundancy hint.

Like a real machine encoding, operands wider than a field reference a
literal/operand pool emitted alongside the text segment (SASS uses a
constant bank for the same purpose).

Word layout (LSB first)::

    [ 0: 5]  opcode        (6 bits)
    [ 6: 7]  dtype         (2 bits)
    [ 8:10]  cmp           (3 bits, 0 = none)
    [11:12]  redundancy    (2 bits: 0 VEC, 1 CR, 2 DR)
    [13]     has guard
    [14]     guard negated
    [15]     has memory operand
    [16:23]  guard pool id
    [24:31]  dst pool id
    [32:39]  src0 pool id   -- or low 8 bits of branch-target word index
    [40:47]  src1 pool id   -- or high 8 bits of branch-target word index
    [48:55]  src2 pool id
    [56:63]  mem pool id
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.isa.instructions import CmpOp, DType, INSTRUCTION_BYTES, Instruction, Opcode
from repro.isa.operands import Operand
from repro.isa.program import Program

_OPCODES = list(Opcode)
_OPCODE_ID = {op: i for i, op in enumerate(_OPCODES)}
_DTYPES = list(DType)
_DTYPE_ID = {d: i for i, d in enumerate(_DTYPES)}
_CMPS = [None] + list(CmpOp)
_CMP_ID = {c: i for i, c in enumerate(_CMPS)}

#: Redundancy hint values (mirror ``repro.core.taxonomy.Marking``).  The
#: paper needs two bits for its three states; the fourth encoding is
#: used by this repository's 3D extension (tid.y-conditional).
HINT_VECTOR = 0
HINT_CONDITIONAL_Y = 1
HINT_CONDITIONAL = 2
HINT_REDUNDANT = 3

_NO_OPERAND = 0xFF
MAX_POOL_SIZE = 0xFF


class EncodingError(ValueError):
    """Raised when a program does not fit the encoding limits."""


@dataclass
class EncodedProgram:
    """A program lowered to 64-bit words plus its operand pool."""

    name: str
    words: List[int]
    pool: List[Operand]
    labels: Dict[str, int]
    params: tuple
    shared_words: int = 0

    def __len__(self) -> int:
        return len(self.words)

    def hint_of(self, pc: int) -> int:
        """The redundancy hint bits of the instruction at ``pc``."""
        return (self.words[pc // INSTRUCTION_BYTES] >> 11) & 0b11


class _Pool:
    def __init__(self) -> None:
        self.items: List[Operand] = []
        self._ids: Dict[Operand, int] = {}

    def intern(self, operand: Optional[Operand]) -> int:
        if operand is None:
            return _NO_OPERAND
        if operand not in self._ids:
            if len(self.items) >= MAX_POOL_SIZE:
                raise EncodingError("operand pool overflow (255 distinct operands)")
            self._ids[operand] = len(self.items)
            self.items.append(operand)
        return self._ids[operand]


def encode_instruction(inst: Instruction, pool: _Pool, hint: int = HINT_VECTOR) -> int:
    """Pack ``inst`` into a 64-bit word, interning operands into ``pool``."""
    if not 0 <= hint <= 3:
        raise EncodingError(f"invalid redundancy hint {hint}")
    word = _OPCODE_ID[inst.opcode]
    word |= _DTYPE_ID[inst.dtype] << 6
    word |= _CMP_ID[inst.cmp] << 8
    word |= hint << 11
    if inst.guard is not None:
        word |= 1 << 13
        if inst.guard_negated:
            word |= 1 << 14
    if inst.mem is not None:
        word |= 1 << 15
    word |= pool.intern(inst.guard) << 16
    word |= pool.intern(inst.dst) << 24
    if inst.is_branch:
        assert inst.target_pc is not None
        tgt = inst.target_pc // INSTRUCTION_BYTES
        if tgt > 0xFFFF:
            raise EncodingError("branch target out of range")
        word |= (tgt & 0xFF) << 32
        word |= ((tgt >> 8) & 0xFF) << 40
        word |= _NO_OPERAND << 48
    else:
        srcs = list(inst.srcs) + [None] * (3 - len(inst.srcs))
        if len(srcs) > 3:
            raise EncodingError("more than 3 source operands")
        word |= pool.intern(srcs[0]) << 32
        word |= pool.intern(srcs[1]) << 40
        word |= pool.intern(srcs[2]) << 48
    word |= pool.intern(inst.mem) << 56
    assert word < (1 << 64)
    return word


def encode_program(program: Program, markings=None) -> EncodedProgram:
    """Encode a program; ``markings`` maps PC → hint value (0/1/2)."""
    pool = _Pool()
    words = []
    for inst in program.instructions:
        hint = (markings or {}).get(inst.pc, HINT_VECTOR)
        words.append(encode_instruction(inst, pool, hint))
    return EncodedProgram(
        name=program.name,
        words=words,
        pool=pool.items,
        labels=dict(program.labels),
        params=program.params,
        shared_words=program.shared_words,
    )


def _pool_get(pool: List[Operand], idx: int) -> Optional[Operand]:
    return None if idx == _NO_OPERAND else pool[idx]


def decode_instruction(word: int, pc: int, pool: List[Operand]) -> Instruction:
    """Unpack one 64-bit word back into an :class:`Instruction`."""
    opcode = _OPCODES[word & 0x3F]
    dtype = _DTYPES[(word >> 6) & 0b11]
    cmp = _CMPS[(word >> 8) & 0b111]
    has_guard = bool(word & (1 << 13))
    guard_negated = bool(word & (1 << 14))
    guard = _pool_get(pool, (word >> 16) & 0xFF) if has_guard else None
    dst = _pool_get(pool, (word >> 24) & 0xFF)
    mem = _pool_get(pool, (word >> 56) & 0xFF) if word & (1 << 15) else None
    target_pc = None
    srcs: tuple = ()
    if opcode is Opcode.BRA:
        tgt = ((word >> 32) & 0xFF) | (((word >> 40) & 0xFF) << 8)
        target_pc = tgt * INSTRUCTION_BYTES
    else:
        collected = []
        for shift in (32, 40, 48):
            operand = _pool_get(pool, (word >> shift) & 0xFF)
            if operand is not None:
                collected.append(operand)
        srcs = tuple(collected)
    return Instruction(
        pc=pc,
        opcode=opcode,
        dtype=dtype,
        cmp=cmp,
        dst=dst,
        srcs=srcs,
        mem=mem,
        target_pc=target_pc,
        guard=guard,
        guard_negated=guard_negated,
    )


def decode_program(encoded: EncodedProgram) -> Program:
    """Decode back to a :class:`Program` (labels regenerated from targets)."""
    instructions = []
    for i, word in enumerate(encoded.words):
        inst = decode_instruction(word, i * INSTRUCTION_BYTES, encoded.pool)
        inst.index = i
        instructions.append(inst)
    labels = dict(encoded.labels)
    pc_to_label = {v: k for k, v in labels.items()}
    for inst in instructions:
        if inst.target_pc is not None:
            if inst.target_pc not in pc_to_label:
                lbl = f"L{inst.target_pc:#x}"
                labels[lbl] = inst.target_pc
                pc_to_label[inst.target_pc] = lbl
            inst.target = pc_to_label[inst.target_pc]
    return Program(
        name=encoded.name,
        instructions=instructions,
        labels=labels,
        params=encoded.params,
        shared_words=encoded.shared_words,
    )
