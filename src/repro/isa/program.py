"""Program representation: instruction list, basic blocks, CFG.

The CFG serves two consumers:

- the SIMT executor needs, for every (potentially divergent) branch, the
  *reconvergence PC* — the immediate post-dominator of the branch — to
  drive the per-warp SIMT reconvergence stack;
- the DARSIE compiler pass propagates redundancy classes over the CFG to
  a fixpoint (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.isa.instructions import INSTRUCTION_BYTES, Instruction

#: Virtual CFG node representing kernel completion.
EXIT_NODE = -1


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of instructions."""

    index: int
    start_pc: int
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def end_pc(self) -> int:
        return self.instructions[-1].pc

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


class Program:
    """An assembled kernel.

    Parameters
    ----------
    name:
        Kernel name from the ``.kernel`` directive.
    instructions:
        Decoded instructions in PC order (PC = index * 8).
    labels:
        Label name → PC map.
    params:
        Declared kernel parameter names, in declaration order.
    shared_words:
        Statically allocated shared memory size in 32-bit words.
    """

    def __init__(
        self,
        name: str,
        instructions: List[Instruction],
        labels: Dict[str, int],
        params: Tuple[str, ...] = (),
        shared_words: int = 0,
    ):
        self.name = name
        self.instructions = instructions
        self.labels = dict(labels)
        self.params = tuple(params)
        self.shared_words = shared_words
        self._by_pc = {inst.pc: inst for inst in instructions}
        self.blocks: List[BasicBlock] = []
        self._block_of_pc: Dict[int, int] = {}
        self.cfg = nx.DiGraph()
        self._reconvergence: Dict[int, Optional[int]] = {}
        self._build_blocks()
        self._build_cfg()
        self._compute_reconvergence()

    # -- basic queries ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def at(self, pc: int) -> Instruction:
        """The instruction at byte address ``pc``."""
        try:
            return self._by_pc[pc]
        except KeyError:
            raise KeyError(f"no instruction at pc {pc:#x}") from None

    @property
    def end_pc(self) -> int:
        """One past the last valid PC."""
        return len(self.instructions) * INSTRUCTION_BYTES

    def block_of(self, pc: int) -> BasicBlock:
        """The basic block containing ``pc``."""
        return self.blocks[self._block_of_pc[pc]]

    def reconvergence_pc(self, branch_pc: int) -> Optional[int]:
        """Reconvergence point (immediate post-dominator) for a branch.

        Returns ``None`` when the paths only rejoin at kernel exit.
        """
        return self._reconvergence[branch_pc]

    def branch_pcs(self) -> List[int]:
        return [inst.pc for inst in self.instructions if inst.is_branch]

    # -- construction ----------------------------------------------------

    def _build_blocks(self) -> None:
        leaders = {0}
        for inst in self.instructions:
            if inst.is_branch:
                assert inst.target_pc is not None
                leaders.add(inst.target_pc)
                nxt = inst.pc + INSTRUCTION_BYTES
                if nxt < self.end_pc:
                    leaders.add(nxt)
            elif inst.is_exit:
                nxt = inst.pc + INSTRUCTION_BYTES
                if nxt < self.end_pc:
                    leaders.add(nxt)
        ordered = sorted(leaders)
        for bidx, start in enumerate(ordered):
            stop = ordered[bidx + 1] if bidx + 1 < len(ordered) else self.end_pc
            block = BasicBlock(index=bidx, start_pc=start)
            pc = start
            while pc < stop:
                block.instructions.append(self._by_pc[pc])
                self._block_of_pc[pc] = bidx
                pc += INSTRUCTION_BYTES
            self.blocks.append(block)

    def _build_cfg(self) -> None:
        for block in self.blocks:
            self.cfg.add_node(block.index)
        self.cfg.add_node(EXIT_NODE)
        for block in self.blocks:
            term = block.terminator
            if term.is_exit and term.guard is None:
                self.cfg.add_edge(block.index, EXIT_NODE)
                continue
            if term.is_branch:
                target_block = self._block_of_pc[term.target_pc]
                self.cfg.add_edge(block.index, target_block)
                if term.guard is None:
                    continue  # unconditional branch: no fall-through
            # Fall-through edge (also for predicated exit / branch).
            nxt = term.pc + INSTRUCTION_BYTES
            if nxt < self.end_pc:
                self.cfg.add_edge(block.index, self._block_of_pc[nxt])
            else:
                self.cfg.add_edge(block.index, EXIT_NODE)

    def _compute_reconvergence(self) -> None:
        """Immediate post-dominator of each branch block.

        Post-dominators are dominators of the reversed CFG rooted at the
        virtual exit.  Blocks unreachable from entry keep reconvergence
        at kernel exit.
        """
        reverse = self.cfg.reverse(copy=True)
        ipdom = nx.immediate_dominators(reverse, EXIT_NODE)
        for inst in self.instructions:
            if not inst.is_branch:
                continue
            block = self._block_of_pc[inst.pc]
            node = ipdom.get(block)
            if node is None or node == EXIT_NODE or node == block:
                self._reconvergence[inst.pc] = None
            else:
                self._reconvergence[inst.pc] = self.blocks[node].start_pc

    # -- pretty printing ---------------------------------------------------

    def listing(self, annotate=None) -> str:
        """Disassembly listing; ``annotate(inst) -> str`` adds a column."""
        pc_to_label = {pc: lbl for lbl, pc in self.labels.items()}
        lines = [f".kernel {self.name}"]
        for pname in self.params:
            lines.append(f".param {pname}")
        if self.shared_words:
            lines.append(f".shared {self.shared_words}")
        for inst in self.instructions:
            if inst.pc in pc_to_label:
                lines.append(f"{pc_to_label[inst.pc]}:")
            prefix = f"  {annotate(inst):>4} " if annotate else "  "
            lines.append(f"{prefix}{inst.pc:#06x}  {inst}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Program({self.name!r}, {len(self.instructions)} insns, {len(self.blocks)} blocks)"
