"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro figure8 [--scale small] [--apps MM,LIB]
    python -m repro all --scale tiny --jobs 4
    python -m repro figure8 --jobs 4 --no-cache
    python -m repro run MM --config DARSIE --trace
    python -m repro lint [MM,LIB] [--strict]
    python -m repro soundness --scale tiny
    python -m repro bench --scale small --out BENCH_timing.json
    python -m repro bench --scale tiny --baseline benchmarks/BENCH_baseline_tiny.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.harness import experiments, parallel
from repro.workloads import ALL_ABBRS

#: name -> (callable, takes_scale, takes_abbrs)
EXPERIMENTS = {
    "figure1": (experiments.figure1, True, True),
    "figure2": (experiments.figure2, True, True),
    "figure6": (experiments.figure6, True, False),
    "figure8": (experiments.figure8, True, True),
    "figure9": (experiments.figure9, True, False),
    "figure10": (experiments.figure10, True, False),
    "figure11": (experiments.figure11, True, True),
    "figure12": (experiments.figure12, True, True),
    "table1": (experiments.table1, False, False),
    "table2": (experiments.table2, False, False),
    "table3": (experiments.table3, False, False),
    "area": (experiments.area_estimate, False, False),
    "survey": (experiments.survey, False, False),
}


def run_one(name: str, scale: str, abbrs) -> None:
    fn, takes_scale, takes_abbrs = EXPERIMENTS[name]
    kwargs = {}
    if takes_scale:
        kwargs["scale"] = scale
    if takes_abbrs and abbrs:
        kwargs["abbrs"] = abbrs
    # perf_counter: monotonic, unlike time.time() under clock adjustment
    start = time.perf_counter()
    result = fn(**kwargs)
    text = result if isinstance(result, str) else result.render()
    print(text)
    stats = getattr(result, "sweep_stats", None)
    if stats is not None:
        print(f"\n{stats.render()}")
    print(f"\n[{name} regenerated in {time.perf_counter() - start:.1f}s]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from the DARSIE paper (ASPLOS 2020).",
    )
    parser.add_argument("experiment",
                        choices=list(EXPERIMENTS)
                        + ["list", "all", "run", "lint", "soundness", "bench"])
    parser.add_argument("workload", nargs="?", default=None,
                        help="for `run`: a Table 1 abbreviation, e.g. MM; "
                             "for `lint`: comma-separated abbreviations (default: all)")
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "medium"],
                        help="workload problem size (default: small)")
    parser.add_argument("--apps", default=None,
                        help="comma-separated Table 1 abbreviations (default: all)")
    parser.add_argument("--config", default="DARSIE",
                        help="for `run`: BASE / UV / DAC-IDEAL / DARSIE / variants")
    parser.add_argument("--trace", action="store_true",
                        help="for `run`: print a pipeline trace of the first cycles")
    parser.add_argument("--json", action="store_true",
                        help="for `run`: dump the result counters as JSON")
    parser.add_argument("--jobs", type=int, metavar="N",
                        default=int(os.environ.get("REPRO_JOBS", "1") or 1),
                        help="fan (workload, config) runs across N worker "
                             "processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the results/.cache "
                             "result cache")
    parser.add_argument("--clear-cache", action="store_true",
                        help="delete all cached results before running")
    parser.add_argument("--strict", action="store_true",
                        help="for `lint`: treat warnings as failures too")
    parser.add_argument("--repeats", type=int, default=2, metavar="N",
                        help="for `bench`: timing repeats per entry (default: 2)")
    parser.add_argument("--out", default="BENCH_timing.json", metavar="PATH",
                        help="for `bench`: where to write the report "
                             "(default: BENCH_timing.json)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="for `bench`: baseline report to gate against")
    parser.add_argument("--tolerance", type=float, default=None, metavar="X",
                        help="for `bench`: fail when more than X times slower "
                             "than the baseline (default: 2.0)")
    args = parser.parse_args(argv)

    parallel.configure(jobs=args.jobs, use_cache=not args.no_cache)
    if args.clear_cache:
        removed = parallel.clear_cache()
        print(f"[cache] removed {removed} cached result(s)")

    if args.experiment == "run":
        return run_workload(parser, args)

    if args.experiment == "lint":
        return run_lint(parser, args)

    if args.experiment == "soundness":
        return run_soundness(parser, args)

    if args.experiment == "bench":
        return run_bench_cmd(parser, args)

    if args.experiment == "list":
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    abbrs = None
    if args.apps:
        abbrs = tuple(a.strip().upper() for a in args.apps.split(","))
        unknown = set(abbrs) - set(ALL_ABBRS)
        if unknown:
            parser.error(f"unknown apps: {sorted(unknown)}; known: {ALL_ABBRS}")

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_one(name, args.scale, abbrs)
        print()
    return 0


def _resolve_abbrs(parser, args):
    """Kernel selection for `lint`/`soundness`: positional, --apps, or all."""
    spec = args.workload or args.apps
    if not spec:
        return ALL_ABBRS
    abbrs = tuple(a.strip().upper() for a in spec.split(","))
    unknown = set(abbrs) - set(ALL_ABBRS)
    if unknown:
        parser.error(f"unknown apps: {sorted(unknown)}; known: {ALL_ABBRS}")
    return abbrs


def run_lint(parser, args) -> int:
    """`python -m repro lint [ABBR,ABBR,...] [--scale S] [--strict]`."""
    from repro.staticlib import lint_workload
    from repro.workloads import build_workload

    abbrs = _resolve_abbrs(parser, args)
    errors = warnings = 0
    for abbr in abbrs:
        report = lint_workload(build_workload(abbr, args.scale))
        errors += len(report.errors)
        warnings += len(report.warnings)
        print(f"{abbr:>8}: {report.render()}")
    failed = errors or (args.strict and warnings)
    print(f"\nlint: {len(abbrs)} kernel(s), {errors} error(s), {warnings} warning(s)"
          + (" [strict]" if args.strict else ""))
    return 1 if failed else 0


def run_soundness(parser, args) -> int:
    """`python -m repro soundness [--scale S] [--apps ABBR,...]`."""
    from repro.staticlib import audit_all

    abbrs = _resolve_abbrs(parser, args)
    report = audit_all(scale=args.scale, abbrs=abbrs)
    print(report.render())
    return 0 if report.ok else 1


def run_bench_cmd(parser, args) -> int:
    """`python -m repro bench [--scale S] [--apps ...] [--repeats N]
    [--out PATH] [--baseline PATH] [--tolerance X]`."""
    from repro.harness import bench

    abbrs = _resolve_abbrs(parser, args)
    report = bench.run_bench(
        scale=args.scale,
        abbrs=abbrs,
        repeats=args.repeats,
        progress=lambda e: print(
            f"  {e.abbr}/{e.config}: {e.wall_s_min:.3f}s ({e.cycles} cycles)",
            flush=True,
        ),
    )
    print()
    print(report.render())
    report.write(args.out)
    print(f"\n[bench report written to {args.out}]")
    if args.baseline is None:
        return 0
    baseline = bench.BenchReport.load(args.baseline)
    tolerance = args.tolerance if args.tolerance is not None else bench.DEFAULT_TOLERANCE
    outcome = bench.compare(report, baseline, tolerance=tolerance)
    print(outcome.render(tolerance))
    return 0 if outcome.ok else 1


def run_workload(parser, args) -> int:
    """`python -m repro run ABBR --config NAME [--trace] [--json]`."""
    from repro.harness.runner import WorkloadRunner
    from repro.timing import PipelineTrace
    from repro.timing.gpu import GPU
    from repro.workloads import build_workload

    if not args.workload or args.workload.upper() not in ALL_ABBRS:
        parser.error(f"run needs a workload from {ALL_ABBRS}")
    abbr = args.workload.upper()
    runner = WorkloadRunner(build_workload(abbr, args.scale))
    base = runner.run("BASE")
    res = runner.run(args.config)
    print(f"{abbr} [{args.scale}] under {args.config}:")
    print(f"  cycles  : {res.cycles} (BASE {base.cycles}, "
          f"speedup {base.cycles / res.cycles:.2f}x)")
    print(f"  executed: {res.stats.instructions_executed}  "
          f"skipped: {res.stats.instructions_skipped}  "
          f"eliminated: {res.stats.executions_eliminated}")
    print(f"  energy  : {res.energy_pj / 1e6:.2f} uJ "
          f"({runner.energy_reduction(args.config):.1%} below BASE)")
    if args.json:
        print(res.sim.to_json(indent=2))
    if args.trace:
        # Re-run with the tracer attached (traces are not cached).
        mem, params = runner.workload.fresh()
        gpu = GPU(runner.workload.program, runner.workload.launch, mem,
                  params=params, config=runner.gpu_config,
                  frontend_factory=runner._frontend_factory(args.config))
        trace = PipelineTrace()
        gpu.attach_trace(trace)
        gpu.run()
        print()
        print(trace.render(max_cycles=110, max_warps=10))
    return 0


if __name__ == "__main__":
    sys.exit(main())
