"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro figure8 [--scale small] [--apps MM,LIB]
    python -m repro figure8 --scale tiny --set gpu.l1_lines=512
    python -m repro all --scale tiny --jobs 4
    python -m repro figure8 --jobs 4 --no-cache
    python -m repro run MM --config DARSIE --set darsie.skip_ports=4 --trace
    python -m repro sweep darsie.skip_ports --values 1,2,4,8 --apps MM
    python -m repro lint [MM,LIB] [--strict] [--format json] [--melded]
    python -m repro soundness --scale tiny
    python -m repro meld-verify --scale tiny
    python -m repro compare-techniques --scale tiny
    python -m repro bench --scale small --out BENCH_timing.json
    python -m repro bench --scale tiny --baseline benchmarks/BENCH_baseline_tiny.json
    python -m repro config-check
    python -m repro chaos --seed 0
    python -m repro figure8 --timeout 120 --max-retries 2 --resume sweeps/fig8.jsonl
    python -m repro serve --port 8712 --jobs 4 --queue-limit 64
    python -m repro loadtest --duration 10 --concurrency 32 --check

Experiment names and their accepted arguments are derived from
:data:`repro.harness.experiments.EXPERIMENT_REGISTRY` — a driver that
declares ``scale`` / ``abbrs`` / ``gpu_config`` parameters receives
them; there is no dispatch table to keep in sync here.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time

from repro.config import ConfigError, RunConfig, apply_overrides, parse_overrides
from repro.harness import parallel
from repro.harness.experiments import EXPERIMENT_REGISTRY, ablation_sweep
from repro.workloads import ALL_ABBRS, EXTENDED_ABBRS

COMMANDS = ["list", "all", "run", "sweep", "lint", "soundness", "meld-verify", "bench",
            "config-check", "chaos", "serve", "loadtest", "fuzz"]

#: Extra keys commands may stage for the --stats-dump payload (written in
#: main()'s finally, which would otherwise overwrite a command's dump).
_EXTRA_DUMP: dict = {}


def run_one(name: str, scale: str, abbrs, gpu_config=None, parser=None) -> None:
    fn = EXPERIMENT_REGISTRY[name]
    params = inspect.signature(fn).parameters
    kwargs = {}
    if "scale" in params:
        kwargs["scale"] = scale
    if "abbrs" in params and abbrs:
        kwargs["abbrs"] = abbrs
    if gpu_config is not None:
        if "gpu_config" not in params:
            message = f"{name} does not take a GPU configuration (gpu.* override)"
            if parser is not None:
                parser.error(message)
            raise ConfigError(message)
        kwargs["gpu_config"] = gpu_config
    # perf_counter: monotonic, unlike time.time() under clock adjustment
    start = time.perf_counter()
    result = fn(**kwargs)
    text = result if isinstance(result, str) else result.render()
    print(text)
    stats = getattr(result, "sweep_stats", None)
    if stats is not None:
        print(f"\n{stats.render()}")
    print(f"\n[{name} regenerated in {time.perf_counter() - start:.1f}s]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from the DARSIE paper (ASPLOS 2020).",
    )
    parser.add_argument("experiment", choices=list(EXPERIMENT_REGISTRY) + COMMANDS)
    parser.add_argument("workload", nargs="?", default=None,
                        help="for `run`: a Table 1 abbreviation, e.g. MM; "
                             "for `sweep`: a dotted config field, e.g. darsie.skip_ports; "
                             "for `lint`: comma-separated abbreviations (default: all)")
    parser.add_argument("--scale", default=None, choices=["tiny", "small", "medium"],
                        help="workload problem size (default: small; tiny for chaos)")
    parser.add_argument("--apps", default=None,
                        help="comma-separated Table 1 abbreviations (default: all)")
    parser.add_argument("--config", default="DARSIE",
                        help="for `run`: BASE / UV / DAC-IDEAL / DARSIE / variants")
    parser.add_argument("--set", dest="overrides", action="append", default=[],
                        metavar="PATH=VALUE",
                        help="dotted-path config override, e.g. gpu.l1_lines=512 "
                             "or darsie.skip_ports=4 (repeatable)")
    parser.add_argument("--values", default=None, metavar="V1,V2,...",
                        help="for `sweep`: comma-separated values of the swept field")
    parser.add_argument("--trace", action="store_true",
                        help="for `run`: print a pipeline trace of the first cycles")
    parser.add_argument("--pipeline-trace", default=None, metavar="PATH",
                        dest="pipeline_trace",
                        help="for `run`: dump per-cycle per-stage occupancy "
                             "as JSONL to PATH")
    parser.add_argument("--json", action="store_true",
                        help="for `run`: dump the result counters as JSON")
    parser.add_argument("--jobs", type=int, metavar="N",
                        default=int(os.environ.get("REPRO_JOBS", "1") or 1),
                        help="fan (workload, config) runs across N worker "
                             "processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the results/.cache "
                             "result cache")
    parser.add_argument("--clear-cache", action="store_true",
                        help="delete all cached results before running")
    parser.add_argument("--strict", action="store_true",
                        help="for `lint`: treat warnings as failures too")
    parser.add_argument("--format", dest="output_format", default="text",
                        choices=["text", "json"],
                        help="for `lint`: report format (default: text)")
    parser.add_argument("--melded", action="store_true",
                        help="for `lint`: lint each kernel after the "
                             "control-flow melding transform as well")
    parser.add_argument("--repeats", type=int, default=2, metavar="N",
                        help="for `bench`: timing repeats per entry (default: 2)")
    parser.add_argument("--out", default="BENCH_timing.json", metavar="PATH",
                        help="for `bench`: where to write the report "
                             "(default: BENCH_timing.json)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="for `bench`: baseline report to gate against")
    parser.add_argument("--tolerance", type=float, default=None, metavar="X",
                        help="for `bench`: fail when more than X times slower "
                             "than the baseline (default: 2.0)")
    parser.add_argument("--timeout", type=float, default=0.0, metavar="S",
                        help="per-spec wall-clock timeout in seconds; needs "
                             "--jobs > 1 to be enforceable (default: off)")
    parser.add_argument("--max-retries", type=int, default=0, metavar="N",
                        help="retry transient/timeout/crash failures up to N "
                             "times per spec (default: 0)")
    parser.add_argument("--resume", default=None, metavar="PATH",
                        help="sweep journal: skip specs already completed in a "
                             "previous (possibly killed) run, append new ones")
    parser.add_argument("--checkpoint-interval", type=int, default=0, metavar="N",
                        help="write a crash-safe simulation checkpoint every N "
                             "cycles; killed/timed-out runs resume from the "
                             "newest checkpoint on retry (default: off)")
    parser.add_argument("--max-cycles", type=int, default=0, metavar="N",
                        help="abort any simulation that exceeds N cycles with a "
                             "DeadlockError and diagnostic dump (default: the "
                             "GPU config's built-in limit)")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="for `chaos`/`fuzz`: campaign seed (default: 0)")
    parser.add_argument("--budget", type=int, default=200, metavar="M",
                        help="for `fuzz`: number of random kernels to generate "
                             "(default: 200)")
    parser.add_argument("--corpus", default=None, metavar="DIR",
                        help="for `fuzz`: corpus directory to replay and save "
                             "shrunk failures into (default: tests/corpus)")
    parser.add_argument("--no-save", action="store_true",
                        help="for `fuzz`: do not write shrunk failures to the "
                             "corpus directory")
    parser.add_argument("--workdir", default=None, metavar="DIR",
                        help="for `chaos`/`loadtest`: persistent working "
                             "directory for the cache + journal (default: a "
                             "temp dir; CI keeps this for failure artifacts)")
    parser.add_argument("--stats-dump", default=None, metavar="PATH",
                        help="write the final sweep stats as JSON on exit "
                             "(CI uploads this when a smoke job fails)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="for `serve`: bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None, metavar="N",
                        help="for `serve`: TCP port; 0 picks an ephemeral "
                             "port (default: 8712)")
    parser.add_argument("--port-file", default=None, metavar="PATH",
                        help="for `serve`: write the bound port here once "
                             "listening (ephemeral-port scripting)")
    parser.add_argument("--queue-limit", type=int, default=64, metavar="N",
                        help="for `serve`/`loadtest`: max distinct configs "
                             "pending simulation before 429 (default: 64)")
    parser.add_argument("--url", default=None, metavar="URL",
                        help="for `loadtest`: target server (default: spawn "
                             "an in-process server on an ephemeral port)")
    parser.add_argument("--duration", type=float, default=10.0, metavar="S",
                        help="for `loadtest`: timed-phase length (default: 10)")
    parser.add_argument("--concurrency", type=int, default=32, metavar="N",
                        help="for `loadtest`: concurrent client connections "
                             "(default: 32)")
    parser.add_argument("--configs", default=None, metavar="C1,C2,...",
                        help="for `loadtest`: variant mix (default: BASE,DARSIE)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="for `loadtest`: write the JSON report here")
    parser.add_argument("--check", action="store_true",
                        help="for `loadtest`: fail unless hits were served, "
                             "nothing 5xx'd and duplicate requests coalesced")
    parser.add_argument("--min-rps", type=float, default=0.0, metavar="X",
                        help="for `loadtest --check`: also require at least "
                             "X req/s (default: off)")
    args = parser.parse_args(argv)
    if args.scale is None:
        args.scale = (
            "tiny" if args.experiment in ("chaos", "loadtest", "meld-verify") else "small"
        )

    try:
        overrides = parse_overrides(args.overrides)
    except ConfigError as exc:
        parser.error(str(exc))

    parallel.configure(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        resume=args.resume,
        checkpoint_interval_cycles=args.checkpoint_interval,
        max_cycles=args.max_cycles,
    )
    if args.clear_cache:
        removed = parallel.clear_cache()
        print(f"[cache] removed {removed} cached result(s)")

    try:
        return _dispatch(parser, args, overrides)
    finally:
        if args.stats_dump:
            _write_stats_dump(args.stats_dump)


def _write_stats_dump(path: str) -> None:
    """Persist the last sweep's counters (a CI failure artifact)."""
    import json

    stats = parallel.last_sweep_stats()
    payload = {"last_sweep": stats.to_dict() if stats is not None else None}
    payload.update(_EXTRA_DUMP)
    try:
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError as exc:
        print(f"[stats-dump] could not write {path}: {exc}", file=sys.stderr)


def _dispatch(parser, args, overrides) -> int:
    if args.experiment == "run":
        return run_workload(parser, args, overrides)

    if args.experiment == "sweep":
        return run_sweep(parser, args, overrides)

    if args.experiment == "lint":
        return run_lint(parser, args)

    if args.experiment == "soundness":
        return run_soundness(parser, args)

    if args.experiment == "meld-verify":
        return run_meld_verify(parser, args)

    if args.experiment == "bench":
        return run_bench_cmd(parser, args, overrides)

    if args.experiment == "config-check":
        return run_config_check(parser, args)

    if args.experiment == "chaos":
        return run_chaos(parser, args)

    if args.experiment == "serve":
        return run_serve(parser, args)

    if args.experiment == "loadtest":
        return run_loadtest_cmd(parser, args)

    if args.experiment == "fuzz":
        return run_fuzz(parser, args)

    if args.experiment == "list":
        return run_list()

    # Experiment drivers take a whole-machine GPU config, not per-run
    # frontend knobs, so only gpu.* overrides make sense here; `run` and
    # `sweep` accept the full override surface.
    gpu_config = None
    if overrides:
        non_gpu = sorted(p for p in overrides if not p.startswith("gpu."))
        if non_gpu:
            parser.error(
                f"experiment drivers only accept gpu.* overrides; got {non_gpu} "
                "(use `run` or `sweep` for frontend/variant overrides)"
            )
        gpu_config = apply_overrides(RunConfig(abbr="MM"), overrides).gpu

    abbrs = None
    if args.apps:
        abbrs = tuple(a.strip().upper() for a in args.apps.split(","))
        unknown = set(abbrs) - set(EXTENDED_ABBRS)
        if unknown:
            parser.error(f"unknown apps: {sorted(unknown)}; known: {EXTENDED_ABBRS}")

    names = list(EXPERIMENT_REGISTRY) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_one(name, args.scale, abbrs, gpu_config=gpu_config, parser=parser)
        print()
    return 0


def run_list() -> int:
    from repro.variants import REGISTRY

    print("available experiments:")
    for name in EXPERIMENT_REGISTRY:
        print(f"  {name}")
    print("\nregistered variants (for `run --config` / sweeps):")
    for variant in REGISTRY:
        tags = ",".join(variant.tags)
        print(f"  {variant.name:<22} [{tags}] {variant.description}")
    return 0


def _resolve_abbrs(parser, args, default=ALL_ABBRS):
    """Kernel selection for `lint`/`soundness`/...: positional, --apps,
    or the command's default set."""
    spec = args.workload or args.apps
    if not spec:
        return default
    abbrs = tuple(a.strip().upper() for a in spec.split(","))
    unknown = set(abbrs) - set(EXTENDED_ABBRS)
    if unknown:
        parser.error(f"unknown apps: {sorted(unknown)}; known: {EXTENDED_ABBRS}")
    return abbrs


def run_lint(parser, args) -> int:
    """`python -m repro lint [ABBR,...] [--scale S] [--strict]
    [--format json] [--melded]`."""
    import json

    from repro.staticlib import lint_program, lint_workload
    from repro.workloads import build_workload

    abbrs = _resolve_abbrs(parser, args, default=EXTENDED_ABBRS)
    reports = []   # (abbr, melded?, LintReport)
    for abbr in abbrs:
        workload = build_workload(abbr, args.scale)
        reports.append((abbr, False, lint_workload(workload)))
        if args.melded:
            from repro.staticlib.passes import darm_ideal_pass

            melded = darm_ideal_pass(workload.program)
            reports.append((abbr, True, lint_program(melded, launch=workload.launch)))
    errors = sum(len(r.errors) for _, _, r in reports)
    warnings = sum(len(r.warnings) for _, _, r in reports)
    failed = bool(errors or (args.strict and warnings))

    if args.output_format == "json":
        payload = {
            "kernels": [
                {
                    "abbr": abbr,
                    "scale": args.scale,
                    "melded": melded,
                    "findings": [
                        {
                            "rule": f.rule,
                            "severity": f.severity,
                            "pc": f.pc,
                            "message": f.message,
                        }
                        for f in report.findings
                    ],
                }
                for abbr, melded, report in reports
            ],
            "errors": errors,
            "warnings": warnings,
            "strict": args.strict,
            "failed": failed,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for abbr, melded, report in reports:
            tag = f"{abbr}+meld" if melded else abbr
            print(f"{tag:>13}: {report.render()}")
        print(f"\nlint: {len(reports)} kernel(s), {errors} error(s), "
              f"{warnings} warning(s)" + (" [strict]" if args.strict else ""))
    return 1 if failed else 0


def run_soundness(parser, args) -> int:
    """`python -m repro soundness [--scale S] [--apps ABBR,...]`."""
    from repro.staticlib import audit_all

    abbrs = _resolve_abbrs(parser, args, default=EXTENDED_ABBRS)
    report = audit_all(scale=args.scale, abbrs=abbrs)
    print(report.render())
    return 0 if report.ok else 1


def run_meld_verify(parser, args) -> int:
    """`python -m repro meld-verify [--scale S] [--apps ABBR,...]
    [--workdir DIR] [--stats-dump PATH]`.

    Differentially verifies the control-flow melding transform: every
    selected workload runs functionally with and without melding and
    must produce bit-identical memory and register state (plus a
    linter-clean melded program).  Exits nonzero on any mismatch.
    """
    import json
    import os as _os

    from repro.staticlib.verify import verify_all

    abbrs = _resolve_abbrs(parser, args, default=EXTENDED_ABBRS)
    journal = None
    if args.workdir:
        _os.makedirs(args.workdir, exist_ok=True)
        journal = open(_os.path.join(args.workdir, "journal.jsonl"), "w")
    start = time.perf_counter()

    def progress(check):
        print(f"  {check.summary()}", flush=True)
        if journal is not None:
            journal.write(json.dumps(check.to_dict(), sort_keys=True) + "\n")
            journal.flush()

    try:
        report = verify_all(scale=args.scale, abbrs=abbrs, progress=progress)
    finally:
        if journal is not None:
            journal.close()
    _EXTRA_DUMP["meld_verify"] = report.to_dict()
    print()
    print(report.render())
    print(f"\n[meld-verify done in {time.perf_counter() - start:.1f}s]")
    return 0 if report.ok else 1


def run_bench_cmd(parser, args, overrides) -> int:
    """`python -m repro bench [--scale S] [--apps ...] [--repeats N]
    [--out PATH] [--baseline PATH] [--tolerance X]`."""
    from repro.harness import bench

    gpu_config = None
    if overrides:
        non_gpu = sorted(p for p in overrides if not p.startswith("gpu."))
        if non_gpu:
            parser.error(f"bench only accepts gpu.* overrides; got {non_gpu}")
        gpu_config = apply_overrides(RunConfig(abbr="MM"), overrides).gpu
    abbrs = _resolve_abbrs(parser, args)
    report = bench.run_bench(
        scale=args.scale,
        abbrs=abbrs,
        repeats=args.repeats,
        gpu_config=gpu_config,
        max_retries=args.max_retries,
        progress=lambda e: print(
            f"  {e.abbr}/{e.config}: {e.wall_s_min:.3f}s ({e.cycles} cycles)",
            flush=True,
        ),
    )
    print()
    print(report.render())
    report.write(args.out)
    print(f"\n[bench report written to {args.out}]")
    if args.baseline is None:
        return 0
    baseline = bench.BenchReport.load(args.baseline)
    tolerance = args.tolerance if args.tolerance is not None else bench.DEFAULT_TOLERANCE
    outcome = bench.compare(report, baseline, tolerance=tolerance)
    print(outcome.render(tolerance))
    return 0 if outcome.ok else 1


def run_chaos(parser, args) -> int:
    """`python -m repro chaos [--seed N] [--scale S] [--apps ...] [--jobs N]`."""
    from repro.harness.chaos import chaos_soak

    abbrs = _resolve_abbrs(parser, args)
    if args.apps is None and args.workload is None:
        abbrs = None  # fall back to the chaos module's fast default matrix
    start = time.perf_counter()
    kwargs = {"seed": args.seed, "scale": args.scale,
              "jobs": args.jobs if args.jobs > 1 else 2,
              "workdir": args.workdir}
    if abbrs is not None:
        kwargs["abbrs"] = abbrs
    report = chaos_soak(**kwargs)
    print(report.render())
    print(f"\n[chaos soak done in {time.perf_counter() - start:.1f}s]")
    return 0 if report.ok else 1


def run_fuzz(parser, args) -> int:
    """`python -m repro fuzz [--seed N] [--budget M] [--corpus DIR]
    [--no-save] [--workdir DIR] [--stats-dump PATH]`.

    First replays every committed corpus program (previously shrunk
    counterexamples) through all four differential oracles, then runs a
    fresh hypothesis campaign of ``--budget`` random kernels.  Exits
    nonzero if any corpus program or fresh candidate fails; a shrunk
    reproducer is saved to the corpus directory for triage.
    """
    import json
    import os as _os

    from repro.fuzz import fuzz_campaign, replay_corpus

    start = time.perf_counter()
    journal = None
    if args.workdir:
        _os.makedirs(args.workdir, exist_ok=True)
        journal = open(_os.path.join(args.workdir, "journal.jsonl"), "w")

    def emit(record) -> None:
        if journal is not None:
            journal.write(json.dumps(record, sort_keys=True) + "\n")
            journal.flush()

    dump = _EXTRA_DUMP.setdefault("fuzz", {})
    try:
        replays = replay_corpus(args.corpus)
        for record in replays:
            status = "ok" if record["ok"] else "FAIL"
            print(f"  corpus {record['name']}: {status}", flush=True)
            emit(dict(record, phase="corpus"))
        corpus_failures = [r for r in replays if not r["ok"]]
        dump["corpus"] = replays
        print(f"corpus: {len(replays)} program(s), "
              f"{len(corpus_failures)} failure(s)")
        for record in corpus_failures:
            print(record["failure"])

        report = fuzz_campaign(
            seed=args.seed,
            budget=args.budget,
            corpus_dir=args.corpus,
            save=not args.no_save,
        )
        dump["campaign"] = report.to_dict()
        emit(dict(report.to_dict(), phase="campaign"))
    finally:
        if journal is not None:
            journal.close()
    print()
    print(report.render())
    print(f"\n[fuzz done in {time.perf_counter() - start:.1f}s]")
    return 0 if report.ok and not corpus_failures else 1


def run_serve(parser, args) -> int:
    """`python -m repro serve [--host H] [--port N] [--queue-limit N]
    [--jobs N] [--resume JOURNAL] [--port-file PATH]`."""
    import asyncio

    from repro.serve import SweepServer
    from repro.serve.server import DEFAULT_PORT, serve_forever

    server = SweepServer(
        host=args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
        jobs=max(1, args.jobs),
        queue_limit=args.queue_limit,
        journal=args.resume,
    )
    asyncio.run(serve_forever(server, port_file=args.port_file))
    return 0


def run_loadtest_cmd(parser, args) -> int:
    """`python -m repro loadtest [--url U] [--duration S] [--concurrency N]
    [--apps A,B] [--configs C1,C2] [--report PATH] [--check [--min-rps X]]`."""
    from repro.serve import run_loadtest
    from repro.serve.loadgen import DEFAULT_APPS, DEFAULT_CONFIGS
    from repro.variants import REGISTRY

    apps = _resolve_abbrs(parser, args) if (args.apps or args.workload) else DEFAULT_APPS
    configs = DEFAULT_CONFIGS
    if args.configs:
        configs = tuple(c.strip().upper() for c in args.configs.split(","))
        unknown = [c for c in configs if c not in REGISTRY]
        if unknown:
            parser.error(f"unknown configs: {unknown}; known: {REGISTRY.names()}")
    report = run_loadtest(
        url=args.url,
        duration_s=args.duration,
        concurrency=args.concurrency,
        apps=apps,
        configs=configs,
        scale=args.scale,
        jobs=max(1, args.jobs),
        queue_limit=args.queue_limit,
        workdir=args.workdir,
        journal=args.resume,
    )
    if args.check:
        report.check(min_rps=args.min_rps)
    print(report.render())
    if args.report:
        report.write(args.report)
        print(f"\n[loadtest report written to {args.report}]")
    return 0 if report.ok else 1


def run_config_check(parser, args) -> int:
    """`python -m repro config-check`: validate committed config blocks."""
    from repro.harness.config_check import check_all

    report = check_all()
    print(report.render())
    return 0 if report.ok else 1


def run_sweep(parser, args, overrides) -> int:
    """`python -m repro sweep FIELD --values V1,V2,... [--apps ABBR]`."""
    if not args.workload:
        parser.error("sweep needs a dotted config field, e.g. darsie.skip_ports")
    if not args.values:
        parser.error("sweep needs --values V1,V2,...")
    field = args.workload
    try:
        # Reuse override parsing so swept values get the field's type
        # (ints in any base, bools as true/false/0/1, ...).
        values = [
            parse_overrides([f"{field}={text.strip()}"])[field]
            for text in args.values.split(",")
        ]
    except ConfigError as exc:
        parser.error(str(exc))
    abbr = "MM"
    if args.apps:
        abbr = args.apps.split(",")[0].strip().upper()
        if abbr not in ALL_ABBRS:
            parser.error(f"unknown app {abbr!r}; known: {ALL_ABBRS}")
    gpu_config = None
    if overrides:
        non_gpu = sorted(p for p in overrides if not p.startswith("gpu."))
        if non_gpu:
            parser.error(
                f"sweep takes the swept field positionally; --set only accepts "
                f"gpu.* here, got {non_gpu}"
            )
        gpu_config = apply_overrides(RunConfig(abbr="MM"), overrides).gpu
    start = time.perf_counter()
    try:
        result = ablation_sweep(
            field, values, abbr=abbr, scale=args.scale, gpu_config=gpu_config
        )
    except ConfigError as exc:
        parser.error(str(exc))
    print(result.render())
    if result.sweep_stats is not None:
        print(f"\n{result.sweep_stats.render()}")
    print(f"\n[sweep of {field} done in {time.perf_counter() - start:.1f}s]")
    return 0


def run_workload(parser, args, overrides) -> int:
    """`python -m repro run ABBR --config NAME [--set PATH=VALUE] [--trace]`."""
    from repro.harness.runner import WorkloadRunner
    from repro.timing import PipelineTrace, StageOccupancyTrace
    from repro.timing.gpu import GPU
    from repro.variants import REGISTRY

    if not args.workload or args.workload.upper() not in EXTENDED_ABBRS:
        parser.error(f"run needs a workload from {EXTENDED_ABBRS}")
    cfg = RunConfig(abbr=args.workload.upper(), variant=args.config, scale=args.scale)
    try:
        cfg = apply_overrides(cfg, overrides)
    except ConfigError as exc:
        parser.error(str(exc))
    if cfg.darsie is None and cfg.variant not in REGISTRY:
        parser.error(f"unknown configuration {cfg.variant!r}; known: {REGISTRY.names()}")
    runner = WorkloadRunner.from_config(cfg)
    base = runner.run("BASE")
    res = runner.run_config(cfg)
    print(f"{cfg.abbr} [{cfg.scale}] under {cfg.variant}:")
    print(f"  cycles  : {res.cycles} (BASE {base.cycles}, "
          f"speedup {base.cycles / res.cycles:.2f}x)")
    print(f"  executed: {res.stats.instructions_executed}  "
          f"skipped: {res.stats.instructions_skipped}  "
          f"eliminated: {res.stats.executions_eliminated}")
    print(f"  energy  : {res.energy_pj / 1e6:.2f} uJ "
          f"({1.0 - res.energy_pj / base.energy_pj:.1%} below BASE)")
    if args.json:
        print(res.sim.to_json(indent=2))
    if args.trace or args.pipeline_trace:
        # Re-run with the tracer(s) attached (traces are not cached).
        # Use the variant's simulation program so transform-based
        # variants (DARM) trace the melded code they actually ran.
        mem, params = runner.workload.fresh()
        gpu = GPU(runner.simulation_program(cfg.variant), runner.workload.launch, mem,
                  params=params, config=runner.gpu_config,
                  frontend_factory=runner.frontend_factory(cfg.variant, cfg.darsie))
        trace = stage_trace = None
        if args.trace:
            trace = PipelineTrace()
            gpu.attach_trace(trace)
        if args.pipeline_trace:
            stage_trace = StageOccupancyTrace()
            gpu.attach_stage_trace(stage_trace)
        gpu.run()
        if trace is not None:
            print()
            print(trace.render(max_cycles=110, max_warps=10))
        if stage_trace is not None:
            lines = stage_trace.write_jsonl(args.pipeline_trace)
            print(f"  wrote {lines} stage-occupancy samples to {args.pipeline_trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
