"""Table 1: the studied applications.

Maps each benchmark abbreviation to its kernel module and records the
paper's metadata (full name, source suite, TB dimensions).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.workloads.base import Workload, require_scale


@dataclass(frozen=True)
class Table1Entry:
    """One row of Table 1."""

    abbr: str
    name: str
    suite: str
    tb_dim: Tuple[int, int]
    module: str

    @property
    def dimensionality(self) -> int:
        return 2 if self.tb_dim[1] > 1 else 1


#: Table 1, in the paper's order (1D benchmarks then 2D benchmarks).
TABLE1: Dict[str, Table1Entry] = {
    e.abbr: e
    for e in [
        Table1Entry("BIN", "binomialOptions", "CUDA SDK", (256, 1), "bin"),
        Table1Entry("PT", "pathfinder", "Rodinia", (1024, 1), "pt"),
        Table1Entry("FW", "fastWalshTransform", "CUDA SDK", (256, 1), "fw"),
        Table1Entry("SR1", "SRADV1", "Rodinia", (512, 1), "sr1"),
        Table1Entry("LIB", "LIB", "GPGPU-sim dist.", (256, 1), "lib"),
        Table1Entry("IMNLM", "ImageDenoisingNLM", "CUDA SDK", (16, 16), "imnlm"),
        Table1Entry("BP", "Backprop", "Rodinia", (16, 16), "bp"),
        Table1Entry("DCT8x8", "DCT8x8", "CUDA SDK", (8, 8), "dct"),
        Table1Entry("FWS", "Floyd-Warshall", "Pannotia", (16, 16), "fws"),
        Table1Entry("HS", "HotSpot", "Rodinia", (16, 16), "hs"),
        Table1Entry("CP", "CP", "GPGPU-sim dist.", (16, 8), "cp"),
        Table1Entry("CONVTEX", "convolutionTexture", "CUDA SDK", (16, 16), "convtex"),
        Table1Entry("MM", "MatrixMul", "CUDA SDK", (32, 32), "mm"),
    ]
}

ONE_D_ABBRS: Tuple[str, ...] = ("BIN", "PT", "FW", "SR1", "LIB")
TWO_D_ABBRS: Tuple[str, ...] = ("IMNLM", "BP", "DCT8x8", "FWS", "HS", "CP", "CONVTEX", "MM")
ALL_ABBRS: Tuple[str, ...] = ONE_D_ABBRS + TWO_D_ABBRS

#: The divergent suite: small kernels with real data-/lane-dependent
#: if-then-else diamonds, built to exercise control-flow melding
#: (``python -m repro meld-verify`` / ``compare-techniques``).  The 13
#: Table 1 kernels only branch on loop back-edges, so the melder is a
#: no-op on them; these are kept in their own table so ``TABLE1`` /
#: ``ALL_ABBRS`` (and every golden pinned to them) are untouched.
DIVERGENT_TABLE: Dict[str, Table1Entry] = {
    e.abbr: e
    for e in [
        Table1Entry("DIVEO", "DivergeEvenOdd", "divergent", (64, 1), "diveo"),
        Table1Entry("DIVABS", "DivergeAbsRescale", "divergent", (128, 1), "divabs"),
        Table1Entry("DIVSQ", "DivergeThresholdSqrt", "divergent", (64, 1), "divsq"),
    ]
}

DIVERGENT_ABBRS: Tuple[str, ...] = tuple(DIVERGENT_TABLE)

#: Everything buildable by :func:`build_workload`.
EXTENDED_ABBRS: Tuple[str, ...] = ALL_ABBRS + DIVERGENT_ABBRS


def build_workload(abbr: str, scale: str = "small") -> Workload:
    """Instantiate one Table 1 (or divergent-suite) workload."""
    require_scale(scale)
    entry = TABLE1.get(abbr) or DIVERGENT_TABLE.get(abbr)
    if entry is None:
        known = sorted(TABLE1) + sorted(DIVERGENT_TABLE)
        raise KeyError(f"unknown workload {abbr!r}; known: {known}")
    module = importlib.import_module(f"repro.workloads.kernels.{entry.module}")
    workload = module.build(scale)
    assert workload.abbr == abbr, f"{entry.module}.build returned {workload.abbr}"
    return workload


def build_all(scale: str = "small", abbrs: Iterable[str] = ALL_ABBRS) -> List[Workload]:
    return [build_workload(a, scale) for a in abbrs]


def table1_rows() -> List[Tuple[str, str, str, str, int]]:
    """Rows for rendering Table 1: (abbr, name, suite, tb_dim, dims)."""
    return [
        (e.abbr, e.name, e.suite, f"({e.tb_dim[0]},{e.tb_dim[1]})", e.dimensionality)
        for e in TABLE1.values()
    ]
