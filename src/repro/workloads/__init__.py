"""Table 1 workloads, rewritten for the reproduction substrate.

Thirteen benchmarks — five with 1D TBs, eight with 2D TBs — matching the
paper's application set (Table 1): same TB dimensions, same structural
access patterns (the source of the redundancy DARSIE exploits), verified
against numpy oracles.  Problem sizes are scaled down for the Python
substrate; DESIGN.md documents the substitution.
"""

from repro.workloads.base import SCALES, Workload
from repro.workloads.registry import (
    ALL_ABBRS,
    DIVERGENT_ABBRS,
    DIVERGENT_TABLE,
    EXTENDED_ABBRS,
    ONE_D_ABBRS,
    TABLE1,
    TWO_D_ABBRS,
    build_all,
    build_workload,
    table1_rows,
)

__all__ = [
    "SCALES",
    "Workload",
    "ALL_ABBRS",
    "DIVERGENT_ABBRS",
    "DIVERGENT_TABLE",
    "EXTENDED_ABBRS",
    "ONE_D_ABBRS",
    "TWO_D_ABBRS",
    "TABLE1",
    "build_workload",
    "build_all",
    "table1_rows",
]
