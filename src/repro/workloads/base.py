"""Workload framework: a benchmark kernel plus its data and oracle.

Each workload module exposes ``build(scale)`` returning a
:class:`Workload`: the assembled program, the launch configuration from
Table 1, a factory that sets up fresh device memory (simulations mutate
memory, so every run gets its own image), and a numpy reference check.

Scales:

- ``tiny``  — a few hundred dynamic warp instructions; unit tests;
- ``small`` — thousands; the default for benchmark reproduction;
- ``medium`` — tens of thousands; closer-to-paper behaviour when you
  have the time budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.isa.program import Program
from repro.simt.grid import LaunchConfig
from repro.simt.memory import GlobalMemory

SCALES = ("tiny", "small", "medium")

#: (memory, params) for one fresh run.
MemorySetup = Tuple[GlobalMemory, Dict[str, float]]


@dataclass
class Workload:
    """One Table 1 benchmark instance."""

    name: str
    abbr: str
    suite: str
    tb_dim: Tuple[int, int]
    dimensionality: int
    program: Program
    launch: LaunchConfig
    #: builds a fresh memory image + params for one run
    make_memory: Callable[[], MemorySetup]
    #: verifies device memory against the numpy oracle after a run
    check: Callable[[GlobalMemory, Dict[str, float]], bool]
    scale: str = "small"
    description: str = ""

    def fresh(self) -> MemorySetup:
        return self.make_memory()

    def verify(self, memory: GlobalMemory, params: Dict[str, float]) -> bool:
        return self.check(memory, params)


def require_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
    return scale


def close(memory: GlobalMemory, base: int, expected: np.ndarray, rtol=1e-6, atol=1e-6) -> bool:
    """Compare a device array against a float oracle."""
    got = memory.read_array(base, expected.size)
    return bool(np.allclose(got, np.asarray(expected, dtype=np.float64).ravel(), rtol=rtol, atol=atol))


def exact(memory: GlobalMemory, base: int, expected: np.ndarray) -> bool:
    """Compare a device array against an integer oracle."""
    got = memory.read_array(base, expected.size, dtype=np.int64)
    return bool(np.array_equal(got, np.asarray(expected, dtype=np.int64).ravel()))
