"""DCT8x8 — 8x8 discrete cosine transform (CUDA SDK), TB (8,8).

Each TB transforms one 8x8 tile: ``out = C . X . C^T`` as two shared-
memory passes.  In pass 1 the cosine-coefficient loads are indexed by
``tid.x`` — conditionally redundant, promoted at launch since the TB is
2D with x = 8 — and in pass 2 the intermediate tile is read at a
``tid.x``-derived column offset (unstructured TB redundancy).
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

def _kernel_source(tile: int) -> str:
    """Generate the DCT kernel with fully unrolled inner products.

    The CUDA SDK DCT8x8 kernel unrolls both 8-tap dot products; the
    unrolled form has no inner-loop branches, so DARSIE's skipping runs
    free of branch synchronization inside a tile (cf. Figure 6's
    unrolled MM loop).
    """
    head = f"""
.kernel dct
.param img
.param coef
.param out
.param width
.shared 256
    mov.u32        $tx, %tid.x
    mov.u32        $ty, %tid.y
    mul.u32        $gx, %ctaid.x, %ntid.x
    add.u32        $gx, $gx, $tx
    mul.u32        $gy, %ctaid.y, %ntid.y
    add.u32        $gy, $gy, $ty
    mul.u32        $gidx, $gy, %param.width
    add.u32        $gidx, $gidx, $gx
    shl.u32        $gaddr, $gidx, 2
    add.u32        $gaddr, $gaddr, %param.img
    ld.global.f32  $x, [$gaddr]
    # X tile at shared[0..], tmp tile at byte offset {tile * tile * 4}
    mul.u32        $si, $ty, %ntid.x
    add.u32        $si, $si, $tx
    shl.u32        $si, $si, 2
    st.shared.f32  [$si], $x
    bar.sync
    # pass 1: tmp[ty][tx] = sum_k C[tx][k] * X[ty][k]
    mov.f32        $acc, 0.0
    mul.u32        $cbase, $tx, %ntid.x
    shl.u32        $cbase, $cbase, 2
    add.u32        $cbase, $cbase, %param.coef
    mul.u32        $xbase, $ty, %ntid.x
    shl.u32        $xbase, $xbase, 2
"""
    tmp_base = tile * tile * 4
    body1 = "".join(
        f"    ld.global.f32  $c{k}, [$cbase + {4 * k}]\n"
        f"    ld.shared.f32  $xv{k}, [$xbase + {4 * k}]\n"
        f"    mad.f32        $acc, $c{k}, $xv{k}, $acc\n"
        for k in range(tile)
    )
    mid = f"""
    add.u32        $ti, $si, {tmp_base}
    st.shared.f32  [$ti], $acc
    bar.sync
    # pass 2: out[ty][tx] = sum_k C[ty][k] * tmp[k][tx]
    mov.f32        $acc2, 0.0
    mul.u32        $cb2, $ty, %ntid.x
    shl.u32        $cb2, $cb2, 2
    add.u32        $cb2, $cb2, %param.coef
    shl.u32        $tb2, $tx, 2
"""
    body2 = "".join(
        f"    ld.global.f32  $d{k}, [$cb2 + {4 * k}]\n"
        f"    ld.shared.f32  $tv{k}, [$tb2 + {tmp_base + 4 * tile * k}]\n"
        f"    mad.f32        $acc2, $d{k}, $tv{k}, $acc2\n"
        for k in range(tile)
    )
    tail = """
    shl.u32        $oaddr, $gidx, 2
    add.u32        $oaddr, $oaddr, %param.out
    st.global.f32  [$oaddr], $acc2
    exit
"""
    return head + body1 + mid + body2 + tail

_SCALE = {"tiny": (8, 1, 1), "small": (8, 4, 4), "medium": (8, 8, 8)}


def _dct_matrix(n: int) -> np.ndarray:
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    c = np.sqrt(2.0 / n) * np.cos((2 * i + 1) * k * np.pi / (2 * n))
    c[0, :] = np.sqrt(1.0 / n)
    return c


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    tile, gx, gy = _SCALE[scale]
    width, height = tile * gx, tile * gy
    program = assemble(_kernel_source(tile), name="dct")
    launch = LaunchConfig(grid_dim=Dim3(gx, gy), block_dim=Dim3(tile, tile))
    rng = np.random.default_rng(17)
    img = rng.random((height, width)).astype(np.float64)
    coef = _dct_matrix(tile)
    expected = np.empty_like(img)
    for by in range(gy):
        for bx in range(gx):
            x = img[by * tile : (by + 1) * tile, bx * tile : (bx + 1) * tile]
            expected[by * tile : (by + 1) * tile, bx * tile : (bx + 1) * tile] = (
                coef @ x @ coef.T
            )

    def make_memory():
        mem = GlobalMemory(1 << 14)
        pimg = mem.alloc_array(img)
        pcoef = mem.alloc_array(coef)
        pout = mem.alloc(width * height)
        return mem, {"img": pimg, "coef": pcoef, "out": pout, "width": width}

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-9)

    return Workload(
        name="DCT8x8",
        abbr="DCT8x8",
        suite="CUDA SDK",
        tb_dim=(tile, tile),
        dimensionality=2,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"2D DCT over {height}x{width} image in {tile}x{tile} tiles",
    )
