"""PT — pathfinder (Rodinia), TB (1024,1).

Dynamic-programming sweep over a cost grid: each thread owns one column
and iterates rows, taking the min of its three lower neighbours from a
shared-memory row buffer (barriers between rows).  Like Rodinia's
ghost-zone version, neighbour access is clamped at TB boundaries; the
numpy oracle mirrors that exactly.
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, exact, require_scale

KERNEL = """
.kernel pt
.param wall
.param src
.param dst
.param rows
.param cols
.shared 1024
    mov.u32        $tx, %tid.x
    mul.u32        $col, %ctaid.x, %ntid.x
    add.u32        $col, $col, $tx
    # clamped neighbour lanes within the TB
    sub.u32        $lm, $tx, 1
    max.s32        $lm, $lm, 0
    add.u32        $rm, $tx, 1
    sub.u32        $lim, %ntid.x, 1
    min.s32        $rm, $rm, $lim
    shl.u32        $sl, $lm, 2
    shl.u32        $sc, $tx, 2
    shl.u32        $sr, $rm, 2
    # load source row
    shl.u32        $g, $col, 2
    add.u32        $g, $g, %param.src
    ld.global.s32  $cur, [$g]
    st.shared.s32  [$sc], $cur
    bar.sync
    mov.u32        $r, 0
row_loop:
    ld.shared.s32  $a, [$sl]
    ld.shared.s32  $b, [$sc]
    ld.shared.s32  $c, [$sr]
    min.s32        $m, $a, $b
    min.s32        $m, $m, $c
    mul.u32        $wo, $r, %param.cols
    add.u32        $wo, $wo, $col
    shl.u32        $wo, $wo, 2
    add.u32        $wo, $wo, %param.wall
    ld.global.s32  $w, [$wo]
    add.u32        $v, $w, $m
    bar.sync
    st.shared.s32  [$sc], $v
    bar.sync
    add.u32        $r, $r, 1
    setp.lt.u32    $p0, $r, %param.rows
@$p0 bra row_loop
    ld.shared.s32  $res, [$sc]
    shl.u32        $go, $col, 2
    add.u32        $go, $go, %param.dst
    st.global.s32  [$go], $res
    exit
"""

_SCALE = {"tiny": (64, 2, 3), "small": (1024, 2, 4), "medium": (1024, 4, 8)}


def _oracle(wall: np.ndarray, src: np.ndarray, block: int) -> np.ndarray:
    rows, cols = wall.shape
    cur = src.copy()
    for r in range(rows):
        nxt = np.empty_like(cur)
        for b in range(0, cols, block):
            seg = cur[b : b + block]
            left = np.concatenate(([seg[0]], seg[:-1]))
            right = np.concatenate((seg[1:], [seg[-1]]))
            nxt[b : b + block] = wall[r, b : b + block] + np.minimum(
                np.minimum(left, seg), right
            )
        cur = nxt
    return cur


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    threads, blocks, rows = _SCALE[scale]
    cols = threads * blocks
    program = assemble(KERNEL, name="pt")
    launch = LaunchConfig(grid_dim=Dim3(blocks), block_dim=Dim3(threads))
    rng = np.random.default_rng(5)
    wall = rng.integers(0, 10, size=(rows, cols)).astype(np.int64)
    src = rng.integers(0, 10, size=cols).astype(np.int64)
    expected = _oracle(wall, src, threads)

    def make_memory():
        mem = GlobalMemory(1 << 16)
        pwall = mem.alloc_array(wall)
        psrc = mem.alloc_array(src)
        pdst = mem.alloc(cols)
        return mem, {"wall": pwall, "src": psrc, "dst": pdst, "rows": rows, "cols": cols}

    def check(mem, params):
        return exact(mem, params["dst"], expected)

    return Workload(
        name="pathfinder",
        abbr="PT",
        suite="Rodinia",
        tb_dim=(threads, 1),
        dimensionality=1,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"DP sweep, {rows} rows x {cols} cols",
    )
