"""BP — Backprop layer-forward (Rodinia), TB (16,16).

Each TB computes partial hidden-unit activations for a 16-input chunk:
per-thread input x weight products land in shared memory, then a
barrier-separated tree reduction over the input axis (``tid.y``)
produces one partial sum per hidden unit (``tid.x``).  The hidden-unit
index chain is ``tid.x``-based (conditionally redundant); weight and
input loads are vector.
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel bp
.param inp
.param wts
.param out
.param nhid
.shared 512
    mov.u32        $tx, %tid.x
    mov.u32        $ty, %tid.y
    # hidden unit index (tid.x chain) and input index (tid.y chain)
    mul.u32        $hx, %ctaid.x, %ntid.x
    add.u32        $hx, $hx, $tx
    mul.u32        $iy, %ctaid.y, %ntid.y
    add.u32        $iy, $iy, $ty
    # product = in[iy] * w[iy][hx]
    shl.u32        $ia, $iy, 2
    add.u32        $ia, $ia, %param.inp
    ld.global.f32  $inv, [$ia]
    mul.u32        $wi, $iy, %param.nhid
    add.u32        $wi, $wi, $hx
    shl.u32        $wa, $wi, 2
    add.u32        $wa, $wa, %param.wts
    ld.global.f32  $wv, [$wa]
    mul.f32        $prod, $inv, $wv
    mul.u32        $si, $ty, %ntid.x
    add.u32        $si, $si, $tx
    shl.u32        $sa, $si, 2
    st.shared.f32  [$sa], $prod
    bar.sync
    # tree reduction over tid.y
    shr.u32        $p, %ntid.y, 1
red_loop:
    setp.lt.u32    $p0, $ty, $p
@$p0 add.u32       $oi, $ty, $p
@$p0 mul.u32       $oi, $oi, %ntid.x
@$p0 add.u32       $oi, $oi, $tx
@$p0 shl.u32       $oa, $oi, 2
@$p0 ld.shared.f32 $other, [$oa]
@$p0 ld.shared.f32 $mine, [$sa]
@$p0 add.f32       $mine, $mine, $other
@$p0 st.shared.f32 [$sa], $mine
    bar.sync
    shr.u32        $p, $p, 1
    setp.gt.u32    $p1, $p, 0
@$p1 bra red_loop
    # row 0 writes the partial sums: out[ctaid.y * nhid_total + hx]
    setp.eq.u32    $p2, $ty, 0
@$p2 mul.u32       $nb, %nctaid.x, %ntid.x
@$p2 mul.u32       $ob, %ctaid.y, $nb
@$p2 add.u32       $ob, $ob, $hx
@$p2 shl.u32       $ob, $ob, 2
@$p2 add.u32       $ob, $ob, %param.out
@$p2 ld.shared.f32 $res, [$sa]
@$p2 st.global.f32 [$ob], $res
    exit
"""

_SCALE = {"tiny": (8, 1, 2), "small": (16, 2, 2), "medium": (16, 4, 4)}


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    tile, gx, gy = _SCALE[scale]
    nhid = tile * gx
    nin = tile * gy
    program = assemble(KERNEL, name="bp")
    launch = LaunchConfig(grid_dim=Dim3(gx, gy), block_dim=Dim3(tile, tile))
    rng = np.random.default_rng(41)
    inp = rng.standard_normal(nin).astype(np.float64)
    wts = rng.standard_normal((nin, nhid)).astype(np.float64)
    # Partial sums per (input-chunk, hidden unit).
    expected = np.zeros((gy, nhid))
    for by in range(gy):
        chunk = slice(by * tile, (by + 1) * tile)
        expected[by] = inp[chunk] @ wts[chunk]

    def make_memory():
        mem = GlobalMemory(1 << 14)
        pin = mem.alloc_array(inp)
        pw = mem.alloc_array(wts)
        pout = mem.alloc(gy * nhid)
        return mem, {"inp": pin, "wts": pw, "out": pout, "nhid": nhid}

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-9)

    return Workload(
        name="Backprop",
        abbr="BP",
        suite="Rodinia",
        tb_dim=(tile, tile),
        dimensionality=2,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"layer-forward partials, {nin} inputs x {nhid} hidden",
    )
