"""Kernel implementations of the Table 1 benchmarks."""
