"""SR1 — SRAD v1 diffusion-coefficient kernel (Rodinia), TB (512,1).

Speckle-reducing anisotropic diffusion over a flattened 2D image with a
1D TB: per pixel, four clamped neighbour loads, directional derivatives,
and an SFU-heavy coefficient computation (divides).  Row/column recovery
from the flat index uses shifts (the image width is a power of two).
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel sr1
.param img
.param out
.param log2w
.param wmask
.param hmax
.param q0
    mul.u32        $idx, %ctaid.x, %ntid.x
    add.u32        $idx, $idx, %tid.x
    shr.u32        $row, $idx, %param.log2w
    and.u32        $col, $idx, %param.wmask
    # clamped neighbour rows/cols
    sub.u32        $rn, $row, 1
    max.s32        $rn, $rn, 0
    add.u32        $rs, $row, 1
    min.s32        $rs, $rs, %param.hmax
    sub.u32        $cw, $col, 1
    max.s32        $cw, $cw, 0
    add.u32        $ce, $col, 1
    min.s32        $ce, $ce, %param.wmask
    # centre value
    shl.u32        $a0, $idx, 2
    add.u32        $a0, $a0, %param.img
    ld.global.f32  $jc, [$a0]
    # north
    mov.u32        $one, 1
    shl.u32        $t, $rn, %param.log2w
    add.u32        $t, $t, $col
    shl.u32        $t, $t, 2
    add.u32        $t, $t, %param.img
    ld.global.f32  $jn, [$t]
    # south
    shl.u32        $t, $rs, %param.log2w
    add.u32        $t, $t, $col
    shl.u32        $t, $t, 2
    add.u32        $t, $t, %param.img
    ld.global.f32  $js, [$t]
    # west
    shl.u32        $t, $row, %param.log2w
    add.u32        $t, $t, $cw
    shl.u32        $t, $t, 2
    add.u32        $t, $t, %param.img
    ld.global.f32  $jw, [$t]
    # east
    shl.u32        $t, $row, %param.log2w
    add.u32        $t, $t, $ce
    shl.u32        $t, $t, 2
    add.u32        $t, $t, %param.img
    ld.global.f32  $je, [$t]
    # directional derivatives
    sub.f32        $dn, $jn, $jc
    sub.f32        $ds, $js, $jc
    sub.f32        $dw, $jw, $jc
    sub.f32        $de, $je, $jc
    # g2 = (dn^2+ds^2+dw^2+de^2) / jc^2 ; l = (dn+ds+dw+de)/jc
    mul.f32        $g2, $dn, $dn
    mad.f32        $g2, $ds, $ds, $g2
    mad.f32        $g2, $dw, $dw, $g2
    mad.f32        $g2, $de, $de, $g2
    mul.f32        $jc2, $jc, $jc
    div.f32        $g2, $g2, $jc2
    add.f32        $l, $dn, $ds
    add.f32        $l, $l, $dw
    add.f32        $l, $l, $de
    div.f32        $l, $l, $jc
    # qsqr = (0.5*g2 - l^2/16) / (1 + 0.25*l)^2
    mul.f32        $num, $g2, 0.5
    mul.f32        $l2, $l, $l
    mad.f32        $num, $l2, -0.0625, $num
    mad.f32        $den, $l, 0.25, 1.0
    mul.f32        $den, $den, $den
    div.f32        $q, $num, $den
    # c = 1 / (1 + (q - q0)/(q0*(1+q0))) clamped to [0, 1]
    sub.f32        $d2, $q, %param.q0
    mad.f32        $scl, %param.q0, %param.q0, %param.q0
    div.f32        $d2, $d2, $scl
    add.f32        $d2, $d2, 1.0
    rcp.f32        $c, $d2
    max.f32        $c, $c, 0.0
    min.f32        $c, $c, 1.0
    shl.u32        $o, $idx, 2
    add.u32        $o, $o, %param.out
    st.global.f32  [$o], $c
    exit
"""

_SCALE = {"tiny": (64, 2, 16, 8), "small": (512, 2, 32, 32), "medium": (512, 8, 64, 64)}


def _oracle(img2d: np.ndarray, q0: float) -> np.ndarray:
    h, w = img2d.shape
    rows, cols = np.indices((h, w))
    jn = img2d[np.maximum(rows - 1, 0), cols]
    js = img2d[np.minimum(rows + 1, h - 1), cols]
    jw = img2d[rows, np.maximum(cols - 1, 0)]
    je = img2d[rows, np.minimum(cols + 1, w - 1)]
    jc = img2d
    dn, ds, dw, de = jn - jc, js - jc, jw - jc, je - jc
    g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc)
    l = (dn + ds + dw + de) / jc
    num = 0.5 * g2 - (l * l) / 16.0
    den = (1.0 + 0.25 * l) ** 2
    q = num / den
    c = 1.0 / (1.0 + (q - q0) / (q0 * (1.0 + q0)))
    return np.clip(c, 0.0, 1.0)


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    threads, blocks, w, h = _SCALE[scale]
    assert threads * blocks == w * h, "grid must cover the image exactly"
    program = assemble(KERNEL, name="sr1")
    launch = LaunchConfig(grid_dim=Dim3(blocks), block_dim=Dim3(threads))
    rng = np.random.default_rng(13)
    img = (0.5 + rng.random((h, w))).astype(np.float64)
    q0 = 0.05
    expected = _oracle(img, q0)

    def make_memory():
        mem = GlobalMemory(1 << 16)
        pimg = mem.alloc_array(img)
        pout = mem.alloc(w * h)
        return mem, {
            "img": pimg, "out": pout, "log2w": int(np.log2(w)),
            "wmask": w - 1, "hmax": h - 1, "q0": q0,
        }

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-9)

    return Workload(
        name="SRADV1",
        abbr="SR1",
        suite="Rodinia",
        tb_dim=(threads, 1),
        dimensionality=1,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"SRAD diffusion coefficients over {h}x{w} image",
    )
