"""LIB — LIBOR market-model Monte Carlo (GPGPU-Sim distribution), TB (256,1).

Each thread evolves one interest-rate path.  The per-maturity drift /
volatility chain depends only on kernel parameters and the maturity
index — uniform across the whole TB — while the final path update uses
the thread's own random increment.  This is the paper's extreme 1D case:
~75 % of LIB's instructions are uniform-redundant and DARSIE removes
them (Figure 9), but the kernel "contains no __syncthreads()", making it
the worst case for branch synchronization (Figure 12: 50 % slowdown
under SILICON-SYNC).
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel lib
.param lam
.param z
.param out
.param n
.param delta
    # linear thread id across the grid
    mul.u32        $gid, %ctaid.x, %ntid.x
    add.u32        $gid, $gid, %tid.x
    shl.u32        $zo, $gid, 2
    add.u32        $zo, $zo, %param.z
    ld.global.f32  $zv, [$zo]
    mov.f32        $L, 0.05
    mov.u32        $j, 0
mat_loop:
    # -- uniform drift/volatility chain (parameters + maturity index) --
    shl.u32        $lo, $j, 2
    add.u32        $lo, $lo, %param.lam
    ld.global.f32  $lamj, [$lo]
    mul.f32        $con1, $lamj, %param.delta
    mul.f32        $v1, $con1, $lamj
    mad.f32        $v2, $v1, %param.delta, 1.0
    rcp.f32        $v3, $v2
    mul.f32        $sc, $v3, $con1
    mul.f32        $vrat, $sc, 0.5
    # -- per-thread path update (true vector work) --
    mul.f32        $shock, $vrat, $zv
    mad.f32        $L, $shock, $L, $L
    mad.f32        $L, $sc, 0.01, $L
    add.u32        $j, $j, 1
    setp.lt.u32    $p0, $j, %param.n
@$p0 bra mat_loop
    add.u32        $oo, $zo, 0
    sub.u32        $oo, $oo, %param.z
    add.u32        $oo, $oo, %param.out
    st.global.f32  [$oo], $L
    exit
"""

_SCALE = {"tiny": (64, 2, 6), "small": (256, 4, 24), "medium": (256, 8, 40)}


def _oracle(lam: np.ndarray, z: np.ndarray, n: int, delta: float) -> np.ndarray:
    L = np.full(z.shape, 0.05, dtype=np.float64)
    for j in range(n):
        con1 = lam[j] * delta
        v2 = con1 * lam[j] * delta + 1.0
        sc = (1.0 / v2) * con1
        vrat = sc * 0.5
        shock = vrat * z
        L = shock * L + L
        L = L + sc * 0.01
    return L


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    threads_per_block, blocks, n = _SCALE[scale]
    program = assemble(KERNEL, name="lib")
    launch = LaunchConfig(grid_dim=Dim3(blocks), block_dim=Dim3(threads_per_block))
    rng = np.random.default_rng(7)
    total = threads_per_block * blocks
    lam = (0.1 + 0.05 * rng.random(n)).astype(np.float64)
    z = rng.standard_normal(total).astype(np.float64)
    delta = 0.25
    expected = _oracle(lam, z, n, delta)

    def make_memory():
        mem = GlobalMemory(1 << 16)
        plam = mem.alloc_array(lam)
        pz = mem.alloc_array(z)
        pout = mem.alloc(total)
        return mem, {"lam": plam, "z": pz, "out": pout, "n": n, "delta": delta}

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-9)

    return Workload(
        name="LIB",
        abbr="LIB",
        suite="GPGPU-sim dist.",
        tb_dim=(threads_per_block, 1),
        dimensionality=1,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"LIBOR Monte Carlo, {total} paths x {n} maturities",
    )
