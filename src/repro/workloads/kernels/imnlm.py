"""IMNLM — ImageDenoisingNLM (CUDA SDK), TB (16,16).

Non-local-means-style denoise: every pixel takes an exp-weighted average
over its 3x3 neighbourhood.  The weight evaluation uses the SFU
(``ex2``) and the final normalisation divides; the column-coordinate
arithmetic descends from ``tid.x`` and is conditionally redundant.
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel imnlm
.param img
.param out
.param w
.param wmax
.param hmax
.param invh
    mov.u32        $tx, %tid.x
    mov.u32        $ty, %tid.y
    mul.u32        $gx, %ctaid.x, %ntid.x
    add.u32        $gx, $gx, $tx
    mul.u32        $gy, %ctaid.y, %ntid.y
    add.u32        $gy, $gy, $ty
    mul.u32        $ci, $gy, %param.w
    add.u32        $ci, $ci, $gx
    shl.u32        $ca, $ci, 2
    add.u32        $ca, $ca, %param.img
    ld.global.f32  $c, [$ca]
    mov.f32        $accv, 0.0
    mov.f32        $accw, 0.0
    mov.u32        $i, 0
wy_loop:
    add.u32        $ny, $gy, $i
    sub.u32        $ny, $ny, 1
    max.s32        $ny, $ny, 0
    min.s32        $ny, $ny, %param.hmax
    mul.u32        $nrow, $ny, %param.w
    mov.u32        $j, 0
wx_loop:
    add.u32        $nx, $gx, $j
    sub.u32        $nx, $nx, 1
    max.s32        $nx, $nx, 0
    min.s32        $nx, $nx, %param.wmax
    add.u32        $pi, $nrow, $nx
    shl.u32        $pa, $pi, 2
    add.u32        $pa, $pa, %param.img
    ld.global.f32  $v, [$pa]
    sub.f32        $d, $v, $c
    mul.f32        $d2, $d, $d
    mul.f32        $e, $d2, %param.invh
    neg.f32        $e, $e
    ex2.f32        $wgt, $e
    mad.f32        $accv, $wgt, $v, $accv
    add.f32        $accw, $accw, $wgt
    add.u32        $j, $j, 1
    setp.lt.u32    $p0, $j, 3
@$p0 bra wx_loop
    add.u32        $i, $i, 1
    setp.lt.u32    $p1, $i, 3
@$p1 bra wy_loop
    div.f32        $r, $accv, $accw
    shl.u32        $oa, $ci, 2
    add.u32        $oa, $oa, %param.out
    st.global.f32  [$oa], $r
    exit
"""

_SCALE = {"tiny": (8, 2, 1), "small": (16, 2, 2), "medium": (16, 4, 4)}


def _oracle(img: np.ndarray, invh: float) -> np.ndarray:
    h, w = img.shape
    rows, cols = np.indices((h, w))
    accv = np.zeros_like(img)
    accw = np.zeros_like(img)
    for i in range(3):
        ny = np.clip(rows + i - 1, 0, h - 1)
        for j in range(3):
            nx = np.clip(cols + j - 1, 0, w - 1)
            v = img[ny, nx]
            d = v - img
            wgt = np.exp2(-(d * d) * invh)
            accv += wgt * v
            accw += wgt
    return accv / accw


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    tile, gx, gy = _SCALE[scale]
    w, h = tile * gx, tile * gy
    invh = 8.0
    program = assemble(KERNEL, name="imnlm")
    launch = LaunchConfig(grid_dim=Dim3(gx, gy), block_dim=Dim3(tile, tile))
    rng = np.random.default_rng(37)
    img = rng.random((h, w)).astype(np.float64)
    expected = _oracle(img, invh)

    def make_memory():
        mem = GlobalMemory(1 << 14)
        pimg = mem.alloc_array(img)
        pout = mem.alloc(w * h)
        return mem, {
            "img": pimg, "out": pout, "w": w, "wmax": w - 1,
            "hmax": h - 1, "invh": invh,
        }

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-9)

    return Workload(
        name="ImageDenoisingNLM",
        abbr="IMNLM",
        suite="CUDA SDK",
        tb_dim=(tile, tile),
        dimensionality=2,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"NLM denoise, {h}x{w} image, 3x3 window",
    )
