"""HS — HotSpot thermal stencil (Rodinia), TB (16,16).

One explicit time step of the 5-point thermal diffusion stencil over the
chip temperature grid, with clamped boundaries.  The thermal constants
are uniform kernel parameters; the column half of the index arithmetic
descends from ``tid.x`` and is conditionally redundant.
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel hs
.param temp
.param power
.param out
.param w
.param wmax
.param hmax
.param cap
.param rx
.param ry
.param rz
.param amb
    mov.u32        $tx, %tid.x
    mov.u32        $ty, %tid.y
    mul.u32        $gx, %ctaid.x, %ntid.x
    add.u32        $gx, $gx, $tx
    mul.u32        $gy, %ctaid.y, %ntid.y
    add.u32        $gy, $gy, $ty
    # clamped neighbour coordinates
    sub.u32        $xl, $gx, 1
    max.s32        $xl, $xl, 0
    add.u32        $xr, $gx, 1
    min.s32        $xr, $xr, %param.wmax
    sub.u32        $yu, $gy, 1
    max.s32        $yu, $yu, 0
    add.u32        $yd, $gy, 1
    min.s32        $yd, $yd, %param.hmax
    # centre
    mul.u32        $idx, $gy, %param.w
    add.u32        $idx, $idx, $gx
    shl.u32        $a, $idx, 2
    add.u32        $ac, $a, %param.temp
    ld.global.f32  $tc, [$ac]
    # east / west
    mul.u32        $t, $gy, %param.w
    add.u32        $t, $t, $xr
    shl.u32        $t, $t, 2
    add.u32        $t, $t, %param.temp
    ld.global.f32  $te, [$t]
    mul.u32        $t, $gy, %param.w
    add.u32        $t, $t, $xl
    shl.u32        $t, $t, 2
    add.u32        $t, $t, %param.temp
    ld.global.f32  $tw, [$t]
    # north / south
    mul.u32        $t, $yu, %param.w
    add.u32        $t, $t, $gx
    shl.u32        $t, $t, 2
    add.u32        $t, $t, %param.temp
    ld.global.f32  $tn, [$t]
    mul.u32        $t, $yd, %param.w
    add.u32        $t, $t, $gx
    shl.u32        $t, $t, 2
    add.u32        $t, $t, %param.temp
    ld.global.f32  $ts, [$t]
    # power
    add.u32        $ap, $a, %param.power
    ld.global.f32  $p, [$ap]
    # delta = cap * (p + rx*(te+tw-2c) + ry*(tn+ts-2c) + rz*(amb-c))
    add.f32        $ew, $te, $tw
    mad.f32        $ew, $tc, -2.0, $ew
    add.f32        $ns, $tn, $ts
    mad.f32        $ns, $tc, -2.0, $ns
    sub.f32        $vz, %param.amb, $tc
    mul.f32        $acc, $ew, %param.rx
    mad.f32        $acc, $ns, %param.ry, $acc
    mad.f32        $acc, $vz, %param.rz, $acc
    add.f32        $acc, $acc, $p
    mul.f32        $delta, $acc, %param.cap
    add.f32        $nt, $tc, $delta
    add.u32        $ao, $a, %param.out
    st.global.f32  [$ao], $nt
    exit
"""

_SCALE = {"tiny": (8, 2, 1), "small": (16, 4, 2), "medium": (16, 8, 4)}


def _oracle(temp, power, cap, rx, ry, rz, amb):
    h, w = temp.shape
    rows, cols = np.indices((h, w))
    te = temp[rows, np.minimum(cols + 1, w - 1)]
    tw = temp[rows, np.maximum(cols - 1, 0)]
    tn = temp[np.maximum(rows - 1, 0), cols]
    ts = temp[np.minimum(rows + 1, h - 1), cols]
    delta = cap * (
        power + rx * (te + tw - 2 * temp) + ry * (tn + ts - 2 * temp) + rz * (amb - temp)
    )
    return temp + delta


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    tile, gx, gy = _SCALE[scale]
    w, h = tile * gx, tile * gy
    program = assemble(KERNEL, name="hs")
    launch = LaunchConfig(grid_dim=Dim3(gx, gy), block_dim=Dim3(tile, tile))
    rng = np.random.default_rng(23)
    temp = (60.0 + 20.0 * rng.random((h, w))).astype(np.float64)
    power = rng.random((h, w)).astype(np.float64)
    cap, rx, ry, rz, amb = 0.5, 0.1, 0.1, 0.05, 80.0
    expected = _oracle(temp, power, cap, rx, ry, rz, amb)

    def make_memory():
        mem = GlobalMemory(1 << 16)
        pt = mem.alloc_array(temp)
        pp = mem.alloc_array(power)
        po = mem.alloc(w * h)
        return mem, {
            "temp": pt, "power": pp, "out": po, "w": w, "wmax": w - 1,
            "hmax": h - 1, "cap": cap, "rx": rx, "ry": ry, "rz": rz, "amb": amb,
        }

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-9)

    return Workload(
        name="HotSpot",
        abbr="HS",
        suite="Rodinia",
        tb_dim=(tile, tile),
        dimensionality=2,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"thermal stencil step over {h}x{w} grid",
    )
