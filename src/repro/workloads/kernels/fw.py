"""FW — fastWalshTransform (CUDA SDK), TB (256,1).

Each TB transforms a 2*blockDim.x-point segment in shared memory with a
log2(N)-step butterfly, barriers between steps.  The butterfly index
arithmetic is pure ``tid.x`` computation — affine but *not* redundant in
a 1D TB (Figure 3a) — so only the loop bookkeeping is skippable.
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel fw
.param data
.param log2n
.param half
.shared 1024
    mov.u32        $i, %tid.x
    # global segment base (in elements) = ctaid.x * 2 * half
    mul.u32        $gbase, %ctaid.x, %param.half
    shl.u32        $gbase, $gbase, 1
    # load two elements per thread
    add.u32        $g0, $gbase, $i
    shl.u32        $g0, $g0, 2
    add.u32        $g0, $g0, %param.data
    ld.global.f32  $v0, [$g0]
    shl.u32        $s0, $i, 2
    st.shared.f32  [$s0], $v0
    add.u32        $g1, $gbase, $i
    add.u32        $g1, $g1, %param.half
    shl.u32        $g1, $g1, 2
    add.u32        $g1, $g1, %param.data
    ld.global.f32  $v1, [$g1]
    shl.u32        $hbytes, %param.half, 2
    add.u32        $s1, $s0, $hbytes
    st.shared.f32  [$s1], $v1
    bar.sync
    mov.u32        $step, 0
butterfly:
    # stride = 1 << step ; lo = i & (stride-1) ; idx = (i - lo)*2 + lo
    mov.u32        $one, 1
    shl.u32        $stride, $one, $step
    sub.u32        $mask, $stride, 1
    and.u32        $lo, $i, $mask
    sub.u32        $hi, $i, $lo
    shl.u32        $hi, $hi, 1
    add.u32        $idx, $hi, $lo
    shl.u32        $ia, $idx, 2
    add.u32        $ib, $idx, $stride
    shl.u32        $ib, $ib, 2
    ld.shared.f32  $a, [$ia]
    ld.shared.f32  $b, [$ib]
    add.f32        $sum, $a, $b
    sub.f32        $dif, $a, $b
    bar.sync
    st.shared.f32  [$ia], $sum
    st.shared.f32  [$ib], $dif
    bar.sync
    add.u32        $step, $step, 1
    setp.lt.u32    $p0, $step, %param.log2n
@$p0 bra butterfly
    ld.shared.f32  $o0, [$s0]
    st.global.f32  [$g0], $o0
    ld.shared.f32  $o1, [$s1]
    st.global.f32  [$g1], $o1
    exit
"""


def _fwht(x: np.ndarray) -> np.ndarray:
    """Natural-order fast Walsh-Hadamard transform (oracle)."""
    x = x.copy()
    n = x.size
    step = 1
    while step < n:
        for start in range(0, n, 2 * step):
            a = x[start : start + step].copy()
            b = x[start + step : start + 2 * step].copy()
            x[start : start + step] = a + b
            x[start + step : start + 2 * step] = a - b
        step *= 2
    return x


_SCALE = {"tiny": (64, 2), "small": (256, 4), "medium": (256, 8)}


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    threads, blocks = _SCALE[scale]
    n = 2 * threads  # points per TB
    log2n = int(np.log2(n))
    program = assemble(KERNEL, name="fw")
    launch = LaunchConfig(grid_dim=Dim3(blocks), block_dim=Dim3(threads))
    rng = np.random.default_rng(11)
    data = rng.standard_normal(n * blocks).astype(np.float64)
    expected = np.concatenate([_fwht(data[b * n : (b + 1) * n]) for b in range(blocks)])

    def make_memory():
        mem = GlobalMemory(1 << 14)
        pdata = mem.alloc_array(data)
        return mem, {"data": pdata, "log2n": log2n, "half": threads}

    def check(mem, params):
        return close(mem, params["data"], expected, rtol=1e-9)

    return Workload(
        name="fastWalshTransform",
        abbr="FW",
        suite="CUDA SDK",
        tb_dim=(threads, 1),
        dimensionality=1,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"Walsh-Hadamard transform, {blocks} x {n}-point segments",
    )
