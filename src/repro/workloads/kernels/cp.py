"""CP — Coulombic potential (GPGPU-Sim distribution), TB (16,8).

Each thread accumulates the electrostatic potential at one lattice point
over all atoms.  Atom records are loaded at loop-index addresses —
uniform redundant — the x-distance chain descends from ``tid.x``
(conditionally redundant), and the distance/rsqrt arithmetic is vector
SFU work.
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel cp
.param ax
.param ay
.param aw
.param natoms
.param out
.param w
.param spacing
    mov.u32        $tx, %tid.x
    mov.u32        $ty, %tid.y
    mul.u32        $gxi, %ctaid.x, %ntid.x
    add.u32        $gxi, $gxi, $tx
    mul.u32        $gyi, %ctaid.y, %ntid.y
    add.u32        $gyi, $gyi, $ty
    cvt.f32        $px, $gxi
    mul.f32        $px, $px, %param.spacing
    cvt.f32        $py, $gyi
    mul.f32        $py, $py, %param.spacing
    mov.f32        $acc, 0.0
    mov.u32        $j, 0
atom_loop:
    shl.u32        $ao, $j, 2
    add.u32        $t, $ao, %param.ax
    ld.global.f32  $axj, [$t]
    add.u32        $t, $ao, %param.ay
    ld.global.f32  $ayj, [$t]
    add.u32        $t, $ao, %param.aw
    ld.global.f32  $awj, [$t]
    sub.f32        $dx, $px, $axj
    sub.f32        $dy, $py, $ayj
    mul.f32        $r2, $dx, $dx
    mad.f32        $r2, $dy, $dy, $r2
    sqrt.f32       $r, $r2
    rcp.f32        $rinv, $r
    mad.f32        $acc, $awj, $rinv, $acc
    add.u32        $j, $j, 1
    setp.lt.u32    $p0, $j, %param.natoms
@$p0 bra atom_loop
    mul.u32        $idx, $gyi, %param.w
    add.u32        $idx, $idx, $gxi
    shl.u32        $o, $idx, 2
    add.u32        $o, $o, %param.out
    st.global.f32  [$o], $acc
    exit
"""

_SCALE = {"tiny": (8, 4, 1, 1, 8), "small": (16, 8, 4, 2, 24), "medium": (16, 8, 4, 4, 64)}


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    bx, by, gx, gy, natoms = _SCALE[scale]
    w, h = bx * gx, by * gy
    spacing = 0.5
    program = assemble(KERNEL, name="cp")
    launch = LaunchConfig(grid_dim=Dim3(gx, gy), block_dim=Dim3(bx, by))
    rng = np.random.default_rng(29)
    # Atoms off the lattice plane so r^2 is never zero.
    ax = (rng.random(natoms) * w * spacing + 0.21).astype(np.float64)
    ay = (rng.random(natoms) * h * spacing + 0.37).astype(np.float64)
    aw = rng.random(natoms).astype(np.float64)
    xs = np.arange(w) * spacing
    ys = np.arange(h) * spacing
    px, py = np.meshgrid(xs, ys)
    expected = np.zeros((h, w))
    for j in range(natoms):
        r = np.sqrt((px - ax[j]) ** 2 + (py - ay[j]) ** 2)
        expected += aw[j] / r

    def make_memory():
        mem = GlobalMemory(1 << 14)
        pax = mem.alloc_array(ax)
        pay = mem.alloc_array(ay)
        paw = mem.alloc_array(aw)
        pout = mem.alloc(w * h)
        return mem, {
            "ax": pax, "ay": pay, "aw": paw, "natoms": natoms,
            "out": pout, "w": w, "spacing": spacing,
        }

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-7)

    return Workload(
        name="CP",
        abbr="CP",
        suite="GPGPU-sim dist.",
        tb_dim=(bx, by),
        dimensionality=2,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"coulombic potential, {h}x{w} lattice x {natoms} atoms",
    )
