"""MM — tiled matrix multiply (CUDA SDK matrixMul), TB (32,32).

The paper's showcase kernel (Figure 6): the inner product loop reads the
B tile from shared memory at a ``tid.x``-derived offset, so with a 32x32
TB every warp loads the *same* tile column values — unstructured
TB-redundant shared-memory loads — while the A-tile read is warp-uniform
and the ``mad`` is true vector work.  "MM has a significant number of
unstructured-redundant accesses to shared memory" (Section 6.1).
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel mm
.param a
.param b
.param c
.param width
.param tiles
.shared 2048
    mov.u32        $tx, %tid.x
    mov.u32        $ty, %tid.y
    mul.u32        $row, %ctaid.y, %ntid.y
    add.u32        $row, $row, $ty
    mul.u32        $col, %ctaid.x, %ntid.x
    add.u32        $col, $col, $tx
    mov.f32        $acc, 0.0
    # shared layout: As at 0, Bs at ntid.x*ntid.y words
    mul.u32        $bsbase, %ntid.x, %ntid.y
    shl.u32        $bsbase, $bsbase, 2
    # As[ty][tx] byte offset
    mul.u32        $sa, $ty, %ntid.x
    add.u32        $sa, $sa, $tx
    shl.u32        $sa, $sa, 2
    add.u32        $sb, $sa, $bsbase
    mov.u32        $t, 0
tile_loop:
    # load A[row][t*TILE + tx] into As[ty][tx]
    mul.u32        $k0, $t, %ntid.x
    add.u32        $ai, $k0, $tx
    mul.u32        $tmp, $row, %param.width
    add.u32        $tmp, $tmp, $ai
    shl.u32        $tmp, $tmp, 2
    add.u32        $tmp, $tmp, %param.a
    ld.global.f32  $va, [$tmp]
    st.shared.f32  [$sa], $va
    # load B[t*TILE + ty][col] into Bs[ty][tx]
    add.u32        $bi, $k0, $ty
    mul.u32        $tmp, $bi, %param.width
    add.u32        $tmp, $tmp, $col
    shl.u32        $tmp, $tmp, 2
    add.u32        $tmp, $tmp, %param.b
    ld.global.f32  $vb, [$tmp]
    st.shared.f32  [$sb], $vb
    bar.sync
    # inner product over the tile, unrolled 4x like the paper's
    # register-allocated MM kernel (Figure 6): each tap is a
    # conditionally redundant Bs read + offset bump feeding one true
    # vector mad.
    mul.u32        $ofsa, $ty, %ntid.x
    shl.u32        $ofsa, $ofsa, 2
    shl.u32        $ofsb, $tx, 2
    add.u32        $ofsb, $ofsb, $bsbase
    mul.u32        $stride, %ntid.x, 4
    mov.u32        $k, 0
inner:
    ld.shared.f32  $b0, [$ofsb]
    add.u32        $ofsb, $ofsb, $stride
    ld.shared.f32  $a0, [$ofsa]
    mad.f32        $acc, $a0, $b0, $acc
    ld.shared.f32  $b1, [$ofsb]
    add.u32        $ofsb, $ofsb, $stride
    ld.shared.f32  $a1, [$ofsa + 4]
    mad.f32        $acc, $a1, $b1, $acc
    ld.shared.f32  $b2, [$ofsb]
    add.u32        $ofsb, $ofsb, $stride
    ld.shared.f32  $a2, [$ofsa + 8]
    mad.f32        $acc, $a2, $b2, $acc
    ld.shared.f32  $b3, [$ofsb]
    add.u32        $ofsb, $ofsb, $stride
    ld.shared.f32  $a3, [$ofsa + 12]
    mad.f32        $acc, $a3, $b3, $acc
    add.u32        $ofsa, $ofsa, 16
    add.u32        $k, $k, 4
    setp.lt.u32    $p0, $k, %ntid.x
@$p0 bra inner
    bar.sync
    add.u32        $t, $t, 1
    setp.lt.u32    $p1, $t, %param.tiles
@$p1 bra tile_loop
    mul.u32        $tmp, $row, %param.width
    add.u32        $tmp, $tmp, $col
    shl.u32        $tmp, $tmp, 2
    add.u32        $tmp, $tmp, %param.c
    st.global.f32  [$tmp], $acc
    exit
"""

#: (tile, matrix width) per scale.  ``tiny`` shrinks the TB to keep unit
#: tests fast; ``small``/``medium`` use the paper's 32x32 TB.
_SCALE = {"tiny": (8, 16), "small": (32, 64), "medium": (32, 128)}


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    tile, width = _SCALE[scale]
    program = assemble(KERNEL, name="mm")
    launch = LaunchConfig(
        grid_dim=Dim3(width // tile, width // tile),
        block_dim=Dim3(tile, tile),
    )
    rng = np.random.default_rng(42)
    a = rng.standard_normal((width, width)).astype(np.float64)
    b = rng.standard_normal((width, width)).astype(np.float64)
    expected = a @ b

    def make_memory():
        mem = GlobalMemory(max(1 << 16, 4 * width * width))
        pa = mem.alloc_array(a)
        pb = mem.alloc_array(b)
        pc = mem.alloc(width * width)
        return mem, {"a": pa, "b": pb, "c": pc, "width": width, "tiles": width // tile}

    def check(mem, params):
        return close(mem, params["c"], expected, rtol=1e-9)

    return Workload(
        name="MatrixMul",
        abbr="MM",
        suite="CUDA SDK",
        tb_dim=(tile, tile),
        dimensionality=2,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"tiled {width}x{width} matrix multiply, tile {tile}",
    )
