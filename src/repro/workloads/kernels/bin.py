"""BIN — binomialOptions (CUDA SDK), TB (256,1).

One option per TB: the option value lattice lives in shared memory and
is contracted by backward induction, one level per barrier-separated
step.  The pricing coefficients (pu, pd, discount) are kernel parameters
— uniform redundancy — while the lattice arithmetic is per-thread vector
work predicated on the shrinking active range.
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel bin
.param s0
.param k
.param l2u
.param pu
.param pd
.param df
.param n
.param out
.shared 1024
    mov.u32        $i, %tid.x
    shl.u32        $addr, $i, 2
    # payoff at leaf i: max(s0 * 2^(i*l2u) - k, 0)
    cvt.f32        $fi, $i
    mul.f32        $e, $fi, %param.l2u
    ex2.f32        $s, $e
    mul.f32        $s, $s, %param.s0
    sub.f32        $v, $s, %param.k
    max.f32        $v, $v, 0.0
    st.shared.f32  [$addr], $v
    bar.sync
    mov.u32        $step, 0
step_loop:
    sub.u32        $lim, %param.n, $step
    setp.lt.u32    $p0, $i, $lim
@$p0 ld.shared.f32 $a, [$addr + 4]
@$p0 ld.shared.f32 $b, [$addr]
@$p0 mul.f32       $t1, $a, %param.pu
@$p0 mad.f32       $t1, $b, %param.pd, $t1
@$p0 mul.f32       $t1, $t1, %param.df
    bar.sync
@$p0 st.shared.f32 [$addr], $t1
    bar.sync
    add.u32        $step, $step, 1
    setp.lt.u32    $p1, $step, %param.n
@$p1 bra step_loop
    setp.eq.u32    $p2, $i, 0
@$p2 mul.u32       $o, %ctaid.x, 4
@$p2 add.u32       $o, $o, %param.out
@$p2 ld.shared.f32 $r, [$addr]
@$p2 st.global.f32 [$o], $r
    exit
"""

_SCALE = {"tiny": (64, 2, 8), "small": (256, 4, 24), "medium": (256, 8, 64)}


def _oracle(s0: float, k: float, l2u: float, pu: float, pd: float, df: float, n: int) -> float:
    i = np.arange(n + 1, dtype=np.float64)
    v = np.maximum(s0 * np.exp2(i * l2u) - k, 0.0)
    for _step in range(n):
        v = (pu * v[1:] + pd * v[:-1]) * df
    return float(v[0])


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    threads, options, steps = _SCALE[scale]
    program = assemble(KERNEL, name="bin")
    launch = LaunchConfig(grid_dim=Dim3(options), block_dim=Dim3(threads))
    s0, strike, l2u = 100.0, 100.0, 0.02
    pu, pd, df = 0.55, 0.45, 0.995
    expected = np.full(
        options, _oracle(s0, strike, l2u, pu, pd, df, steps), dtype=np.float64
    )

    def make_memory():
        mem = GlobalMemory(1 << 14)
        pout = mem.alloc(options)
        return mem, {
            "s0": s0, "k": strike, "l2u": l2u, "pu": pu, "pd": pd,
            "df": df, "n": steps, "out": pout,
        }

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-9)

    return Workload(
        name="binomialOptions",
        abbr="BIN",
        suite="CUDA SDK",
        tb_dim=(threads, 1),
        dimensionality=1,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"binomial option pricing, {options} options x {steps} steps",
    )
