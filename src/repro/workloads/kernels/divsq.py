"""DIVSQ — threshold-gated sqrt (divergent suite), TB (64,1).

Divergence with asymmetric arm cost: lanes above the threshold take the
long-latency SFU ``sqrt`` path, the rest a cheap polynomial.  The shared
``mad`` tail is the aligned pair; melding turns the SFU arm into a
predicated instruction the whole warp issues once instead of a
serialized half-warp detour.
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel divsq
.param x
.param out
.param t
    mul.u32        $gid, %ctaid.x, %ntid.x
    add.u32        $gid, $gid, %tid.x
    shl.u32        $xo, $gid, 2
    add.u32        $xo, $xo, %param.x
    ld.global.f32  $xv, [$xo]
    setp.gt.f32    $p0, $xv, %param.t
@$p0 bra big_arm
    # below threshold: y = (x/2)^2 + 1/4
    mul.f32        $h, $xv, 0.5
    mad.f32        $y, $h, $h, 0.25
    bra join
big_arm:
    # above threshold: y = sqrt(x)^2 + 1/4
    sqrt.f32       $h, $xv
    mad.f32        $y, $h, $h, 0.25
join:
    shl.u32        $oo, $gid, 2
    add.u32        $oo, $oo, %param.out
    st.global.f32  [$oo], $y
    exit
"""

_SCALE = {"tiny": (64, 2), "small": (64, 12), "medium": (64, 48)}


def _oracle(x: np.ndarray, t: float) -> np.ndarray:
    small = (x * 0.5) ** 2 + 0.25
    big = np.sqrt(np.maximum(x, 0.0)) ** 2 + 0.25
    return np.where(x > t, big, small)


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    threads_per_block, blocks = _SCALE[scale]
    program = assemble(KERNEL, name="divsq")
    launch = LaunchConfig(grid_dim=Dim3(blocks), block_dim=Dim3(threads_per_block))
    rng = np.random.default_rng(17)
    total = threads_per_block * blocks
    # Positive inputs so the sqrt arm is exact against the oracle.
    x = (0.25 + rng.random(total)).astype(np.float64)
    t = 0.75
    expected = _oracle(x, t)

    def make_memory():
        mem = GlobalMemory(1 << 16)
        px = mem.alloc_array(x)
        pout = mem.alloc(total)
        return mem, {"x": px, "out": pout, "t": t}

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-9)

    return Workload(
        name="DivergeThresholdSqrt",
        abbr="DIVSQ",
        suite="divergent",
        tb_dim=(threads_per_block, 1),
        dimensionality=1,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"threshold-gated sqrt over {total} elements",
    )
