"""DIVABS — sign-dependent rescale (divergent suite), TB (128,1).

Data-dependent divergence: lanes branch on the *sign of their input*,
so the split ratio follows the data (~50/50 for the standard-normal
inputs) instead of the thread index.  The negative arm carries one
extra instruction (the negate), which exercises the melder's handling
of unequal arm lengths; the trailing ``add`` is the aligned pair.
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel divabs
.param x
.param out
.param s
.param b
    mul.u32        $gid, %ctaid.x, %ntid.x
    add.u32        $gid, $gid, %tid.x
    shl.u32        $xo, $gid, 2
    add.u32        $xo, $xo, %param.x
    ld.global.f32  $xv, [$xo]
    setp.lt.f32    $p0, $xv, 0.0
@$p0 bra neg_arm
    # non-negative lanes: y = x*s + b
    mul.f32        $m, $xv, %param.s
    add.f32        $y, $m, %param.b
    bra join
neg_arm:
    # negative lanes: y = (-x)*s + b
    neg.f32        $nx, $xv
    mul.f32        $m, $nx, %param.s
    add.f32        $y, $m, %param.b
join:
    shl.u32        $oo, $gid, 2
    add.u32        $oo, $oo, %param.out
    st.global.f32  [$oo], $y
    exit
"""

_SCALE = {"tiny": (128, 1), "small": (128, 8), "medium": (128, 32)}


def _oracle(x: np.ndarray, s: float, b: float) -> np.ndarray:
    return np.abs(x) * s + b


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    threads_per_block, blocks = _SCALE[scale]
    program = assemble(KERNEL, name="divabs")
    launch = LaunchConfig(grid_dim=Dim3(blocks), block_dim=Dim3(threads_per_block))
    rng = np.random.default_rng(13)
    total = threads_per_block * blocks
    x = rng.standard_normal(total).astype(np.float64)
    s, b = 0.75, 0.125
    expected = _oracle(x, s, b)

    def make_memory():
        mem = GlobalMemory(1 << 16)
        px = mem.alloc_array(x)
        pout = mem.alloc(total)
        return mem, {"x": px, "out": pout, "s": s, "b": b}

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-9)

    return Workload(
        name="DivergeAbsRescale",
        abbr="DIVABS",
        suite="divergent",
        tb_dim=(threads_per_block, 1),
        dimensionality=1,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"sign-dependent rescale over {total} elements",
    )
