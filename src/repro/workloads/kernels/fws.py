"""FWS — Floyd-Warshall (Pannotia), TB (16,16).

Batched all-pairs shortest paths: each TB relaxes one 16x16 distance
matrix in shared memory, one barrier-separated ``k`` phase at a time.
The ``d[k][j]`` operand is indexed by ``tid.x`` — identical in every
warp of the TB (unstructured redundancy) — while ``d[i][k]`` varies
with the row and stays vector.  The paper notes FWS is memory-dominated:
"DARSIE improves the performance of FWS by 13%, despite the fact that
21% of its instructions are skipped" (Section 6.1).
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, exact, require_scale

KERNEL = """
.kernel fws
.param d
.param n
.shared 512
    mov.u32        $tx, %tid.x
    mov.u32        $ty, %tid.y
    mul.u32        $cell, $ty, %param.n
    add.u32        $cell, $cell, $tx
    # global base of this TB's matrix
    mul.u32        $msize, %param.n, %param.n
    mul.u32        $gbase, %ctaid.x, $msize
    add.u32        $gidx, $gbase, $cell
    shl.u32        $gaddr, $gidx, 2
    add.u32        $gaddr, $gaddr, %param.d
    ld.global.s32  $v, [$gaddr]
    shl.u32        $sij, $cell, 2
    st.shared.s32  [$sij], $v
    bar.sync
    mov.u32        $k, 0
k_loop:
    # d[i][k] — row operand (vector)
    mul.u32        $aik, $ty, %param.n
    add.u32        $aik, $aik, $k
    shl.u32        $aik, $aik, 2
    ld.shared.s32  $dik, [$aik]
    # d[k][j] — column operand (TB-redundant via tid.x)
    mul.u32        $akj, $k, %param.n
    add.u32        $akj, $akj, $tx
    shl.u32        $akj, $akj, 2
    ld.shared.s32  $dkj, [$akj]
    add.u32        $alt, $dik, $dkj
    ld.shared.s32  $old, [$sij]
    min.s32        $nv, $old, $alt
    bar.sync
    st.shared.s32  [$sij], $nv
    bar.sync
    add.u32        $k, $k, 1
    setp.lt.u32    $p0, $k, %param.n
@$p0 bra k_loop
    ld.shared.s32  $res, [$sij]
    st.global.s32  [$gaddr], $res
    exit
"""

_SCALE = {"tiny": (8, 1), "small": (16, 4), "medium": (16, 8)}


def _oracle(mats: np.ndarray) -> np.ndarray:
    out = mats.copy()
    n = out.shape[1]
    for b in range(out.shape[0]):
        d = out[b]
        for k in range(n):
            d[:] = np.minimum(d, d[:, k : k + 1] + d[k : k + 1, :])
    return out


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    n, batches = _SCALE[scale]
    program = assemble(KERNEL, name="fws")
    launch = LaunchConfig(grid_dim=Dim3(batches), block_dim=Dim3(n, n))
    rng = np.random.default_rng(19)
    mats = rng.integers(1, 100, size=(batches, n, n)).astype(np.int64)
    idx = np.arange(n)
    mats[:, idx, idx] = 0
    expected = _oracle(mats)

    def make_memory():
        mem = GlobalMemory(1 << 14)
        pd = mem.alloc_array(mats)
        return mem, {"d": pd, "n": n}

    def check(mem, params):
        return exact(mem, params["d"], expected)

    return Workload(
        name="Floyd-Warshall",
        abbr="FWS",
        suite="Pannotia",
        tb_dim=(n, n),
        dimensionality=2,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"batched APSP, {batches} x {n}x{n} matrices",
    )
