"""DIVEO — even/odd lane split (divergent suite), TB (64,1).

The worst case for SIMT divergence: every warp splits exactly in half on
thread-id parity, so the baseline serializes both if-arms of every
dynamic branch at 50 % lane occupancy.  The two arms share their leading
square (``mul.f32 $sq, $xv, $xv``) and differ in the rest, giving the
melder one aligned pair and four predicable instructions — alignment
similarity 1/3, just over the DARM profitability bar.

Not part of Table 1; registered in the divergent suite used by the
melding verifier and the ``compare-techniques`` matrix.
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel diveo
.param x
.param out
.param a
    mul.u32        $gid, %ctaid.x, %ntid.x
    add.u32        $gid, $gid, %tid.x
    shl.u32        $xo, $gid, 2
    add.u32        $xo, $xo, %param.x
    ld.global.f32  $xv, [$xo]
    and.u32        $lsb, $gid, 1
    setp.eq.u32    $p0, $lsb, 1
@$p0 bra odd_arm
    # even lanes: y = x*a + 1 + x^2
    mul.f32        $sq, $xv, $xv
    mad.f32        $y, $xv, %param.a, 1.0
    add.f32        $y, $y, $sq
    bra join
odd_arm:
    # odd lanes: y = x*a - 1 - x^2
    mul.f32        $sq, $xv, $xv
    mad.f32        $y, $xv, %param.a, -1.0
    sub.f32        $y, $y, $sq
join:
    shl.u32        $oo, $gid, 2
    add.u32        $oo, $oo, %param.out
    st.global.f32  [$oo], $y
    exit
"""

_SCALE = {"tiny": (64, 2), "small": (64, 16), "medium": (64, 64)}


def _oracle(x: np.ndarray, a: float) -> np.ndarray:
    idx = np.arange(x.size)
    even = x * a + 1.0 + x * x
    odd = x * a - 1.0 - x * x
    return np.where(idx % 2 == 1, odd, even)


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    threads_per_block, blocks = _SCALE[scale]
    program = assemble(KERNEL, name="diveo")
    launch = LaunchConfig(grid_dim=Dim3(blocks), block_dim=Dim3(threads_per_block))
    rng = np.random.default_rng(11)
    total = threads_per_block * blocks
    x = rng.standard_normal(total).astype(np.float64)
    a = 1.5
    expected = _oracle(x, a)

    def make_memory():
        mem = GlobalMemory(1 << 16)
        px = mem.alloc_array(x)
        pout = mem.alloc(total)
        return mem, {"x": px, "out": pout, "a": a}

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-9)

    return Workload(
        name="DivergeEvenOdd",
        abbr="DIVEO",
        suite="divergent",
        tb_dim=(threads_per_block, 1),
        dimensionality=1,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"even/odd lane split over {total} elements",
    )
