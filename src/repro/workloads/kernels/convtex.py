"""CONVTEX — convolutionTexture row pass (CUDA SDK), TB (16,16).

Separable convolution along rows with clamped borders.  Filter weights
load at loop-index addresses (uniform redundant); the column index chain
descends from ``tid.x`` (conditionally redundant); pixel loads mix the
row coordinate in and stay vector.
"""

from __future__ import annotations

import numpy as np

from repro.isa import assemble
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload, close, require_scale

KERNEL = """
.kernel convtex
.param img
.param wts
.param out
.param w
.param wmax
.param taps
.param radius
    mov.u32        $tx, %tid.x
    mov.u32        $ty, %tid.y
    mul.u32        $gx, %ctaid.x, %ntid.x
    add.u32        $gx, $gx, $tx
    mul.u32        $gy, %ctaid.y, %ntid.y
    add.u32        $gy, $gy, $ty
    mul.u32        $rowbase, $gy, %param.w
    mov.f32        $acc, 0.0
    mov.u32        $k, 0
tap_loop:
    shl.u32        $wo, $k, 2
    add.u32        $wo, $wo, %param.wts
    ld.global.f32  $wt, [$wo]
    add.u32        $xc, $gx, $k
    sub.u32        $xc, $xc, %param.radius
    max.s32        $xc, $xc, 0
    min.s32        $xc, $xc, %param.wmax
    add.u32        $pi, $rowbase, $xc
    shl.u32        $pa, $pi, 2
    add.u32        $pa, $pa, %param.img
    ld.global.f32  $v, [$pa]
    mad.f32        $acc, $wt, $v, $acc
    add.u32        $k, $k, 1
    setp.lt.u32    $p0, $k, %param.taps
@$p0 bra tap_loop
    add.u32        $oi, $rowbase, $gx
    shl.u32        $oa, $oi, 2
    add.u32        $oa, $oa, %param.out
    st.global.f32  [$oa], $acc
    exit
"""

_SCALE = {"tiny": (8, 2, 1, 1), "small": (16, 4, 2, 2), "medium": (16, 8, 4, 2)}


def build(scale: str = "small") -> Workload:
    require_scale(scale)
    tile, gx, gy, radius = _SCALE[scale][0], _SCALE[scale][1], _SCALE[scale][2], _SCALE[scale][3]
    w, h = tile * gx, tile * gy
    taps = 2 * radius + 1
    program = assemble(KERNEL, name="convtex")
    launch = LaunchConfig(grid_dim=Dim3(gx, gy), block_dim=Dim3(tile, tile))
    rng = np.random.default_rng(31)
    img = rng.random((h, w)).astype(np.float64)
    wts = rng.random(taps).astype(np.float64)
    wts /= wts.sum()
    cols = np.arange(w)
    expected = np.zeros_like(img)
    for k in range(taps):
        xc = np.clip(cols + k - radius, 0, w - 1)
        expected += wts[k] * img[:, xc]

    def make_memory():
        mem = GlobalMemory(1 << 16)
        pimg = mem.alloc_array(img)
        pwts = mem.alloc_array(wts)
        pout = mem.alloc(w * h)
        return mem, {
            "img": pimg, "wts": pwts, "out": pout, "w": w,
            "wmax": w - 1, "taps": taps, "radius": radius,
        }

    def check(mem, params):
        return close(mem, params["out"], expected, rtol=1e-9)

    return Workload(
        name="convolutionTexture",
        abbr="CONVTEX",
        suite="CUDA SDK",
        tb_dim=(tile, tile),
        dimensionality=2,
        program=program,
        launch=launch,
        make_memory=make_memory,
        check=check,
        scale=scale,
        description=f"row convolution, {h}x{w} image, {taps} taps",
    )
