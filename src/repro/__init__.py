"""DARSIE — Dimensionality-Aware Redundant SIMT Instruction Elimination.

A full Python reproduction of Yeh, Green & Rogers, ASPLOS 2020: the
redundancy taxonomy, the static compiler pass and launch-time promotion,
the fetch-stage instruction-skipping microarchitecture with multithreaded
register renaming, the UV and DAC-IDEAL comparison points, a cycle-level
SIMT GPU substrate to run it all on, the thirteen Table 1 workloads, and
a harness regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro import assemble, analyze_program, LaunchConfig, Dim3
    from repro import GlobalMemory, run_functional, simulate, DarsieFrontend

    program = assemble(KERNEL_SOURCE)
    analysis = analyze_program(program)
    launch = LaunchConfig(grid_dim=Dim3(4, 4), block_dim=Dim3(16, 16))
    memory = GlobalMemory()
    result = simulate(program, launch, memory, params={...},
                      frontend_factory=lambda: DarsieFrontend(analysis))

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from repro.analysis import geomean, redundancy_levels, taxonomy_breakdown
from repro.baselines import DacIdealFrontend, UVFrontend, build_dac_profile
from repro.config import ConfigError, RunConfig, apply_overrides, parse_overrides
from repro.core import (
    CompilerAnalysis,
    DarsieConfig,
    DarsieFrontend,
    Marking,
    RedundancyClass,
    analyze_program,
    paper_area_model,
    promote_markings,
    promotion_applies,
)
from repro.energy import EnergyModel, PASCAL_ENERGY_MODEL
from repro.harness import WorkloadRunner, experiments
from repro.isa import AssemblyError, Instruction, Program, assemble
from repro.isa.encoding import EncodedProgram, decode_program, encode_program
from repro.simt import (
    Dim3,
    ExecutionTrace,
    GlobalMemory,
    KernelParams,
    LaunchConfig,
    SharedMemory,
    Tracer,
    run_functional,
)
from repro.staticlib import (
    ControlFlowGraph,
    LintReport,
    Liveness,
    ReachingDefinitions,
    SoundnessReport,
    audit_all,
    audit_workload,
    lint_program,
    lint_workload,
)
from repro.timing import GPU, GPUConfig, PASCAL_GTX1080TI, SimulationResult, simulate, small_config
from repro.timing.frontend import NullFrontend, SiliconSyncFrontend
from repro.variants import REGISTRY, Variant, VariantRegistry
from repro.workloads import ALL_ABBRS, ONE_D_ABBRS, TWO_D_ABBRS, build_workload

__version__ = "1.0.0"

__all__ = [
    "AssemblyError", "Instruction", "Program", "assemble",
    "EncodedProgram", "decode_program", "encode_program",
    "Dim3", "ExecutionTrace", "GlobalMemory", "KernelParams",
    "LaunchConfig", "SharedMemory", "Tracer", "run_functional",
    "CompilerAnalysis", "DarsieConfig", "DarsieFrontend", "Marking",
    "RedundancyClass", "analyze_program", "paper_area_model",
    "promote_markings", "promotion_applies",
    "GPU", "GPUConfig", "PASCAL_GTX1080TI", "SimulationResult",
    "simulate", "small_config",
    "NullFrontend", "SiliconSyncFrontend",
    "DacIdealFrontend", "UVFrontend", "build_dac_profile",
    "PASCAL_ENERGY_MODEL", "EnergyModel",
    "ConfigError", "RunConfig", "apply_overrides", "parse_overrides",
    "REGISTRY", "Variant", "VariantRegistry",
    "geomean", "redundancy_levels", "taxonomy_breakdown",
    "ALL_ABBRS", "ONE_D_ABBRS", "TWO_D_ABBRS", "build_workload",
    "WorkloadRunner", "experiments",
    "ControlFlowGraph", "ReachingDefinitions", "Liveness",
    "LintReport", "lint_program", "lint_workload",
    "SoundnessReport", "audit_workload", "audit_all",
]
