"""Event-based energy model (GPUWattch-style accounting).

See :mod:`repro.energy.model`.
"""

from repro.energy.model import EnergyBreakdown, EnergyModel, PASCAL_ENERGY_MODEL

__all__ = ["EnergyModel", "EnergyBreakdown", "PASCAL_ENERGY_MODEL"]
