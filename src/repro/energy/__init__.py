"""Event-based energy model (GPUWattch-style accounting).

See :mod:`repro.energy.model`.
"""

from repro.energy.model import (
    ENERGY_MODELS,
    EnergyBreakdown,
    EnergyModel,
    PASCAL_ENERGY_MODEL,
    get_energy_model,
)

__all__ = [
    "EnergyModel",
    "EnergyBreakdown",
    "PASCAL_ENERGY_MODEL",
    "ENERGY_MODELS",
    "get_energy_model",
]
