"""Energy model: per-event dynamic energy plus per-cycle leakage.

The paper estimates energy with GPUWattch [Leng et al., ISCA 2013] and
models DARSIE's added structures with CACTI.  We reproduce the
*accounting structure*: every counted microarchitectural event carries a
fixed dynamic energy, and each SM-cycle adds static (leakage) energy.
The register-file numbers come straight from Table 2 (14.2 pJ/read,
25.9 pJ/write); the remaining coefficients are representative values in
the ranges GPUWattch reports for a 16 nm-class GPU.  Energy *reductions*
(Figure 11) are relative, so coefficient scale affects magnitude but not
the ordering the reproduction must preserve.

DARSIE's overhead events (skip table, PC coalescer, rename/version
tables, majority mask) use CACTI-style small-SRAM energies — the paper
measures their total at ~0.95 % of dynamic energy (Section 6.1), which
this model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.timing.stats import EnergyEvent, SimStats


@dataclass(frozen=True)
class EnergyModel:
    """Per-event dynamic energies (picojoules) and leakage (pJ/cycle/SM)."""

    event_pj: Dict[EnergyEvent, float]
    leakage_pj_per_cycle: float = 250.0

    def dynamic_energy_pj(self, stats: SimStats) -> float:
        return sum(
            self.event_pj.get(event, 0.0) * count
            for event, count in stats.energy_events.items()
        )

    def static_energy_pj(self, stats: SimStats, num_sms: int) -> float:
        return self.leakage_pj_per_cycle * stats.cycles * num_sms

    def total_energy_pj(self, stats: SimStats, num_sms: int) -> float:
        return self.dynamic_energy_pj(stats) + self.static_energy_pj(stats, num_sms)

    def breakdown(self, stats: SimStats, num_sms: int) -> "EnergyBreakdown":
        per_event = {
            event: self.event_pj.get(event, 0.0) * count
            for event, count in stats.energy_events.items()
        }
        darsie = sum(per_event.get(e, 0.0) for e in _DARSIE_EVENTS)
        dynamic = sum(per_event.values())
        static = self.static_energy_pj(stats, num_sms)
        return EnergyBreakdown(
            per_event_pj=per_event,
            dynamic_pj=dynamic,
            static_pj=static,
            total_pj=dynamic + static,
            darsie_overhead_pj=darsie,
        )


_DARSIE_EVENTS = (
    EnergyEvent.SKIP_TABLE_PROBE,
    EnergyEvent.SKIP_TABLE_WRITE,
    EnergyEvent.PC_COALESCER,
    EnergyEvent.RENAME_READ,
    EnergyEvent.RENAME_WRITE,
    EnergyEvent.VERSION_TABLE,
    EnergyEvent.MAJORITY_MASK,
)


@dataclass
class EnergyBreakdown:
    """Energy totals of one simulation."""

    per_event_pj: Dict[EnergyEvent, float]
    dynamic_pj: float
    static_pj: float
    total_pj: float
    darsie_overhead_pj: float

    @property
    def overhead_fraction(self) -> float:
        """DARSIE structure energy as a fraction of dynamic energy
        (Section 6.1 reports 0.95 %)."""
        return self.darsie_overhead_pj / self.dynamic_pj if self.dynamic_pj else 0.0


#: Default coefficients.  RF energies are Table 2's published values;
#: the rest are representative GPUWattch-scale numbers.  DARSIE's small
#: SRAM structures (82 B majority mask, ~2.6 kB skip table, ~2.7 kB
#: rename/version tables, Section 6.3) cost ~1 pJ-scale accesses.
PASCAL_ENERGY_MODEL = EnergyModel(
    event_pj={
        EnergyEvent.ICACHE_FETCH: 35.0,
        EnergyEvent.DECODE: 10.0,
        EnergyEvent.ISSUE: 8.0,
        EnergyEvent.RF_READ: 14.2,     # Table 2
        EnergyEvent.RF_WRITE: 25.9,    # Table 2
        EnergyEvent.ALU_OP: 45.0,
        EnergyEvent.SFU_OP: 90.0,
        EnergyEvent.SHARED_ACCESS: 55.0,
        EnergyEvent.L1_ACCESS: 80.0,
        EnergyEvent.DRAM_ACCESS: 510.0,
        # DARSIE structures are tiny SRAMs (82 B mask, ~2.6 kB table,
        # ~2.7 kB rename/version, Section 6.3); CACTI-scale access
        # energies land well below 1 pJ.  Calibrated so the aggregate
        # overhead matches the paper's ~0.95 % of dynamic energy.
        EnergyEvent.SKIP_TABLE_PROBE: 0.40,
        EnergyEvent.SKIP_TABLE_WRITE: 0.50,
        EnergyEvent.PC_COALESCER: 0.20,
        EnergyEvent.RENAME_READ: 0.35,
        EnergyEvent.RENAME_WRITE: 0.40,
        EnergyEvent.VERSION_TABLE: 0.35,
        EnergyEvent.MAJORITY_MASK: 0.15,
    },
)


#: Named energy models selectable through ``RunConfig.energy``.
ENERGY_MODELS: Dict[str, EnergyModel] = {
    "pascal": PASCAL_ENERGY_MODEL,
}


def get_energy_model(name: str) -> EnergyModel:
    """Resolve a ``RunConfig.energy`` name to a model."""
    try:
        return ENERGY_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown energy model {name!r}; known: {tuple(ENERGY_MODELS)}"
        ) from None
