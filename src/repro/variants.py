"""Variant registry: every named run configuration, declared once.

A *variant* is a named way of running a kernel on the timing substrate —
the unmodified baseline, the UV and DAC-IDEAL comparison points, DARSIE
and its paper ablations (Figures 8 and 12).  Each registry entry
declares everything the rest of the stack needs:

- ``make_frontend`` — how to build the SM frontend for a run (given the
  prepared inputs and the effective DARSIE knobs);
- ``requires`` — which expensive inputs the runner must prepare
  (``"analysis"`` for the compiler pass, ``"dac_profile"`` for the
  DAC-IDEAL oracle profile);
- ``tags`` — which experiment families select the variant, so the
  figure drivers query the registry instead of hand-copying name
  tuples;
- ``darsie_defaults`` — the knob preset a DARSIE-family variant implies;
- ``overhead_fraction`` — how to attribute added-hardware energy
  overhead (Figure 11's DARSIE column).

Adding a new ablation variant is one :func:`REGISTRY.register` call —
no edits to :mod:`repro.harness.runner` or
:mod:`repro.harness.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.baselines import DacIdealFrontend, UVFrontend
from repro.core import DarsieConfig, DarsieFrontend
from repro.isa.program import Program
from repro.staticlib.passes import darm_ideal_pass, darm_pass
from repro.timing.frontend import DualIssueFrontend, SiliconSyncFrontend


@dataclass(frozen=True)
class Variant:
    """One named run configuration."""

    name: str
    #: ``(inputs, darsie) -> frontend factory`` where ``inputs`` exposes
    #: ``.analysis`` and ``.dac_profile()`` (duck-typed; the
    #: :class:`~repro.harness.runner.WorkloadRunner` itself serves).
    #: Returns ``None`` for the unmodified baseline frontend.
    make_frontend: Callable[[object, Optional[DarsieConfig]], Optional[Callable]]
    #: inputs the runner must prepare before a timed region
    requires: Tuple[str, ...] = ()
    #: experiment families that select this variant
    tags: Tuple[str, ...] = ()
    #: DARSIE knob preset this variant implies (``None``: not DARSIE or
    #: paper defaults)
    darsie_defaults: Optional[DarsieConfig] = None
    description: str = ""
    #: ``(energy_model, stats, num_sms) -> fraction`` of dynamic energy
    #: spent in the variant's added hardware (``None``: no overhead)
    overhead_fraction: Optional[Callable] = field(default=None, compare=False)
    #: ``program -> program`` static rewrite applied before simulation
    #: (``None``: run the workload's program as written).  This is how
    #: compiler-technique variants (DARM melding) flow through the
    #: timing simulator, bench gate and sweep service unchanged.
    staticlib_pass: Optional[Callable[[Program], Program]] = field(
        default=None, compare=False
    )


class VariantRegistry:
    """Ordered name -> :class:`Variant` registry."""

    def __init__(self):
        self._variants: Dict[str, Variant] = {}

    def register(self, variant: Variant, replace: bool = False) -> Variant:
        if variant.name in self._variants and not replace:
            raise ValueError(f"variant {variant.name!r} is already registered")
        self._variants[variant.name] = variant
        return variant

    def unregister(self, name: str) -> None:
        self._variants.pop(name, None)

    def get(self, name: str) -> Variant:
        try:
            return self._variants[name]
        except KeyError:
            raise KeyError(
                f"unknown configuration {name!r}; known: {self.names()}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Every registered variant name, in registration order."""
        return tuple(self._variants)

    def by_tag(self, tag: str) -> Tuple[str, ...]:
        """Names carrying ``tag``, in registration order (which is the
        paper's legend order for the default registrations)."""
        return tuple(n for n, v in self._variants.items() if tag in v.tags)

    def __contains__(self, name: str) -> bool:
        return name in self._variants

    def __iter__(self) -> Iterator[Variant]:
        return iter(self._variants.values())

    def __len__(self) -> int:
        return len(self._variants)


# ---------------------------------------------------------------------------
# Default registrations (the paper's configurations)
# ---------------------------------------------------------------------------


def _no_frontend(inputs, darsie):
    return None


def _uv_frontend(inputs, darsie):
    analysis = inputs.analysis
    return lambda: UVFrontend(analysis)


def _dac_frontend(inputs, darsie):
    profile = inputs.dac_profile()
    return lambda: DacIdealFrontend(profile)


def _darsie_frontend(inputs, darsie):
    analysis = inputs.analysis
    return lambda: DarsieFrontend(analysis, darsie)


def _silicon_sync_frontend(inputs, darsie):
    return SiliconSyncFrontend


def _dual_issue_frontend(inputs, darsie):
    return DualIssueFrontend


def _darsie_overhead(model, stats, num_sms):
    return model.breakdown(stats, num_sms).overhead_fraction


#: The process-wide registry all layers consult.
REGISTRY = VariantRegistry()


def register_default_variants(registry: VariantRegistry = REGISTRY) -> None:
    """Register the paper's eight configurations (idempotent-by-error:
    call once per registry)."""
    registry.register(Variant(
        name="BASE",
        make_frontend=_no_frontend,
        tags=("baseline", "fig8", "golden", "bench"),
        description="unmodified baseline GPU",
    ))
    registry.register(Variant(
        name="UV",
        make_frontend=_uv_frontend,
        requires=("analysis",),
        tags=("fig8", "reduction", "golden", "bench"),
        description="uniform-vector execution elimination at issue",
    ))
    registry.register(Variant(
        name="DAC-IDEAL",
        make_frontend=_dac_frontend,
        requires=("dac_profile",),
        tags=("fig8", "reduction", "golden", "bench"),
        description="idealized decoupled affine computation (oracle profile)",
    ))
    registry.register(Variant(
        name="DARSIE",
        make_frontend=_darsie_frontend,
        requires=("analysis",),
        tags=("fig8", "reduction", "fig12", "golden", "bench"),
        description="the paper's mechanism, default knobs",
        overhead_fraction=_darsie_overhead,
    ))
    registry.register(Variant(
        name="DARSIE-IGNORE-STORE",
        make_frontend=_darsie_frontend,
        requires=("analysis",),
        tags=("fig8", "bench"),
        darsie_defaults=DarsieConfig(ignore_store=True),
        description="keep load entries across stores (Figure 8)",
        overhead_fraction=_darsie_overhead,
    ))
    registry.register(Variant(
        name="DARSIE-NO-CF-SYNC",
        make_frontend=_darsie_frontend,
        requires=("analysis",),
        tags=("fig12",),
        darsie_defaults=DarsieConfig(no_cf_sync=True),
        description="no TB barrier at branches (Figure 12)",
        overhead_fraction=_darsie_overhead,
    ))
    registry.register(Variant(
        name="DARSIE-SYNC-ON-WRITE",
        make_frontend=_darsie_frontend,
        requires=("analysis",),
        tags=("ablation",),
        darsie_defaults=DarsieConfig(sync_on_write=True),
        description="synchronize the TB on every redundant write "
                    "(Section 4.1, rejected option 1)",
        overhead_fraction=_darsie_overhead,
    ))
    registry.register(Variant(
        name="SILICON-SYNC",
        make_frontend=_silicon_sync_frontend,
        tags=("fig12",),
        description="hardware-synchronization cost bound (Figure 12)",
    ))
    registry.register(Variant(
        name="DUAL-ISSUE",
        make_frontend=_dual_issue_frontend,
        tags=("ablation",),
        description="baseline with dual-issue warp schedulers (swaps in "
                    "an alternative IssueStage via the staged pipeline)",
    ))
    registry.register(Variant(
        name="DARM",
        make_frontend=_no_frontend,
        tags=("technique",),
        description="DARM control-flow melding, default profitability "
                    "threshold (compare-techniques)",
        staticlib_pass=darm_pass,
    ))
    registry.register(Variant(
        name="DARM-IDEAL",
        make_frontend=_no_frontend,
        tags=("technique",),
        description="control-flow melding of every legal divergent "
                    "region, no profitability bar",
        staticlib_pass=darm_ideal_pass,
    ))


register_default_variants()
