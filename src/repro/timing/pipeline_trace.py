"""Per-cycle pipeline tracing and text visualisation.

Attach a :class:`PipelineTrace` to a simulation to record when each warp
fetches, issues, writes back — and, under DARSIE, *skips* — and render a
Gantt-style text diagram.  Intended for small kernels: it makes Figure
5's leader/follower choreography directly visible.

::

    trace = PipelineTrace()
    gpu = GPU(..., )
    gpu.attach_trace(trace)
    gpu.run()
    print(trace.render(max_cycles=120))

Legend: ``F`` fetch, ``I`` issue/execute, ``W`` writeback, ``S`` skip
(PC advanced without fetch), ``B`` blocked on DARSIE synchronization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Event codes, in precedence order when several land in one cycle.
FETCH = "F"
ISSUE = "I"
WRITEBACK = "W"
SKIP = "S"
BLOCKED = "B"
_PRECEDENCE = {SKIP: 5, ISSUE: 4, FETCH: 3, WRITEBACK: 2, BLOCKED: 1}


@dataclass(frozen=True)
class TraceEvent:
    """One pipeline event."""

    cycle: int
    sm: int
    tb: int
    warp: int
    kind: str
    pc: int


class PipelineTrace:
    """Event recorder + text renderer."""

    def __init__(self, max_events: int = 200_000):
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0

    def record(self, cycle: int, sm: int, tb: int, warp: int, kind: str, pc: int) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(cycle, sm, tb, warp, kind, pc))

    def warps(self) -> List[Tuple[int, int, int]]:
        return sorted({(e.sm, e.tb, e.warp) for e in self.events})

    def events_for(self, sm: int, tb: int, warp: int) -> List[TraceEvent]:
        return [e for e in self.events if (e.sm, e.tb, e.warp) == (sm, tb, warp)]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def render(self, max_cycles: int = 120, max_warps: int = 16, start: int = 0) -> str:
        """Gantt-style diagram: one row per warp, one column per cycle."""
        if not self.events:
            return "(empty pipeline trace)"
        end = start + max_cycles
        grid: Dict[Tuple[int, int, int], Dict[int, str]] = {}
        for e in self.events:
            if not (start <= e.cycle < end):
                continue
            row = grid.setdefault((e.sm, e.tb, e.warp), {})
            old = row.get(e.cycle)
            if old is None or _PRECEDENCE[e.kind] > _PRECEDENCE[old]:
                row[e.cycle] = e.kind
        lines = [
            f"pipeline trace, cycles [{start}, {end}) "
            "(F=fetch I=issue W=writeback S=skip B=blocked)"
        ]
        # Cycle ruler every 10 columns.
        ruler = "".join("|" if (c % 10 == 0) else " " for c in range(start, end))
        label_w = 14
        lines.append(" " * label_w + ruler)
        for key in self.warps()[:max_warps]:
            sm, tb, warp = key
            row = grid.get(key, {})
            cells = "".join(row.get(c, ".") for c in range(start, end))
            lines.append(f"sm{sm} tb{tb} w{warp:<3d}  ".ljust(label_w) + cells)
        if len(self.warps()) > max_warps:
            lines.append(f"... {len(self.warps()) - max_warps} more warps")
        if self.dropped:
            lines.append(f"({self.dropped} events dropped beyond max_events)")
        return "\n".join(lines)

    def leader_follower_summary(self) -> str:
        """Per-warp fetch/skip totals — Figure 5 at a glance."""
        rows = []
        for sm, tb, warp in self.warps():
            evs = self.events_for(sm, tb, warp)
            fetched = sum(1 for e in evs if e.kind == FETCH)
            skipped = sum(1 for e in evs if e.kind == SKIP)
            rows.append(f"  sm{sm}/tb{tb}/w{warp}: fetched={fetched} skipped={skipped}")
        return "warp activity:\n" + "\n".join(rows)


class StageOccupancyTrace:
    """Per-cycle, per-stage activity and buffer occupancy recorder.

    While a :class:`PipelineTrace` records *warp-level events* (fetch,
    issue, skip...), this trace records the *stage-level* view the
    staged pipeline exposes: how many state changes each stage produced
    this cycle, and how full the typed inter-stage buffers are.  One
    sample per busy SM per simulated cycle (attaching the trace disables
    event-driven cycle skipping, so no cycles are jumped over).

    Dump with :meth:`write_jsonl` — one JSON object per line::

        {"cycle": 7, "sm": 0, "stages": {"writeback": 0, "decode-skip": 0,
         "issue": 3, "fetch": 2}, "ibuffer": 4, "zero_cost": 0, "inflight": 2}
    """

    def __init__(self, max_samples: int = 1_000_000):
        self.samples: List[Dict] = []
        self.max_samples = max_samples
        self.dropped = 0

    def sample(
        self,
        cycle: int,
        sm: int,
        stage_activity: Dict[str, int],
        occupancy: Dict[str, int],
    ) -> None:
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return
        row = {"cycle": cycle, "sm": sm, "stages": stage_activity}
        row.update(occupancy)
        self.samples.append(row)

    def write_jsonl(self, path: str) -> int:
        """Write one JSON object per sample; returns the line count."""
        with open(path, "w", encoding="utf-8") as fh:
            for row in self.samples:
                fh.write(json.dumps(row, sort_keys=True))
                fh.write("\n")
        return len(self.samples)

    def busiest_stage(self) -> Dict[str, int]:
        """Total activity per stage across the run (quick profile)."""
        totals: Dict[str, int] = {}
        for row in self.samples:
            for name, act in row["stages"].items():
                totals[name] = totals.get(name, 0) + act
        return totals
