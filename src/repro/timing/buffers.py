"""Typed inter-stage buffers of the staged SM pipeline.

The stage objects in :mod:`repro.timing.stages` communicate only through
the structures defined here:

- :class:`IBufferEntry` / :class:`IBuffer` — the per-warp instruction
  buffer between fetch/decode and issue.  The buffer maintains its own
  occupancy counters (real entries vs zero-cost entries) and mirrors the
  zero-cost population into a pipeline-wide :class:`ZeroCostLedger` so
  the decode-skip drain can early-out in O(1).
- :class:`IssueSlot` — one selected instruction travelling from the
  issue stage through operand collection into execute.
- :class:`WritebackQueue` — the latency-ordered queue of in-flight
  instructions between execute and writeback (replaces the ad-hoc heap
  the monolithic core carried).

Every structure is deliberately dumb: it holds state and keeps counters
consistent, but policy (what to push, when to pop) lives in the stages.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.timing.core import WarpRuntime


@dataclass
class IBufferEntry:
    """One decoded instruction waiting to issue."""

    inst: Instruction
    is_leader: bool = False
    #: operand values captured at fetch time (renamed sources)
    overrides: Optional[Dict[str, Any]] = None
    #: DAC-IDEAL zero-cost instruction (drains outside issue bandwidth,
    #: executing functionally when it reaches the head of the queue)
    free: bool = False
    #: DARSIE skip token: the instruction was eliminated before fetch —
    #: the token only advances the architectural PC, in program order,
    #: when it reaches the head of the queue
    skip_token: bool = False

    @property
    def zero_cost(self) -> bool:
        """Entries that were never fetched and occupy no real slot."""
        return self.free or self.skip_token


class ZeroCostLedger:
    """Pipeline-wide count of queued zero-cost I-buffer entries.

    The decode-skip stage drains free entries and skip tokens outside
    issue bandwidth; this ledger lets it skip the per-warp scan entirely
    on the (common) cycles where no zero-cost entry exists anywhere.
    """

    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total: int = 0


class IBuffer:
    """A warp's instruction buffer with incremental occupancy counters.

    ``buffered`` counts entries that occupy real I-buffer slots (counted
    against :attr:`~repro.timing.config.GPUConfig.ibuffer_entries`);
    ``zero_cost`` counts free entries and skip tokens, which were never
    fetched.  All mutation goes through :meth:`push` / :meth:`pop` /
    :meth:`clear` so the counters (and the shared ledger) can never
    drift from the queue contents.
    """

    __slots__ = ("entries", "buffered", "zero_cost", "_ledger")

    def __init__(self, ledger: ZeroCostLedger) -> None:
        #: underlying queue — read-only for peeking; mutate via methods
        self.entries: Deque[IBufferEntry] = deque()
        self.buffered: int = 0
        self.zero_cost: int = 0
        self._ledger = ledger

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __getitem__(self, index: int) -> IBufferEntry:
        return self.entries[index]

    def head(self) -> Optional[IBufferEntry]:
        return self.entries[0] if self.entries else None

    def push(self, entry: IBufferEntry) -> None:
        self.entries.append(entry)
        if entry.free or entry.skip_token:
            self.zero_cost += 1
            self._ledger.total += 1
        else:
            self.buffered += 1

    def pop(self) -> IBufferEntry:
        entry = self.entries.popleft()
        if entry.free or entry.skip_token:
            self.zero_cost -= 1
            self._ledger.total -= 1
        else:
            self.buffered -= 1
        return entry

    def clear(self) -> None:
        if self.zero_cost:
            self._ledger.total -= self.zero_cost
        self.entries.clear()
        self.buffered = 0
        self.zero_cost = 0

    def detach(self) -> None:
        """Remove this buffer's zero-cost population from the shared
        ledger (the owning warp's TB left the SM)."""
        if self.zero_cost:
            self._ledger.total -= self.zero_cost
            self.zero_cost = 0


@dataclass(frozen=True)
class IssueSlot:
    """One instruction selected by the issue stage, on its way through
    operand collection into execute (same-cycle, fully bypassed)."""

    warp: "WarpRuntime"
    entry: IBufferEntry
    cycle: int


#: one in-flight instruction: (ready cycle, seq, warp, inst, meta)
InflightItem = Tuple[int, int, "WarpRuntime", Instruction, Dict[str, Any]]


@dataclass
class WritebackQueue:
    """Latency-ordered in-flight instructions awaiting writeback.

    The execute stage :meth:`schedule`\\ s each instruction with its
    completion cycle; the writeback stage :meth:`pop_ready`\\ s the ones
    due.  ``seq`` breaks ready-cycle ties in program (issue) order, so
    writeback order — and with it LeaderWB visibility — is deterministic.
    """

    _heap: List[InflightItem] = field(default_factory=list)
    _seq: int = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(
        self, ready: int, wrt: "WarpRuntime", inst: Instruction, meta: Dict[str, Any]
    ) -> None:
        self._seq += 1
        wrt.inflight += 1
        heapq.heappush(self._heap, (ready, self._seq, wrt, inst, meta))

    def pending(self) -> List[InflightItem]:
        """Snapshot of the in-flight instructions (oracle/debug aid)."""
        return list(self._heap)

    def pop_ready(self, cycle: int) -> Optional[InflightItem]:
        """The next in-flight instruction due at or before ``cycle``."""
        if self._heap and self._heap[0][0] <= cycle:
            return heapq.heappop(self._heap)
        return None

    def next_ready(self) -> Optional[int]:
        """Cycle at which the earliest in-flight instruction completes."""
        return self._heap[0][0] if self._heap else None
