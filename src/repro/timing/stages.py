"""Explicit stage objects of the SM pipeline (Section 3 / Figure 4).

The monolithic ``SMCore`` is split into six stage classes, each with a
``tick(cycle) -> activity`` contract, communicating only through the
typed buffers in :mod:`repro.timing.buffers`:

- :class:`WritebackStage` — pops due instructions off the shared
  :class:`~repro.timing.buffers.WritebackQueue`, releases scoreboard
  entries and fires the frontend's ``on_writeback`` (LeaderWB) hook.
- :class:`DecodeSkipStage` — the zero-cost, in-order drain of eliminated
  instructions (DARSIE skip tokens, DAC-IDEAL free entries) at the head
  of each warp's I-buffer.
- :class:`IssueStage` — the GTO / loose-round-robin warp schedulers.  A
  selected instruction travels through operand collection into execute
  *in the same cycle* (back-to-back pipeline with full bypass — exactly
  the timing the monolithic core modelled).
- :class:`OperandCollectStage` — register-file reads and bank-conflict
  accounting, including DARSIE's rename-space conflicts (Section 6.1).
- :class:`ExecuteStage` — functional execution, latency modelling and
  post-execute control flow (branch sync, barriers, warp retirement).
- :class:`FetchStage` — the frontend's per-cycle hook (DARSIE's skip
  engine runs "in parallel with the fetch scheduler"), the loose
  round-robin fetch scheduler and the I-cache/decode path.

:class:`StagePipeline` assembles the stages, owns the shared buffers and
the per-tick activity counter, and preserves the monolith's exact intra-
cycle order: writeback -> decode-skip -> issue -> fetch -> wait
accounting.  A frontend may swap in an alternative issue stage via
:meth:`repro.timing.frontend.Frontend.make_issue_stage` (the
``DUAL-ISSUE`` variant swaps in :class:`DualIssueStage`).

Every stat is counted by exactly one stage, in the same per-cycle order
the monolith used, so the refactor is bit-identical under the golden
contract (``tests/timing/data/golden_tiny.json``) and the event-skip
equivalence tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode
from repro.isa.operands import MemSpace
from repro.timing.buffers import (
    IBufferEntry,
    IssueSlot,
    WritebackQueue,
    ZeroCostLedger,
)
from repro.timing.frontend import FetchAction
from repro.timing.stats import EnergyEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.simt.executor import StepResult
    from repro.timing.core import SMCore, TBRuntime, WarpRuntime


class Stage:
    """One pipeline stage bound to a :class:`StagePipeline`.

    ``tick`` advances the stage one cycle and returns the number of
    state changes it (and any frontend hooks it invoked) produced; all
    activity flows through the pipeline's single accumulator so the
    event-skip contract sees one consistent count.
    """

    name = "stage"

    def __init__(self, pipeline: "StagePipeline") -> None:
        self.pipeline = pipeline
        self.core: "SMCore" = pipeline.core

    def tick(self, cycle: int) -> int:
        before = self.pipeline._activity
        self.run(cycle)
        return self.pipeline._activity - before

    def run(self, cycle: int) -> None:  # pragma: no cover - overridden
        pass


class WritebackStage(Stage):
    """Retire due instructions: scoreboard release + LeaderWB hook."""

    name = "writeback"

    def run(self, cycle: int) -> None:
        core = self.core
        wbq = self.pipeline.wbq
        while True:
            item = wbq.pop_ready(cycle)
            if item is None:
                break
            _ready, _seq, wrt, inst, meta = item
            self.pipeline.note()
            wrt.inflight -= 1
            if core.pipeline_trace is not None:
                core.pipeline_trace.record(
                    cycle, core.sm_id, wrt.tb_rt.tb.tb_index, wrt.warp.warp_id,
                    "W", inst.pc,
                )
            dests = meta.get("dests", ())
            for key in dests:
                wrt.scoreboard.discard(key)
            if dests:
                core.stats.energy_events[EnergyEvent.RF_WRITE] += 1
            core.frontend.on_writeback(wrt, inst, meta)


class DecodeSkipStage(Stage):
    """Zero-cost, in-order drain of eliminated instructions.

    DARSIE skip tokens only advance the architectural PC (the leader
    executed the instruction; the follower shares its value through
    renaming).  DAC-IDEAL free entries execute functionally — the
    idealized affine stream — without pipeline cost.
    """

    name = "decode-skip"

    def run(self, cycle: int) -> None:
        if self.pipeline.zero_cost.total == 0:
            return
        core = self.core
        for wrt in core.warps:
            ibuf = wrt.ibuffer
            if ibuf.zero_cost == 0:
                continue
            entries = ibuf.entries
            while entries and (entries[0].free or entries[0].skip_token):
                entry = entries[0]
                if entry.skip_token:
                    ibuf.pop()
                    self.pipeline.note()
                    assert wrt.warp.pc == entry.inst.pc, (
                        f"skip token out of order: arch pc {wrt.warp.pc:#x}, "
                        f"token pc {entry.inst.pc:#x}"
                    )
                    wrt.warp.pc += INSTRUCTION_BYTES
                    wrt.warp.maybe_reconverge()
                    continue
                if _hazard(wrt, entry.inst):
                    break
                ibuf.pop()
                self.pipeline.note()
                core.engine.execute_instruction(wrt.tb_rt.tb, wrt.warp, entry.inst)
                core.stats.instructions_skipped += 1


def _hazard(wrt: "WarpRuntime", inst: Instruction) -> bool:
    sb = wrt.scoreboard
    return bool(sb) and not sb.isdisjoint(inst.hazard_keys)


class IssueStage(Stage):
    """The per-SM warp schedulers (GTO per Table 2, or loose RR).

    Owns the per-scheduler warp lists (in age order), the greedy
    pointers and the round-robin cursors; selected instructions are
    handed to operand collection and execute as an
    :class:`~repro.timing.buffers.IssueSlot` within the same cycle.
    """

    name = "issue"
    #: distinct warps each scheduler may issue from per cycle
    warps_per_cycle = 1

    def __init__(self, pipeline: "StagePipeline") -> None:
        super().__init__(pipeline)
        config = self.core.config
        self._greedy: Dict[int, Optional["WarpRuntime"]] = {
            s: None for s in range(config.num_schedulers)
        }
        self._issue_rr: Dict[int, int] = {s: 0 for s in range(config.num_schedulers)}
        #: per-scheduler warp lists in age order (mirrors ``core.warps``)
        self.sched_warps: List[List["WarpRuntime"]] = [
            [] for _ in range(config.num_schedulers)
        ]

    # -- residency bookkeeping (driven by the core) -------------------------

    def add_warp(self, wrt: "WarpRuntime") -> None:
        self.sched_warps[wrt.scheduler_id].append(wrt)

    def remove_tb(self, tb_rt: "TBRuntime") -> None:
        self.sched_warps = [
            [w for w in lst if w.tb_rt is not tb_rt] for lst in self.sched_warps
        ]

    def advance_idle(self, delta: int) -> None:
        """Replay ``delta`` skipped idle cycles: each LRR scheduler that
        had issue candidates advances its rotation per cycle."""
        if self.core.config.scheduler_policy == "lrr":
            for sched, swarps in enumerate(self.sched_warps):
                if any(not w.warp.exited and w.ibuffer for w in swarps):
                    self._issue_rr[sched] += delta

    # -- the per-cycle schedulers -------------------------------------------

    def run(self, cycle: int) -> None:
        if self.core.config.scheduler_policy == "lrr":
            self._run_lrr(cycle)
        else:
            self._run_gto(cycle)

    def _run_gto(self, cycle: int) -> None:
        # Greedy-then-oldest (Table 2's GTO).  ``sched_warps`` is kept
        # in age order, so trying the greedy warp first and then the
        # rest in list order reproduces the sorted-candidates walk.
        for sched, swarps in enumerate(self.sched_warps):
            issued: List["WarpRuntime"] = []
            for _slot in range(self.warps_per_cycle):
                greedy = self._greedy[sched]
                greedy_is_cand = (
                    greedy is not None
                    and greedy not in issued
                    and not greedy.warp.exited
                    and bool(greedy.ibuffer)
                )
                issued_from: Optional["WarpRuntime"] = None
                had_candidate = greedy_is_cand
                if greedy_is_cand and self._issue_from_warp(cycle, greedy):
                    issued_from = greedy
                if issued_from is None:
                    for wrt in swarps:
                        if (
                            wrt is greedy
                            or wrt in issued
                            or wrt.warp.exited
                            or not wrt.ibuffer
                        ):
                            continue
                        had_candidate = True
                        if self._issue_from_warp(cycle, wrt):
                            issued_from = wrt
                            break
                if had_candidate:
                    self._greedy[sched] = issued_from
                if issued_from is None:
                    break
                issued.append(issued_from)

    def _run_lrr(self, cycle: int) -> None:
        # Loose round-robin: rotate priority each cycle.
        for sched, swarps in enumerate(self.sched_warps):
            candidates = [w for w in swarps if not w.warp.exited and w.ibuffer]
            if not candidates:
                continue
            n = len(candidates)
            rot = self._issue_rr[sched] % n
            self._issue_rr[sched] += 1
            issued: List["WarpRuntime"] = []
            for _slot in range(self.warps_per_cycle):
                issued_from: Optional["WarpRuntime"] = None
                for i in range(n):
                    wrt = candidates[(rot + i) % n]
                    if wrt in issued:
                        continue
                    if self._issue_from_warp(cycle, wrt):
                        issued_from = wrt
                        break
                self._greedy[sched] = issued_from
                if issued_from is None:
                    break
                issued.append(issued_from)

    def _issue_from_warp(self, cycle: int, wrt: "WarpRuntime") -> int:
        issued = 0
        core = self.core
        pipeline = self.pipeline
        stats = core.stats
        ibuf = wrt.ibuffer
        entries = ibuf.entries
        issue_width = core.config.issue_width
        while issued < issue_width and entries:
            entry = entries[0]
            if entry.free or entry.skip_token:
                break  # handled by the decode-skip drain
            if wrt.warp.at_barrier or wrt.branch_sync_blocked:
                break
            if _hazard(wrt, entry.inst):
                break
            ibuf.pop()
            pipeline.note()
            if core.pipeline_trace is not None:
                core.pipeline_trace.record(
                    cycle, core.sm_id, wrt.tb_rt.tb.tb_index, wrt.warp.warp_id,
                    "I", entry.inst.pc,
                )
            stats.instructions_issued += 1
            stats.energy_events[EnergyEvent.ISSUE] += 1
            slot = IssueSlot(warp=wrt, entry=entry, cycle=cycle)
            pipeline.operand_collect.collect(slot)
            pipeline.execute.execute(slot)
            issued += 1
            if entry.inst.opcode in (Opcode.BRA, Opcode.EXIT, Opcode.BAR):
                break
        return issued


class DualIssueStage(IssueStage):
    """An alternative issue stage: each scheduler may issue from up to
    two *distinct* warps per cycle (the ``DUAL-ISSUE`` variant).

    Everything else — GTO/LRR selection order, per-warp ``issue_width``,
    scoreboarding, control-flow issue breaks — is inherited unchanged,
    which is exactly the point of the stage seam: one class attribute is
    the whole microarchitectural change.
    """

    name = "dual-issue"
    warps_per_cycle = 2


class OperandCollectStage(Stage):
    """Register-file operand reads and bank-conflict accounting."""

    name = "operand-collect"

    def collect(self, slot: IssueSlot) -> None:
        stats = self.core.stats
        inst = slot.entry.inst
        stats.energy_events[EnergyEvent.RF_READ] += inst.rf_read_count
        stats.rf_bank_conflicts += self._bank_conflicts(inst, slot.entry)

    def _bank_conflicts(self, inst: Instruction, entry: IBufferEntry) -> int:
        """Same-cycle operand bank collisions (coarse operand-collector
        model: each distinct source register occupies one bank read)."""
        conflicts, banks = inst.bank_info(self.core.config.rf_banks)
        if entry.overrides:
            # Renamed operands live in the strided rename space; reads
            # from it collide with the warp's own operand reads
            # (Section 6.1's DARSIE-induced bank conflicts).
            rename_banks = entry.overrides.get("banks", ())
            collide = sum(1 for b in rename_banks if b in banks)
            conflicts += collide
            self.core.stats.darsie_bank_conflicts += collide
        return conflicts


class ExecuteStage(Stage):
    """Functional execution at issue, latency modelling, post-execute
    control flow, and writeback scheduling."""

    name = "execute"

    def execute(self, slot: IssueSlot) -> None:
        core = self.core
        stats = core.stats
        wrt = slot.warp
        entry = slot.entry
        inst = entry.inst
        cycle = slot.cycle

        eliminate_kind = core.frontend.eliminate_at_issue(wrt, inst)
        overrides = entry.overrides or {}
        depth_before = len(wrt.warp.stack)
        result = core.engine.execute_instruction(
            wrt.tb_rt.tb,
            wrt.warp,
            inst,
            reg_overrides=overrides.get("regs"),
            pred_overrides=overrides.get("preds"),
        )
        stats.instructions_executed += 1
        if depth_before > 1:
            stats.divergence_serialized_instructions += 1
        if inst.is_branch and len(wrt.warp.stack) > depth_before:
            stats.divergent_branches += 1

        if eliminate_kind is not None:
            stats.executions_eliminated += 1
            stats.eliminated_by_class[eliminate_kind] += 1
            ready = cycle + 1
        else:
            ready = self._latency(cycle, inst, result)

        dests = inst.sb_dests
        meta = {"dests": dests, "is_leader": entry.is_leader, "result": result}
        for key in dests:
            wrt.scoreboard.add(key)
        if dests or entry.is_leader:
            self.pipeline.wbq.schedule(ready, wrt, inst, meta)

        self._post_execute(cycle, wrt, inst, result)

    def _latency(self, cycle: int, inst: Instruction, result: "StepResult") -> int:
        core = self.core
        cfg = core.config
        if inst.is_memory:
            assert inst.mem is not None
            addresses = result.mem_addresses
            if addresses is None:
                return cycle + 1
            mask = result.exec_mask
            if inst.mem.space is MemSpace.SHARED:
                return core.memory.shared_access(cycle, addresses, mask)
            return core.memory.global_access(cycle, addresses, mask, inst.is_store)
        if inst.uses_sfu:
            core.stats.energy_events[EnergyEvent.SFU_OP] += 1
            return cycle + cfg.sfu_latency
        if inst.opcode in (Opcode.BRA, Opcode.EXIT, Opcode.BAR, Opcode.NOP):
            return cycle + 1
        core.stats.energy_events[EnergyEvent.ALU_OP] += 1
        return cycle + cfg.alu_latency

    def _post_execute(
        self, cycle: int, wrt: "WarpRuntime", inst: Instruction, result: "StepResult"
    ) -> None:
        core = self.core
        core.frontend.on_executed(wrt, inst, result)

        if inst.is_store:
            core.frontend.on_store(wrt.tb_rt)
        if inst.is_atomic and inst.mem.space is MemSpace.GLOBAL:
            core.frontend.on_global_communication()

        if inst.is_branch:
            if core.frontend.blocks_after_branch(wrt, inst):
                wrt.branch_sync_blocked = True
            else:
                wrt.resync_fetch()
            return
        if inst.is_barrier:
            core.release_barrier(wrt.tb_rt)
            return
        if inst.is_exit:
            if result.retired:
                core.retire_warp(wrt)
            else:
                wrt.resync_fetch()
            return
        if wrt.warp.pc != inst.pc + INSTRUCTION_BYTES:
            # A reconvergence pop switched the warp to another divergent
            # path (non-sequential PC without a branch): the straight-line
            # prefetch past the reconvergence point is wrong-path.
            wrt.ibuffer.clear()
            wrt.resync_fetch()


class FetchStage(Stage):
    """The fetch scheduler and I-cache/decode path.

    Runs the frontend's per-cycle hook first — DARSIE's skip engine
    works "in parallel with the fetch scheduler" (Section 4.3.2) — then
    a loose round-robin over warps with free I-buffer slots, bringing in
    up to ``fetch_width`` consecutive instructions per initiated fetch.
    """

    name = "fetch"

    def __init__(self, pipeline: "StagePipeline") -> None:
        super().__init__(pipeline)
        self._fetch_rr = 0

    def run(self, cycle: int) -> None:
        core = self.core
        core.frontend.fetch_cycle(cycle)
        warps = core.warps
        n = len(warps)
        if n == 0:
            return
        end_pc = core.ctx.program.end_pc
        capacity = core.config.ibuffer_entries
        frontend = core.frontend
        for _initiated in range(core.config.fetch_warps_per_cycle):
            chosen = None
            for i in range(n):
                wrt = warps[(self._fetch_rr + i) % n]
                if not wrt.fetch_ready() or wrt.skip_blocked:
                    continue
                if wrt.ibuffer.buffered >= capacity:
                    continue
                if wrt.fetch_pc >= end_pc:
                    continue
                action = frontend.filter_fetch(wrt, wrt.fetch_pc)
                if action in (FetchAction.HANDLED, FetchAction.WAIT):
                    continue
                chosen = (wrt, action)
                self._fetch_rr = (self._fetch_rr + i + 1) % n
                break
            if chosen is None:
                return
            wrt, action = chosen
            self.pipeline.note()
            core.stats.energy_events[EnergyEvent.ICACHE_FETCH] += 1
            self._fetch_into(cycle, wrt, action)

    def _fetch_into(
        self, cycle: int, wrt: "WarpRuntime", first_action: FetchAction
    ) -> None:
        core = self.core
        fetched = 0
        action = first_action
        stats = core.stats
        ibuf = wrt.ibuffer
        while fetched < core.config.fetch_width and ibuf.buffered < core.config.ibuffer_entries:
            if action in (FetchAction.HANDLED, FetchAction.WAIT):
                break
            inst = core.ctx.program.at(wrt.fetch_pc)
            is_leader = action is FetchAction.FETCH_LEADER
            overrides = core.frontend.on_fetch(wrt, inst, is_leader)
            ibuf.push(IBufferEntry(inst=inst, is_leader=is_leader, overrides=overrides))
            if core.pipeline_trace is not None:
                core.pipeline_trace.record(
                    cycle, core.sm_id, wrt.tb_rt.tb.tb_index, wrt.warp.warp_id,
                    "F", inst.pc,
                )
            stats.instructions_fetched += 1
            stats.instructions_decoded += 1
            stats.energy_events[EnergyEvent.DECODE] += 1
            wrt.bypass_pcs.discard(wrt.fetch_pc)
            wrt.fetch_pc += INSTRUCTION_BYTES
            fetched += 1
            if inst.opcode in (Opcode.BRA, Opcode.EXIT, Opcode.BAR):
                wrt.cf_stalled = True
                break
            if wrt.fetch_pc >= core.ctx.program.end_pc:
                break
            action = core.frontend.filter_fetch(wrt, wrt.fetch_pc)


class StagePipeline:
    """The assembled SM pipeline: stages, shared buffers, activity.

    Intra-cycle order (identical to the historical monolith, and pinned
    by the golden contract): writeback -> decode-skip -> issue (which
    drives operand-collect and execute combinationally) -> fetch (which
    runs the frontend's per-cycle hook first) -> wait accounting.
    """

    def __init__(self, core: "SMCore") -> None:
        self.core = core
        self.zero_cost = ZeroCostLedger()
        self.wbq = WritebackQueue()
        #: state changes observed during the current tick
        self._activity = 0
        self.writeback = WritebackStage(self)
        self.decode_skip = DecodeSkipStage(self)
        issue = core.frontend.make_issue_stage(self)
        self.issue: IssueStage = issue if issue is not None else IssueStage(self)
        self.operand_collect = OperandCollectStage(self)
        self.execute = ExecuteStage(self)
        self.fetch = FetchStage(self)
        #: the ticked stages, in intra-cycle order (operand-collect and
        #: execute are driven combinationally by issue, not ticked)
        self.stages = (self.writeback, self.decode_skip, self.issue, self.fetch)

    def note(self) -> None:
        """Record one state change (stages and frontends both call this)."""
        self._activity += 1

    def tick(self, cycle: int) -> int:
        """Advance every stage one cycle; returns the activity count (0
        means the cycle was provably idle and the next would repeat it
        exactly — the basis for event-driven skipping)."""
        self._activity = 0
        trace = self.core.stage_trace
        if trace is None:
            self.writeback.tick(cycle)
            self.decode_skip.tick(cycle)
            self.issue.tick(cycle)
            self.fetch.tick(cycle)
            self._account_waits(cycle)
            return self._activity
        stage_activity = {stage.name: stage.tick(cycle) for stage in self.stages}
        self._account_waits(cycle)
        trace.sample(cycle, self.core.sm_id, stage_activity, self.occupancy())
        return self._activity

    def wake_cycle(self) -> Optional[int]:
        """Earliest future cycle at which anything can happen on this SM
        while it is otherwise idle, or None if no such event is known."""
        wake = self.wbq.next_ready()
        fw = self.core.frontend.next_wake(self.core.cycle)
        if fw is not None and (wake is None or fw < wake):
            wake = fw
        return wake

    def advance_idle(self, delta: int) -> None:
        """Account for ``delta`` skipped idle cycles.

        An idle cycle still (a) accrues one ``sync_wait_cycles`` per
        blocked live warp and (b) advances each LRR scheduler that had
        issue candidates; both are replayed here in closed form.
        """
        core = self.core
        blocked = 0
        for w in core.warps:
            if (w.skip_blocked or w.branch_sync_blocked) and not w.warp.exited:
                blocked += 1
        if blocked:
            core.stats.sync_wait_cycles += blocked * delta
        self.issue.advance_idle(delta)

    def remove_tb(self, tb_rt: "TBRuntime") -> None:
        """A threadblock left the SM: drop its warps from the issue
        stage and its zero-cost entries from the shared ledger."""
        for w in tb_rt.warps:
            w.ibuffer.detach()
        self.issue.remove_tb(tb_rt)

    def _account_waits(self, cycle: int) -> None:
        core = self.core
        if core.pipeline_trace is None:
            blocked = 0
            for w in core.warps:
                if (w.skip_blocked or w.branch_sync_blocked) and not w.warp.exited:
                    blocked += 1
            if blocked:
                core.stats.sync_wait_cycles += blocked
            return
        for w in core.warps:
            if not w.exited and (w.skip_blocked or w.branch_sync_blocked):
                core.stats.sync_wait_cycles += 1
                core.pipeline_trace.record(
                    cycle, core.sm_id, w.tb_rt.tb.tb_index,
                    w.warp.warp_id, "B", w.fetch_pc,
                )

    def occupancy(self) -> Dict[str, int]:
        """Instantaneous buffer occupancy (debug/trace aid)."""
        buffered = sum(w.ibuffer.buffered for w in self.core.warps)
        return {
            "ibuffer": buffered,
            "zero_cost": self.zero_cost.total,
            "inflight": len(self.wbq),
        }
