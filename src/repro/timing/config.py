"""GPU configuration (Table 2) and scaled variants for experiments.

``PASCAL_GTX1080TI`` mirrors Table 2: 28 SMs, 64 warps/SM, 32 TBs/SM,
32-wide SIMD, 4 GTO warp schedulers per SM, 96 KB shared memory, 2K
vector registers per SM, and the published register-file energies
(14.2 pJ/read, 25.9 pJ/write).

A pure-Python cycle model cannot sweep 28 SMs over 13 benchmarks x 6
configs in reasonable time, so experiments use :func:`small_config`
(fewer SMs, same per-SM microarchitecture).  Speedups are per-SM
phenomena — every config in a comparison uses the same scaling, so
relative results are preserved; DESIGN.md documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class GPUConfig:
    """Microarchitectural parameters of the simulated GPU."""

    name: str = "pascal"
    # -- chip-level ------------------------------------------------------
    num_sms: int = 28
    warp_size: int = 32
    max_warps_per_sm: int = 64
    max_tbs_per_sm: int = 32
    vector_registers_per_sm: int = 2048
    # -- frontend ----------------------------------------------------------
    fetch_warps_per_cycle: int = 1      # fetch scheduler initiates one I-cache fetch
    fetch_width: int = 2                # instructions brought in per fetch
    ibuffer_entries: int = 2            # per-warp I-buffer (Section 3)
    # -- issue ---------------------------------------------------------------
    num_schedulers: int = 4             # warp schedulers per SM (Table 2)
    issue_width: int = 2                # "at most two instructions from one warp each"
    #: warp scheduling policy: "gto" (greedy-then-oldest, Table 2) or
    #: "lrr" (loose round-robin).  Section 5: the paper swept schedulers
    #: and found these regular applications insensitive, with GTO best.
    scheduler_policy: str = "gto"
    # -- execution latencies (cycles) -------------------------------------
    alu_latency: int = 4
    sfu_latency: int = 20
    alu_throughput_per_scheduler: int = 2
    sfu_throughput_per_scheduler: int = 1
    # -- register file ------------------------------------------------------
    rf_banks: int = 16
    operand_collector_slots: int = 8
    # -- DARSIE structure ports (Section 4.3) -------------------------------
    #: rename-table read ports available to the decode/fetch path per
    #: cycle.  None = ideal (unbounded, the paper's model); a finite
    #: value makes warps whose rename reads exceed the budget wait,
    #: counted in ``SimStats.rename_port_stalls``.
    rename_ports: Optional[int] = None
    #: version-table ports available to the skip engine per cycle.
    #: None = ideal; a finite value bounds how many follower skips the
    #: engine can service per cycle (``version_table_port_stalls``).
    version_table_ports: Optional[int] = None
    # -- memory system -------------------------------------------------------
    shared_latency: int = 24
    shared_banks: int = 32
    l1_hit_latency: int = 28
    l1_lines: int = 256                # 32 KB of 128B lines
    l1_assoc: int = 4
    line_bytes: int = 128
    dram_latency: int = 320
    dram_requests_per_cycle: int = 2   # per-SM bandwidth cap on in-flight issues
    max_outstanding_mem: int = 64
    # -- simulator (not microarchitecture) ---------------------------------
    #: jump over provably idle cycles (no effect on simulated stats; see
    #: the bit-identical contract in repro.timing.core).  Disable to
    #: force cycle-by-cycle stepping, e.g. when validating the skipper.
    event_skip: bool = True
    # -- safety ---------------------------------------------------------------
    max_cycles: int = 5_000_000
    #: forward-progress window: raise :class:`repro.timing.gpu.DeadlockError`
    #: when no instruction executes for this many cycles.  Also clamps how
    #: far the event skipper may jump, so a stuck simulation raises at the
    #: same cycle whether stepping or skipping.
    watchdog_cycles: int = 50_000
    #: fast deadlock detector: consecutive whole-GPU ticks with zero
    #: activity *and* no scheduled wake event anywhere.  Such a tick can
    #: never stop repeating (nothing is in flight and no timed release is
    #: pending), so any threshold is sound; a small one turns a silent
    #: hang into a prompt structured error.
    watchdog_idle_ticks: int = 1_000

    def scaled(self, **overrides) -> "GPUConfig":
        """A copy with selected fields replaced."""
        return replace(self, **overrides)


#: The paper's baseline card (Table 2).
PASCAL_GTX1080TI = GPUConfig(name="gtx1080ti")


def small_config(num_sms: int = 1, **overrides) -> GPUConfig:
    """Experiment-scale config: same SM microarchitecture, fewer SMs."""
    return PASCAL_GTX1080TI.scaled(name=f"pascal-{num_sms}sm", num_sms=num_sms, **overrides)
