"""Simulation statistics and energy-event counting.

Every microarchitectural event that costs energy is counted here by the
timing core; :mod:`repro.energy.model` turns the counts into joules.
Keeping counting separate from costing lets the energy model be swept
without re-simulating.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field, fields
from typing import Dict


class EnergyEvent(enum.Enum):
    """Countable energy events (GPUWattch-style accounting)."""

    ICACHE_FETCH = "icache_fetch"
    DECODE = "decode"
    ISSUE = "issue"
    RF_READ = "rf_read"
    RF_WRITE = "rf_write"
    ALU_OP = "alu_op"
    SFU_OP = "sfu_op"
    SHARED_ACCESS = "shared_access"
    L1_ACCESS = "l1_access"
    DRAM_ACCESS = "dram_access"
    # DARSIE-specific overhead events (Section 6.1: "most of the overhead
    # comes from accessing the PC Skip Table, majority path mask and
    # register rename table").
    SKIP_TABLE_PROBE = "skip_table_probe"
    SKIP_TABLE_WRITE = "skip_table_write"
    PC_COALESCER = "pc_coalescer"
    RENAME_READ = "rename_read"
    RENAME_WRITE = "rename_write"
    VERSION_TABLE = "version_table"
    MAJORITY_MASK = "majority_mask"


@dataclass
class SimStats:
    """Aggregated statistics of one timing simulation."""

    #: wall clock, not work: SMs run concurrently, so merging takes the max
    cycles: int = field(default=0, metadata={"merge": "max"})
    instructions_fetched: int = 0
    instructions_decoded: int = 0
    instructions_issued: int = 0
    instructions_executed: int = 0
    #: instructions removed before fetch (DARSIE / DAC-IDEAL)
    instructions_skipped: int = 0
    #: instructions whose execution was eliminated at issue (UV)
    executions_eliminated: int = 0
    #: skipped-instruction breakdown by redundancy class name
    skipped_by_class: Counter = field(default_factory=Counter)
    eliminated_by_class: Counter = field(default_factory=Counter)
    #: cycles warps spent blocked on DARSIE synchronization
    sync_wait_cycles: int = 0
    branch_barriers: int = 0
    rf_bank_conflicts: int = 0
    darsie_bank_conflicts: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    shared_bank_conflict_cycles: int = 0
    leaders_elected: int = 0
    follower_skips: int = 0
    freelist_syncs: int = 0
    #: structural stalls from finite DARSIE structure ports
    #: (``GPUConfig.rename_ports`` / ``version_table_ports``; both zero
    #: under the default ideal-port configuration)
    rename_port_stalls: int = 0
    version_table_port_stalls: int = 0
    load_entries_invalidated: int = 0
    warps_left_majority: int = 0
    #: branches that actually split a warp (pushed a reconvergence entry)
    divergent_branches: int = 0
    #: instructions issued while the warp's SIMT stack was divergent —
    #: the serialized work control-flow melding (DARM) removes
    divergence_serialized_instructions: int = 0
    energy_events: Counter = field(default_factory=Counter)

    def count(self, event: EnergyEvent, n: int = 1) -> None:
        self.energy_events[event] += n

    @property
    def total_instruction_slots(self) -> int:
        """Baseline-equivalent work: executed + skipped instructions."""
        return self.instructions_executed + self.instructions_skipped

    def merge(self, other: "SimStats") -> None:
        """Accumulate another stats object into this one (multi-SM).

        Merge semantics come from the field definitions, so a newly
        added counter is aggregated automatically: ``Counter`` fields
        are element-wise added, ``int`` fields are summed, and a field
        declared with ``metadata={"merge": "max"}`` (wall-clock-like
        quantities) takes the maximum.  A field of any other type is a
        programming error and raises rather than being silently dropped.
        """
        for f in fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            if f.metadata.get("merge") == "max":
                setattr(self, f.name, max(mine, theirs))
            elif isinstance(mine, Counter):
                mine.update(theirs)
            elif isinstance(mine, int):
                setattr(self, f.name, mine + theirs)
            else:
                raise TypeError(
                    f"SimStats.{f.name}: no merge rule for {type(mine).__name__}"
                )

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "fetched": self.instructions_fetched,
            "executed": self.instructions_executed,
            "skipped": self.instructions_skipped,
            "eliminated": self.executions_eliminated,
            "skip_fraction": (
                self.instructions_skipped / self.total_instruction_slots
                if self.total_instruction_slots
                else 0.0
            ),
        }
