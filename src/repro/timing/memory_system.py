"""Per-SM memory system: transaction coalescer, L1 cache, DRAM latency.

Global accesses from a warp are coalesced into 128-byte transactions
(the granularity NVIDIA GPUs have used since Fermi).  Each transaction
probes a set-associative L1; misses pay a fixed DRAM latency and consume
per-cycle DRAM issue bandwidth, which creates queueing under contention.

Shared-memory accesses model the classic 32-bank conflict rule: the
access takes one inner cycle per maximum number of distinct words mapped
to the same bank.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.timing.config import GPUConfig
from repro.timing.stats import EnergyEvent, SimStats


def coalesce_transactions(addresses: np.ndarray, mask: np.ndarray, line_bytes: int) -> List[int]:
    """Unique memory-transaction line addresses for one warp access,
    in ascending order (the L1 / DRAM-queue probe order depends on it)."""
    active = addresses[mask]
    if active.size == 0:
        return []
    return sorted(set((active // line_bytes).tolist()))


def shared_bank_conflict_cycles(
    addresses: np.ndarray, mask: np.ndarray, num_banks: int
) -> int:
    """Extra cycles from shared-memory bank conflicts (0 if conflict-free).

    The bank of word-address ``w`` is ``w % num_banks``; lanes hitting
    the same bank at *different* words serialise.  Broadcast (same word)
    is free, as on real hardware.
    """
    active = addresses[mask]
    if active.size == 0:
        return 0
    # At most warp_size (32) lanes: plain set/dict arithmetic beats
    # repeated np.unique calls at this size.
    per_bank: dict = {}
    worst = 1
    for word in set((active // 4).tolist()):
        bank = word % num_banks
        n = per_bank.get(bank, 0) + 1
        per_bank[bank] = n
        if n > worst:
            worst = n
    return worst - 1


class L1Cache:
    """Set-associative, LRU, write-through no-allocate L1 data cache."""

    def __init__(self, lines: int, assoc: int, line_bytes: int):
        self.num_sets = max(1, lines // assoc)
        self.assoc = assoc
        self.line_bytes = line_bytes
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]

    def access(self, line_addr: int, is_write: bool) -> bool:
        """Probe for ``line_addr``; returns True on hit.  Reads allocate."""
        idx = line_addr % self.num_sets
        s = self._sets[idx]
        if line_addr in s:
            s.move_to_end(line_addr)
            return True
        if is_write:
            return False  # write-through, no write-allocate
        s[line_addr] = True
        if len(s) > self.assoc:
            s.popitem(last=False)
        return False

    def flush(self) -> None:
        for s in self._sets:
            s.clear()


@dataclass
class MemoryRequest:
    """An in-flight warp memory operation (all its transactions)."""

    ready_cycle: int
    transactions: int


class MemorySystem:
    """Latency/bandwidth model shared by all warps of one SM."""

    def __init__(self, config: GPUConfig, stats: SimStats):
        self.config = config
        self.stats = stats
        self.l1 = L1Cache(config.l1_lines, config.l1_assoc, config.line_bytes)
        #: earliest cycle at which the next DRAM request may issue
        self._dram_free = 0.0

    def global_access(
        self, cycle: int, addresses: np.ndarray, mask: np.ndarray, is_write: bool
    ) -> int:
        """Issue a global access; returns the completion cycle."""
        lines = coalesce_transactions(addresses, mask, self.config.line_bytes)
        if not lines:
            return cycle + 1
        worst = cycle + 1
        for line in lines:
            self.stats.count(EnergyEvent.L1_ACCESS)
            hit = self.l1.access(line, is_write)
            if hit and not is_write:
                self.stats.l1_hits += 1
                done = cycle + self.config.l1_hit_latency
            else:
                if not is_write:
                    self.stats.l1_misses += 1
                self.stats.count(EnergyEvent.DRAM_ACCESS)
                # Bandwidth queue: each DRAM request occupies a slot of
                # 1/requests_per_cycle cycles at the memory controller.
                start = max(float(cycle), self._dram_free)
                self._dram_free = start + 1.0 / self.config.dram_requests_per_cycle
                done = int(start) + self.config.dram_latency
            worst = max(worst, done)
        return worst

    def shared_access(self, cycle: int, addresses: np.ndarray, mask: np.ndarray) -> int:
        """Issue a shared-memory access; returns the completion cycle."""
        self.stats.count(EnergyEvent.SHARED_ACCESS)
        conflicts = shared_bank_conflict_cycles(addresses, mask, self.config.shared_banks)
        self.stats.shared_bank_conflict_cycles += conflicts
        return cycle + self.config.shared_latency + conflicts
