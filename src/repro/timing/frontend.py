"""Frontend strategy interface for instruction-elimination mechanisms.

The SM core (:mod:`repro.timing.core`) is mechanism-agnostic: every
config — BASE, UV, DAC-IDEAL, DARSIE and its ablations — runs the same
fetch/issue/execute/writeback pipeline and differs only in the
:class:`Frontend` strategy plugged into it.  This mirrors the paper's
methodology (Section 5): all techniques are modelled inside one
simulator so comparisons are apples-to-apples.

Hook timeline for one instruction:

- ``fetch_cycle``       once per SM cycle, before the fetch scheduler —
  DARSIE's instruction skipper lives here (it works "in parallel with
  the fetch scheduler", Section 4.3.2);
- ``filter_fetch``      as the fetch scheduler considers a warp's next
  PC — may redirect to the skip machinery or stall the warp;
- ``on_fetch``          an instruction entered the I-buffer (rename
  bookkeeping is fetch-ordered, like decode-stage renaming);
- ``eliminate_at_issue``  UV's reuse-buffer check;
- ``on_executed``       functional outcome available (branch outcomes,
  store/atomic events);
- ``on_writeback``      destination value architecturally visible
  (DARSIE's LeaderWB bit).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional



class FetchAction(enum.Enum):
    """What the fetch scheduler should do with a warp's next PC."""

    FETCH = "fetch"            # fetch normally
    FETCH_LEADER = "leader"    # fetch normally, flag as skip-table leader
    HANDLED = "handled"        # the skip engine owns this PC; do not fetch
    WAIT = "wait"              # warp is blocked (sync / leaderWB pending)


class Frontend:
    """Base strategy: no elimination (the BASE configuration)."""

    name = "BASE"

    def bind(self, sm) -> None:
        """Attach to an SM core (called once before simulation)."""
        self.sm = sm

    def make_issue_stage(self, pipeline):
        """Return a custom issue stage for this frontend, or None for
        the default :class:`~repro.timing.stages.IssueStage`.

        Called while the :class:`~repro.timing.stages.StagePipeline` is
        assembling (before :meth:`bind`), so implementations must not
        touch SM state — just construct the stage.
        """
        return None

    # -- TB lifecycle ---------------------------------------------------------

    def on_tb_launch(self, tb_rt) -> None:
        pass

    def on_tb_complete(self, tb_rt) -> None:
        pass

    # -- fetch stage ------------------------------------------------------------

    def fetch_cycle(self, cycle: int) -> None:
        """Per-cycle hook running in parallel with the fetch scheduler."""

    def next_wake(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which this frontend can change state
        without any other pipeline activity (timed releases), or None.

        Used by event-driven cycle skipping: when an SM is otherwise
        idle it sleeps until ``min(writeback heap, next_wake())``.  A
        frontend whose ``fetch_cycle`` can act at a future time purely as
        a function of the cycle number must report it here; frontends
        that only react to pipeline events (and call
        ``sm.note_activity()`` when they mutate state) return None.
        """
        return None

    def filter_fetch(self, warp_rt, pc: int) -> FetchAction:
        return FetchAction.FETCH

    def on_fetch(self, warp_rt, inst, is_leader: bool) -> Optional[Dict]:
        """Called when ``inst`` enters the I-buffer.  May return captured
        operand overrides ``{"regs": {...}, "preds": {...}}`` for issue
        time (renamed sources are captured in fetch order)."""
        return None

    # -- issue / execute / writeback ------------------------------------------

    def eliminate_at_issue(self, warp_rt, inst) -> Optional[str]:
        """Return a redundancy-class name to eliminate execution at the
        issue stage (UV's reuse buffer), else None."""
        return None

    def on_executed(self, warp_rt, inst, result) -> None:
        pass

    def on_writeback(self, warp_rt, inst, entry_meta) -> None:
        pass

    # -- synchronization ---------------------------------------------------------

    def blocks_after_branch(self, warp_rt, inst) -> bool:
        """True when the warp must wait at this branch (TB-wide branch
        synchronization) after executing it."""
        return False

    def on_syncthreads(self, tb_rt) -> None:
        pass

    def on_warp_exit(self, warp_rt) -> None:
        pass

    # -- memory-dependence events ---------------------------------------------

    def on_store(self, tb_rt) -> None:
        pass

    def on_global_communication(self) -> None:
        pass


class NullFrontend(Frontend):
    """Explicit alias of the base (no-elimination) frontend."""

    name = "BASE"


class DualIssueFrontend(Frontend):
    """DUAL-ISSUE: baseline execution with each warp scheduler able to
    issue from up to two distinct warps per cycle.

    No elimination mechanism — this variant exists to prove the staged
    pipeline's extension seam: one frontend registration swaps in an
    alternative :class:`~repro.timing.stages.IssueStage` without
    touching the core or any other stage.
    """

    name = "DUAL-ISSUE"

    def make_issue_stage(self, pipeline):
        from repro.timing.stages import DualIssueStage

        return DualIssueStage(pipeline)


class SiliconSyncFrontend(Frontend):
    """SILICON-SYNC (Figure 12): baseline execution plus a TB-wide
    barrier at every branch — the paper's silicon experiment that
    isolates DARSIE's synchronization overhead without its benefits
    ("we instrumented the applications with __syncthreads() calls at
    basic-block boundaries").

    Each inserted ``__syncthreads()`` carries a fixed drain cost
    (``release_delay`` cycles) on top of the arrival wait, modelling the
    pipeline drain and barrier-unit round trip a real ``BAR.SYNC`` pays
    on silicon — an in-order simulator with fair scheduling keeps warps
    nearly aligned, so without this cost the instrumentation would look
    free, which contradicts the silicon measurement.
    """

    name = "SILICON-SYNC"

    def __init__(self, release_delay: int = 24):
        self.release_delay = release_delay

    def on_tb_launch(self, tb_rt) -> None:
        tb_rt.frontend_state = {"arrived": {}, "pending_release": []}

    def fetch_cycle(self, cycle: int) -> None:
        for tb_rt in self.sm.tbs:
            pending = tb_rt.frontend_state.get("pending_release", [])
            ready = [p for p in pending if p[0] <= cycle]
            if not ready:
                continue
            tb_rt.frontend_state["pending_release"] = [p for p in pending if p[0] > cycle]
            self.sm.note_activity()
            for _at, warp_ids in ready:
                for w in tb_rt.warps:
                    if w.warp.warp_id in warp_ids and not w.warp.exited:
                        w.branch_sync_blocked = False
                        w.resync_fetch()

    def next_wake(self, cycle: int) -> Optional[int]:
        wake = None
        for tb_rt in self.sm.tbs:
            for at, _warp_ids in tb_rt.frontend_state.get("pending_release", ()):
                if at > cycle and (wake is None or at < wake):
                    wake = at
        return wake

    def blocks_after_branch(self, warp_rt, inst) -> bool:
        tb_rt = warp_rt.tb_rt
        arrived = tb_rt.frontend_state["arrived"].setdefault(inst.pc, set())
        arrived.add(warp_rt.warp.warp_id)
        live = {w.warp.warp_id for w in tb_rt.warps if not w.warp.exited}
        if arrived >= live:
            self._release(tb_rt, inst.pc, arrived)
        return True  # even the last arriver pays the drain cost

    def _release(self, tb_rt, pc: int, arrived) -> None:
        tb_rt.frontend_state["pending_release"].append(
            (self.sm.cycle + self.release_delay, set(arrived))
        )
        del tb_rt.frontend_state["arrived"][pc]
        self.sm.stats.branch_barriers += 1

    def on_warp_exit(self, warp_rt) -> None:
        # Re-evaluate pending barriers: the exited warp no longer counts.
        tb_rt = warp_rt.tb_rt
        live = {w.warp.warp_id for w in tb_rt.warps if not w.warp.exited}
        for pc, arrived in list(tb_rt.frontend_state["arrived"].items()):
            if arrived >= live:
                self._release(tb_rt, pc, arrived)
