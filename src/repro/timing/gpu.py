"""Whole-GPU simulation: TB dispatch across SMs and the cycle loop.

Threadblocks are dispatched to SMs round-robin at kernel launch, up to
each SM's residency limits (warps and TBs, Table 2); as TBs complete,
pending TBs launch in their place — the standard GPU work distribution
the paper's baseline inherits from GPGPU-Sim.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.isa.program import Program
from repro.simt.executor import ExecutionContext, FunctionalEngine
from repro.simt.grid import LaunchConfig
from repro.simt.memory import GlobalMemory, KernelParams
from repro.timing.config import GPUConfig
from repro.timing.core import SMCore
from repro.timing.frontend import Frontend, NullFrontend
from repro.timing.stats import SimStats


class DeadlockError(RuntimeError):
    """The simulation made no forward progress within the watchdog window.

    ``dump`` is a structured, JSON-safe diagnostic: per-SM stage/buffer
    occupancy plus the control state of every live warp at the moment
    the watchdog fired (see :meth:`GPU._diagnostic_dump`), so a hung
    kernel can be triaged without re-running under a trace.
    """

    def __init__(self, message: str, dump: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.dump: Dict[str, Any] = dump if dump is not None else {}

    def to_dict(self) -> Dict[str, Any]:
        return {"message": str(self), "dump": self.dump}


@dataclass
class SimulationResult:
    """Outcome of one timing simulation."""

    frontend_name: str
    cycles: int
    stats: SimStats
    per_sm_stats: List[SimStats]
    config: GPUConfig

    @property
    def ipc(self) -> float:
        return self.stats.instructions_executed / max(1, self.cycles)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        return baseline.cycles / max(1, self.cycles)

    def to_dict(self) -> dict:
        """Plain-data form for archiving / cross-run comparison."""
        return {
            "frontend": self.frontend_name,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "config": self.config.name,
            "num_sms": self.config.num_sms,
            "counters": {
                "fetched": self.stats.instructions_fetched,
                "decoded": self.stats.instructions_decoded,
                "issued": self.stats.instructions_issued,
                "executed": self.stats.instructions_executed,
                "skipped": self.stats.instructions_skipped,
                "eliminated": self.stats.executions_eliminated,
                "leaders_elected": self.stats.leaders_elected,
                "follower_skips": self.stats.follower_skips,
                "branch_barriers": self.stats.branch_barriers,
                "sync_wait_cycles": self.stats.sync_wait_cycles,
                "freelist_syncs": self.stats.freelist_syncs,
                "load_entries_invalidated": self.stats.load_entries_invalidated,
                "warps_left_majority": self.stats.warps_left_majority,
                "l1_hits": self.stats.l1_hits,
                "l1_misses": self.stats.l1_misses,
            },
            "skipped_by_class": dict(self.stats.skipped_by_class),
            "eliminated_by_class": dict(self.stats.eliminated_by_class),
            "energy_events": {e.value: n for e, n in self.stats.energy_events.items()},
        }

    def to_json(self, **kwargs) -> str:
        import json

        return json.dumps(self.to_dict(), **kwargs)


class GPU:
    """A collection of SM cores sharing a kernel launch."""

    def __init__(
        self,
        program: Program,
        launch: LaunchConfig,
        memory: GlobalMemory,
        params: Optional[Dict] = None,
        config: Optional[GPUConfig] = None,
        frontend_factory: Optional[Callable[[], Frontend]] = None,
    ):
        self.config = config or GPUConfig()
        if launch.warp_size != self.config.warp_size:
            raise ValueError(
                f"launch warp size {launch.warp_size} != config {self.config.warp_size}"
            )
        self.ctx = ExecutionContext(
            program=program,
            launch=launch,
            memory=memory,
            params=KernelParams(params or {}),
        )
        self.engine = FunctionalEngine(self.ctx)
        factory = frontend_factory or NullFrontend
        self.sms = [
            SMCore(i, self.config, self.ctx, self.engine, factory())
            for i in range(self.config.num_sms)
        ]
        self._pending = list(range(launch.num_blocks))
        self._dispatch_rr = 0
        # Cycle-loop state lives on the instance (not as run() locals) so
        # an in-flight simulation can be snapshotted and resumed from the
        # exact loop iteration it was paused at.
        self.cycle = 0
        self._started = False
        self._watchdog_executed = -1
        self._watchdog_cycle = 0
        self._idle_ticks = 0

    def attach_trace(self, trace) -> None:
        """Record per-cycle pipeline events into ``trace``
        (:class:`repro.timing.pipeline_trace.PipelineTrace`)."""
        for sm in self.sms:
            sm.pipeline_trace = trace

    def attach_stage_trace(self, trace) -> None:
        """Record per-cycle stage activity/occupancy into ``trace``
        (:class:`repro.timing.pipeline_trace.StageOccupancyTrace`)."""
        for sm in self.sms:
            sm.stage_trace = trace

    def _dispatch(self) -> None:
        warps_needed = self.ctx.launch.warps_per_block
        stalled = 0
        while self._pending and stalled < len(self.sms):
            sm = self.sms[self._dispatch_rr % len(self.sms)]
            self._dispatch_rr += 1
            if sm.can_accept_tb(warps_needed):
                sm.launch_tb(self._pending.pop(0))
                stalled = 0
            else:
                stalled += 1

    @property
    def finished(self) -> bool:
        """True once every threadblock has been dispatched and retired."""
        return not self._pending and not any(sm.busy for sm in self.sms)

    def run(
        self,
        checkpoint_interval: int = 0,
        checkpoint_cb: Optional[Callable[["GPU"], None]] = None,
    ) -> SimulationResult:
        """Run (or resume) the simulation to completion.

        When ``checkpoint_interval`` is positive, ``checkpoint_cb`` is
        invoked with this GPU every time at least that many cycles have
        elapsed since the last call — always at a loop-iteration
        boundary, where the instance state is a complete, consistent
        snapshot surface.  The callback is never stored on the instance,
        so it places no picklability constraint on checkpoints.
        """
        result = self.run_to(None, checkpoint_interval, checkpoint_cb)
        assert result is not None  # unbounded run either finishes or raises
        return result

    def run_to(
        self,
        stop_cycle: Optional[int],
        checkpoint_interval: int = 0,
        checkpoint_cb: Optional[Callable[["GPU"], None]] = None,
    ) -> Optional[SimulationResult]:
        """Advance the simulation, pausing once ``self.cycle`` reaches
        ``stop_cycle`` (``None`` = run to completion).

        Returns the :class:`SimulationResult` when the kernel finished,
        or ``None`` when paused.  A paused GPU can be resumed by calling
        this again (possibly after a :meth:`snapshot`/:meth:`restore`
        round trip); the continued run replays the exact step sequence
        of an uninterrupted one, so results are bit-identical.
        """
        if not self._started:
            self._dispatch()
            self._started = True
        # Event-driven skipping: when a whole tick produced zero state
        # changes, the next tick would repeat it exactly — jump straight
        # to the earliest known-future event (writeback heap head /
        # timed frontend release) and replay the per-idle-cycle
        # accounting in closed form.  Disabled under a pipeline trace,
        # which records blocked warps every cycle.
        skip_enabled = self.config.event_skip and all(
            sm.pipeline_trace is None and sm.stage_trace is None
            for sm in self.sms
        )
        watchdog_window = self.config.watchdog_cycles
        last_checkpoint = self.cycle
        while self._pending or any(sm.busy for sm in self.sms):
            if stop_cycle is not None and self.cycle >= stop_cycle:
                return None
            activity = 0
            for sm in self.sms:
                if sm.busy:
                    activity += sm.tick(self.cycle)
            if any(sm.completed_tbs for sm in self.sms):
                for sm in self.sms:
                    sm.completed_tbs.clear()
                self._dispatch()
            self.cycle += 1
            if self.cycle >= self.config.max_cycles:
                raise DeadlockError(
                    f"exceeded max_cycles={self.config.max_cycles}",
                    dump=self._diagnostic_dump("max_cycles"),
                )
            executed = self.engine.instructions_executed
            if executed != self._watchdog_executed:
                self._watchdog_executed = executed
                self._watchdog_cycle = self.cycle
            elif self.cycle - self._watchdog_cycle > watchdog_window:
                raise DeadlockError(
                    f"no instruction executed for {watchdog_window} cycles "
                    f"at cycle {self.cycle}; blocked warps: "
                    + ", ".join(
                        f"sm{sm.sm_id}/w{w.age}@{w.fetch_pc:#x}"
                        f"{'S' if w.skip_blocked else ''}"
                        f"{'B' if w.branch_sync_blocked else ''}"
                        f"{'C' if w.cf_stalled else ''}"
                        f"{'Y' if w.warp.at_barrier else ''}"
                        for sm in self.sms
                        for w in sm.warps
                        if not w.exited
                    ),
                    dump=self._diagnostic_dump("no_instruction_executed"),
                )
            if activity == 0:
                target: Optional[int] = None
                for sm in self.sms:
                    if not sm.busy:
                        continue
                    wake = sm.wake_cycle()
                    if wake is None:
                        continue
                    if target is None or wake < target:
                        target = wake
                if target is None:
                    # Nothing in flight and no timed release pending on
                    # any SM: this tick repeats forever.  Raise promptly
                    # instead of spinning out the full watchdog window.
                    self._idle_ticks += 1
                    if self._idle_ticks >= self.config.watchdog_idle_ticks:
                        raise DeadlockError(
                            f"no forward progress and no wake event for "
                            f"{self._idle_ticks} consecutive idle ticks "
                            f"at cycle {self.cycle}",
                            dump=self._diagnostic_dump("idle_no_wake"),
                        )
                elif skip_enabled:
                    self._idle_ticks = 0
                    # Never jump past the watchdog or max_cycles limits,
                    # so a genuinely stuck simulation still raises at the
                    # same cycle it would have when stepping.
                    target = min(
                        target,
                        self._watchdog_cycle + watchdog_window,
                        self.config.max_cycles - 1,
                    )
                    if target > self.cycle:
                        delta = target - self.cycle
                        for sm in self.sms:
                            if sm.busy:
                                sm.advance_idle(delta)
                        self.cycle = target
                else:
                    self._idle_ticks = 0
            else:
                self._idle_ticks = 0
            if (
                checkpoint_interval > 0
                and checkpoint_cb is not None
                and self.cycle - last_checkpoint >= checkpoint_interval
            ):
                checkpoint_cb(self)
                last_checkpoint = self.cycle
        return self._finalize()

    def _finalize(self) -> SimulationResult:
        merged = SimStats()
        for sm in self.sms:
            sm.stats.cycles = self.cycle
            merged.merge(sm.stats)
        merged.cycles = self.cycle
        return SimulationResult(
            frontend_name=self.sms[0].frontend.name if self.sms else "BASE",
            cycles=self.cycle,
            stats=merged,
            per_sm_stats=[sm.stats for sm in self.sms],
            config=self.config,
        )

    # -- crash-safe checkpointing -----------------------------------------

    def snapshot(self) -> bytes:
        """Serialize the complete in-flight simulator state.

        The whole object graph is pickled in one shot so every shared
        reference (the pipeline-wide :class:`ZeroCostLedger` aliased by
        each warp's I-buffer, warps appearing in scheduler lists and the
        writeback heap, the frontend's backpointers into its core) is
        preserved exactly; :meth:`restore` yields a GPU whose continued
        run is bit-identical to the uninterrupted one.  Trace recorders
        are observation hooks, not simulator state, and may hold
        unpicklable sinks — snapshotting under one is a usage error.
        """
        if any(
            sm.pipeline_trace is not None or sm.stage_trace is not None
            for sm in self.sms
        ):
            raise ValueError("cannot snapshot a GPU with a trace attached")
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def restore(data: bytes) -> "GPU":
        """Reconstitute a GPU from :meth:`snapshot` bytes."""
        gpu = pickle.loads(data)
        if not isinstance(gpu, GPU):
            raise TypeError(f"snapshot does not contain a GPU: {type(gpu).__name__}")
        return gpu

    # -- watchdog diagnostics ----------------------------------------------

    def _diagnostic_dump(self, reason: str) -> Dict[str, Any]:
        """JSON-safe per-stage/per-warp state for :class:`DeadlockError`."""
        sms = []
        for sm in self.sms:
            pipeline = sm.pipeline
            warps = []
            for w in sm.warps:
                if w.exited:
                    continue
                warps.append(
                    {
                        "age": w.age,
                        "warp_id": w.warp.warp_id,
                        "tb_index": w.warp.tb_index,
                        "scheduler": w.scheduler_id,
                        "pc": w.warp.pc,
                        "fetch_pc": w.fetch_pc,
                        "flags": (
                            ("S" if w.skip_blocked else "")
                            + ("B" if w.branch_sync_blocked else "")
                            + ("C" if w.cf_stalled else "")
                            + ("Y" if w.warp.at_barrier else "")
                        ),
                        "ibuffer": w.ibuffer.buffered,
                        "ibuffer_zero_cost": w.ibuffer.zero_cost,
                        "inflight": w.inflight,
                        "scoreboard": len(w.scoreboard),
                    }
                )
            sms.append(
                {
                    "sm": sm.sm_id,
                    "busy": sm.busy,
                    "next_wake": sm.wake_cycle() if sm.busy else None,
                    "stages": [stage.name for stage in pipeline.stages],
                    "occupancy": pipeline.occupancy(),
                    "wbq_depth": len(pipeline.wbq),
                    "wbq_next_ready": pipeline.wbq.next_ready(),
                    "live_tbs": sum(1 for tb in sm.tbs if not tb.completed),
                    "warps": warps,
                }
            )
        return {
            "reason": reason,
            "cycle": self.cycle,
            "instructions_executed": self.engine.instructions_executed,
            "pending_tbs": len(self._pending),
            "frontend": self.sms[0].frontend.name if self.sms else "BASE",
            "sms": sms,
        }


def simulate(
    program: Program,
    launch: LaunchConfig,
    memory: GlobalMemory,
    params: Optional[Dict] = None,
    config: Optional[GPUConfig] = None,
    frontend_factory: Optional[Callable[[], Frontend]] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`GPU` and run it to completion."""
    gpu = GPU(
        program=program,
        launch=launch,
        memory=memory,
        params=params,
        config=config,
        frontend_factory=frontend_factory,
    )
    return gpu.run()
