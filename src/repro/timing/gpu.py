"""Whole-GPU simulation: TB dispatch across SMs and the cycle loop.

Threadblocks are dispatched to SMs round-robin at kernel launch, up to
each SM's residency limits (warps and TBs, Table 2); as TBs complete,
pending TBs launch in their place — the standard GPU work distribution
the paper's baseline inherits from GPGPU-Sim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.isa.program import Program
from repro.simt.executor import ExecutionContext, FunctionalEngine
from repro.simt.grid import LaunchConfig
from repro.simt.memory import GlobalMemory, KernelParams
from repro.timing.config import GPUConfig
from repro.timing.core import SMCore
from repro.timing.frontend import Frontend, NullFrontend
from repro.timing.stats import SimStats


class DeadlockError(RuntimeError):
    """The simulation made no forward progress for many cycles."""


@dataclass
class SimulationResult:
    """Outcome of one timing simulation."""

    frontend_name: str
    cycles: int
    stats: SimStats
    per_sm_stats: List[SimStats]
    config: GPUConfig

    @property
    def ipc(self) -> float:
        return self.stats.instructions_executed / max(1, self.cycles)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        return baseline.cycles / max(1, self.cycles)

    def to_dict(self) -> dict:
        """Plain-data form for archiving / cross-run comparison."""
        return {
            "frontend": self.frontend_name,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "config": self.config.name,
            "num_sms": self.config.num_sms,
            "counters": {
                "fetched": self.stats.instructions_fetched,
                "decoded": self.stats.instructions_decoded,
                "issued": self.stats.instructions_issued,
                "executed": self.stats.instructions_executed,
                "skipped": self.stats.instructions_skipped,
                "eliminated": self.stats.executions_eliminated,
                "leaders_elected": self.stats.leaders_elected,
                "follower_skips": self.stats.follower_skips,
                "branch_barriers": self.stats.branch_barriers,
                "sync_wait_cycles": self.stats.sync_wait_cycles,
                "freelist_syncs": self.stats.freelist_syncs,
                "load_entries_invalidated": self.stats.load_entries_invalidated,
                "warps_left_majority": self.stats.warps_left_majority,
                "l1_hits": self.stats.l1_hits,
                "l1_misses": self.stats.l1_misses,
            },
            "skipped_by_class": dict(self.stats.skipped_by_class),
            "eliminated_by_class": dict(self.stats.eliminated_by_class),
            "energy_events": {e.value: n for e, n in self.stats.energy_events.items()},
        }

    def to_json(self, **kwargs) -> str:
        import json

        return json.dumps(self.to_dict(), **kwargs)


class GPU:
    """A collection of SM cores sharing a kernel launch."""

    def __init__(
        self,
        program: Program,
        launch: LaunchConfig,
        memory: GlobalMemory,
        params: Optional[Dict] = None,
        config: Optional[GPUConfig] = None,
        frontend_factory: Optional[Callable[[], Frontend]] = None,
    ):
        self.config = config or GPUConfig()
        if launch.warp_size != self.config.warp_size:
            raise ValueError(
                f"launch warp size {launch.warp_size} != config {self.config.warp_size}"
            )
        self.ctx = ExecutionContext(
            program=program,
            launch=launch,
            memory=memory,
            params=KernelParams(params or {}),
        )
        self.engine = FunctionalEngine(self.ctx)
        factory = frontend_factory or NullFrontend
        self.sms = [
            SMCore(i, self.config, self.ctx, self.engine, factory())
            for i in range(self.config.num_sms)
        ]
        self._pending = list(range(launch.num_blocks))
        self._dispatch_rr = 0

    def attach_trace(self, trace) -> None:
        """Record per-cycle pipeline events into ``trace``
        (:class:`repro.timing.pipeline_trace.PipelineTrace`)."""
        for sm in self.sms:
            sm.pipeline_trace = trace

    def attach_stage_trace(self, trace) -> None:
        """Record per-cycle stage activity/occupancy into ``trace``
        (:class:`repro.timing.pipeline_trace.StageOccupancyTrace`)."""
        for sm in self.sms:
            sm.stage_trace = trace

    def _dispatch(self) -> None:
        warps_needed = self.ctx.launch.warps_per_block
        stalled = 0
        while self._pending and stalled < len(self.sms):
            sm = self.sms[self._dispatch_rr % len(self.sms)]
            self._dispatch_rr += 1
            if sm.can_accept_tb(warps_needed):
                sm.launch_tb(self._pending.pop(0))
                stalled = 0
            else:
                stalled += 1

    def run(self) -> SimulationResult:
        self._dispatch()
        cycle = 0
        watchdog_executed = -1
        watchdog_cycle = 0
        # Event-driven skipping: when a whole tick produced zero state
        # changes, the next tick would repeat it exactly — jump straight
        # to the earliest known-future event (writeback heap head /
        # timed frontend release) and replay the per-idle-cycle
        # accounting in closed form.  Disabled under a pipeline trace,
        # which records blocked warps every cycle.
        skip_enabled = self.config.event_skip and all(
            sm.pipeline_trace is None and sm.stage_trace is None
            for sm in self.sms
        )
        while self._pending or any(sm.busy for sm in self.sms):
            activity = 0
            for sm in self.sms:
                if sm.busy:
                    activity += sm.tick(cycle)
            if any(sm.completed_tbs for sm in self.sms):
                for sm in self.sms:
                    sm.completed_tbs.clear()
                self._dispatch()
            cycle += 1
            if cycle >= self.config.max_cycles:
                raise DeadlockError(f"exceeded max_cycles={self.config.max_cycles}")
            executed = self.engine.instructions_executed
            if executed != watchdog_executed:
                watchdog_executed = executed
                watchdog_cycle = cycle
            elif cycle - watchdog_cycle > 50_000:
                raise DeadlockError(
                    f"no instruction executed for 50k cycles at cycle {cycle}; "
                    "blocked warps: "
                    + ", ".join(
                        f"sm{sm.sm_id}/w{w.age}@{w.fetch_pc:#x}"
                        f"{'S' if w.skip_blocked else ''}"
                        f"{'B' if w.branch_sync_blocked else ''}"
                        f"{'C' if w.cf_stalled else ''}"
                        f"{'Y' if w.warp.at_barrier else ''}"
                        for sm in self.sms
                        for w in sm.warps
                        if not w.exited
                    )
                )
            if skip_enabled and activity == 0:
                target: Optional[int] = None
                for sm in self.sms:
                    if not sm.busy:
                        continue
                    wake = sm.wake_cycle()
                    if wake is None:
                        continue
                    if target is None or wake < target:
                        target = wake
                if target is not None:
                    # Never jump past the watchdog or max_cycles limits,
                    # so a genuinely stuck simulation still raises at the
                    # same cycle it would have when stepping.
                    target = min(
                        target, watchdog_cycle + 50_000, self.config.max_cycles - 1
                    )
                    if target > cycle:
                        delta = target - cycle
                        for sm in self.sms:
                            if sm.busy:
                                sm.advance_idle(delta)
                        cycle = target
        merged = SimStats()
        for sm in self.sms:
            sm.stats.cycles = cycle
            merged.merge(sm.stats)
        merged.cycles = cycle
        return SimulationResult(
            frontend_name=self.sms[0].frontend.name if self.sms else "BASE",
            cycles=cycle,
            stats=merged,
            per_sm_stats=[sm.stats for sm in self.sms],
            config=self.config,
        )


def simulate(
    program: Program,
    launch: LaunchConfig,
    memory: GlobalMemory,
    params: Optional[Dict] = None,
    config: Optional[GPUConfig] = None,
    frontend_factory: Optional[Callable[[], Frontend]] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`GPU` and run it to completion."""
    gpu = GPU(
        program=program,
        launch=launch,
        memory=memory,
        params=params,
        config=config,
        frontend_factory=frontend_factory,
    )
    return gpu.run()
