"""Crash-safe on-disk checkpoints of in-flight timing simulations.

A checkpoint is the byte-exact :meth:`repro.timing.gpu.GPU.snapshot`
payload wrapped in a small self-validating container::

    magic (10 B) | version (4 B big-endian) | sha256(payload) (32 B) | payload

The checksum makes a torn or bit-rotted file *detectably* invalid rather
than a source of silently-wrong resumed results: :func:`read_checkpoint`
raises :class:`CheckpointError` on any mismatch, and resume paths treat
that exactly like "no checkpoint" (start from cycle zero).

Writes are crash-safe the same way the result cache is: the container is
written to ``{path}.tmp.{pid}`` and atomically renamed into place, so a
reader can never observe a half-written checkpoint under the final name.
Interrupting a write (including ``KeyboardInterrupt``) removes the
temporary file; orphans from a hard kill are reaped by
:func:`repro.harness.parallel.reap_stale_tmp`.
"""

from __future__ import annotations

import hashlib
import os
import struct
from typing import Union

from repro.timing.gpu import GPU

#: container magic — bumped only if the container layout itself changes
CHECKPOINT_MAGIC = b"REPROCKPT\n"
#: payload format version: bump whenever the pickled simulator state is
#: not expected to round-trip across code revisions
CHECKPOINT_VERSION = 1

_HEADER = struct.Struct(">I")
_DIGEST_SIZE = hashlib.sha256().digest_size


class CheckpointError(RuntimeError):
    """The checkpoint file is missing, torn, corrupt, or incompatible."""


def write_checkpoint(path: Union[str, "os.PathLike[str]"], gpu: GPU) -> int:
    """Atomically write ``gpu``'s snapshot to ``path``; returns the size.

    The temporary file is cleaned up on *any* interruption (exceptions
    and ``KeyboardInterrupt``/``SystemExit`` alike) so a cancelled write
    leaves neither a partial checkpoint nor tmp litter behind.
    """
    payload = gpu.snapshot()
    blob = (
        CHECKPOINT_MAGIC
        + _HEADER.pack(CHECKPOINT_VERSION)
        + hashlib.sha256(payload).digest()
        + payload
    )
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(blob)


def read_checkpoint(path: Union[str, "os.PathLike[str]"]) -> GPU:
    """Validate and reconstitute the checkpoint at ``path``.

    Raises :class:`CheckpointError` for every way the file can be bad —
    unreadable, truncated, wrong magic, unknown version, checksum
    mismatch, or an unpicklable payload — so callers need exactly one
    except clause to fall back to a fresh run.
    """
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    prefix = len(CHECKPOINT_MAGIC) + _HEADER.size + _DIGEST_SIZE
    if len(blob) < prefix:
        raise CheckpointError(f"checkpoint {path} is truncated ({len(blob)} bytes)")
    if not blob.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(f"checkpoint {path} has wrong magic")
    (version,) = _HEADER.unpack_from(blob, len(CHECKPOINT_MAGIC))
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    digest_off = len(CHECKPOINT_MAGIC) + _HEADER.size
    digest = blob[digest_off:prefix]
    payload = blob[prefix:]
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError(f"checkpoint {path} failed checksum validation")
    try:
        return GPU.restore(payload)
    except CheckpointError:
        raise
    except Exception as exc:  # corrupt-but-checksummed can't happen; stale classes can
        raise CheckpointError(f"checkpoint {path} failed to deserialize: {exc}") from exc
