"""Cycle-level SM (streaming multiprocessor) model.

Pipeline per Section 3 / Figure 4:

1. **Fetch** — a loose-round-robin scheduler initiates one I-cache fetch
   per cycle for a warp with free I-buffer entries; up to ``fetch_width``
   consecutive instructions enter the warp's two-entry I-buffer.  Fetch
   stalls after a control instruction until it resolves (no prediction).
2. **Issue** — ``num_schedulers`` GTO (greedy-then-oldest) schedulers
   each issue up to ``issue_width`` instructions from one warp per
   cycle, subject to a scoreboard over in-flight destinations.
3. **Execute** — instructions execute *functionally* at issue through
   :class:`repro.simt.FunctionalEngine`; a latency by functional-unit
   class (ALU/SFU/LDST + memory system) schedules writeback.
4. **Writeback** — completed instructions release scoreboard entries and
   fire the frontend's LeaderWB hook.

Operand reads model register-file bank conflicts, including the extra
conflicts DARSIE causes by pointing follower warps at the renamed
register space (Section 6.1).

Performance contract: the hot loops below (issue, drain, fetch) consume
decode products memoized on :class:`~repro.isa.instructions.Instruction`
at assembly time and maintain I-buffer occupancy incrementally; every
such optimization must leave :class:`~repro.timing.stats.SimStats`
bit-identical to the straightforward per-cycle recomputation.
``tick`` additionally reports an *activity count* so the GPU loop can
jump over stretches of cycles where every warp is provably blocked on a
known-future event (see :meth:`SMCore.wake_cycle` /
:meth:`SMCore.advance_idle`).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode
from repro.isa.operands import MemSpace
from repro.simt.executor import ExecutionContext, FunctionalEngine, StepResult, ThreadBlockState
from repro.timing.config import GPUConfig
from repro.timing.frontend import FetchAction, Frontend
from repro.timing.memory_system import MemorySystem
from repro.timing.stats import EnergyEvent, SimStats


@dataclass
class IBufferEntry:
    """One decoded instruction waiting to issue."""

    inst: Instruction
    is_leader: bool = False
    #: operand values captured at fetch time (renamed sources)
    overrides: Optional[Dict] = None
    #: DAC-IDEAL zero-cost instruction (drains outside issue bandwidth,
    #: executing functionally when it reaches the head of the queue)
    free: bool = False
    #: DARSIE skip token: the instruction was eliminated before fetch —
    #: the token only advances the architectural PC, in program order,
    #: when it reaches the head of the queue
    skip_token: bool = False


class WarpRuntime:
    """Per-warp pipeline state wrapped around the architectural warp."""

    def __init__(self, warp, tb_rt: "TBRuntime", scheduler_id: int, age: int, core=None):
        self.warp = warp
        self.tb_rt = tb_rt
        self.scheduler_id = scheduler_id
        self.age = age
        self.core = core
        self.fetch_pc: int = warp.pc
        self.ibuffer: Deque[IBufferEntry] = deque()
        #: I-buffer occupancy counted against capacity (maintained
        #: incrementally; free entries and skip tokens were never fetched
        #: and occupy no real slots)
        self._buffered: int = 0
        #: zero-cost entries (free / skip tokens) currently queued
        self._zero_cost: int = 0
        #: fetch stalled after a control instruction until it executes
        self.cf_stalled: bool = False
        #: blocked at a TB-wide branch barrier (DARSIE / SILICON-SYNC)
        self.branch_sync_blocked: bool = False
        #: blocked by the DARSIE skip engine (leaderWB / freelist sync)
        self.skip_blocked: bool = False
        #: parked by the skip engine: the warps-waiting bitmask holds the
        #: warp without re-probing until a wake event (Section 4.3.2), so
        #: the per-cycle scan skips re-classifying it
        self.skip_parked: bool = False
        #: one-shot: execute the instruction at this PC privately even
        #: though it is statically skippable (entry was invalidated)
        self.bypass_pcs: Set[int] = set()
        self.scoreboard: Set[Tuple[str, str]] = set()
        self.inflight: int = 0

    @property
    def exited(self) -> bool:
        return self.warp.exited

    def buffered(self) -> int:
        return self._buffered

    def push_entry(self, entry: IBufferEntry) -> None:
        """Append ``entry`` keeping the occupancy counters in sync (the
        only way frontends may enqueue free entries / skip tokens)."""
        self.ibuffer.append(entry)
        if entry.free or entry.skip_token:
            self._zero_cost += 1
            if self.core is not None:
                self.core._zero_cost_total += 1
        else:
            self._buffered += 1

    def pop_head(self) -> IBufferEntry:
        entry = self.ibuffer.popleft()
        if entry.free or entry.skip_token:
            self._zero_cost -= 1
            if self.core is not None:
                self.core._zero_cost_total -= 1
        else:
            self._buffered -= 1
        return entry

    def clear_ibuffer(self) -> None:
        if self._zero_cost and self.core is not None:
            self.core._zero_cost_total -= self._zero_cost
        self.ibuffer.clear()
        self._buffered = 0
        self._zero_cost = 0

    def fetch_ready(self) -> bool:
        return not (
            self.warp.exited
            or self.cf_stalled
            or self.branch_sync_blocked
            or self.warp.at_barrier
        )

    def resync_fetch(self) -> None:
        """Re-point the frontend at the architectural PC (post-branch)."""
        self.fetch_pc = self.warp.pc
        self.cf_stalled = False


class TBRuntime:
    """A threadblock resident on an SM."""

    def __init__(self, tb: ThreadBlockState, warps: List[WarpRuntime], seq: int):
        self.tb = tb
        self.warps = warps
        self.seq = seq
        self.frontend_state: Dict = {}
        self.completed = False

    def live_warps(self) -> List[WarpRuntime]:
        return [w for w in self.warps if not w.exited]


def _scoreboard_keys(inst: Instruction) -> Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]:
    """(source keys, dest keys) for hazard checking.

    Thin compatibility wrapper over the tuples memoized on the
    instruction at construction time.
    """
    return list(inst.sb_srcs), list(inst.sb_dests)


class SMCore:
    """One streaming multiprocessor."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        ctx: ExecutionContext,
        engine: FunctionalEngine,
        frontend: Frontend,
    ):
        self.sm_id = sm_id
        self.config = config
        self.ctx = ctx
        self.engine = engine
        self.frontend = frontend
        self.stats = SimStats()
        self.memory = MemorySystem(config, self.stats)
        self.tbs: List[TBRuntime] = []
        self.warps: List[WarpRuntime] = []
        self._inflight: List[Tuple[int, int, WarpRuntime, Instruction, dict]] = []
        self._seq = 0
        self._fetch_rr = 0
        self.cycle = 0
        #: optional per-cycle event recorder (repro.timing.pipeline_trace)
        self.pipeline_trace = None
        self._greedy: Dict[int, Optional[WarpRuntime]] = {
            s: None for s in range(config.num_schedulers)
        }
        self._issue_rr: Dict[int, int] = {s: 0 for s in range(config.num_schedulers)}
        #: per-scheduler warp lists in age order (mirrors ``self.warps``)
        self._sched_warps: List[List[WarpRuntime]] = [
            [] for _ in range(config.num_schedulers)
        ]
        #: zero-cost I-buffer entries across all warps (drain early-out)
        self._zero_cost_total = 0
        #: state changes observed during the current tick
        self._activity = 0
        self._tb_seq = 0
        self._warp_age = 0
        self.completed_tbs: List[TBRuntime] = []
        frontend.bind(self)

    # -- residency ---------------------------------------------------------

    def can_accept_tb(self, warps_needed: int) -> bool:
        live_warps = sum(1 for w in self.warps if not w.exited)
        live_tbs = sum(1 for tb in self.tbs if not tb.completed)
        return (
            live_warps + warps_needed <= self.config.max_warps_per_sm
            and live_tbs < self.config.max_tbs_per_sm
        )

    def launch_tb(self, tb_index: int) -> TBRuntime:
        tb = ThreadBlockState(self.ctx, tb_index)
        tb_rt = TBRuntime(tb, [], self._tb_seq)
        self._tb_seq += 1
        for warp in tb.warps:
            scheduler = self._warp_age % self.config.num_schedulers
            wrt = WarpRuntime(warp, tb_rt, scheduler, self._warp_age, core=self)
            self._warp_age += 1
            tb_rt.warps.append(wrt)
            self.warps.append(wrt)
            self._sched_warps[scheduler].append(wrt)
        self.tbs.append(tb_rt)
        self.frontend.on_tb_launch(tb_rt)
        return tb_rt

    @property
    def busy(self) -> bool:
        return any(not tb.completed for tb in self.tbs)

    # -- main loop ------------------------------------------------------------

    def tick(self, cycle: int) -> int:
        """Advance one cycle; returns the number of state changes seen
        (0 means this cycle was provably idle and the next cycle would
        repeat it exactly — the basis for event-driven skipping)."""
        self.cycle = cycle
        self._activity = 0
        self._writeback(cycle)
        self._drain_free(cycle)
        self._issue(cycle)
        self.frontend.fetch_cycle(cycle)
        self._fetch(cycle)
        self._account_waits()
        return self._activity

    def note_activity(self) -> None:
        """Frontends call this when they mutate pipeline state outside
        the core's own counting (zero-cost pushes, sync releases)."""
        self._activity += 1

    def wake_cycle(self) -> Optional[int]:
        """Earliest future cycle at which anything can happen on this SM
        while it is otherwise idle, or None if no such event is known."""
        wake: Optional[int] = self._inflight[0][0] if self._inflight else None
        fw = self.frontend.next_wake(self.cycle)
        if fw is not None and (wake is None or fw < wake):
            wake = fw
        return wake

    def advance_idle(self, delta: int) -> None:
        """Account for ``delta`` skipped idle cycles.

        An idle cycle still (a) accrues one ``sync_wait_cycles`` per
        blocked live warp and (b) advances each LRR scheduler that had
        issue candidates; both are replayed here in closed form.
        """
        blocked = 0
        for w in self.warps:
            if (w.skip_blocked or w.branch_sync_blocked) and not w.warp.exited:
                blocked += 1
        if blocked:
            self.stats.sync_wait_cycles += blocked * delta
        if self.config.scheduler_policy == "lrr":
            for sched, swarps in enumerate(self._sched_warps):
                if any(not w.warp.exited and w.ibuffer for w in swarps):
                    self._issue_rr[sched] += delta

    def _account_waits(self) -> None:
        if self.pipeline_trace is None:
            blocked = 0
            for w in self.warps:
                if (w.skip_blocked or w.branch_sync_blocked) and not w.warp.exited:
                    blocked += 1
            if blocked:
                self.stats.sync_wait_cycles += blocked
            return
        for w in self.warps:
            if not w.exited and (w.skip_blocked or w.branch_sync_blocked):
                self.stats.sync_wait_cycles += 1
                self.pipeline_trace.record(
                    self.cycle, self.sm_id, w.tb_rt.tb.tb_index,
                    w.warp.warp_id, "B", w.fetch_pc,
                )

    # -- writeback ---------------------------------------------------------------

    def _writeback(self, cycle: int) -> None:
        inflight = self._inflight
        while inflight and inflight[0][0] <= cycle:
            _ready, _seq, wrt, inst, meta = heapq.heappop(inflight)
            self._activity += 1
            wrt.inflight -= 1
            if self.pipeline_trace is not None:
                self.pipeline_trace.record(
                    cycle, self.sm_id, wrt.tb_rt.tb.tb_index, wrt.warp.warp_id, "W", inst.pc
                )
            dests = meta.get("dests", ())
            for key in dests:
                wrt.scoreboard.discard(key)
            if dests:
                self.stats.energy_events[EnergyEvent.RF_WRITE] += 1
            self.frontend.on_writeback(wrt, inst, meta)

    # -- issue ------------------------------------------------------------------

    def _hazard(self, wrt: WarpRuntime, inst: Instruction) -> bool:
        sb = wrt.scoreboard
        return bool(sb) and not sb.isdisjoint(inst.hazard_keys)

    def _drain_free(self, cycle: int) -> None:
        """Zero-cost, in-order drain of eliminated instructions.

        DARSIE skip tokens only advance the architectural PC (the leader
        executed the instruction; the follower shares its value through
        renaming).  DAC-IDEAL free entries execute functionally — the
        idealized affine stream — without pipeline cost.
        """
        if self._zero_cost_total == 0:
            return
        for wrt in self.warps:
            if wrt._zero_cost == 0:
                continue
            ibuf = wrt.ibuffer
            while ibuf and (ibuf[0].free or ibuf[0].skip_token):
                entry = ibuf[0]
                if entry.skip_token:
                    wrt.pop_head()
                    self._activity += 1
                    assert wrt.warp.pc == entry.inst.pc, (
                        f"skip token out of order: arch pc {wrt.warp.pc:#x}, "
                        f"token pc {entry.inst.pc:#x}"
                    )
                    wrt.warp.pc += INSTRUCTION_BYTES
                    wrt.warp.maybe_reconverge()
                    continue
                if self._hazard(wrt, entry.inst):
                    break
                wrt.pop_head()
                self._activity += 1
                self.engine.execute_instruction(wrt.tb_rt.tb, wrt.warp, entry.inst)
                self.stats.instructions_skipped += 1

    def _issue(self, cycle: int) -> None:
        if self.config.scheduler_policy == "lrr":
            self._issue_lrr(cycle)
            return
        # Greedy-then-oldest (Table 2's GTO).  ``_sched_warps`` is kept
        # in age order, so trying the greedy warp first and then the
        # rest in list order reproduces the sorted-candidates walk.
        for sched, swarps in enumerate(self._sched_warps):
            greedy = self._greedy[sched]
            greedy_is_cand = (
                greedy is not None and not greedy.warp.exited and bool(greedy.ibuffer)
            )
            issued_from: Optional[WarpRuntime] = None
            had_candidate = greedy_is_cand
            if greedy_is_cand and self._issue_from_warp(cycle, greedy):
                issued_from = greedy
            if issued_from is None:
                for wrt in swarps:
                    if wrt is greedy or wrt.warp.exited or not wrt.ibuffer:
                        continue
                    had_candidate = True
                    if self._issue_from_warp(cycle, wrt):
                        issued_from = wrt
                        break
            if had_candidate:
                self._greedy[sched] = issued_from

    def _issue_lrr(self, cycle: int) -> None:
        # Loose round-robin: rotate priority each cycle.
        for sched, swarps in enumerate(self._sched_warps):
            candidates = [w for w in swarps if not w.warp.exited and w.ibuffer]
            if not candidates:
                continue
            n = len(candidates)
            rot = self._issue_rr[sched] % n
            self._issue_rr[sched] += 1
            issued_from: Optional[WarpRuntime] = None
            for i in range(n):
                wrt = candidates[(rot + i) % n]
                if self._issue_from_warp(cycle, wrt):
                    issued_from = wrt
                    break
            self._greedy[sched] = issued_from

    def _issue_from_warp(self, cycle: int, wrt: WarpRuntime) -> int:
        issued = 0
        ibuf = wrt.ibuffer
        while issued < self.config.issue_width and ibuf:
            entry = ibuf[0]
            if entry.free or entry.skip_token:
                break  # handled by the zero-cost drain
            if wrt.warp.at_barrier or wrt.branch_sync_blocked:
                break
            if self._hazard(wrt, entry.inst):
                break
            wrt.ibuffer.popleft()
            wrt._buffered -= 1
            self._execute(cycle, wrt, entry)
            issued += 1
            if entry.inst.opcode in (Opcode.BRA, Opcode.EXIT, Opcode.BAR):
                break
        return issued

    def _execute(self, cycle: int, wrt: WarpRuntime, entry: IBufferEntry) -> None:
        inst = entry.inst
        self._activity += 1
        if self.pipeline_trace is not None:
            self.pipeline_trace.record(
                cycle, self.sm_id, wrt.tb_rt.tb.tb_index, wrt.warp.warp_id, "I", inst.pc
            )
        stats = self.stats
        stats.instructions_issued += 1
        events = stats.energy_events
        events[EnergyEvent.ISSUE] += 1
        events[EnergyEvent.RF_READ] += inst.rf_read_count
        stats.rf_bank_conflicts += self._bank_conflicts(inst, entry)

        eliminate_kind = self.frontend.eliminate_at_issue(wrt, inst)
        overrides = entry.overrides or {}
        depth_before = len(wrt.warp.stack)
        result = self.engine.execute_instruction(
            wrt.tb_rt.tb,
            wrt.warp,
            inst,
            reg_overrides=overrides.get("regs"),
            pred_overrides=overrides.get("preds"),
        )
        stats.instructions_executed += 1
        if depth_before > 1:
            stats.divergence_serialized_instructions += 1
        if inst.is_branch and len(wrt.warp.stack) > depth_before:
            stats.divergent_branches += 1

        if eliminate_kind is not None:
            stats.executions_eliminated += 1
            stats.eliminated_by_class[eliminate_kind] += 1
            ready = cycle + 1
        else:
            ready = self._latency(cycle, inst, result)

        dests = inst.sb_dests
        meta = {"dests": dests, "is_leader": entry.is_leader, "result": result}
        for key in dests:
            wrt.scoreboard.add(key)
        if dests or entry.is_leader:
            self._seq += 1
            wrt.inflight += 1
            heapq.heappush(self._inflight, (ready, self._seq, wrt, inst, meta))

        self._post_execute(cycle, wrt, inst, result)

    def _bank_conflicts(self, inst: Instruction, entry: IBufferEntry) -> int:
        """Same-cycle operand bank collisions (coarse operand-collector
        model: each distinct source register occupies one bank read)."""
        conflicts, banks = inst.bank_info(self.config.rf_banks)
        if entry.overrides:
            # Renamed operands live in the strided rename space; reads
            # from it collide with the warp's own operand reads
            # (Section 6.1's DARSIE-induced bank conflicts).
            rename_banks = entry.overrides.get("banks", ())
            collide = sum(1 for b in rename_banks if b in banks)
            conflicts += collide
            self.stats.darsie_bank_conflicts += collide
        return conflicts

    def _latency(self, cycle: int, inst: Instruction, result: StepResult) -> int:
        cfg = self.config
        if inst.is_memory:
            assert inst.mem is not None
            addresses = result.mem_addresses
            if addresses is None:
                return cycle + 1
            mask = result.exec_mask
            if inst.mem.space is MemSpace.SHARED:
                return self.memory.shared_access(cycle, addresses, mask)
            return self.memory.global_access(cycle, addresses, mask, inst.is_store)
        if inst.uses_sfu:
            self.stats.energy_events[EnergyEvent.SFU_OP] += 1
            return cycle + cfg.sfu_latency
        if inst.opcode in (Opcode.BRA, Opcode.EXIT, Opcode.BAR, Opcode.NOP):
            return cycle + 1
        self.stats.energy_events[EnergyEvent.ALU_OP] += 1
        return cycle + cfg.alu_latency

    def _post_execute(self, cycle: int, wrt: WarpRuntime, inst: Instruction, result) -> None:
        self.frontend.on_executed(wrt, inst, result)

        if inst.is_store:
            self.frontend.on_store(wrt.tb_rt)
        if inst.is_atomic and inst.mem.space is MemSpace.GLOBAL:
            self.frontend.on_global_communication()

        if inst.is_branch:
            if self.frontend.blocks_after_branch(wrt, inst):
                wrt.branch_sync_blocked = True
            else:
                wrt.resync_fetch()
            return
        if inst.is_barrier:
            self._maybe_release_barrier(wrt.tb_rt)
            return
        if inst.is_exit:
            if result.retired:
                self._on_warp_retired(wrt)
            else:
                wrt.resync_fetch()
            return
        if wrt.warp.pc != inst.pc + INSTRUCTION_BYTES:
            # A reconvergence pop switched the warp to another divergent
            # path (non-sequential PC without a branch): the straight-line
            # prefetch past the reconvergence point is wrong-path.
            wrt.clear_ibuffer()
            wrt.resync_fetch()

    def _maybe_release_barrier(self, tb_rt: TBRuntime) -> None:
        if tb_rt.tb.release_barrier_if_ready():
            self.frontend.on_syncthreads(tb_rt)
            for w in tb_rt.warps:
                if not w.exited:
                    w.resync_fetch()

    def _on_warp_retired(self, wrt: WarpRuntime) -> None:
        self.frontend.on_warp_exit(wrt)
        tb_rt = wrt.tb_rt
        self._maybe_release_barrier(tb_rt)
        if all(w.exited for w in tb_rt.warps) and not tb_rt.completed:
            tb_rt.completed = True
            self.frontend.on_tb_complete(tb_rt)
            self.completed_tbs.append(tb_rt)
            for w in tb_rt.warps:
                self._zero_cost_total -= w._zero_cost
            self.warps = [w for w in self.warps if w.tb_rt is not tb_rt]
            self.tbs = [t for t in self.tbs if t is not tb_rt]
            self._sched_warps = [
                [w for w in lst if w.tb_rt is not tb_rt] for lst in self._sched_warps
            ]

    # -- fetch --------------------------------------------------------------------

    def _fetch(self, cycle: int) -> None:
        n = len(self.warps)
        if n == 0:
            return
        end_pc = self.ctx.program.end_pc
        capacity = self.config.ibuffer_entries
        for _initiated in range(self.config.fetch_warps_per_cycle):
            chosen = None
            for i in range(n):
                wrt = self.warps[(self._fetch_rr + i) % n]
                if not wrt.fetch_ready() or wrt.skip_blocked:
                    continue
                if wrt._buffered >= capacity:
                    continue
                if wrt.fetch_pc >= end_pc:
                    continue
                action = self.frontend.filter_fetch(wrt, wrt.fetch_pc)
                if action in (FetchAction.HANDLED, FetchAction.WAIT):
                    continue
                chosen = (wrt, action)
                self._fetch_rr = (self._fetch_rr + i + 1) % n
                break
            if chosen is None:
                return
            wrt, action = chosen
            self._activity += 1
            self.stats.energy_events[EnergyEvent.ICACHE_FETCH] += 1
            self._fetch_into(wrt, action)

    def _fetch_into(self, wrt: WarpRuntime, first_action: FetchAction) -> None:
        fetched = 0
        action = first_action
        stats = self.stats
        while (
            fetched < self.config.fetch_width
            and wrt._buffered < self.config.ibuffer_entries
        ):
            if action in (FetchAction.HANDLED, FetchAction.WAIT):
                break
            inst = self.ctx.program.at(wrt.fetch_pc)
            is_leader = action is FetchAction.FETCH_LEADER
            overrides = self.frontend.on_fetch(wrt, inst, is_leader)
            wrt.ibuffer.append(IBufferEntry(inst=inst, is_leader=is_leader, overrides=overrides))
            wrt._buffered += 1
            if self.pipeline_trace is not None:
                self.pipeline_trace.record(
                    self.cycle, self.sm_id, wrt.tb_rt.tb.tb_index, wrt.warp.warp_id, "F", inst.pc
                )
            stats.instructions_fetched += 1
            stats.instructions_decoded += 1
            stats.energy_events[EnergyEvent.DECODE] += 1
            wrt.bypass_pcs.discard(wrt.fetch_pc)
            wrt.fetch_pc += INSTRUCTION_BYTES
            fetched += 1
            if inst.opcode in (Opcode.BRA, Opcode.EXIT, Opcode.BAR):
                wrt.cf_stalled = True
                break
            if wrt.fetch_pc >= self.ctx.program.end_pc:
                break
            action = self.frontend.filter_fetch(wrt, wrt.fetch_pc)
