"""Cycle-level SM (streaming multiprocessor) model.

Pipeline per Section 3 / Figure 4, as explicit stage objects
(:mod:`repro.timing.stages`) over typed inter-stage buffers
(:mod:`repro.timing.buffers`):

1. **Fetch** (:class:`~repro.timing.stages.FetchStage`) — a loose-round-
   robin scheduler initiates one I-cache fetch per cycle for a warp with
   free I-buffer entries; up to ``fetch_width`` consecutive instructions
   enter the warp's two-entry I-buffer.  Fetch stalls after a control
   instruction until it resolves (no prediction).
2. **Issue** (:class:`~repro.timing.stages.IssueStage`) —
   ``num_schedulers`` GTO (greedy-then-oldest) schedulers each issue up
   to ``issue_width`` instructions from one warp per cycle, subject to a
   scoreboard over in-flight destinations.
3. **Execute** (:class:`~repro.timing.stages.OperandCollectStage` +
   :class:`~repro.timing.stages.ExecuteStage`) — operand reads model
   register-file bank conflicts, including the extra conflicts DARSIE
   causes by pointing follower warps at the renamed register space
   (Section 6.1); instructions execute *functionally* at issue through
   :class:`repro.simt.FunctionalEngine`; a latency by functional-unit
   class (ALU/SFU/LDST + memory system) schedules writeback.
4. **Writeback** (:class:`~repro.timing.stages.WritebackStage`) —
   completed instructions release scoreboard entries and fire the
   frontend's LeaderWB hook.

:class:`SMCore` itself retains *no* per-stage logic: it owns residency
(threadblock launch/retire, barriers), the stats/memory/functional-
engine plumbing, and delegates every cycle to its
:class:`~repro.timing.stages.StagePipeline`.

Performance contract: the hot loops (issue, drain, fetch) consume decode
products memoized on :class:`~repro.isa.instructions.Instruction` at
assembly time and maintain I-buffer occupancy incrementally; every such
optimization must leave :class:`~repro.timing.stats.SimStats`
bit-identical to the straightforward per-cycle recomputation.
``tick`` additionally reports an *activity count* so the GPU loop can
jump over stretches of cycles where every warp is provably blocked on a
known-future event (see :meth:`SMCore.wake_cycle` /
:meth:`SMCore.advance_idle`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Instruction
from repro.simt.executor import ExecutionContext, FunctionalEngine, ThreadBlockState
from repro.timing.buffers import (  # noqa: F401  (IBufferEntry re-exported: stable import path)
    IBuffer,
    IBufferEntry,
)
from repro.timing.config import GPUConfig
from repro.timing.frontend import Frontend
from repro.timing.memory_system import MemorySystem
from repro.timing.stages import StagePipeline
from repro.timing.stats import SimStats


class WarpRuntime:
    """Per-warp pipeline state wrapped around the architectural warp.

    The owning :class:`SMCore` is a *required* constructor argument: the
    warp's I-buffer shares the pipeline's zero-cost ledger from birth,
    so stage objects can never observe a half-wired warp.
    """

    def __init__(self, warp, tb_rt: "TBRuntime", scheduler_id: int, age: int, core: "SMCore"):
        self.warp = warp
        self.tb_rt = tb_rt
        self.scheduler_id = scheduler_id
        self.age = age
        self.core = core
        self.fetch_pc: int = warp.pc
        #: decoded instructions awaiting issue (occupancy counters live
        #: on the buffer; zero-cost entries mirror into the shared ledger)
        self.ibuffer: IBuffer = IBuffer(core.pipeline.zero_cost)
        #: fetch stalled after a control instruction until it executes
        self.cf_stalled: bool = False
        #: blocked at a TB-wide branch barrier (DARSIE / SILICON-SYNC)
        self.branch_sync_blocked: bool = False
        #: blocked by the DARSIE skip engine (leaderWB / freelist sync)
        self.skip_blocked: bool = False
        #: parked by the skip engine: the warps-waiting bitmask holds the
        #: warp without re-probing until a wake event (Section 4.3.2), so
        #: the per-cycle scan skips re-classifying it
        self.skip_parked: bool = False
        #: one-shot: execute the instruction at this PC privately even
        #: though it is statically skippable (entry was invalidated)
        self.bypass_pcs: Set[int] = set()
        self.scoreboard: Set[Tuple[str, str]] = set()
        self.inflight: int = 0

    @property
    def exited(self) -> bool:
        return self.warp.exited

    def buffered(self) -> int:
        return self.ibuffer.buffered

    def push_entry(self, entry: IBufferEntry) -> None:
        """Append ``entry`` keeping the occupancy counters in sync (the
        only way frontends may enqueue free entries / skip tokens)."""
        self.ibuffer.push(entry)

    def pop_head(self) -> IBufferEntry:
        return self.ibuffer.pop()

    def clear_ibuffer(self) -> None:
        self.ibuffer.clear()

    def fetch_ready(self) -> bool:
        return not (
            self.warp.exited
            or self.cf_stalled
            or self.branch_sync_blocked
            or self.warp.at_barrier
        )

    def resync_fetch(self) -> None:
        """Re-point the frontend at the architectural PC (post-branch)."""
        self.fetch_pc = self.warp.pc
        self.cf_stalled = False


class TBRuntime:
    """A threadblock resident on an SM."""

    def __init__(self, tb: ThreadBlockState, warps: List[WarpRuntime], seq: int):
        self.tb = tb
        self.warps = warps
        self.seq = seq
        self.frontend_state: Dict = {}
        self.completed = False

    def live_warps(self) -> List[WarpRuntime]:
        return [w for w in self.warps if not w.exited]


def _scoreboard_keys(inst: Instruction) -> Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]:
    """(source keys, dest keys) for hazard checking.

    Thin compatibility wrapper over the tuples memoized on the
    instruction at construction time.
    """
    return list(inst.sb_srcs), list(inst.sb_dests)


class SMCore:
    """One streaming multiprocessor: residency + a staged pipeline."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        ctx: ExecutionContext,
        engine: FunctionalEngine,
        frontend: Frontend,
    ):
        self.sm_id = sm_id
        self.config = config
        self.ctx = ctx
        self.engine = engine
        self.frontend = frontend
        self.stats = SimStats()
        self.memory = MemorySystem(config, self.stats)
        self.tbs: List[TBRuntime] = []
        self.warps: List[WarpRuntime] = []
        self.cycle = 0
        #: optional per-cycle event recorder (repro.timing.pipeline_trace)
        self.pipeline_trace = None
        #: optional per-cycle stage activity/occupancy recorder
        #: (repro.timing.pipeline_trace.StageOccupancyTrace)
        self.stage_trace = None
        self._tb_seq = 0
        self._warp_age = 0
        self.completed_tbs: List[TBRuntime] = []
        #: the staged pipeline (the frontend may supply a custom issue
        #: stage via ``make_issue_stage``, e.g. the DUAL-ISSUE variant)
        self.pipeline = StagePipeline(self)
        frontend.bind(self)

    # -- residency ---------------------------------------------------------

    def can_accept_tb(self, warps_needed: int) -> bool:
        live_warps = sum(1 for w in self.warps if not w.exited)
        live_tbs = sum(1 for tb in self.tbs if not tb.completed)
        return (
            live_warps + warps_needed <= self.config.max_warps_per_sm
            and live_tbs < self.config.max_tbs_per_sm
        )

    def launch_tb(self, tb_index: int) -> TBRuntime:
        tb = ThreadBlockState(self.ctx, tb_index)
        tb_rt = TBRuntime(tb, [], self._tb_seq)
        self._tb_seq += 1
        for warp in tb.warps:
            scheduler = self._warp_age % self.config.num_schedulers
            wrt = WarpRuntime(warp, tb_rt, scheduler, self._warp_age, core=self)
            self._warp_age += 1
            tb_rt.warps.append(wrt)
            self.warps.append(wrt)
            self.pipeline.issue.add_warp(wrt)
        self.tbs.append(tb_rt)
        self.frontend.on_tb_launch(tb_rt)
        return tb_rt

    @property
    def busy(self) -> bool:
        return any(not tb.completed for tb in self.tbs)

    # -- main loop ------------------------------------------------------------

    def tick(self, cycle: int) -> int:
        """Advance one cycle; returns the number of state changes seen
        (0 means this cycle was provably idle and the next cycle would
        repeat it exactly — the basis for event-driven skipping)."""
        self.cycle = cycle
        return self.pipeline.tick(cycle)

    def note_activity(self) -> None:
        """Frontends call this when they mutate pipeline state outside
        the stages' own counting (zero-cost pushes, sync releases)."""
        self.pipeline.note()

    def wake_cycle(self) -> Optional[int]:
        """Earliest future cycle at which anything can happen on this SM
        while it is otherwise idle, or None if no such event is known."""
        return self.pipeline.wake_cycle()

    def advance_idle(self, delta: int) -> None:
        """Account for ``delta`` skipped idle cycles (see
        :meth:`StagePipeline.advance_idle`)."""
        self.pipeline.advance_idle(delta)

    # -- retirement / barriers ---------------------------------------------

    def release_barrier(self, tb_rt: TBRuntime) -> None:
        if tb_rt.tb.release_barrier_if_ready():
            self.frontend.on_syncthreads(tb_rt)
            for w in tb_rt.warps:
                if not w.exited:
                    w.resync_fetch()

    def retire_warp(self, wrt: WarpRuntime) -> None:
        self.frontend.on_warp_exit(wrt)
        tb_rt = wrt.tb_rt
        self.release_barrier(tb_rt)
        if all(w.exited for w in tb_rt.warps) and not tb_rt.completed:
            tb_rt.completed = True
            self.frontend.on_tb_complete(tb_rt)
            self.completed_tbs.append(tb_rt)
            self.warps = [w for w in self.warps if w.tb_rt is not tb_rt]
            self.tbs = [t for t in self.tbs if t is not tb_rt]
            self.pipeline.remove_tb(tb_rt)
