"""Cycle-level timing model of the baseline GPU (Section 3, Table 2).

The model is execute-driven: instructions are fetched into per-warp
I-buffers by a loose-round-robin fetch scheduler, issued by greedy-then-
oldest (GTO) issue schedulers, executed *functionally* at issue through
:class:`repro.simt.FunctionalEngine`, and written back after a latency
determined by their functional-unit class and the memory system.

Instruction-elimination mechanisms (DARSIE, UV, DAC-IDEAL) plug in as
*frontend strategies* (:mod:`repro.timing.frontend`) so every config runs
on an identical substrate — the comparison methodology of Section 5.
"""

from repro.timing.config import GPUConfig, PASCAL_GTX1080TI, small_config
from repro.timing.core import SMCore, TBRuntime, WarpRuntime
from repro.timing.frontend import FetchAction, Frontend, NullFrontend
from repro.timing.gpu import GPU, SimulationResult, simulate
from repro.timing.memory_system import MemorySystem, coalesce_transactions
from repro.timing.pipeline_trace import PipelineTrace, StageOccupancyTrace
from repro.timing.stats import EnergyEvent, SimStats

__all__ = [
    "GPUConfig",
    "PASCAL_GTX1080TI",
    "small_config",
    "EnergyEvent",
    "SimStats",
    "MemorySystem",
    "coalesce_transactions",
    "FetchAction",
    "Frontend",
    "NullFrontend",
    "SMCore",
    "TBRuntime",
    "WarpRuntime",
    "GPU",
    "SimulationResult",
    "simulate",
    "PipelineTrace",
    "StageOccupancyTrace",
]
