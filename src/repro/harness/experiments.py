"""One driver per paper table / figure.

Every driver returns a small result object whose ``render()`` prints the
same rows/series the paper reports, and whose fields are plain data so
tests and benches can assert on the reproduced *shape* (who wins, by
roughly what factor) without parsing text.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import default_survey, geomean
from repro.analysis.limit_study import LevelBreakdown, average_levels
from repro.analysis.taxonomy_study import TaxonomyBreakdown
from repro.config import DEFAULT_GPU, RunConfig, apply_overrides
from repro.core import analyze_program, paper_area_model
from repro.energy import PASCAL_ENERGY_MODEL
from repro.harness import parallel
from repro.harness.parallel import RunSpec, SweepStats
from repro.harness.related_work import render_table3
from repro.harness.reporting import fmt_pct, fmt_x, format_table
from repro.timing import GPUConfig, PASCAL_GTX1080TI, small_config
from repro.variants import REGISTRY
from repro.workloads import (
    ALL_ABBRS,
    EXTENDED_ABBRS,
    ONE_D_ABBRS,
    TWO_D_ABBRS,
    build_workload,
    table1_rows,
)

#: Experiment-name -> driver registry; the CLI derives its dispatch
#: (and each driver's accepted arguments) from here via introspection,
#: so adding an experiment is one decorated definition.
EXPERIMENT_REGISTRY: Dict[str, Callable] = {}


def experiment(name: Optional[str] = None) -> Callable:
    """Register a driver under ``name`` (default: the function name)."""
    def decorate(fn: Callable) -> Callable:
        EXPERIMENT_REGISTRY[name or fn.__name__] = fn
        return fn
    return decorate


#: Legacy config-name tuples, now live queries over the variant
#: registry (registration order is the paper's legend order).
_TAG_EXPORTS = {
    "FIG8_CONFIGS": "fig8",            # Figure 8 configurations
    "REDUCTION_CONFIGS": "reduction",  # Figure 9/10 instruction reduction
    "FIG12_CONFIGS": "fig12",          # Figure 12 sync variants
}


def __getattr__(name: str):
    tag = _TAG_EXPORTS.get(name)
    if tag is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return REGISTRY.by_tag(tag)


# ---------------------------------------------------------------------------
# Figure 1 / Figure 2 — functional limit studies
# ---------------------------------------------------------------------------


@dataclass
class Figure1Result:
    per_workload: Dict[str, LevelBreakdown]
    average: LevelBreakdown
    sweep_stats: Optional[SweepStats] = field(default=None, repr=False, compare=False)

    def render(self) -> str:
        headers = ["App", "Grid-wide", "TB-wide", "Warp-wide", "Vector", "Scalar"]
        rows = [
            [abbr] + [fmt_pct(getattr(b, k)) for k in ("grid", "tb", "warp", "vector", "scalar")]
            for abbr, b in self.per_workload.items()
        ]
        rows.append(
            ["AVG"]
            + [fmt_pct(getattr(self.average, k)) for k in ("grid", "tb", "warp", "vector", "scalar")]
        )
        return format_table(
            headers, rows,
            title="Figure 1: redundant instructions per GPU thread-grouping level",
        )


@experiment()
def figure1(scale: str = "small", abbrs: Sequence[str] = ALL_ABBRS) -> Figure1Result:
    """Redundancy at the grid / TB / warp level, averaged across apps."""
    analyses, stats = parallel.functional_sweep(abbrs, scale)
    per = {abbr: analyses[abbr].levels for abbr in abbrs}
    return Figure1Result(
        per_workload=per,
        average=average_levels(list(per.values())),
        sweep_stats=stats,
    )


@dataclass
class Figure2Result:
    per_workload: Dict[str, TaxonomyBreakdown]
    dimensionality: Dict[str, int]
    sweep_stats: Optional[SweepStats] = field(default=None, repr=False, compare=False)

    def render(self) -> str:
        headers = ["App", "TBdim", "Uniform", "Affine", "Unstructured", "Non-Red."]
        rows = [
            [
                abbr,
                f"{self.dimensionality[abbr]}D",
                fmt_pct(b.uniform),
                fmt_pct(b.affine),
                fmt_pct(b.unstructured),
                fmt_pct(b.non_redundant),
            ]
            for abbr, b in self.per_workload.items()
        ]
        return format_table(
            headers, rows,
            title="Figure 2: fraction of dynamically executed TB-redundant instructions",
        )


@experiment()
def figure2(scale: str = "small", abbrs: Sequence[str] = ALL_ABBRS) -> Figure2Result:
    analyses, stats = parallel.functional_sweep(abbrs, scale)
    per = {abbr: analyses[abbr].taxonomy for abbr in abbrs}
    dims = {abbr: analyses[abbr].dimensionality for abbr in abbrs}
    return Figure2Result(per_workload=per, dimensionality=dims, sweep_stats=stats)


# ---------------------------------------------------------------------------
# Figure 6 — compiler markings on the MM kernel
# ---------------------------------------------------------------------------


@dataclass
class Figure6Result:
    listing: str
    counts: Dict[str, int]

    def render(self) -> str:
        summary = ", ".join(f"{k}: {v}" for k, v in self.counts.items())
        return (
            "Figure 6: compiler markings for the matrix-multiply kernel\n"
            f"({summary})\n\n" + self.listing
        )


@experiment()
def figure6(scale: str = "small") -> Figure6Result:
    wl = build_workload("MM", scale)
    analysis = analyze_program(wl.program)
    counts = {m.short: n for m, n in analysis.counts().items()}
    return Figure6Result(listing=analysis.annotated_listing(), counts=counts)


# ---------------------------------------------------------------------------
# Tables 1 / 2 / 3
# ---------------------------------------------------------------------------


@experiment()
def table1() -> str:
    headers = ["Abbr", "Name", "Suite", "TB dim", "Dims"]
    return format_table(headers, table1_rows(), title="Table 1: applications studied")


@experiment()
def table2(config: GPUConfig = PASCAL_GTX1080TI) -> str:
    rows = [
        ["GPU", f"Pascal ({config.name}), {config.num_sms} SMs, "
                f"{config.max_warps_per_sm} warps/SM, {config.max_tbs_per_sm} TBs/SM"],
        ["SM", f"{config.warp_size} SIMD width, "
               f"{config.vector_registers_per_sm} vector registers per SM"],
        ["Scheduler", f"{config.num_schedulers} warp schedulers/SM, GTO scheduling"],
        ["L1/shared", "96KB shared memory/SM"],
        ["Register", "14.2pJ/read 25.9pJ/write"],
    ]
    return format_table(["Parameter", "Value"], rows, title="Table 2: baseline GPU")


@experiment()
def table3() -> str:
    return render_table3()


# ---------------------------------------------------------------------------
# Figure 8 — speedups
# ---------------------------------------------------------------------------


@dataclass
class SpeedupResult:
    configs: Tuple[str, ...]
    per_workload: Dict[str, Dict[str, float]]   # abbr -> config -> speedup
    gmean_1d: Dict[str, float]
    gmean_2d: Dict[str, float]
    sweep_stats: Optional[SweepStats] = field(default=None, repr=False, compare=False)

    def render(self, title: str = "Figure 8: speedup over the baseline GPU") -> str:
        headers = ["App"] + [c for c in self.configs]
        rows = [
            [abbr] + [fmt_x(vals[c]) for c in self.configs]
            for abbr, vals in self.per_workload.items()
        ]
        if self.gmean_1d:
            rows.append(["GMEAN-1D"] + [fmt_x(self.gmean_1d[c]) for c in self.configs])
        if self.gmean_2d:
            rows.append(["GMEAN-2D"] + [fmt_x(self.gmean_2d[c]) for c in self.configs])
        return format_table(headers, rows, title=title)


def _speedup_sweep(
    configs: Sequence[str],
    scale: str,
    abbrs: Sequence[str],
    gpu_config: Optional[GPUConfig],
) -> SpeedupResult:
    run_configs = tuple(dict.fromkeys(("BASE",) + tuple(configs)))
    results, stats = parallel.sweep(abbrs, run_configs, scale=scale, gpu_config=gpu_config)
    per: Dict[str, Dict[str, float]] = {}
    for abbr in abbrs:
        base = results[abbr, "BASE"].cycles
        per[abbr] = {c: base / results[abbr, c].cycles for c in configs}
    def gm(group):
        members = [a for a in group if a in per]
        if not members:
            return {}
        # Speedups are ratios of positive cycle counts; a degenerate run
        # (zero-cycle result) is dropped with a warning rather than
        # clamped to 1e-9, which would poison the GMEAN.
        return {
            c: geomean(
                [per[a][c] for a in members], skip_nonpositive=True
            )
            for c in configs
        }
    return SpeedupResult(
        configs=tuple(configs),
        per_workload=per,
        gmean_1d=gm(ONE_D_ABBRS),
        gmean_2d=gm(TWO_D_ABBRS),
        sweep_stats=stats,
    )


@experiment()
def figure8(
    scale: str = "small",
    abbrs: Sequence[str] = ALL_ABBRS,
    gpu_config: Optional[GPUConfig] = None,
) -> SpeedupResult:
    """Speedup of UV / DAC-IDEAL / DARSIE / DARSIE-IGNORE-STORE."""
    return _speedup_sweep(REGISTRY.by_tag("fig8"), scale, abbrs, gpu_config)


# ---------------------------------------------------------------------------
# Figures 9 / 10 — instruction reduction breakdowns
# ---------------------------------------------------------------------------


@dataclass
class ReductionResult:
    configs: Tuple[str, ...]
    #: abbr -> config -> {class -> fraction of baseline instructions}
    per_workload: Dict[str, Dict[str, Dict[str, float]]]
    gmean_total: Dict[str, float]
    title: str
    sweep_stats: Optional[SweepStats] = field(default=None, repr=False, compare=False)

    def total(self, abbr: str, config: str) -> float:
        return sum(self.per_workload[abbr][config].values())

    def render(self) -> str:
        headers = ["App", "Config", "Uniform", "Affine", "Unstructured", "Total"]
        rows = []
        for abbr, by_config in self.per_workload.items():
            for config in self.configs:
                b = by_config[config]
                rows.append([
                    abbr, config,
                    fmt_pct(b.get("uniform", 0.0)),
                    fmt_pct(b.get("affine", 0.0)),
                    fmt_pct(b.get("unstructured", 0.0)),
                    fmt_pct(sum(b.values())),
                ])
        for config in self.configs:
            rows.append(["GMEAN", config, "", "", "", fmt_pct(self.gmean_total[config])])
        return format_table(headers, rows, title=self.title)


def _reduction_sweep(scale, abbrs, title, gpu_config=None) -> ReductionResult:
    reduction_configs = REGISTRY.by_tag("reduction")
    results, sweep_stats = parallel.sweep(
        abbrs, ("BASE",) + reduction_configs, scale=scale, gpu_config=gpu_config
    )
    per: Dict[str, Dict[str, Dict[str, float]]] = {}
    for abbr in abbrs:
        base_exec = results[abbr, "BASE"].stats.instructions_executed
        per[abbr] = {}
        for config in reduction_configs:
            stats = results[abbr, config].stats
            removed = dict(stats.skipped_by_class)
            for cls, n in stats.eliminated_by_class.items():
                removed[cls] = removed.get(cls, 0) + n
            per[abbr][config] = {cls: n / base_exec for cls, n in removed.items()}
    gmean_total = {}
    for config in reduction_configs:
        totals = [max(1e-9, sum(per[a][config].values())) for a in per]
        gmean_total[config] = geomean(totals)
    return ReductionResult(
        configs=reduction_configs, per_workload=per, gmean_total=gmean_total,
        title=title, sweep_stats=sweep_stats,
    )


@experiment()
def figure9(scale: str = "small", gpu_config: Optional[GPUConfig] = None) -> ReductionResult:
    """1D-benchmark instruction reduction vs the baseline."""
    return _reduction_sweep(
        scale, ONE_D_ABBRS,
        "Figure 9: percent reduction in 1D benchmark instructions vs baseline",
        gpu_config,
    )


@experiment()
def figure10(scale: str = "small", gpu_config: Optional[GPUConfig] = None) -> ReductionResult:
    """2D-benchmark instruction reduction vs the baseline."""
    return _reduction_sweep(
        scale, TWO_D_ABBRS,
        "Figure 10: percent reduction in 2D benchmark instructions vs baseline",
        gpu_config,
    )


# ---------------------------------------------------------------------------
# Figure 11 — energy reduction
# ---------------------------------------------------------------------------


@dataclass
class EnergyResult:
    configs: Tuple[str, ...]
    per_workload: Dict[str, Dict[str, float]]   # abbr -> config -> reduction
    gmean_1d: Dict[str, float]
    gmean_2d: Dict[str, float]
    darsie_overhead: Dict[str, float]           # abbr -> overhead fraction
    sweep_stats: Optional[SweepStats] = field(default=None, repr=False, compare=False)

    def render(self) -> str:
        headers = ["App"] + list(self.configs) + ["DARSIE overhead"]
        rows = [
            [abbr] + [fmt_pct(v[c]) for c in self.configs] + [fmt_pct(self.darsie_overhead[abbr])]
            for abbr, v in self.per_workload.items()
        ]
        if self.gmean_1d:
            rows.append(["GMEAN-1D"] + [fmt_pct(self.gmean_1d[c]) for c in self.configs] + [""])
        if self.gmean_2d:
            rows.append(["GMEAN-2D"] + [fmt_pct(self.gmean_2d[c]) for c in self.configs] + [""])
        return format_table(
            headers, rows, title="Figure 11: percent energy reduction vs the baseline"
        )


@experiment()
def figure11(
    scale: str = "small",
    abbrs: Sequence[str] = ALL_ABBRS,
    gpu_config: Optional[GPUConfig] = None,
) -> EnergyResult:
    configs = REGISTRY.by_tag("reduction")
    results, stats = parallel.sweep(
        abbrs, ("BASE",) + configs, scale=scale, gpu_config=gpu_config
    )
    num_sms = (gpu_config or small_config(num_sms=1)).num_sms
    darsie = REGISTRY.get("DARSIE")
    per: Dict[str, Dict[str, float]] = {}
    overhead: Dict[str, float] = {}
    for abbr in abbrs:
        base = results[abbr, "BASE"].energy_pj
        per[abbr] = {c: 1.0 - results[abbr, c].energy_pj / base for c in configs}
        overhead[abbr] = darsie.overhead_fraction(
            PASCAL_ENERGY_MODEL, results[abbr, "DARSIE"].stats, num_sms
        )
    def gm(group):
        members = [a for a in group if a in per]
        if not members:
            return {}
        # The GMEAN is over remaining-energy ratios (1 - reduction); a
        # workload whose DARSIE energy hits exactly zero would clamp to
        # 1e-9 and drag the group's reduction to ~100% — skip it with a
        # warning instead so the figure reflects the measured members.
        return {
            c: 1.0
            - geomean(
                [1.0 - per[a][c] for a in members], skip_nonpositive=True
            )
            for c in configs
        }
    return EnergyResult(
        configs=configs,
        per_workload=per,
        gmean_1d=gm(ONE_D_ABBRS),
        gmean_2d=gm(TWO_D_ABBRS),
        darsie_overhead=overhead,
        sweep_stats=stats,
    )


# ---------------------------------------------------------------------------
# Figure 12 — synchronization effects
# ---------------------------------------------------------------------------


@experiment()
def figure12(
    scale: str = "small",
    abbrs: Sequence[str] = ALL_ABBRS,
    gpu_config: Optional[GPUConfig] = None,
) -> SpeedupResult:
    """DARSIE vs DARSIE-NO-CF-SYNC vs SILICON-SYNC."""
    return _speedup_sweep(REGISTRY.by_tag("fig12"), scale, abbrs, gpu_config)


# ---------------------------------------------------------------------------
# Section 6.3 — area; Section 1 — survey
# ---------------------------------------------------------------------------


@experiment("area")
def area_estimate() -> str:
    return paper_area_model().report()


@dataclass
class SurveyResult:
    num_applications: int
    fraction_multi_dimensional: float
    fraction_library_multi_dimensional: float
    mean_time_in_md_kernels: float
    num_2d_kernels: int
    promotion_failures: int

    def render(self) -> str:
        rows = [
            ["applications surveyed", self.num_applications],
            ["multi-dimensional apps", fmt_pct(self.fraction_multi_dimensional)],
            ["library apps that are multi-dimensional",
             fmt_pct(self.fraction_library_multi_dimensional)],
            ["mean exec. time in multi-dimensional kernels",
             fmt_pct(self.mean_time_in_md_kernels)],
            ["unique 2D kernels", self.num_2d_kernels],
            ["2D kernels failing the promotion criterion", self.promotion_failures],
        ]
        return format_table(["Statistic", "Value"], rows,
                            title="Section 1: application survey (synthetic dataset)")


@experiment()
def survey() -> SurveyResult:
    s = default_survey()
    return SurveyResult(
        num_applications=s.num_applications,
        fraction_multi_dimensional=s.fraction_multi_dimensional,
        fraction_library_multi_dimensional=s.fraction_library_multi_dimensional,
        mean_time_in_md_kernels=s.mean_time_in_multi_dimensional_kernels,
        num_2d_kernels=len(s.unique_2d_kernels()),
        promotion_failures=len(s.promotion_failures()),
    )


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md Section 4) — not paper figures, design-choice benches
# ---------------------------------------------------------------------------


@dataclass
class AblationResult:
    parameter: str
    points: List[Tuple[object, float]]   # (value, speedup over BASE)
    sweep_stats: Optional[SweepStats] = field(default=None, repr=False, compare=False)

    def render(self) -> str:
        rows = [[str(v), fmt_x(s)] for v, s in self.points]
        return format_table([self.parameter, "speedup"], rows,
                            title=f"Ablation: DARSIE speedup vs {self.parameter}")


def ablation_sweep(
    field_path: str,
    values: Sequence[object],
    abbr: str = "MM",
    scale: str = "small",
    gpu_config: Optional[GPUConfig] = None,
    variant: str = "DARSIE",
    parameter: Optional[str] = None,
) -> AblationResult:
    """Sweep one dotted :class:`RunConfig` field and report speedup over BASE.

    ``darsie.*`` fields vary the frontend only, so every point shares a
    single BASE run; ``gpu.*`` fields change the machine, so each point
    gets its own BASE on the same hardware.
    """
    root = field_path.split(".", 1)[0]
    base_cfg = RunConfig(abbr=abbr, scale=scale, gpu=gpu_config or DEFAULT_GPU)
    specs: List[RunSpec] = []
    index: List[Tuple[object, int, int]] = []   # (value, base idx, variant idx)
    if root != "gpu":
        specs.append(RunSpec.from_run_config(replace(base_cfg, variant="BASE")))
    for value in values:
        var_cfg = apply_overrides(replace(base_cfg, variant=variant), {field_path: value})
        if root == "gpu":
            base_idx = len(specs)
            specs.append(RunSpec.from_run_config(replace(var_cfg, variant="BASE", darsie=None)))
            name = variant
        else:
            base_idx = 0
            name = f"{variant}-{field_path.split('.')[-1]}={value}"
        index.append((value, base_idx, len(specs)))
        specs.append(RunSpec.from_run_config(var_cfg, config_name=name))
    outcomes, stats = parallel.run_specs(specs, strict=True)
    points = [
        (value, outcomes[b].result.cycles / outcomes[v].result.cycles)
        for value, b, v in index
    ]
    return AblationResult(
        parameter=parameter or field_path, points=points, sweep_stats=stats
    )


def ablation_skip_ports(
    abbr: str = "MM", scale: str = "small",
    ports: Sequence[int] = (1, 2, 4, 8),
    gpu_config: Optional[GPUConfig] = None,
) -> AblationResult:
    return ablation_sweep(
        "darsie.skip_ports", ports, abbr=abbr, scale=scale,
        gpu_config=gpu_config, parameter="PC-coalescer ports",
    )


def ablation_rename_registers(
    abbr: str = "MM", scale: str = "small",
    sizes: Sequence[int] = (4, 8, 16, 32),
    gpu_config: Optional[GPUConfig] = None,
) -> AblationResult:
    return ablation_sweep(
        "darsie.rename_regs_per_tb", sizes, abbr=abbr, scale=scale,
        gpu_config=gpu_config, parameter="rename registers per TB",
    )


def ablation_sync_on_write(
    abbr: str = "MM", scale: str = "small", gpu_config: Optional[GPUConfig] = None
) -> AblationResult:
    """Versioning (paper's choice) vs synchronize-on-every-write."""
    result = ablation_sweep(
        "darsie.sync_on_write", (False, True), abbr=abbr, scale=scale,
        gpu_config=gpu_config, parameter="redundant-write policy",
    )
    labels = {False: "versioning", True: "sync-on-write"}
    result.points = [(labels[v], s) for v, s in result.points]
    return result


# ---------------------------------------------------------------------------
# Technique comparison — BASE vs DARSIE vs control-flow melding (DARM)
# ---------------------------------------------------------------------------


@dataclass
class TechniqueComparisonResult:
    """Cycles, energy and dynamic divergence for each technique."""

    configs: Tuple[str, ...]
    #: abbr -> config -> metric name -> value
    per_workload: Dict[str, Dict[str, Dict[str, float]]]
    sweep_stats: Optional[SweepStats] = field(default=None, repr=False, compare=False)

    def metric(self, abbr: str, config: str, name: str) -> float:
        return self.per_workload[abbr][config][name]

    def divergence_reduction(self, abbr: str, config: str) -> float:
        """Fraction of baseline divergence-serialized instruction slots
        the technique removed (1.0 = all divergence eliminated)."""
        base = self.per_workload[abbr]["BASE"]["serialized"]
        if base == 0:
            return 0.0
        return 1.0 - self.per_workload[abbr][config]["serialized"] / base

    def render(self) -> str:
        headers = [
            "App", "Config", "Cycles", "Speedup", "Energy (nJ)",
            "DivBranches", "Serialized",
        ]
        rows = []
        for abbr, by_config in self.per_workload.items():
            for config in self.configs:
                m = by_config[config]
                rows.append([
                    abbr, config,
                    f"{int(m['cycles'])}",
                    fmt_x(m["speedup"]),
                    f"{m['energy_pj'] / 1e3:.1f}",
                    f"{int(m['divergent_branches'])}",
                    f"{int(m['serialized'])}",
                ])
        return format_table(
            headers, rows,
            title="Technique comparison: redundancy elimination (DARSIE) "
                  "vs control-flow melding (DARM)",
        )


@experiment(name="compare-techniques")
def compare_techniques(
    scale: str = "tiny",
    abbrs: Optional[Sequence[str]] = None,
    gpu_config: Optional[GPUConfig] = None,
) -> TechniqueComparisonResult:
    """BASE / DARSIE / DARM / DARM-IDEAL across all workloads.

    DARSIE attacks *redundant* instructions (dimensionality analysis);
    DARM attacks *divergent* control flow (melding).  Table 1 kernels
    are divergence-free, the divergent suite is redundancy-light, so
    each technique dominates on its own territory — the point of the
    matrix.
    """
    if abbrs is None:
        abbrs = EXTENDED_ABBRS
    configs = ("BASE", "DARSIE") + REGISTRY.by_tag("technique")
    results, stats = parallel.sweep(abbrs, configs, scale=scale, gpu_config=gpu_config)
    per: Dict[str, Dict[str, Dict[str, float]]] = {}
    for abbr in abbrs:
        base_cycles = results[abbr, "BASE"].cycles
        per[abbr] = {}
        for config in configs:
            res = results[abbr, config]
            per[abbr][config] = {
                "cycles": float(res.cycles),
                "speedup": base_cycles / res.cycles,
                "energy_pj": res.energy_pj,
                "divergent_branches": float(res.stats.divergent_branches),
                "serialized": float(res.stats.divergence_serialized_instructions),
            }
    return TechniqueComparisonResult(
        configs=configs, per_workload=per, sweep_stats=stats
    )
