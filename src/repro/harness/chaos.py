"""Chaos soak: prove the sweep layer survives injected faults unchanged.

``python -m repro chaos --seed N`` runs a small (workload × variant)
sweep three times:

1. **clean** — no faults, no cache: the reference results;
2. **faulted** — under a seeded :func:`repro.harness.faults.random_plan`
   that crashes one spec's worker on every attempt, hangs another into
   its timeout, injects a transient and a permanent exception, corrupts
   one spec's cache entry on write, and makes another's cache write
   fail — with retries, timeout and quarantine enabled;
3. **resume** — the same sweep again with ``--resume`` semantics against
   the journal the faulted pass wrote, to prove completed specs are
   skipped and the corrupted cache entry is detected and re-simulated;
4. **kill+resume** — a fresh cache/journal, a plan with a single
   ``sim-kill`` rule, and a policy with ``checkpoint_interval_cycles``
   set: one spec's worker is killed mid-simulation right after its first
   checkpoint write, and the retry must resume from that checkpoint and
   produce a bit-identical result.

The soak then asserts the fault-tolerance contract:

- zero unhandled exceptions (the sweep returns);
- only the permanently-crashing spec is quarantined; the
  permanently-raising spec fails without quarantine; everything else
  completes;
- every surviving spec's :class:`~repro.timing.SimStats`, cycle count
  and energy are **bit-identical** to the clean reference — fault
  handling may never change what a run computes;
- the resume pass re-executes only the incomplete specs, verified via
  the journal-skip / simulated / corrupt-read counters;
- the kill+resume pass records at least one checkpoint write and one
  checkpoint resume, and every spec (the killed one included) matches
  the clean reference bit-for-bit.

Every deviation is collected into :class:`ChaosReport.problems` instead
of raising, so a CI run prints the whole picture before failing.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.config import ExecPolicy
from repro.harness import faults as faultlib
from repro.harness.parallel import (
    RunOutcome,
    RunSpec,
    SweepStats,
    run_specs,
    supports_fork,
)

#: Default chaos matrix: two fast kernels under three variants gives six
#: specs — one per fault kind in :data:`repro.harness.faults.KINDS`.
DEFAULT_ABBRS = ("LIB", "FWS")
DEFAULT_CONFIGS = ("BASE", "UV", "DARSIE")


@dataclass
class ChaosReport:
    """Everything a chaos soak observed, plus the verdict."""

    seed: int
    plan: faultlib.FaultPlan
    clean_stats: SweepStats
    fault_stats: SweepStats
    resume_stats: SweepStats
    kill_stats: SweepStats
    problems: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = [self.plan.describe(), ""]
        lines.append(f"clean : {self.clean_stats.render()}")
        lines.append(f"fault : {self.fault_stats.render()}")
        lines.append(f"resume: {self.resume_stats.render()}")
        lines.append(f"kill  : {self.kill_stats.render()}")
        if self.fault_stats.quarantined:
            lines.append(f"quarantined: {', '.join(self.fault_stats.quarantined)}")
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append("")
        if self.problems:
            lines.append(f"chaos soak FAILED ({len(self.problems)} problem(s)):")
            lines.extend(f"  - {p}" for p in self.problems)
        else:
            lines.append("chaos soak OK: faults injected, stats bit-identical, "
                         "resume skipped completed specs, mid-simulation kill "
                         "resumed from checkpoint")
        return "\n".join(lines)


def _identical(a: RunOutcome, b: RunOutcome) -> bool:
    """Bit-identical result contract for timing runs."""
    ra, rb = a.result, b.result
    if type(ra) is not type(rb):
        return False
    if hasattr(ra, "sim"):  # RunResult
        return (
            ra.cycles == rb.cycles
            and ra.energy_pj == rb.energy_pj
            and ra.sim.stats == rb.sim.stats
        )
    return ra == rb  # FunctionalResult dataclass equality


def chaos_soak(
    seed: int = 0,
    scale: str = "tiny",
    abbrs: Sequence[str] = DEFAULT_ABBRS,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    jobs: int = 2,
    cache_dir: Optional[str] = None,
    workdir: Optional[str] = None,
) -> ChaosReport:
    """Run the three-pass soak; see the module docstring for the contract.

    ``workdir`` names a persistent directory for the soak's cache and
    journal (any stale journal there is cleared first) — CI uses this so
    a red run can upload them as debugging artifacts; the default is a
    temp directory removed on exit.
    """
    specs = [
        RunSpec(abbr=a, config_name=c, scale=scale)
        for a in abbrs
        for c in configs
    ]
    labels = [s.label for s in specs]
    pooled = jobs > 1 and len(specs) > 1 and supports_fork()
    # Under a pool a hang is cured by the wall-clock timeout killing the
    # worker; serially nothing can preempt the sleep, so keep it short.
    plan = faultlib.random_plan(labels, seed=seed, hang_s=8.0 if pooled else 0.2)
    policy = ExecPolicy(
        timeout_s=2.0 if pooled else 0.0,
        max_retries=3,
        backoff_base_s=0.0,
        quarantine_after=2,
    )

    clean, clean_stats = run_specs(specs, jobs=jobs, use_cache=False, resume=False)

    with ExitStack() as stack:
        if workdir is None:
            tmp = stack.enter_context(tempfile.TemporaryDirectory(prefix="repro-chaos-"))
        else:
            os.makedirs(workdir, exist_ok=True)
            tmp = workdir
        journal = os.path.join(tmp, "journal.jsonl")
        try:
            os.unlink(journal)  # a stale journal would skew the resume pass
        except OSError:
            pass
        with plan.active():
            faulted, fault_stats = run_specs(
                specs, jobs=jobs, use_cache=True, cache_dir=tmp,
                policy=policy, resume=journal,
            )
            resumed, resume_stats = run_specs(
                specs, jobs=jobs, use_cache=True, cache_dir=tmp,
                policy=policy, resume=journal,
            )

        # Kill+resume pass: a fresh cache and journal, one sim-kill rule
        # (random_plan deals the first shuffled label to the first kind),
        # and a checkpointing policy.  The killed worker dies right after
        # its first checkpoint write; the retry must resume from it.
        kill_plan = faultlib.random_plan(
            labels, seed=seed, kinds=(faultlib.SIM_KILL,)
        )
        kill_dir = os.path.join(tmp, "kill")
        kill_policy = ExecPolicy(
            timeout_s=policy.timeout_s,
            max_retries=3,
            backoff_base_s=0.0,
            quarantine_after=2,
            checkpoint_interval_cycles=64,
        )
        with kill_plan.active():
            killed, kill_stats = run_specs(
                specs, jobs=jobs, use_cache=True, cache_dir=kill_dir,
                policy=kill_policy,
                resume=os.path.join(kill_dir, "journal.jsonl"),
            )

    report = ChaosReport(
        seed=seed,
        plan=plan,
        clean_stats=clean_stats,
        fault_stats=fault_stats,
        resume_stats=resume_stats,
        kill_stats=kill_stats,
    )
    problems = report.problems

    crash_labels = set(plan.labels_for(faultlib.CRASH))
    permanent_labels = set(plan.labels_for(faultlib.PERMANENT))
    corrupt_labels = set(plan.labels_for(faultlib.CORRUPT_STORE))
    oserror_labels = set(plan.labels_for(faultlib.STORE_OSERROR))
    doomed = crash_labels | permanent_labels

    for ref in clean:
        if not ref.ok:
            problems.append(f"clean run failed for {ref.spec.label}: {ref.error_type}")
    if any(not o.ok for o in clean):
        report.notes.append("clean run failed; skipping fault-pass comparisons")
        return report

    # --- faulted pass -----------------------------------------------------
    if set(fault_stats.quarantined) != crash_labels:
        problems.append(
            f"quarantine mismatch: expected {sorted(crash_labels)}, "
            f"got {sorted(fault_stats.quarantined)}"
        )
    for ref, out in zip(clean, faulted):
        label = out.spec.label
        if label in doomed:
            if out.ok:
                problems.append(f"{label} should have failed permanently but succeeded")
            continue
        if not out.ok:
            problems.append(f"{label} failed under faults: {out.error_type}")
        elif not _identical(ref, out):
            problems.append(f"{label}: stats under faults differ from the clean run")
    if oserror_labels and fault_stats.cache_write_failures < len(oserror_labels):
        problems.append(
            f"expected ≥{len(oserror_labels)} injected cache-write failure(s), "
            f"got {fault_stats.cache_write_failures}"
        )
    if plan.labels_for(faultlib.TRANSIENT) and fault_stats.retries < 1:
        problems.append("transient fault was injected but no retry was recorded")
    if pooled:
        if fault_stats.pool_restarts < 1:
            problems.append("worker crashes were injected but the pool never restarted")
        if plan.labels_for(faultlib.HANG) and fault_stats.timeouts < 1:
            problems.append("a hang was injected but no timeout was recorded")

    # --- resume pass ------------------------------------------------------
    survivors = [o for o in faulted if o.ok]
    # A survivor resumes from the journal unless its cached result is
    # unavailable: the corrupt-store spec's entry is garbage (detected
    # and re-simulated) and the store-oserror spec's entry was never
    # written (legitimately re-executed).
    unreadable = corrupt_labels | oserror_labels
    resumable = [o for o in survivors if o.spec.label not in unreadable]
    if resume_stats.journal_skips != len(resumable):
        problems.append(
            f"resume skipped {resume_stats.journal_skips} spec(s), "
            f"expected {len(resumable)}"
        )
    corrupt_survivors = [o for o in survivors if o.spec.label in corrupt_labels]
    if corrupt_survivors:
        if resume_stats.cache_read_failures < len(corrupt_survivors):
            problems.append(
                "corrupted cache entry was not detected on resume "
                f"(cache_read_failures={resume_stats.cache_read_failures})"
            )
    reexecuted = [o for o in survivors if o.spec.label in unreadable]
    if reexecuted and resume_stats.simulated < len(reexecuted):
        problems.append(
            "specs with unreadable cache entries were not re-simulated on "
            f"resume (simulated={resume_stats.simulated}, "
            f"expected ≥{len(reexecuted)})"
        )
    for ref, out in zip(clean, resumed):
        if out.spec.label in doomed:
            continue
        if not out.ok:
            problems.append(f"{out.spec.label} failed on resume: {out.error_type}")
        elif not _identical(ref, out):
            problems.append(f"{out.spec.label}: resume stats differ from the clean run")

    # --- kill+resume pass -------------------------------------------------
    kill_labels = set(kill_plan.labels_for(faultlib.SIM_KILL))
    if kill_stats.checkpoints_written < 1:
        problems.append(
            "kill pass wrote no checkpoints "
            f"(checkpoints_written={kill_stats.checkpoints_written})"
        )
    if kill_stats.checkpoint_resumes < 1:
        problems.append(
            "mid-simulation kill was injected but no attempt resumed from a "
            f"checkpoint (checkpoint_resumes={kill_stats.checkpoint_resumes})"
        )
    for ref, out in zip(clean, killed):
        label = out.spec.label
        if not out.ok:
            problems.append(f"{label} did not survive the kill pass: {out.error_type}")
        elif not _identical(ref, out):
            problems.append(f"{label}: kill-pass result differs from the clean run")
        elif label in kill_labels and out.attempts < 2:
            problems.append(
                f"{label} was the sim-kill target but finished on attempt 1 "
                "(the kill never fired)"
            )

    if not pooled:
        report.notes.append(
            "ran serially (no fork support or jobs=1): timeout/pool-restart "
            "paths not exercised"
        )
    return report
