"""Parallel, cache-backed execution of (workload × configuration) runs.

Every DARSIE figure and ablation is a sweep over independent, pure,
oracle-verified timing runs — ideal units for process-pool fan-out.
This module provides:

- :class:`RunSpec` — a picklable job descriptor naming a (workload,
  configuration, scale, GPU config) run; the worker reconstructs the
  whole substrate in the child process, so nothing unpicklable (kernels,
  memory factories, frontend closures) ever crosses the process
  boundary;
- an on-disk result cache under ``results/.cache/`` keyed by a
  deterministic hash of the kernel program plus the run's canonical
  :class:`~repro.config.RunConfig` serialization (two specs share an
  entry iff their canonical forms agree), invalidated by a cache
  version *and* a
  fingerprint of the simulator's own source code, so stale results can
  never survive a change to the timing model;
- graceful degradation — a worker crash or :class:`VerificationError`
  in one run is captured and reported per-spec without aborting the
  sweep, and execution falls back to serial when ``jobs == 1`` or the
  platform lacks ``fork``;
- per-run wall-time / cache-hit observability via :class:`SweepStats`.

The figure drivers in :mod:`repro.harness.experiments` are wired through
:func:`sweep` / :func:`functional_sweep`; ``python -m repro --jobs N``
and the benchmark suite (``REPRO_JOBS``) select the pool width.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis import redundancy_levels, taxonomy_breakdown
from repro.analysis.limit_study import LevelBreakdown
from repro.analysis.taxonomy_study import TaxonomyBreakdown
from repro.config import DEFAULT_GPU, RunConfig, apply_overrides
from repro.core import DarsieConfig
from repro.harness.runner import RunResult, WorkloadRunner
from repro.timing import GPUConfig
from repro.workloads import build_workload

#: Bump to invalidate every cached result (schema or semantics change).
#: 2: keys derived from the canonical RunConfig serialization.
CACHE_VERSION = 2

#: Pseudo-configuration name: functional trace analysis (Figures 1/2).
FUNCTIONAL = "FUNCTIONAL"

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")


# ---------------------------------------------------------------------------
# Job descriptors and outcomes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One (workload, configuration) run, fully described by plain data.

    The spec carries *names*, not objects: the worker process rebuilds
    the workload, compiler analysis and timing substrate from scratch,
    which keeps the descriptor picklable under any start method.
    """

    abbr: str
    config_name: str
    scale: str = "small"
    gpu_config: Optional[GPUConfig] = None
    #: explicit DARSIE knobs for ablation variants (e.g. ``DARSIE-ports4``)
    darsie_config: Optional[DarsieConfig] = None

    @property
    def label(self) -> str:
        return f"{self.abbr}/{self.config_name}@{self.scale}"

    def to_run_config(self) -> RunConfig:
        """The typed, canonical description of this run (the identity
        the cache key fingerprints)."""
        return RunConfig(
            abbr=self.abbr,
            variant=self.config_name,
            scale=self.scale,
            gpu=self.gpu_config or DEFAULT_GPU,
            darsie=self.darsie_config,
        )

    @classmethod
    def from_run_config(
        cls, config: RunConfig, config_name: Optional[str] = None
    ) -> "RunSpec":
        """Spec for a :class:`RunConfig` (``config_name`` overrides the
        display name for ad-hoc ablation points)."""
        return cls(
            abbr=config.abbr,
            config_name=config_name or config.variant,
            scale=config.scale,
            gpu_config=config.gpu,
            darsie_config=config.darsie,
        )

    def with_overrides(self, overrides: Mapping[str, object]) -> "RunSpec":
        """A copy with dotted-path config overrides applied (see
        :func:`repro.config.apply_overrides`)."""
        return RunSpec.from_run_config(apply_overrides(self.to_run_config(), overrides))


@dataclass
class FunctionalResult:
    """Outcome of one :data:`FUNCTIONAL` (trace analysis) run."""

    levels: LevelBreakdown
    taxonomy: TaxonomyBreakdown
    dimensionality: int


@dataclass
class RunOutcome:
    """One spec's result — or its captured failure."""

    spec: RunSpec
    result: Optional[Union[RunResult, FunctionalResult]]
    error: Optional[str] = None
    error_type: Optional[str] = None
    wall_time_s: float = 0.0
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepStats:
    """Observability for one sweep: cache behaviour and wall time."""

    runs: int = 0
    cache_hits: int = 0
    #: timing/functional simulations actually executed (cache misses)
    simulated: int = 0
    failures: int = 0
    #: cache entries that could not be written (read-only / full disk)
    cache_write_failures: int = 0
    wall_time_s: float = 0.0
    jobs: int = 1
    #: (spec label, seconds, "hit" | "sim" | "fail") in spec order
    per_run: List[Tuple[str, float, str]] = field(default_factory=list)

    def render(self) -> str:
        text = (
            f"[sweep] {self.runs} runs in {self.wall_time_s:.1f}s"
            f" (jobs={self.jobs}): {self.simulated} simulated,"
            f" {self.cache_hits} cache hits, {self.failures} failures"
        )
        if self.cache_write_failures:
            text += f", {self.cache_write_failures} cache writes failed"
        return text

    def detail(self) -> str:
        """Per-run wall times, slowest first."""
        lines = [self.render()]
        for label, seconds, status in sorted(self.per_run, key=lambda r: -r[1]):
            lines.append(f"  {label:<28} {seconds:8.3f}s  {status}")
        return "\n".join(lines)


class SweepError(RuntimeError):
    """A strict sweep had failing specs (carried in :attr:`failures`)."""

    def __init__(self, failures: List[RunOutcome]):
        self.failures = failures
        summary = "; ".join(
            f"{o.spec.label}: {o.error_type}" for o in failures[:5]
        )
        extra = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
        super().__init__(f"{len(failures)} run(s) failed: {summary}{extra}")


# ---------------------------------------------------------------------------
# Defaults (set by the CLI / benchmark conftest)
# ---------------------------------------------------------------------------

_defaults = {"jobs": 1, "use_cache": True, "cache_dir": None}

_last_sweep: Optional[SweepStats] = None


def configure(
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> None:
    """Set process-wide defaults for subsequent sweeps."""
    if jobs is not None:
        _defaults["jobs"] = max(1, int(jobs))
    if use_cache is not None:
        _defaults["use_cache"] = bool(use_cache)
    if cache_dir is not None:
        _defaults["cache_dir"] = cache_dir


def default_jobs() -> int:
    return int(_defaults["jobs"])


def cache_enabled() -> bool:
    return bool(_defaults["use_cache"])


def resolve_cache_dir(cache_dir: Optional[str] = None) -> str:
    return (
        cache_dir
        or _defaults["cache_dir"]
        or os.environ.get("REPRO_CACHE_DIR")
        or DEFAULT_CACHE_DIR
    )


def last_sweep_stats() -> Optional[SweepStats]:
    """Stats of the most recent sweep in this process."""
    return _last_sweep


def supports_fork() -> bool:
    return "fork" in get_all_start_methods()


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------

_fingerprint_memo: Dict[Tuple[str, str], str] = {}
_code_fingerprint_memo: Optional[str] = None


def _workload_fingerprint(abbr: str, scale: str) -> str:
    """Hash of the assembled kernel program and launch geometry."""
    key = (abbr, scale)
    if key not in _fingerprint_memo:
        wl = build_workload(abbr, scale)
        h = hashlib.sha256()
        h.update(f"{wl.abbr}|{wl.scale}|{wl.tb_dim}|{wl.dimensionality}".encode())
        lc = wl.launch
        h.update(
            f"|grid={tuple(lc.grid_dim)}|block={tuple(lc.block_dim)}"
            f"|warp={lc.warp_size}".encode()
        )
        h.update(f"|shared={wl.program.shared_words}|params={wl.program.params}".encode())
        for inst in wl.program.instructions:
            h.update(f"{inst.pc}:{inst}:{inst.target_pc}\n".encode())
        _fingerprint_memo[key] = h.hexdigest()
    return _fingerprint_memo[key]


def code_fingerprint() -> str:
    """Hash of every source file in the ``repro`` package.

    Any edit to the simulator, compiler pass or workloads changes this
    fingerprint, so cached results can never outlive the code that
    produced them — the versioned-invalidation guarantee.
    """
    global _code_fingerprint_memo
    if _code_fingerprint_memo is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                h.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    h.update(fh.read())
        _code_fingerprint_memo = h.hexdigest()
    return _code_fingerprint_memo


def cache_key(spec: RunSpec) -> str:
    """Deterministic content hash identifying one run's inputs.

    The run itself is identified *only* by its canonical
    :class:`RunConfig` serialization: two specs share a key iff their
    canonical dicts are equal (plus the cache version and the code /
    program fingerprints that scope every key).
    """
    parts = {
        "cache_version": CACHE_VERSION,
        "code": code_fingerprint(),
        "program": _workload_fingerprint(spec.abbr, spec.scale),
        "run": spec.to_run_config().to_dict(),
    }
    blob = json.dumps(parts, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def cache_path(spec: RunSpec, key: str, cache_dir: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", f"{spec.abbr}-{spec.config_name}-{spec.scale}")
    return os.path.join(cache_dir, f"{slug}-{key[:16]}.pkl")


def _cache_load(path: str, key: str):
    """A cached result, or None on miss / version skew / corruption."""
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None
        return payload["result"]
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, KeyError, ValueError):
        # Missing, truncated or otherwise corrupted entry: treat as a
        # miss and fall back to a live run (which rewrites the entry).
        return None


#: temp-file suffix pattern used by :func:`_cache_store`'s atomic writes
_TMP_RE = re.compile(r"\.pkl\.tmp\.\d+$")

#: tmp files older than this are considered leaked by a crashed sweep
STALE_TMP_AGE_S = 3600.0


def _cache_store(path: str, key: str, result) -> bool:
    """Write one cache entry atomically; returns False on failure.

    Caching is best-effort — the run itself already succeeded — but
    failures are reported to the caller so a read-only or full cache
    directory does not silently degrade every sweep to 0% hit rate.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(tmp, "wb") as fh:
            pickle.dump({"key": key, "result": result}, fh)
        os.replace(tmp, path)  # atomic: concurrent sweeps never see partial files
        return True
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False


def reap_stale_tmp(cache_dir: Optional[str] = None, max_age_s: float = STALE_TMP_AGE_S) -> int:
    """Remove ``*.pkl.tmp.<pid>`` files leaked by crashed sweeps.

    A live sweep's tmp file exists only for the instant between write
    and rename, so anything older than ``max_age_s`` is garbage.
    Returns the number of files removed.
    """
    directory = resolve_cache_dir(cache_dir)
    removed = 0
    if not os.path.isdir(directory):
        return 0
    now = time.time()
    for name in os.listdir(directory):
        if not _TMP_RE.search(name):
            continue
        path = os.path.join(directory, name)
        try:
            if now - os.path.getmtime(path) >= max_age_s:
                os.unlink(path)
                removed += 1
        except OSError:
            pass
    return removed


def clear_cache(cache_dir: Optional[str] = None) -> int:
    """Delete every cache entry, including leaked ``*.tmp.<pid>`` files
    from crashed sweeps; returns the number removed."""
    directory = resolve_cache_dir(cache_dir)
    removed = 0
    if os.path.isdir(directory):
        for name in os.listdir(directory):
            if name.endswith(".pkl") or _TMP_RE.search(name):
                try:
                    os.unlink(os.path.join(directory, name))
                    removed += 1
                except OSError:
                    pass
    return removed


# ---------------------------------------------------------------------------
# Worker entrypoint
# ---------------------------------------------------------------------------


def _build_runner(spec: RunSpec) -> WorkloadRunner:
    """Reconstruct the substrate for one spec (test seam)."""
    return WorkloadRunner(build_workload(spec.abbr, spec.scale), spec.gpu_config)


def _execute_spec(spec: RunSpec) -> Union[RunResult, FunctionalResult]:
    runner = _build_runner(spec)
    if spec.config_name == FUNCTIONAL:
        trace = runner.functional_trace()
        return FunctionalResult(
            levels=redundancy_levels(trace),
            taxonomy=taxonomy_breakdown(trace),
            dimensionality=runner.workload.dimensionality,
        )
    return runner.run(spec.config_name, spec.darsie_config)


def _worker(spec: RunSpec) -> tuple:
    """Run one spec, capturing any failure as data (never raises)."""
    start = time.perf_counter()
    try:
        result = _execute_spec(spec)
        return ("ok", result, time.perf_counter() - start)
    except Exception as exc:
        return (
            "err",
            type(exc).__name__,
            f"{exc}\n{traceback.format_exc()}",
            time.perf_counter() - start,
        )


def _outcome_from_payload(spec: RunSpec, payload: tuple) -> RunOutcome:
    if payload[0] == "ok":
        _, result, elapsed = payload
        return RunOutcome(spec=spec, result=result, wall_time_s=elapsed)
    _, error_type, error, elapsed = payload
    return RunOutcome(
        spec=spec, result=None, error=error, error_type=error_type, wall_time_s=elapsed
    )


# ---------------------------------------------------------------------------
# Sweep execution
# ---------------------------------------------------------------------------


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    strict: bool = False,
) -> Tuple[List[RunOutcome], SweepStats]:
    """Execute specs across a process pool, consulting the result cache.

    Returns outcomes in spec order plus a :class:`SweepStats`.  With
    ``strict=True`` a :class:`SweepError` is raised *after* every spec
    has been attempted, so one failure never hides the others' results.
    """
    global _last_sweep
    jobs = max(1, int(jobs if jobs is not None else _defaults["jobs"]))
    caching = bool(_defaults["use_cache"] if use_cache is None else use_cache)
    directory = resolve_cache_dir(cache_dir)

    start = time.perf_counter()
    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    pending: List[Tuple[int, RunSpec, Optional[str], Optional[str]]] = []

    for i, spec in enumerate(specs):
        if caching:
            key = cache_key(spec)
            path = cache_path(spec, key, directory)
            cached = _cache_load(path, key)
            if cached is not None:
                outcomes[i] = RunOutcome(spec=spec, result=cached, cache_hit=True)
                continue
            pending.append((i, spec, key, path))
        else:
            pending.append((i, spec, None, None))

    parallel_ok = jobs > 1 and len(pending) > 1 and supports_fork()
    if parallel_ok:
        ctx = get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)), mp_context=ctx
        ) as pool:
            futures = {
                pool.submit(_worker, spec): (i, spec) for i, spec, _, _ in pending
            }
            for future in as_completed(futures):
                i, spec = futures[future]
                try:
                    payload = future.result()
                except Exception as exc:
                    # BrokenProcessPool and friends: the child died hard
                    # (segfault, OOM kill).  Record it against this spec
                    # and keep draining the rest of the sweep.
                    outcomes[i] = RunOutcome(
                        spec=spec,
                        result=None,
                        error=f"worker process died: {exc!r}",
                        error_type=type(exc).__name__,
                    )
                else:
                    outcomes[i] = _outcome_from_payload(spec, payload)
    else:
        for i, spec, _, _ in pending:
            outcomes[i] = _outcome_from_payload(spec, _worker(spec))

    write_failures = 0
    if caching:
        reap_stale_tmp(directory)
        for i, _spec, key, path in pending:
            outcome = outcomes[i]
            if outcome is not None and outcome.ok:
                if not _cache_store(path, key, outcome.result):
                    write_failures += 1
        if write_failures:
            warnings.warn(
                f"result cache in {directory!r} is not writable: "
                f"{write_failures} entr{'y' if write_failures == 1 else 'ies'} "
                "could not be stored (future sweeps will re-simulate)",
                RuntimeWarning,
                stacklevel=2,
            )

    final: List[RunOutcome] = [o for o in outcomes if o is not None]
    stats = SweepStats(
        runs=len(final),
        cache_hits=sum(1 for o in final if o.cache_hit),
        simulated=sum(1 for o in final if o.ok and not o.cache_hit),
        failures=sum(1 for o in final if not o.ok),
        cache_write_failures=write_failures,
        wall_time_s=time.perf_counter() - start,
        jobs=jobs if parallel_ok else 1,
        per_run=[
            (o.spec.label, o.wall_time_s, "hit" if o.cache_hit else ("sim" if o.ok else "fail"))
            for o in final
        ],
    )
    _last_sweep = stats

    if strict:
        failures = [o for o in final if not o.ok]
        if failures:
            raise SweepError(failures)
    return final, stats


def sweep(
    abbrs: Sequence[str],
    configs: Sequence[str],
    scale: str = "small",
    gpu_config: Optional[GPUConfig] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    strict: bool = True,
) -> Tuple[Dict[Tuple[str, str], RunResult], SweepStats]:
    """Fan out the (workload × configuration) grid; returns keyed results."""
    specs = [
        RunSpec(abbr=a, config_name=c, scale=scale, gpu_config=gpu_config)
        for a in abbrs
        for c in configs
    ]
    outcomes, stats = run_specs(specs, jobs=jobs, use_cache=use_cache, strict=strict)
    results = {
        (o.spec.abbr, o.spec.config_name): o.result for o in outcomes if o.ok
    }
    return results, stats


def functional_sweep(
    abbrs: Sequence[str],
    scale: str = "small",
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    strict: bool = True,
) -> Tuple[Dict[str, FunctionalResult], SweepStats]:
    """Fan out the functional-trace analyses behind Figures 1 and 2."""
    specs = [RunSpec(abbr=a, config_name=FUNCTIONAL, scale=scale) for a in abbrs]
    outcomes, stats = run_specs(specs, jobs=jobs, use_cache=use_cache, strict=strict)
    return {o.spec.abbr: o.result for o in outcomes if o.ok}, stats
