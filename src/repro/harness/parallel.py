"""Parallel, cache-backed, fault-tolerant execution of (workload ×
configuration) runs.

Every DARSIE figure and ablation is a sweep over independent, pure,
oracle-verified timing runs — ideal units for process-pool fan-out.
This module provides:

- :class:`RunSpec` — a picklable job descriptor naming a (workload,
  configuration, scale, GPU config) run; the worker reconstructs the
  whole substrate in the child process, so nothing unpicklable (kernels,
  memory factories, frontend closures) ever crosses the process
  boundary;
- an on-disk result cache under ``results/.cache/`` keyed by a
  deterministic hash of the kernel program plus the run's canonical
  :class:`~repro.config.RunConfig` serialization (two specs share an
  entry iff their canonical forms agree — execution policy excluded),
  invalidated by a cache version *and* a fingerprint of the simulator's
  own source code, so stale results can never survive a change to the
  timing model;
- fault tolerance — per-spec wall-clock timeouts, bounded retries with
  exponential backoff and decorrelated jitter for *retryable* failures
  (transient exceptions, timeouts, hard worker deaths), automatic
  rebuild of a broken process pool with quarantine of the suspected
  poison spec, and a clean ``KeyboardInterrupt`` shutdown that cancels
  futures, reaps workers and still flushes :func:`last_sweep_stats`;
- resume — an append-only JSONL sweep journal (one line per landed
  outcome, keyed by :func:`cache_key`) lets ``run_specs(resume=...)``
  skip specs a killed sweep already completed;
- per-run wall-time / cache-hit / retry / quarantine observability via
  :class:`SweepStats`.

The failure taxonomy (what retries, what doesn't):

========== ==================================================== =========
class      examples                                             retried?
========== ==================================================== =========
transient  :class:`~repro.harness.faults.TransientFault`,       yes
           ``ConnectionResetError``, ``BrokenPipeError``
timeout    per-spec wall-clock budget exceeded                  yes
crash      hard worker death (``BrokenProcessPool``,            yes, until
           :class:`~repro.harness.faults.WorkerCrashed`)        quarantine
permanent  ``VerificationError``, ``KeyError``, everything else no
========== ==================================================== =========

All of it is provoked deterministically by the seeded fault-injection
layer in :mod:`repro.harness.faults` (``python -m repro chaos``).

The figure drivers in :mod:`repro.harness.experiments` are wired through
:func:`sweep` / :func:`functional_sweep`; ``python -m repro --jobs N``
and the benchmark suite (``REPRO_JOBS``) select the pool width.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import random
import re
import time
import traceback
import warnings
import zlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis import redundancy_levels, taxonomy_breakdown
from repro.analysis.limit_study import LevelBreakdown
from repro.analysis.taxonomy_study import TaxonomyBreakdown
from repro.config import DEFAULT_GPU, ExecPolicy, RunConfig, apply_overrides
from repro.core import DarsieConfig
from repro.harness import faults as faultlib
from repro.harness.runner import CheckpointPlan, RunResult, WorkloadRunner
from repro.timing import GPUConfig
from repro.workloads import build_workload

#: Bump to invalidate every cached result (schema or semantics change).
#: 2: keys derived from the canonical RunConfig serialization.
CACHE_VERSION = 2

#: Pseudo-configuration name: functional trace analysis (Figures 1/2).
FUNCTIONAL = "FUNCTIONAL"

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")

#: error types classified *transient* (retryable without quarantine).
TRANSIENT_ERROR_TYPES = {
    "TransientFault",
    "ConnectionResetError",
    "BrokenPipeError",
    "InterruptedError",
}

#: error types that mean the worker process itself died.
CRASH_ERROR_TYPES = {"BrokenProcessPool", "WorkerCrashed"}

#: error type recorded when a spec exceeds its wall-clock budget.
TIMEOUT_ERROR_TYPE = "Timeout"


# ---------------------------------------------------------------------------
# Job descriptors and outcomes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One (workload, configuration) run, fully described by plain data.

    The spec carries *names*, not objects: the worker process rebuilds
    the workload, compiler analysis and timing substrate from scratch,
    which keeps the descriptor picklable under any start method.
    """

    abbr: str
    config_name: str
    scale: str = "small"
    gpu_config: Optional[GPUConfig] = None
    #: explicit DARSIE knobs for ablation variants (e.g. ``DARSIE-ports4``)
    darsie_config: Optional[DarsieConfig] = None
    #: per-spec execution policy; ``None`` defers to the sweep's policy
    policy: Optional[ExecPolicy] = None

    @property
    def label(self) -> str:
        return f"{self.abbr}/{self.config_name}@{self.scale}"

    def to_run_config(self) -> RunConfig:
        """The typed, canonical description of this run (the identity
        the cache key fingerprints)."""
        return RunConfig(
            abbr=self.abbr,
            variant=self.config_name,
            scale=self.scale,
            gpu=self.gpu_config or DEFAULT_GPU,
            darsie=self.darsie_config,
            policy=self.policy or ExecPolicy(),
        )

    @classmethod
    def from_run_config(
        cls, config: RunConfig, config_name: Optional[str] = None
    ) -> "RunSpec":
        """Spec for a :class:`RunConfig` (``config_name`` overrides the
        display name for ad-hoc ablation points)."""
        return cls(
            abbr=config.abbr,
            config_name=config_name or config.variant,
            scale=config.scale,
            gpu_config=config.gpu,
            darsie_config=config.darsie,
            policy=config.policy if config.policy != ExecPolicy() else None,
        )

    def with_overrides(self, overrides: Mapping[str, object]) -> "RunSpec":
        """A copy with dotted-path config overrides applied (see
        :func:`repro.config.apply_overrides`)."""
        return RunSpec.from_run_config(apply_overrides(self.to_run_config(), overrides))


@dataclass
class FunctionalResult:
    """Outcome of one :data:`FUNCTIONAL` (trace analysis) run."""

    levels: LevelBreakdown
    taxonomy: TaxonomyBreakdown
    dimensionality: int


@dataclass
class RunOutcome:
    """One spec's result — or its captured failure."""

    spec: RunSpec
    result: Optional[Union[RunResult, FunctionalResult]]
    error: Optional[str] = None
    error_type: Optional[str] = None
    wall_time_s: float = 0.0
    cache_hit: bool = False
    #: execution attempts consumed (1 = first try succeeded/failed)
    attempts: int = 1
    #: the spec was pulled from the rotation after repeated hard crashes
    quarantined: bool = False
    #: satisfied by the resume journal (plus the cache) of a prior sweep
    resumed: bool = False
    #: simulation checkpoints written during this spec's execution
    checkpoints_written: int = 0
    #: the run continued from an on-disk checkpoint instead of cycle 0
    checkpoint_resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_journal_dict(self, key: Optional[str] = None) -> dict:
        """The spec's append-only journal line (no result payload — the
        result itself lives in the cache under ``key``)."""
        return {
            "key": key,
            "label": self.spec.label,
            "ok": self.ok,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "cache_hit": self.cache_hit,
            "wall_time_s": round(self.wall_time_s, 6),
        }


@dataclass
class SweepStats:
    """Observability for one sweep: cache behaviour, faults, wall time."""

    runs: int = 0
    cache_hits: int = 0
    #: timing/functional simulations actually executed (cache misses)
    simulated: int = 0
    failures: int = 0
    #: cache entries that could not be written (read-only / full disk)
    cache_write_failures: int = 0
    #: cache entries present on disk but unreadable (corruption)
    cache_read_failures: int = 0
    #: extra execution attempts consumed by retryable failures
    retries: int = 0
    #: specs that exceeded their wall-clock budget at least once
    timeouts: int = 0
    #: times the process pool was torn down and rebuilt
    pool_restarts: int = 0
    #: labels pulled from the rotation after repeated hard crashes
    quarantined: List[str] = field(default_factory=list)
    #: specs skipped because the resume journal marked them complete
    journal_skips: int = 0
    #: simulation checkpoints written across all specs
    checkpoints_written: int = 0
    #: runs that continued from an on-disk checkpoint instead of cycle 0
    checkpoint_resumes: int = 0
    #: orphaned atomic-write temp files (cache and checkpoint) reaped
    stale_tmp_reaped: int = 0
    #: unparseable resume-journal lines skipped (torn final record)
    journal_bad_lines: int = 0
    wall_time_s: float = 0.0
    jobs: int = 1
    #: (spec label, seconds, "hit" | "resume" | "sim" | "fail") in spec order
    per_run: List[Tuple[str, float, str]] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-data counters (the ``/stats`` endpoint and the CI
        stats-dump artifact serialize this)."""
        return {
            "runs": self.runs,
            "cache_hits": self.cache_hits,
            "simulated": self.simulated,
            "failures": self.failures,
            "cache_write_failures": self.cache_write_failures,
            "cache_read_failures": self.cache_read_failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_restarts": self.pool_restarts,
            "quarantined": list(self.quarantined),
            "journal_skips": self.journal_skips,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_resumes": self.checkpoint_resumes,
            "stale_tmp_reaped": self.stale_tmp_reaped,
            "journal_bad_lines": self.journal_bad_lines,
            "wall_time_s": round(self.wall_time_s, 6),
            "jobs": self.jobs,
            "per_run": [list(r) for r in self.per_run],
        }

    def merge(self, other: "SweepStats") -> None:
        """Accumulate another sweep's counters into this one (the serve
        pump aggregates per-batch stats into service totals)."""
        self.runs += other.runs
        self.cache_hits += other.cache_hits
        self.simulated += other.simulated
        self.failures += other.failures
        self.cache_write_failures += other.cache_write_failures
        self.cache_read_failures += other.cache_read_failures
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.pool_restarts += other.pool_restarts
        self.quarantined.extend(other.quarantined)
        self.journal_skips += other.journal_skips
        self.checkpoints_written += other.checkpoints_written
        self.checkpoint_resumes += other.checkpoint_resumes
        self.stale_tmp_reaped += other.stale_tmp_reaped
        self.journal_bad_lines += other.journal_bad_lines
        self.wall_time_s += other.wall_time_s
        self.jobs = max(self.jobs, other.jobs)
        self.per_run.extend(other.per_run)

    def render(self) -> str:
        text = (
            f"[sweep] {self.runs} runs in {self.wall_time_s:.1f}s"
            f" (jobs={self.jobs}): {self.simulated} simulated,"
            f" {self.cache_hits} cache hits, {self.failures} failures"
        )
        if self.journal_skips:
            text += f", {self.journal_skips} resumed from journal"
        if self.checkpoints_written:
            text += f", {self.checkpoints_written} checkpoints written"
        if self.checkpoint_resumes:
            text += f", {self.checkpoint_resumes} checkpoint resumes"
        if self.stale_tmp_reaped:
            text += f", {self.stale_tmp_reaped} stale tmp files reaped"
        if self.journal_bad_lines:
            text += f", {self.journal_bad_lines} torn journal lines skipped"
        if self.retries:
            text += f", {self.retries} retries"
        if self.timeouts:
            text += f", {self.timeouts} timeouts"
        if self.pool_restarts:
            text += f", {self.pool_restarts} pool restarts"
        if self.quarantined:
            text += f", {len(self.quarantined)} quarantined"
        if self.cache_read_failures:
            text += f", {self.cache_read_failures} corrupt cache reads"
        if self.cache_write_failures:
            text += f", {self.cache_write_failures} cache writes failed"
        return text

    def detail(self) -> str:
        """Per-run wall times, slowest first, plus the quarantine list."""
        lines = [self.render()]
        for label, seconds, status in sorted(self.per_run, key=lambda r: -r[1]):
            lines.append(f"  {label:<28} {seconds:8.3f}s  {status}")
        if self.quarantined:
            lines.append("quarantined (repeated worker crashes):")
            for label in self.quarantined:
                lines.append(f"  {label}")
        return "\n".join(lines)


class SweepError(RuntimeError):
    """A strict sweep had failing specs (carried in :attr:`failures`)."""

    def __init__(self, failures: List[RunOutcome]):
        self.failures = failures
        summary = "; ".join(
            f"{o.spec.label}: {o.error_type}" for o in failures[:5]
        )
        extra = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
        super().__init__(f"{len(failures)} run(s) failed: {summary}{extra}")


# ---------------------------------------------------------------------------
# Defaults (set by the CLI / benchmark conftest)
# ---------------------------------------------------------------------------

_defaults = {
    "jobs": 1,
    "use_cache": True,
    "cache_dir": None,
    "timeout_s": 0.0,
    "max_retries": 0,
    "resume": None,
    "checkpoint_interval_cycles": 0,
    "max_cycles": 0,
}

_last_sweep: Optional[SweepStats] = None


def configure(
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    timeout_s: Optional[float] = None,
    max_retries: Optional[int] = None,
    resume: Optional[Union[bool, str]] = None,
    checkpoint_interval_cycles: Optional[int] = None,
    max_cycles: Optional[int] = None,
) -> None:
    """Set process-wide defaults for subsequent sweeps."""
    if jobs is not None:
        _defaults["jobs"] = max(1, int(jobs))
    if use_cache is not None:
        _defaults["use_cache"] = bool(use_cache)
    if cache_dir is not None:
        _defaults["cache_dir"] = cache_dir
    if timeout_s is not None:
        _defaults["timeout_s"] = max(0.0, float(timeout_s))
    if max_retries is not None:
        _defaults["max_retries"] = max(0, int(max_retries))
    if resume is not None:
        _defaults["resume"] = resume or None
    if checkpoint_interval_cycles is not None:
        _defaults["checkpoint_interval_cycles"] = max(0, int(checkpoint_interval_cycles))
    if max_cycles is not None:
        _defaults["max_cycles"] = max(0, int(max_cycles))


def default_jobs() -> int:
    return int(_defaults["jobs"])


def cache_enabled() -> bool:
    return bool(_defaults["use_cache"])


def resolve_cache_dir(cache_dir: Optional[str] = None) -> str:
    return (
        cache_dir
        or _defaults["cache_dir"]
        or os.environ.get("REPRO_CACHE_DIR")
        or DEFAULT_CACHE_DIR
    )


def last_sweep_stats() -> Optional[SweepStats]:
    """Stats of the most recent sweep in this process."""
    return _last_sweep


def supports_fork() -> bool:
    return "fork" in get_all_start_methods()


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------

_fingerprint_memo: Dict[Tuple[str, str], str] = {}
_code_fingerprint_memo: Optional[str] = None


def _workload_fingerprint(abbr: str, scale: str) -> str:
    """Hash of the assembled kernel program and launch geometry."""
    key = (abbr, scale)
    if key not in _fingerprint_memo:
        wl = build_workload(abbr, scale)
        h = hashlib.sha256()
        h.update(f"{wl.abbr}|{wl.scale}|{wl.tb_dim}|{wl.dimensionality}".encode())
        lc = wl.launch
        h.update(
            f"|grid={tuple(lc.grid_dim)}|block={tuple(lc.block_dim)}"
            f"|warp={lc.warp_size}".encode()
        )
        h.update(f"|shared={wl.program.shared_words}|params={wl.program.params}".encode())
        for inst in wl.program.instructions:
            h.update(f"{inst.pc}:{inst}:{inst.target_pc}\n".encode())
        _fingerprint_memo[key] = h.hexdigest()
    return _fingerprint_memo[key]


def code_fingerprint() -> str:
    """Hash of every source file in the ``repro`` package.

    Any edit to the simulator, compiler pass or workloads changes this
    fingerprint, so cached results can never outlive the code that
    produced them — the versioned-invalidation guarantee.
    """
    global _code_fingerprint_memo
    if _code_fingerprint_memo is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                h.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    h.update(fh.read())
        _code_fingerprint_memo = h.hexdigest()
    return _code_fingerprint_memo


def cache_key(spec: RunSpec) -> str:
    """Deterministic content hash identifying one run's inputs.

    The run itself is identified *only* by its canonical
    :class:`RunConfig` serialization: two specs share a key iff their
    canonical dicts are equal (plus the cache version and the code /
    program fingerprints that scope every key).  The execution policy is
    stripped first — timeouts and retry budgets shape *how* a run
    executes, never what it computes.
    """
    run = spec.to_run_config().to_dict()
    run.pop("policy", None)
    parts = {
        "cache_version": CACHE_VERSION,
        "code": code_fingerprint(),
        "program": _workload_fingerprint(spec.abbr, spec.scale),
        "run": run,
    }
    blob = json.dumps(parts, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


#: leading hex chars of the cache key that name an entry's shard
#: directory (256 shards keeps per-directory listings short even for
#: service-scale stores; see DESIGN §4g).
CACHE_SHARD_CHARS = 2

#: shard directories are exactly this: short lowercase-hex names
_SHARD_DIR_RE = re.compile(r"^[0-9a-f]{%d}$" % CACHE_SHARD_CHARS)


def cache_shard(key: str) -> str:
    """Shard directory name for one cache key (its hex prefix)."""
    return key[:CACHE_SHARD_CHARS]


def _cache_slug(spec: RunSpec) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", f"{spec.abbr}-{spec.config_name}-{spec.scale}")


def cache_path(spec: RunSpec, key: str, cache_dir: str) -> str:
    """Canonical (sharded) location of one cache entry."""
    return os.path.join(
        cache_dir, cache_shard(key), f"{_cache_slug(spec)}-{key[:16]}.pkl"
    )


def legacy_cache_path(spec: RunSpec, key: str, cache_dir: str) -> str:
    """Pre-shard flat location (read-only migration path)."""
    return os.path.join(cache_dir, f"{_cache_slug(spec)}-{key[:16]}.pkl")


def checkpoint_path(spec: RunSpec, key: str, cache_dir: str) -> str:
    """On-disk location of one spec's in-flight simulation checkpoint.

    Checkpoints live next to the spec's cache entry (same shard, same
    slug/key naming, ``.ckpt`` suffix), so the spec-identity guarantees
    of :func:`cache_key` carry over: a resumed attempt can only ever
    pick up a checkpoint written for the exact same run inputs.
    """
    return os.path.join(
        cache_dir, cache_shard(key), f"{_cache_slug(spec)}-{key[:16]}.ckpt"
    )


def _cache_load(path: str, key: str) -> Tuple[Optional[object], str]:
    """``(result, status)`` with status ``"hit"``, ``"miss"`` or
    ``"corrupt"``.

    A missing file or a key mismatch (version skew, foreign entry) is a
    plain miss; a file that exists but cannot be unpickled is corruption
    and is reported so the sweep can count and warn about it.  Only the
    open/unpickle step is guarded — and only with the exception types
    unpickling garbage is documented to raise — so programming errors in
    our own payload handling are never masked.
    """
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (FileNotFoundError, NotADirectoryError):
        return None, "miss"  # no entry (possibly no cache dir at all)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return None, "corrupt"
    if not isinstance(payload, dict) or "result" not in payload:
        return None, "corrupt"
    if payload.get("key") != key:
        return None, "miss"
    return payload["result"], "hit"


def cache_lookup(spec: RunSpec, key: str, cache_dir: str) -> Tuple[Optional[object], str]:
    """Shard-aware cache probe: ``(result, status)``.

    The sharded path is authoritative; on a miss there the pre-shard
    flat location is consulted so stores written by older code keep
    serving hits.  A flat hit is promoted — rewritten at the sharded
    path and unlinked from the flat one — so the migration converges as
    entries are touched.  This is the one read path both the sweep layer
    and the serving front end (:mod:`repro.serve.store`) go through.
    """
    path = cache_path(spec, key, cache_dir)
    result, status = _cache_load(path, key)
    if status != "miss":
        return result, status
    legacy = legacy_cache_path(spec, key, cache_dir)
    result, legacy_status = _cache_load(legacy, key)
    if legacy_status == "hit":
        if _cache_store(path, key, result):
            try:
                os.unlink(legacy)
            except OSError:
                pass
        return result, "hit"
    if legacy_status == "corrupt":
        return None, "corrupt"
    return None, "miss"


#: temp-file suffix patterns of the two atomic writers: cache entries
#: (:func:`_cache_store`) and simulation checkpoints
#: (:func:`repro.timing.checkpoint.write_checkpoint`)
_TMP_RE = re.compile(r"\.(?:pkl|ckpt)\.tmp\.\d+$")

#: tmp files older than this are considered leaked by a crashed sweep
STALE_TMP_AGE_S = 3600.0


def _cache_store(path: str, key: str, result, label: Optional[str] = None) -> bool:
    """Write one cache entry atomically; returns False on failure.

    Caching is best-effort — the run itself already succeeded — but
    failures are reported to the caller so a read-only or full cache
    directory does not silently degrade every sweep to 0% hit rate.
    """
    if label is not None and faultlib.fails_store(label):
        return False  # injected OSError semantics
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = pickle.dumps({"key": key, "result": result})
        if label is not None and faultlib.corrupts_store(label):
            payload = faultlib.CORRUPT_BYTES  # injected silent corruption
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)  # atomic: concurrent sweeps never see partial files
        return True
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return False


def _cache_dirs(directory: str) -> List[str]:
    """The flat root plus every shard subdirectory — the complete set of
    places maintenance must look (flat entries predate sharding)."""
    dirs = [directory]
    try:
        names = os.listdir(directory)
    except OSError:
        return dirs
    for name in sorted(names):
        sub = os.path.join(directory, name)
        if _SHARD_DIR_RE.match(name) and os.path.isdir(sub):
            dirs.append(sub)
    return dirs


def reap_stale_tmp(cache_dir: Optional[str] = None, max_age_s: float = STALE_TMP_AGE_S) -> int:
    """Remove ``*.pkl.tmp.<pid>`` / ``*.ckpt.tmp.<pid>`` files leaked by
    crashed sweeps, in the flat root and in every shard directory.

    A live sweep's tmp file exists only for the instant between write
    and rename, so anything older than ``max_age_s`` is garbage.
    (Completed ``.ckpt`` files themselves are pruned when their spec's
    result lands, and kept on failure as resume/debug material.)
    Returns the number of files removed.
    """
    directory = resolve_cache_dir(cache_dir)
    removed = 0
    if not os.path.isdir(directory):
        return 0
    now = time.time()
    for subdir in _cache_dirs(directory):
        try:
            names = os.listdir(subdir)
        except OSError:
            continue
        for name in names:
            if not _TMP_RE.search(name):
                continue
            path = os.path.join(subdir, name)
            try:
                if now - os.path.getmtime(path) >= max_age_s:
                    os.unlink(path)
                    removed += 1
            except OSError:
                pass
    return removed


def clear_cache(cache_dir: Optional[str] = None) -> int:
    """Delete every cache entry — sharded and legacy flat alike —
    including simulation checkpoints and leaked ``*.tmp.<pid>`` files
    from crashed sweeps; returns the number of files removed (emptied
    shard directories are pruned but not counted)."""
    directory = resolve_cache_dir(cache_dir)
    removed = 0
    if not os.path.isdir(directory):
        return 0
    for subdir in _cache_dirs(directory):
        try:
            names = os.listdir(subdir)
        except OSError:
            continue
        for name in names:
            if (
                name.endswith(".pkl")
                or name.endswith(".ckpt")
                or name.endswith(".deadlock.json")
                or _TMP_RE.search(name)
            ):
                try:
                    os.unlink(os.path.join(subdir, name))
                    removed += 1
                except OSError:
                    pass
        if subdir != directory:
            try:
                os.rmdir(subdir)  # only succeeds when emptied
            except OSError:
                pass
    return removed


# ---------------------------------------------------------------------------
# Resume journal
# ---------------------------------------------------------------------------


def load_journal(path: str, stats: Optional[SweepStats] = None) -> Dict[str, dict]:
    """Parse an append-only sweep journal into ``{cache key: last entry}``.

    Unreadable lines (a kill can truncate the final line mid-write) are
    skipped — a journal is an optimization, never a source of truth; the
    result payloads themselves live in the cache.  Skips are not silent:
    each load warns once with the count, and with a ``stats`` object
    they are tallied into ``journal_bad_lines``.
    """
    entries: Dict[str, dict] = {}
    bad_lines = 0
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    bad_lines += 1
                    continue
                key = entry.get("key") if isinstance(entry, dict) else None
                if key:
                    entries[key] = entry
    except OSError:
        return {}
    if bad_lines:
        if stats is not None:
            stats.journal_bad_lines += bad_lines
        warnings.warn(
            f"resume journal {path!r} had {bad_lines} unparseable "
            f"line{'' if bad_lines == 1 else 's'} (torn write?); skipped",
            RuntimeWarning,
            stacklevel=2,
        )
    return entries


def append_journal(path: str, entry: dict, fsync: bool = False) -> bool:
    """Append one outcome line; best-effort, returns False on failure.

    With ``fsync`` (``ExecPolicy.journal_fsync``) the record is flushed
    and fsynced before the call returns, so a journal line survives
    power loss — not just process death — at the cost of one disk
    round-trip per record.
    """
    try:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        return True
    except OSError:
        return False


# ---------------------------------------------------------------------------
# Worker entrypoint
# ---------------------------------------------------------------------------


def _build_runner(spec: RunSpec) -> WorkloadRunner:
    """Reconstruct the substrate for one spec (test seam)."""
    return WorkloadRunner(build_workload(spec.abbr, spec.scale), spec.gpu_config)


def _execute_spec(
    spec: RunSpec, checkpoint: Optional[CheckpointPlan] = None
) -> Union[RunResult, FunctionalResult]:
    runner = _build_runner(spec)
    if spec.config_name == FUNCTIONAL:
        trace = runner.functional_trace()
        return FunctionalResult(
            levels=redundancy_levels(trace),
            taxonomy=taxonomy_breakdown(trace),
            dimensionality=runner.workload.dimensionality,
        )
    return runner.run(spec.config_name, spec.darsie_config, checkpoint=checkpoint)


def _worker(
    spec: RunSpec,
    attempt: int = 1,
    in_child: bool = False,
    ckpt: Optional[Tuple[str, int, int]] = None,
) -> tuple:
    """Run one spec, capturing any failure as data (never raises).

    An injected ``crash`` fault is the exception to "never raises": in a
    pool worker it is a genuine ``os._exit``, which no ``except`` sees.

    ``ckpt`` is the checkpoint/budget triple ``(path, interval_cycles,
    max_cycles)`` from the spec's :class:`~repro.config.ExecPolicy` —
    plain data, so it crosses the process boundary like the spec does;
    the :class:`CheckpointPlan` (with its fault-hook callback) is built
    here, inside the worker.  The trailing payload element reports what
    the plan observed, on success and failure alike: a checkpoint
    written just before a crash must still be counted.
    """
    start = time.perf_counter()
    plan: Optional[CheckpointPlan] = None
    if ckpt is not None:
        path, interval, max_cycles = ckpt

        def on_write(written: int) -> None:
            faultlib.during_simulation(
                spec.label, attempt, in_child=in_child, checkpoints_written=written
            )

        plan = CheckpointPlan(
            path=path,
            interval_cycles=interval,
            max_cycles=max_cycles,
            on_write=on_write,
        )

    def meta() -> dict:
        if plan is None:
            return {}
        return {
            "checkpoints_written": plan.written,
            "checkpoint_resumed": plan.resumed,
        }

    try:
        faultlib.before_execute(spec.label, attempt, in_child=in_child)
        result = _execute_spec(spec, checkpoint=plan)
        return ("ok", result, time.perf_counter() - start, meta())
    except Exception as exc:
        dump = getattr(exc, "dump", None)
        if dump is not None and ckpt is not None:
            # Persist the watchdog's diagnostic next to the checkpoint
            # so CI can upload both as failure artifacts.
            try:
                parent = os.path.dirname(ckpt[0])
                if parent:
                    os.makedirs(parent, exist_ok=True)
                with open(f"{ckpt[0]}.deadlock.json", "w") as fh:
                    json.dump({"label": spec.label, "dump": dump}, fh,
                              indent=2, sort_keys=True)
            except OSError:
                pass  # diagnostics must never mask the real failure
        return (
            "err",
            type(exc).__name__,
            f"{exc}\n{traceback.format_exc()}",
            time.perf_counter() - start,
            meta(),
        )


def _outcome_from_payload(spec: RunSpec, payload: tuple, attempts: int = 1) -> RunOutcome:
    if payload[0] == "ok":
        _, result, elapsed = payload[:3]
        meta = payload[3] if len(payload) > 3 else {}
        return RunOutcome(
            spec=spec, result=result, wall_time_s=elapsed, attempts=attempts,
            checkpoints_written=meta.get("checkpoints_written", 0),
            checkpoint_resumed=meta.get("checkpoint_resumed", False),
        )
    _, error_type, error, elapsed = payload[:4]
    meta = payload[4] if len(payload) > 4 else {}
    return RunOutcome(
        spec=spec, result=None, error=error, error_type=error_type,
        wall_time_s=elapsed, attempts=attempts,
        checkpoints_written=meta.get("checkpoints_written", 0),
        checkpoint_resumed=meta.get("checkpoint_resumed", False),
    )


# ---------------------------------------------------------------------------
# Sweep execution
# ---------------------------------------------------------------------------


@dataclass
class _Attempt:
    """Mutable scheduling state of one pending spec."""

    index: int
    spec: RunSpec
    key: Optional[str]
    path: Optional[str]
    policy: ExecPolicy
    #: checkpoint/budget triple ``(ckpt path, interval_cycles,
    #: max_cycles)``; None when the policy enables neither
    ckpt: Optional[Tuple[str, int, int]] = None
    attempt: int = 1
    #: hard worker deaths attributed to this spec (quarantine counter)
    crashes: int = 0
    #: the spec crashed or hung before — schedule it alone so a repeat
    #: offense cannot take innocent co-flying specs down with it
    suspect: bool = False
    #: earliest monotonic time the next attempt may be submitted
    not_before: float = 0.0
    #: previous backoff delay (decorrelated-jitter state)
    backoff_s: float = 0.0
    timed_out: bool = False


def _failure_class(error_type: Optional[str]) -> str:
    if error_type == TIMEOUT_ERROR_TYPE:
        return "timeout"
    if error_type in CRASH_ERROR_TYPES:
        return "crash"
    if error_type in TRANSIENT_ERROR_TYPES:
        return "transient"
    return "permanent"


def _backoff_delay(item: _Attempt) -> float:
    """Exponential backoff with decorrelated jitter, deterministically
    seeded from (label, attempt) so sweeps stay reproducible."""
    base = item.policy.backoff_base_s
    if base <= 0.0:
        return 0.0
    rng = random.Random(zlib.crc32(f"{item.spec.label}#{item.attempt}".encode()))
    prev = item.backoff_s or base
    delay = min(item.policy.backoff_cap_s, rng.uniform(base, max(base, prev * 3.0)))
    item.backoff_s = delay
    return delay


def _dispose_failure(
    item: _Attempt,
    outcome: RunOutcome,
    stats: SweepStats,
    record: Callable[[_Attempt, RunOutcome], None],
) -> bool:
    """Handle one failed attempt: retry (True) or record it (False)."""
    kind = _failure_class(outcome.error_type)
    if kind == "crash":
        item.crashes += 1
        item.suspect = True
        if item.crashes >= item.policy.quarantine_after:
            outcome.quarantined = True
            stats.quarantined.append(item.spec.label)
            record(item, outcome)
            return False
    elif kind == "timeout":
        item.suspect = True
        if not item.timed_out:
            item.timed_out = True
            stats.timeouts += 1
    elif kind == "permanent":
        record(item, outcome)
        return False
    if item.attempt > item.policy.max_retries:
        record(item, outcome)
        return False
    delay = _backoff_delay(item)
    item.attempt += 1
    item.not_before = time.monotonic() + delay
    stats.retries += 1
    return True


def _run_serial(
    pending: Sequence[_Attempt],
    stats: SweepStats,
    record: Callable[[_Attempt, RunOutcome], None],
) -> None:
    """In-process execution with the same retry/quarantine taxonomy.

    Wall-clock timeouts are not enforced here — a single process cannot
    preempt its own simulation; injected crashes surface as
    :class:`~repro.harness.faults.WorkerCrashed` instead of killing the
    sweep.
    """
    for item in pending:
        while True:
            payload = _worker(item.spec, item.attempt, in_child=False, ckpt=item.ckpt)
            outcome = _outcome_from_payload(item.spec, payload, attempts=item.attempt)
            if outcome.ok:
                record(item, outcome)
                break
            if not _dispose_failure(item, outcome, stats, record):
                break
            wait_s = item.not_before - time.monotonic()
            if wait_s > 0:
                time.sleep(wait_s)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: cancel queued work, kill live workers.

    ``shutdown`` alone would block on a hung worker; reaching into
    ``_processes`` is the only way the stdlib exposes the worker PIDs,
    so the access is defensive.
    """
    processes = list(getattr(pool, "_processes", {}).values() or [])
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in processes:
        try:
            proc.terminate()
        except Exception:
            pass


def _run_pool(
    pending: Sequence[_Attempt],
    jobs: int,
    stats: SweepStats,
    record: Callable[[_Attempt, RunOutcome], None],
) -> None:
    """Process-pool execution with timeouts, retries and pool recovery.

    The scheduler keeps a work deque and an in-flight map.  Three fault
    paths reshape it:

    - a future that raises ``BrokenProcessPool`` means a worker died
      hard; every in-flight spec is a *suspect* (the stdlib cannot say
      which one killed the pool), so each gets a crash strike and is
      resubmitted **alone** — the true poison spec crashes again solo,
      collects strikes until quarantine, and the innocents fly clean;
    - a future that outlives its spec's wall-clock budget is recorded
      (or retried) as ``Timeout``; the hung worker cannot be cancelled,
      so the pool is torn down and rebuilt and the other in-flight specs
      are resubmitted without consuming one of their attempts;
    - ``KeyboardInterrupt`` propagates, and the ``finally`` cancels
      queued futures and terminates workers so nothing leaks.
    """
    ctx = get_context("fork")
    width = min(jobs, len(pending))

    def new_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=width, mp_context=ctx)

    pool = new_pool()
    queue: deque = deque(pending)
    # future -> (item, deadline, pool it was submitted to).  The pool
    # reference distinguishes a *fresh* break from the echo of an old
    # one: when a pool dies, every future it held surfaces
    # BrokenProcessPool, and only the first such future per pool should
    # trigger a rebuild.
    inflight: Dict[object, Tuple[_Attempt, Optional[float], ProcessPoolExecutor]] = {}

    def submittable() -> Optional[_Attempt]:
        now = time.monotonic()
        if any(it.suspect for it, _dl, _p in inflight.values()):
            return None  # a suspect flies alone
        for item in queue:
            if item.not_before > now:
                continue
            if item.suspect and inflight:
                continue
            return item
        return None

    def submit(item: _Attempt) -> None:
        queue.remove(item)
        deadline = None
        if item.policy.timeout_s > 0:
            deadline = time.monotonic() + item.policy.timeout_s
        future = pool.submit(_worker, item.spec, item.attempt, True, item.ckpt)
        inflight[future] = (item, deadline, pool)

    def requeue(item: _Attempt) -> None:
        queue.appendleft(item)

    def rebuild() -> None:
        nonlocal pool
        _terminate_pool(pool)
        pool = new_pool()
        stats.pool_restarts += 1

    try:
        while queue or inflight:
            item = submittable()
            while item is not None and len(inflight) < width:
                submit(item)
                item = submittable()

            if not inflight:
                # Everything runnable is backing off; sleep to the
                # earliest not-before and try again.
                now = time.monotonic()
                wait_s = min((it.not_before for it in queue), default=now) - now
                if wait_s > 0:
                    time.sleep(min(wait_s, 0.5))
                continue

            now = time.monotonic()
            horizons = [dl for _it, dl, _p in inflight.values() if dl is not None]
            horizons += [it.not_before for it in queue if it.not_before > now]
            wait_s = None
            if horizons:
                wait_s = max(0.01, min(horizons) - now)
            done, _ = futures_wait(
                set(inflight), timeout=wait_s, return_when=FIRST_COMPLETED
            )

            broken = False
            for future in done:
                entry = inflight.pop(future, None)
                if entry is None:
                    continue
                item, _deadline, future_pool = entry
                try:
                    payload = future.result()
                except Exception as exc:
                    # The child died hard (segfault, OOM kill, os._exit):
                    # synthesize a crash payload and let the retry /
                    # quarantine taxonomy dispose of it.
                    if isinstance(exc, BrokenProcessPool) and future_pool is pool:
                        broken = True
                    payload = (
                        "err",
                        type(exc).__name__,
                        f"worker process died: {exc!r}",
                        0.0,
                    )
                outcome = _outcome_from_payload(item.spec, payload, attempts=item.attempt)
                if outcome.ok:
                    record(item, outcome)
                elif _dispose_failure(item, outcome, stats, record):
                    requeue(item)
            if broken:
                # The executor is unusable after a hard death; any
                # still-inflight futures of the dead pool are already
                # done (the break fails them all) and drain on the next
                # pass without re-triggering a rebuild.
                rebuild()

            # Wall-clock budgets: a hung worker cannot be cancelled, so
            # a deadline breach costs the whole pool — kill it, rebuild,
            # and resubmit the innocent in-flight specs as-is.
            now = time.monotonic()
            overdue = [
                (future, item)
                for future, (item, deadline, _p) in inflight.items()
                if deadline is not None and now > deadline and not future.done()
            ]
            if overdue:
                overdue_futures = {future for future, _ in overdue}
                survivors = [
                    item
                    for future, (item, _dl, _p) in inflight.items()
                    if future not in overdue_futures
                ]
                inflight.clear()
                rebuild()
                for future, item in overdue:
                    outcome = RunOutcome(
                        spec=item.spec,
                        result=None,
                        error=(
                            f"run exceeded its wall-clock budget of "
                            f"{item.policy.timeout_s:.1f}s (attempt {item.attempt})"
                        ),
                        error_type=TIMEOUT_ERROR_TYPE,
                        wall_time_s=item.policy.timeout_s,
                        attempts=item.attempt,
                    )
                    if _dispose_failure(item, outcome, stats, record):
                        requeue(item)
                for item in survivors:
                    requeue(item)  # same attempt: their work was collateral
    finally:
        _terminate_pool(pool)


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    strict: bool = False,
    policy: Optional[ExecPolicy] = None,
    resume: Optional[Union[bool, str]] = None,
) -> Tuple[List[RunOutcome], SweepStats]:
    """Execute specs across a process pool, consulting the result cache.

    Returns outcomes in spec order plus a :class:`SweepStats`.  With
    ``strict=True`` a :class:`SweepError` is raised *after* every spec
    has been attempted, so one failure never hides the others' results.

    ``policy`` supplies the sweep-wide :class:`ExecPolicy` (per-spec
    ``RunSpec.policy`` wins where set); ``resume`` names the append-only
    JSONL journal — outcomes are appended as they land, and specs whose
    last journal line is ``ok`` (and whose cached result is readable)
    are skipped.  ``resume=False`` disables the module-default journal
    for this sweep.

    A ``KeyboardInterrupt`` mid-sweep cancels queued work, terminates
    pool workers, and still flushes partial stats to
    :func:`last_sweep_stats` before propagating.
    """
    global _last_sweep
    jobs = max(1, int(jobs if jobs is not None else _defaults["jobs"]))
    caching = bool(_defaults["use_cache"] if use_cache is None else use_cache)
    directory = resolve_cache_dir(cache_dir)
    # .get(): tests monkeypatch _defaults with minimal dicts.
    resume_path = resume if resume is not None else _defaults.get("resume")
    resume_path = resume_path if isinstance(resume_path, str) and resume_path else None
    base_policy = policy or ExecPolicy(
        timeout_s=float(_defaults.get("timeout_s", 0.0)),
        max_retries=int(_defaults.get("max_retries", 0)),
        checkpoint_interval_cycles=int(_defaults.get("checkpoint_interval_cycles", 0)),
        max_cycles=int(_defaults.get("max_cycles", 0)),
    )

    start = time.perf_counter()
    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    stats = SweepStats(jobs=jobs)
    journal = load_journal(resume_path, stats) if resume_path else {}
    pending: List[_Attempt] = []
    write_failures = 0

    def record(item: _Attempt, outcome: RunOutcome) -> None:
        nonlocal write_failures
        if outcome.ok and not outcome.cache_hit and caching and item.path:
            if not _cache_store(item.path, item.key, outcome.result, item.spec.label):
                write_failures += 1
        stats.checkpoints_written += outcome.checkpoints_written
        if outcome.checkpoint_resumed:
            stats.checkpoint_resumes += 1
        if outcome.ok and item.ckpt is not None:
            # The landed result supersedes the in-flight checkpoint;
            # failed specs keep theirs as resume/debug material.
            try:
                os.unlink(item.ckpt[0])
            except OSError:
                pass
        outcomes[item.index] = outcome
        if resume_path:
            # Journal *after* the cache store: a journal line saying
            # "ok" must imply the result is already on disk.
            append_journal(
                resume_path,
                outcome.to_journal_dict(item.key),
                fsync=item.policy.journal_fsync,
            )

    if caching:
        stats.stale_tmp_reaped += reap_stale_tmp(directory)

    for i, spec in enumerate(specs):
        pol = spec.policy or base_policy
        checkpointing = (
            spec.config_name != FUNCTIONAL
            and (pol.checkpoint_interval_cycles > 0 or pol.max_cycles > 0)
        )
        key = cache_key(spec) if (caching or resume_path or checkpointing) else None
        path = cache_path(spec, key, directory) if caching else None
        ckpt = None
        if checkpointing and key:
            ckpt = (
                checkpoint_path(spec, key, directory),
                pol.checkpoint_interval_cycles,
                pol.max_cycles,
            )
        cached = None
        if caching:
            cached, status = cache_lookup(spec, key, directory)
            if status == "corrupt":
                stats.cache_read_failures += 1
        item = _Attempt(index=i, spec=spec, key=key, path=path,
                        policy=pol, ckpt=ckpt)
        if cached is not None:
            entry = journal.get(key) if key else None
            resumed = bool(entry and entry.get("ok"))
            outcome = RunOutcome(spec=spec, result=cached, cache_hit=True, resumed=resumed)
            record(item, outcome)
            continue
        pending.append(item)

    parallel_ok = jobs > 1 and len(pending) > 1 and supports_fork()
    try:
        if parallel_ok:
            _run_pool(pending, jobs, stats, record)
        else:
            _run_serial(pending, stats, record)
    finally:
        # Flush observability even when interrupted mid-sweep: partial
        # stats are what a resumed invocation reasons about.
        if stats.cache_read_failures:
            n = stats.cache_read_failures
            warnings.warn(
                f"result cache in {directory!r} had {n} corrupt "
                f"entr{'y' if n == 1 else 'ies'} (re-simulated; entries rewritten)",
                RuntimeWarning,
                stacklevel=2,
            )
        if write_failures:
            warnings.warn(
                f"result cache in {directory!r} is not writable: "
                f"{write_failures} entr{'y' if write_failures == 1 else 'ies'} "
                "could not be stored (future sweeps will re-simulate)",
                RuntimeWarning,
                stacklevel=2,
            )
        final = [o for o in outcomes if o is not None]
        stats.runs = len(final)
        stats.cache_hits = sum(1 for o in final if o.cache_hit)
        stats.simulated = sum(1 for o in final if o.ok and not o.cache_hit)
        stats.failures = sum(1 for o in final if not o.ok)
        stats.cache_write_failures = write_failures
        stats.journal_skips = sum(1 for o in final if o.resumed)
        stats.wall_time_s = time.perf_counter() - start
        stats.jobs = jobs if parallel_ok else 1
        stats.per_run = [
            (
                o.spec.label,
                o.wall_time_s,
                ("resume" if o.resumed else "hit") if o.cache_hit
                else ("sim" if o.ok else "fail"),
            )
            for o in final
        ]
        _last_sweep = stats

    if strict:
        failing = [o for o in final if not o.ok]
        if failing:
            raise SweepError(failing)
    return final, stats


def sweep(
    abbrs: Sequence[str],
    configs: Sequence[str],
    scale: str = "small",
    gpu_config: Optional[GPUConfig] = None,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    strict: bool = True,
    policy: Optional[ExecPolicy] = None,
    resume: Optional[Union[bool, str]] = None,
) -> Tuple[Dict[Tuple[str, str], RunResult], SweepStats]:
    """Fan out the (workload × configuration) grid; returns keyed results."""
    specs = [
        RunSpec(abbr=a, config_name=c, scale=scale, gpu_config=gpu_config)
        for a in abbrs
        for c in configs
    ]
    outcomes, stats = run_specs(
        specs, jobs=jobs, use_cache=use_cache, strict=strict,
        policy=policy, resume=resume,
    )
    results = {
        (o.spec.abbr, o.spec.config_name): o.result for o in outcomes if o.ok
    }
    return results, stats


def functional_sweep(
    abbrs: Sequence[str],
    scale: str = "small",
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    strict: bool = True,
    policy: Optional[ExecPolicy] = None,
    resume: Optional[Union[bool, str]] = None,
) -> Tuple[Dict[str, FunctionalResult], SweepStats]:
    """Fan out the functional-trace analyses behind Figures 1 and 2."""
    specs = [RunSpec(abbr=a, config_name=FUNCTIONAL, scale=scale) for a in abbrs]
    outcomes, stats = run_specs(
        specs, jobs=jobs, use_cache=use_cache, strict=strict,
        policy=policy, resume=resume,
    )
    return {o.spec.abbr: o.result for o in outcomes if o.ok}, stats
