"""Experiment harness: one driver per paper table/figure.

- :mod:`repro.harness.runner` — builds workloads, runs them under named
  configurations (BASE / UV / DAC-IDEAL / DARSIE / variants) and
  verifies every run against its numpy oracle.
- :mod:`repro.harness.experiments` — ``figure1`` ... ``figure12``,
  ``table1`` ... ``table3``, ``area_estimate``, ``survey``: each returns
  a structured result with a ``render()`` text form printing the same
  rows/series the paper reports.
- :mod:`repro.harness.parallel` — process-pool fan-out of (workload,
  configuration) runs with an on-disk result cache and per-sweep
  observability (``RunSpec`` / ``run_specs`` / ``sweep``).
- :mod:`repro.harness.reporting` — plain-text table rendering.
"""

from repro.harness import experiments, parallel
from repro.harness.parallel import RunOutcome, RunSpec, SweepError, SweepStats, run_specs
from repro.harness.reporting import format_table
from repro.harness.runner import CONFIG_NAMES, RunResult, VerificationError, WorkloadRunner

__all__ = [
    "CONFIG_NAMES",
    "RunOutcome",
    "RunResult",
    "RunSpec",
    "SweepError",
    "SweepStats",
    "VerificationError",
    "WorkloadRunner",
    "experiments",
    "format_table",
    "parallel",
    "run_specs",
]
