"""Experiment harness: one driver per paper table/figure.

- :mod:`repro.harness.runner` — builds workloads, runs them under
  registry-declared variants (BASE / UV / DAC-IDEAL / DARSIE / ...)
  and verifies every run against its numpy oracle.
- :mod:`repro.harness.experiments` — ``figure1`` ... ``figure12``,
  ``table1`` ... ``table3``, ``area_estimate``, ``survey``: each returns
  a structured result with a ``render()`` text form printing the same
  rows/series the paper reports.
- :mod:`repro.harness.parallel` — process-pool fan-out of
  :class:`~repro.config.RunConfig`-described runs with an on-disk
  result cache, fault tolerance (timeouts, retries, pool recovery,
  quarantine, journal-based resume) and per-sweep observability
  (``RunSpec`` / ``run_specs`` / ``sweep``).
- :mod:`repro.harness.faults` — deterministic, seeded fault injection
  (:class:`~repro.harness.faults.FaultPlan`) used to prove the above.
- :mod:`repro.harness.chaos` — the ``python -m repro chaos`` soak that
  runs a sweep under an injected FaultPlan and asserts bit-identical
  results vs. a clean run.
- :mod:`repro.harness.reporting` — plain-text table rendering.
"""

from repro.harness import experiments, parallel
from repro.harness.parallel import RunOutcome, RunSpec, SweepError, SweepStats, run_specs
from repro.harness.reporting import format_table
from repro.harness.runner import RunResult, VerificationError, WorkloadRunner


def __getattr__(name: str):
    # Live view of the variant registry (late registrations included).
    if name == "CONFIG_NAMES":
        from repro.variants import REGISTRY

        return REGISTRY.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CONFIG_NAMES",
    "RunOutcome",
    "RunResult",
    "RunSpec",
    "SweepError",
    "SweepStats",
    "VerificationError",
    "WorkloadRunner",
    "experiments",
    "format_table",
    "parallel",
    "run_specs",
]
