"""Experiment harness: one driver per paper table/figure.

- :mod:`repro.harness.runner` — builds workloads, runs them under named
  configurations (BASE / UV / DAC-IDEAL / DARSIE / variants) and
  verifies every run against its numpy oracle.
- :mod:`repro.harness.experiments` — ``figure1`` ... ``figure12``,
  ``table1`` ... ``table3``, ``area_estimate``, ``survey``: each returns
  a structured result with a ``render()`` text form printing the same
  rows/series the paper reports.
- :mod:`repro.harness.reporting` — plain-text table rendering.
"""

from repro.harness.runner import CONFIG_NAMES, RunResult, WorkloadRunner
from repro.harness import experiments
from repro.harness.reporting import format_table

__all__ = ["CONFIG_NAMES", "RunResult", "WorkloadRunner", "experiments", "format_table"]
