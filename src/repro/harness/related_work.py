"""Table 3: comparison of DARSIE to related work.

A capability matrix, reproduced from the paper's Table 3, plus the
mapping onto what this codebase actually implements/models.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.harness.reporting import format_table

#: Capability rows of Table 3.
CAPABILITIES = (
    "Uniform Redundancy",
    "Affine Redundancy",
    "Unstructured Redundancy",
    "Min. Pipeline Modifications",
)

#: Technique -> capability flags, in the paper's column order.
TABLE3: Dict[str, Tuple[bool, bool, bool, bool]] = {
    "WIR [20]": (True, False, False, False),
    "G-Scalar [28]": (True, False, False, False),
    "UV [50]": (True, False, False, True),
    "GP-SIMT [19]": (True, True, False, False),
    "DAC [45]": (True, True, False, False),
    "DARSIE": (True, True, True, True),
}


def render_table3() -> str:
    headers = ["Capability"] + list(TABLE3)
    rows: List[List[str]] = []
    for i, cap in enumerate(CAPABILITIES):
        rows.append([cap] + ["yes" if TABLE3[t][i] else "" for t in TABLE3])
    return format_table(headers, rows, title="Table 3: Comparison of DARSIE to related work")


def darsie_covers_all() -> bool:
    """DARSIE is the only technique covering every capability."""
    full = [t for t, flags in TABLE3.items() if all(flags)]
    return full == ["DARSIE"]
