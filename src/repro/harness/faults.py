"""Deterministic, seeded fault injection for sweep execution.

The paper's evaluation sweeps are long multi-process batch jobs, and the
fault-tolerance machinery in :mod:`repro.harness.parallel` (timeouts,
retries, pool recovery, quarantine, resume) only earns trust if its
failure modes can be *provoked on demand and reproduced bit-for-bit*.
This module provides that provocation layer:

- a :class:`FaultPlan` — an immutable, JSON-serializable set of
  :class:`FaultRule` entries keyed by spec label and attempt number;
- deterministic construction: :func:`random_plan` derives a plan from a
  seed alone, so ``python -m repro chaos --seed 0`` injects the same
  faults on every machine;
- process-boundary transport: :func:`install` encodes the plan into the
  ``REPRO_FAULTS`` environment variable, so forked (or spawned) pool
  workers honor the same plan the parent installed.

Fault kinds
-----------
``crash``
    the worker dies hard (``os._exit``) — the pool sees a
    ``BrokenProcessPool``, exactly the segfault/OOM-kill signature.  In
    serial execution the same rule raises :class:`WorkerCrashed` instead
    (killing the only process would kill the sweep itself).
``hang``
    the worker sleeps for :attr:`FaultPlan.hang_s` — long enough to trip
    a configured per-spec timeout.
``transient``
    raises :class:`TransientFault` — the retryable-exception taxonomy
    class; a rule scoped to attempt 1 models a failure that a retry
    cures.
``permanent``
    raises :class:`PermanentFault` — never retried, recorded as a plain
    per-spec failure.
``corrupt-store``
    the result-cache write for the spec silently stores garbage bytes
    instead of a pickle — a later read must detect the corruption, count
    it, and fall back to a live run.
``store-oserror``
    the result-cache write raises ``OSError`` (read-only / full disk
    semantics) — counted in ``SweepStats.cache_write_failures``.
``sim-kill``
    the worker dies hard *mid-simulation*, immediately after writing a
    checkpoint (the :func:`during_simulation` hook fires from the
    runner's checkpoint callback) — the retry must resume from that
    checkpoint and still produce a bit-identical result.

Injection points live in :mod:`repro.harness.parallel`
(:func:`before_execute` in the worker, the two cache hooks in the
parent); this module itself never imports the harness, so there is no
import cycle.
"""

from __future__ import annotations

import json
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Environment variable carrying the JSON-encoded active plan across the
#: process boundary to pool workers.
FAULTS_ENV = "REPRO_FAULTS"

CRASH = "crash"
HANG = "hang"
TRANSIENT = "transient"
PERMANENT = "permanent"
CORRUPT_STORE = "corrupt-store"
STORE_OSERROR = "store-oserror"
SIM_KILL = "sim-kill"

#: Every fault kind, in the order :func:`random_plan` assigns them.
KINDS = (CRASH, HANG, TRANSIENT, PERMANENT, CORRUPT_STORE, STORE_OSERROR, SIM_KILL)

#: Exit status of an injected worker crash (distinctive in core dumps).
CRASH_EXIT_STATUS = 66


class TransientFault(RuntimeError):
    """An injected failure that a retry is expected to cure."""


class PermanentFault(RuntimeError):
    """An injected failure that no retry can cure."""


class WorkerCrashed(RuntimeError):
    """Serial-mode stand-in for a hard worker death.

    In a process pool an injected crash is a real ``os._exit`` and
    surfaces as ``BrokenProcessPool``; without a pool the same rule
    raises this instead, so the retry/quarantine taxonomy treats both
    paths identically.
    """


@dataclass(frozen=True)
class FaultRule:
    """One injected fault: a kind, a spec label, and the attempts it hits.

    ``attempts`` is a tuple of 1-based attempt numbers; empty means
    *every* attempt (a permanent fault).
    """

    kind: str
    label: str
    attempts: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {KINDS}")

    def fires(self, label: str, attempt: int) -> bool:
        if self.label != label:
            return False
        return not self.attempts or attempt in self.attempts

    def to_dict(self) -> dict:
        return {"kind": self.kind, "label": self.label, "attempts": list(self.attempts)}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(
            kind=data["kind"],
            label=data["label"],
            attempts=tuple(int(a) for a in data.get("attempts", ())),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of fault rules plus the hang duration."""

    rules: Tuple[FaultRule, ...] = ()
    #: how long a ``hang`` fault sleeps (a timeout should fire first)
    hang_s: float = 30.0
    #: provenance only — the seed :func:`random_plan` was built from
    seed: Optional[int] = None

    def fires(self, kind: str, label: str, attempt: int = 1) -> bool:
        return any(r.kind == kind and r.fires(label, attempt) for r in self.rules)

    def labels_for(self, kind: str) -> List[str]:
        return [r.label for r in self.rules if r.kind == kind]

    def to_json(self) -> str:
        return json.dumps(
            {
                "rules": [r.to_dict() for r in self.rules],
                "hang_s": self.hang_s,
                "seed": self.seed,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            rules=tuple(FaultRule.from_dict(r) for r in data.get("rules", ())),
            hang_s=float(data.get("hang_s", 30.0)),
            seed=data.get("seed"),
        )

    def describe(self) -> str:
        if not self.rules:
            return "fault plan: empty"
        lines = [f"fault plan (seed={self.seed}, hang_s={self.hang_s}):"]
        for r in self.rules:
            when = f"attempts {list(r.attempts)}" if r.attempts else "every attempt"
            lines.append(f"  {r.kind:<14} {r.label:<28} {when}")
        return "\n".join(lines)

    @contextmanager
    def active(self) -> Iterator["FaultPlan"]:
        """Install the plan for the dynamic extent of a ``with`` block."""
        install(self)
        try:
            yield self
        finally:
            uninstall()


def random_plan(
    labels: Sequence[str],
    seed: int = 0,
    hang_s: float = 30.0,
    kinds: Sequence[str] = KINDS,
) -> FaultPlan:
    """A randomized-but-seeded plan assigning each kind a distinct label.

    Labels are shuffled with ``random.Random(seed)`` (after sorting, so
    the input order never matters) and the kinds are dealt out in
    :data:`KINDS` order; with fewer labels than kinds the trailing kinds
    are dropped.  ``crash`` and ``permanent`` rules fire on every
    attempt; ``transient`` and ``sim-kill`` fire on attempt 1 only (a
    resumed retry must be allowed to finish) and ``hang`` on attempts
    1–2 (attempt 1 can be lost as collateral of a pool break, and the
    soak wants at least one guaranteed timeout), so a retry cures each.
    """
    pool = sorted(set(labels))
    rng = random.Random(seed)
    rng.shuffle(pool)
    rules: List[FaultRule] = []
    for kind, label in zip(kinds, pool):
        attempts: Tuple[int, ...] = ()
        if kind in (TRANSIENT, SIM_KILL):
            attempts = (1,)
        elif kind == HANG:
            attempts = (1, 2)
        rules.append(FaultRule(kind=kind, label=label, attempts=attempts))
    return FaultPlan(rules=tuple(rules), hang_s=hang_s, seed=seed)


# ---------------------------------------------------------------------------
# Activation: module global + environment variable for pool workers
# ---------------------------------------------------------------------------

_active: Optional[FaultPlan] = None
_env_memo: Dict[str, FaultPlan] = {}


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` in this process and export it to child workers."""
    global _active
    _active = plan
    os.environ[FAULTS_ENV] = plan.to_json()


def uninstall() -> None:
    global _active
    _active = None
    os.environ.pop(FAULTS_ENV, None)


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, if any — env-var decoded in worker processes."""
    if _active is not None:
        return _active
    encoded = os.environ.get(FAULTS_ENV)
    if not encoded:
        return None
    if encoded not in _env_memo:
        _env_memo.clear()  # plans change rarely; never hold stale ones
        _env_memo[encoded] = FaultPlan.from_json(encoded)
    return _env_memo[encoded]


# ---------------------------------------------------------------------------
# Injection points (called by repro.harness.parallel)
# ---------------------------------------------------------------------------


def before_execute(label: str, attempt: int, in_child: bool) -> None:
    """Worker-side hook: hang, crash, or raise per the active plan.

    Order matters: a ``hang`` sleeps first (so a hang+crash rule pair
    models a wedged-then-killed worker), then ``crash`` kills the
    process, then the exception kinds raise.
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.fires(HANG, label, attempt):
        time.sleep(plan.hang_s)
    if plan.fires(CRASH, label, attempt):
        if in_child:
            os._exit(CRASH_EXIT_STATUS)  # a real hard death, not an exception
        raise WorkerCrashed(f"injected crash for {label} (attempt {attempt})")
    if plan.fires(TRANSIENT, label, attempt):
        raise TransientFault(f"injected transient fault for {label} (attempt {attempt})")
    if plan.fires(PERMANENT, label, attempt):
        raise PermanentFault(f"injected permanent fault for {label} (attempt {attempt})")


def during_simulation(
    label: str, attempt: int, in_child: bool, checkpoints_written: int
) -> None:
    """Worker-side hook fired right after each checkpoint write.

    A ``sim-kill`` rule kills the worker the first time a checkpoint
    exists (``checkpoints_written == 1``), modelling a crash in the
    middle of a long simulation at a moment a resume can survive; later
    writes are left alone so the resumed attempt runs to completion.
    """
    plan = active_plan()
    if plan is None or checkpoints_written != 1:
        return
    if plan.fires(SIM_KILL, label, attempt):
        if in_child:
            os._exit(CRASH_EXIT_STATUS)  # a real hard death, not an exception
        raise WorkerCrashed(
            f"injected mid-simulation kill for {label} (attempt {attempt})"
        )


def corrupts_store(label: str) -> bool:
    """Parent-side hook: should this spec's cache write store garbage?"""
    plan = active_plan()
    return plan is not None and plan.fires(CORRUPT_STORE, label)


def fails_store(label: str) -> bool:
    """Parent-side hook: should this spec's cache write raise ``OSError``?"""
    plan = active_plan()
    return plan is not None and plan.fires(STORE_OSERROR, label)


#: Bytes an injected ``corrupt-store`` writes: a valid pickle protocol
#: prefix followed by junk, so the reader fails *inside* unpickling.
CORRUPT_BYTES = b"\x80\x04injected-cache-corruption"


__all__ = [
    "FAULTS_ENV",
    "KINDS",
    "CRASH",
    "HANG",
    "TRANSIENT",
    "PERMANENT",
    "CORRUPT_STORE",
    "STORE_OSERROR",
    "SIM_KILL",
    "CORRUPT_BYTES",
    "CRASH_EXIT_STATUS",
    "FaultPlan",
    "FaultRule",
    "TransientFault",
    "PermanentFault",
    "WorkerCrashed",
    "active_plan",
    "before_execute",
    "during_simulation",
    "corrupts_store",
    "fails_store",
    "install",
    "random_plan",
    "uninstall",
]
