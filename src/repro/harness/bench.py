"""Perf-regression bench for the cycle-level timing simulator.

``python -m repro bench`` times :func:`repro.timing.simulate` — and only
``simulate`` — over the Figure-8 (workload × configuration) matrix and
writes the measurements to ``BENCH_timing.json``.  Workload construction,
the compiler analysis, the DAC profile and the output-oracle check all
happen *outside* the timed region, so the numbers track the simulator's
hot loops and nothing else.

The simulator is deterministic, so the simulated cycle count of every
entry is recorded next to its wall time: a bench result whose cycle
counts differ from the baseline is comparing two different simulations,
not a perf change, and the gate reports that separately.

Comparison model
----------------
``compare()`` checks a freshly measured report against a committed
baseline file and fails when the wall-clock time regresses by more than
``tolerance`` (a ratio; 2.0 means "twice as slow").  The gate is a
ratio, not an absolute time, so it tolerates machine-to-machine speed
differences; it cannot, however, distinguish a slow machine from a slow
simulator — which is why the default tolerance is generous and the CI
job treats the bench as a smoke test, not a microbenchmark.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional, Sequence

from repro.config import DEFAULT_GPU, RunConfig, gpu_from_dict, gpu_to_dict
from repro.harness.runner import WorkloadRunner
from repro.timing import GPUConfig, simulate
from repro.variants import REGISTRY
from repro.workloads import ALL_ABBRS, build_workload

#: Schema version of BENCH_timing.json; bump on layout changes.
#: Schema 2 embeds a canonical ``config`` block (scale, GPU diff,
#: variant list) so the gate knows *what* was benched, not just how fast.
BENCH_SCHEMA = 2


def __getattr__(name: str):
    # The bench matrix is the registry's "bench"-tagged variants, as a
    # live view so late registrations are benched too.
    if name == "BENCH_CONFIGS":
        return REGISTRY.by_tag("bench")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Default wall-time regression gate: fail at >2x slower than baseline.
DEFAULT_TOLERANCE = 2.0

#: Noise floor for the per-entry gate.  A ~10 ms simulation can blip
#: 2-3x on a shared runner from scheduling alone, so entries whose
#: *baseline* min wall time sits below this are excluded from the
#: per-entry ratio check; they still count toward the total-ratio gate,
#: which amortizes the noise across the whole matrix.
MIN_GATE_WALL_S = 0.05


@dataclass
class BenchEntry:
    """Timing of one (workload, configuration) simulation."""

    abbr: str
    config: str
    cycles: int
    wall_s: List[float] = field(default_factory=list)
    #: repeats that raised and were re-run (``run_bench(max_retries=)``);
    #: a nonzero count flags timings taken on a struggling machine.
    retries: int = 0

    @property
    def wall_s_min(self) -> float:
        return min(self.wall_s)

    @property
    def wall_s_median(self) -> float:
        return median(self.wall_s)

    @property
    def cycles_per_sec(self) -> float:
        return self.cycles / max(1e-12, self.wall_s_min)

    def to_dict(self) -> dict:
        data = {
            "cycles": self.cycles,
            "wall_s_min": round(self.wall_s_min, 6),
            "wall_s_median": round(self.wall_s_median, 6),
            "cycles_per_sec": round(self.cycles_per_sec, 1),
            "repeats": len(self.wall_s),
        }
        if self.retries:
            data["retries"] = self.retries
        return data


@dataclass
class BenchReport:
    """A full bench run, serializable to/from ``BENCH_timing.json``."""

    scale: str
    repeats: int
    fingerprint: str
    entries: Dict[str, BenchEntry]   # "ABBR/CONFIG" -> entry
    gpu_config: Optional[GPUConfig] = None

    @property
    def total_wall_s(self) -> float:
        return sum(e.wall_s_min for e in self.entries.values())

    def variants(self) -> List[str]:
        """Variant names benched, in first-seen (registry) order."""
        return list(dict.fromkeys(k.split("/", 1)[1] for k in self.entries))

    def run_configs(self) -> List[RunConfig]:
        """One canonical :class:`RunConfig` per benched entry."""
        gpu = self.gpu_config or DEFAULT_GPU
        return [
            RunConfig(abbr=key.split("/", 1)[0], variant=key.split("/", 1)[1],
                      scale=self.scale, gpu=gpu)
            for key in sorted(self.entries)
        ]

    def to_dict(self) -> dict:
        return {
            "schema": BENCH_SCHEMA,
            "scale": self.scale,
            "repeats": self.repeats,
            "fingerprint": self.fingerprint,
            "config": {
                "scale": self.scale,
                "gpu": gpu_to_dict(self.gpu_config or DEFAULT_GPU),
                "variants": self.variants(),
            },
            "total_wall_s_min": round(self.total_wall_s, 6),
            "entries": {k: e.to_dict() for k, e in sorted(self.entries.items())},
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "BenchReport":
        with open(path) as fh:
            data = json.load(fh)
        if data.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"{path}: bench schema {data.get('schema')!r} != {BENCH_SCHEMA}"
            )
        entries = {}
        for key, d in data["entries"].items():
            abbr, config = key.split("/", 1)
            # min/median are reconstructed from the two summary points;
            # the raw repeat list is not persisted.
            entries[key] = BenchEntry(
                abbr=abbr,
                config=config,
                cycles=d["cycles"],
                wall_s=[d["wall_s_min"], d["wall_s_median"]],
                retries=int(d.get("retries", 0)),
            )
        config = data.get("config", {})
        return cls(
            scale=data["scale"],
            repeats=data["repeats"],
            fingerprint=data["fingerprint"],
            entries=entries,
            gpu_config=gpu_from_dict(config.get("gpu", {})),
        )

    def render(self) -> str:
        lines = [
            f"bench [{self.scale}] x{self.repeats}: "
            f"{len(self.entries)} entries, {self.total_wall_s:.2f}s total (min)",
        ]
        for key, e in sorted(self.entries.items()):
            lines.append(
                f"  {key:<28} {e.wall_s_min:8.3f}s  "
                f"{e.cycles:>9} cyc  {e.cycles_per_sec:>12,.0f} cyc/s"
            )
        return "\n".join(lines)


def run_bench(
    scale: str = "small",
    abbrs: Sequence[str] = ALL_ABBRS,
    configs: Optional[Sequence[str]] = None,
    repeats: int = 2,
    gpu_config: Optional[GPUConfig] = None,
    progress=None,
    max_retries: int = 0,
) -> BenchReport:
    """Time ``simulate()`` for every (workload, configuration) pair.

    ``configs`` defaults to the registry's ``bench``-tagged variants.
    Runs serially on purpose: parallel workers would contend for cores
    and corrupt the wall-clock numbers.  Every repeat re-creates the
    memory image so no run sees a warmed-up (already written) memory.
    ``max_retries`` re-runs a repeat that raised (up to N times per
    entry, counted in :attr:`BenchEntry.retries`) so one flaky CI worker
    doesn't abort the whole bench; the exception propagates once the
    budget is exhausted.
    """
    from repro.harness.parallel import code_fingerprint

    gpu_config = gpu_config or DEFAULT_GPU
    configs = tuple(configs) if configs is not None else REGISTRY.by_tag("bench")
    entries: Dict[str, BenchEntry] = {}
    for abbr in abbrs:
        runner = WorkloadRunner(build_workload(abbr, scale), gpu_config)
        for config in configs:
            factory = runner.frontend_factory(config)  # profile/analysis built here
            entry = BenchEntry(abbr=abbr, config=config, cycles=0)
            for _ in range(max(1, repeats)):
                while True:
                    mem, params = runner.workload.fresh()
                    try:
                        t0 = time.perf_counter()
                        sim = simulate(
                            runner.workload.program,
                            runner.workload.launch,
                            mem,
                            params=params,
                            config=gpu_config,
                            frontend_factory=factory,
                        )
                        wall = time.perf_counter() - t0
                    except Exception:
                        if entry.retries >= max_retries:
                            raise
                        entry.retries += 1
                        continue
                    entry.wall_s.append(wall)
                    entry.cycles = sim.cycles
                    break
            entries[f"{abbr}/{config}"] = entry
            if progress is not None:
                progress(entry)
    return BenchReport(
        scale=scale,
        repeats=repeats,
        fingerprint=code_fingerprint(),
        entries=entries,
        gpu_config=gpu_config,
    )


@dataclass
class CompareResult:
    """Outcome of gating a bench report against a baseline."""

    ok: bool
    total_ratio: float
    worst_key: Optional[str]
    worst_ratio: float
    regressions: List[str]            # entries slower than tolerance
    cycle_mismatches: List[str]       # entries simulating different work
    missing: List[str]                # baseline entries absent from current
    retried: List[str] = field(default_factory=list)  # entries with retried repeats

    def render(self, tolerance: float) -> str:
        verdict = "OK" if self.ok else "FAIL"
        lines = [
            f"bench gate: {verdict} "
            f"(total {self.total_ratio:.2f}x of baseline, tolerance {tolerance:.2f}x)"
        ]
        if self.worst_key is not None:
            lines.append(f"  slowest vs baseline: {self.worst_key} at {self.worst_ratio:.2f}x")
        for key in self.regressions:
            lines.append(f"  REGRESSION: {key}")
        if self.retried:
            lines.append(
                "  note: repeats were retried for "
                + ", ".join(self.retried[:8])
                + (" ..." if len(self.retried) > 8 else "")
                + " (timings suspect; excluded from the per-entry gate)"
            )
        if self.cycle_mismatches:
            lines.append(
                "  note: cycle counts differ from baseline for "
                + ", ".join(self.cycle_mismatches[:8])
                + (" ..." if len(self.cycle_mismatches) > 8 else "")
                + " (different simulation, not a perf signal)"
            )
        for key in self.missing:
            lines.append(f"  missing entry vs baseline: {key}")
        return "\n".join(lines)


def compare(
    current: BenchReport,
    baseline: BenchReport,
    tolerance: float = DEFAULT_TOLERANCE,
) -> CompareResult:
    """Gate ``current`` against ``baseline``.

    Fails when the summed min wall time, or any single shared entry,
    exceeds ``tolerance`` × its baseline, or when baseline entries are
    missing from the current report.  Entries whose simulated cycle
    count changed are excluded from the per-entry gate (they measure
    different work) but still count toward the total.  So are entries
    whose baseline is below :data:`MIN_GATE_WALL_S` — too short to give
    a stable ratio — and entries whose repeats were retried on either
    side (a retry means the machine was struggling when the timing was
    taken); the total-ratio gate still covers them.
    """
    shared = sorted(set(current.entries) & set(baseline.entries))
    missing = sorted(set(baseline.entries) - set(current.entries))
    regressions: List[str] = []
    cycle_mismatches: List[str] = []
    retried: List[str] = []
    worst_key, worst_ratio = None, 0.0
    for key in shared:
        cur, base = current.entries[key], baseline.entries[key]
        ratio = cur.wall_s_min / max(1e-12, base.wall_s_min)
        if cur.cycles != base.cycles:
            cycle_mismatches.append(key)
            continue
        if cur.retries or base.retries:
            retried.append(key)
            continue
        if base.wall_s_min < MIN_GATE_WALL_S:
            continue
        if ratio > worst_ratio:
            worst_key, worst_ratio = key, ratio
        if ratio > tolerance:
            regressions.append(f"{key}: {cur.wall_s_min:.3f}s vs "
                               f"{base.wall_s_min:.3f}s ({ratio:.2f}x)")
    cur_total = sum(current.entries[k].wall_s_min for k in shared) if shared else 0.0
    base_total = sum(baseline.entries[k].wall_s_min for k in shared) if shared else 0.0
    total_ratio = cur_total / max(1e-12, base_total) if shared else 1.0
    ok = not regressions and not missing and total_ratio <= tolerance
    return CompareResult(
        ok=ok,
        total_ratio=total_ratio,
        worst_key=worst_key,
        worst_ratio=worst_ratio,
        regressions=regressions,
        cycle_mismatches=cycle_mismatches,
        missing=missing,
        retried=retried,
    )
