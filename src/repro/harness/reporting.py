"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt_pct(fraction: float) -> str:
    return f"{100.0 * fraction:5.1f}%"


def fmt_x(value: float) -> str:
    return f"{value:.2f}x"
