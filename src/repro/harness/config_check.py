"""Validate committed artifacts against the canonical config schema.

``python -m repro config-check`` (and the CI ``config-schema`` job) walks
every committed ``benchmarks/BENCH_*.json`` and golden stats file and
checks that the run configurations they describe still make sense:

- every variant name resolves in :data:`repro.variants.REGISTRY`,
- every workload abbreviation is a Table 1 workload,
- every derived :class:`repro.config.RunConfig` survives a canonical
  ``to_dict`` / ``from_dict`` round trip,
- bench files carry the expected schema version and a well-formed
  ``config`` block whose GPU diff parses.

This catches the drift the type system cannot: a variant renamed or
removed from the registry while a baseline file still references it, or
a committed config block hand-edited into something ``from_dict`` would
reject.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import ConfigError, RunConfig, gpu_from_dict
from repro.variants import REGISTRY
from repro.workloads import ALL_ABBRS

#: Files checked by default, relative to the repo root.
BENCH_GLOB = os.path.join("benchmarks", "BENCH_*.json")
GOLDEN_GLOB = os.path.join("tests", "timing", "data", "golden_*.json")


@dataclass
class CheckReport:
    """Outcome of a config-schema sweep over committed files."""

    checked: List[str] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def problem(self, path: str, message: str) -> None:
        self.problems.append(f"{path}: {message}")

    def render(self) -> str:
        lines = [
            f"config-check: {'OK' if self.ok else 'FAIL'} "
            f"({len(self.checked)} file(s), {len(self.problems)} problem(s))"
        ]
        lines += [f"  checked {p}" for p in self.checked]
        lines += [f"  PROBLEM {p}" for p in self.problems]
        return "\n".join(lines)


def _check_run_config(report: CheckReport, path: str, config: RunConfig) -> None:
    """One entry: registry membership, workload validity, round trip."""
    if config.abbr not in ALL_ABBRS:
        report.problem(path, f"unknown workload {config.abbr!r}")
    if config.variant not in REGISTRY:
        report.problem(
            path, f"variant {config.variant!r} not in registry {REGISTRY.names()}"
        )
    try:
        back = RunConfig.from_dict(config.to_dict())
    except ConfigError as exc:
        report.problem(path, f"canonical round trip failed: {exc}")
        return
    if back != config:
        report.problem(path, f"canonical round trip not identical for {config.label}")


def check_bench_file(path: str, report: Optional[CheckReport] = None) -> CheckReport:
    """Validate one ``BENCH_*.json`` perf-baseline file."""
    from repro.harness.bench import BENCH_SCHEMA

    report = report if report is not None else CheckReport()
    report.checked.append(path)
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != BENCH_SCHEMA:
        report.problem(path, f"schema {data.get('schema')!r} != {BENCH_SCHEMA}")
        return report
    block = data.get("config")
    if not isinstance(block, dict):
        report.problem(path, "missing 'config' block")
        return report
    try:
        gpu = gpu_from_dict(block.get("gpu", {}))
    except ConfigError as exc:
        report.problem(path, f"bad gpu diff: {exc}")
        return report
    scale = block.get("scale", data.get("scale"))
    if block.get("scale") != data.get("scale"):
        report.problem(path, "config.scale disagrees with top-level scale")
    for name in block.get("variants", []):
        if name not in REGISTRY:
            report.problem(path, f"variant {name!r} not in registry {REGISTRY.names()}")
    for key in data.get("entries", {}):
        abbr, variant = key.split("/", 1)
        _check_run_config(
            report, path, RunConfig(abbr=abbr, variant=variant, scale=scale, gpu=gpu)
        )
    return report


def check_golden_file(path: str, report: Optional[CheckReport] = None) -> CheckReport:
    """Validate one golden stats file (``tests/timing/data``)."""
    report = report if report is not None else CheckReport()
    report.checked.append(path)
    with open(path) as fh:
        data = json.load(fh)
    scale = data.get("scale", "tiny")
    for name in data.get("configs", []):
        if name not in REGISTRY:
            report.problem(path, f"variant {name!r} not in registry {REGISTRY.names()}")
    for key in data.get("entries", {}):
        abbr, variant = key.split("/", 1)
        _check_run_config(report, path, RunConfig(abbr=abbr, variant=variant, scale=scale))
    return report


def check_all(root: str = ".") -> CheckReport:
    """Sweep every committed bench baseline and golden stats file."""
    report = CheckReport()
    for path in sorted(glob.glob(os.path.join(root, BENCH_GLOB))):
        check_bench_file(path, report)
    for path in sorted(glob.glob(os.path.join(root, GOLDEN_GLOB))):
        check_golden_file(path, report)
    if not report.checked:
        report.problem(root, "no bench or golden files found to check")
    return report
