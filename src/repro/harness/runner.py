"""Workload runner: registry-declared variants over the shared substrate.

Every variant runs the same kernel on the same timing model and is
verified against the workload's numpy oracle — a run that produces wrong
results raises, so no experiment can silently report numbers from a
broken mechanism.

Which variants exist, how their frontends are built and which inputs
they need is declared once in :data:`repro.variants.REGISTRY`; the
runner just resolves names against it.  ``CONFIG_NAMES`` remains as a
live view of the registry for backward compatibility.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines import build_dac_profile
from repro.config import RunConfig
from repro.core import CompilerAnalysis, DarsieConfig, DarsieFrontend, analyze_program
from repro.energy import EnergyModel, PASCAL_ENERGY_MODEL, get_energy_model
from repro.isa.program import Program
from repro.simt import Tracer, run_functional
from repro.simt.tracer import ExecutionTrace
from repro.timing import GPUConfig, SimulationResult, simulate, small_config
from repro.timing.checkpoint import CheckpointError, read_checkpoint, write_checkpoint
from repro.timing.gpu import GPU
from repro.variants import REGISTRY, Variant, VariantRegistry
from repro.workloads import Workload, build_workload


def __getattr__(name: str):
    # Live view: late-registered variants show up without re-importing.
    if name == "CONFIG_NAMES":
        return REGISTRY.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class VerificationError(AssertionError):
    """A timing run produced results that disagree with the oracle."""


@dataclass
class CheckpointPlan:
    """Checkpoint/budget instructions for one timing run.

    ``path`` is the spec-keyed on-disk location (derived next to the
    result cache by :mod:`repro.harness.parallel`); ``interval_cycles``
    gates writing (0 = never write, but an existing checkpoint is still
    consumed) and ``max_cycles`` overrides the GPU's cycle budget when
    positive.  ``on_write`` fires after each completed write — the fault
    layer uses it to kill a worker at a moment a resume can survive.
    The runner reports back through the mutable ``written``/``resumed``
    fields, which the sweep layer folds into its counters.
    """

    path: str
    interval_cycles: int = 0
    max_cycles: int = 0
    on_write: Optional[Callable[[int], None]] = None
    written: int = 0
    resumed: bool = False


@dataclass
class RunResult:
    """One (workload, configuration) timing run."""

    workload: str
    config_name: str
    sim: SimulationResult
    energy_pj: float

    @property
    def cycles(self) -> int:
        return self.sim.cycles

    @property
    def stats(self):
        return self.sim.stats


class WorkloadRunner:
    """Runs one workload under registered variants, with caching."""

    def __init__(
        self,
        workload: Workload,
        gpu_config: Optional[GPUConfig] = None,
        energy_model: EnergyModel = PASCAL_ENERGY_MODEL,
        registry: VariantRegistry = REGISTRY,
    ):
        self.workload = workload
        self.gpu_config = gpu_config or small_config(num_sms=1)
        self.energy_model = energy_model
        self.registry = registry
        self.analysis: CompilerAnalysis = analyze_program(workload.program)
        self._results: Dict[str, RunResult] = {}
        self._dac_profile = None
        self._trace: Optional[ExecutionTrace] = None
        self._transformed: Dict[str, Program] = {}

    @classmethod
    def from_config(
        cls, config: RunConfig, registry: VariantRegistry = REGISTRY
    ) -> "WorkloadRunner":
        """Build the substrate a :class:`RunConfig` describes."""
        return cls(
            build_workload(config.abbr, config.scale),
            gpu_config=config.gpu,
            energy_model=get_energy_model(config.energy),
            registry=registry,
        )

    # -- building blocks -----------------------------------------------------

    def functional_trace(self) -> ExecutionTrace:
        """Functional run with the tracer attached (limit studies)."""
        if self._trace is None:
            mem, params = self.workload.fresh()
            tracer = Tracer()
            run_functional(
                self.workload.program, self.workload.launch, mem,
                params=params, tracer=tracer,
            )
            if not self.workload.verify(mem, params):
                raise VerificationError(f"{self.workload.abbr}: functional run failed oracle")
            self._trace = tracer.trace
        return self._trace

    def dac_profile(self):
        if self._dac_profile is None:
            mem, params = self.workload.fresh()
            self._dac_profile = build_dac_profile(
                self.workload.program, self.workload.launch, mem.words.copy(), params
            )
        return self._dac_profile

    def variant(self, name: str) -> Variant:
        return self.registry.get(name)

    def simulation_program(self, name: str) -> Program:
        """The program the timing simulator runs for variant ``name``.

        Variants declaring a :attr:`~repro.variants.Variant.staticlib_pass`
        (the DARM melding configurations) simulate the transformed
        program; everything else simulates the workload's program as
        written.  Transforms are cached per variant name.  Ad-hoc names
        that aren't registered (explicit-knob DARSIE ablation points)
        run the original program.
        """
        if name not in self.registry:
            return self.workload.program
        variant = self.registry.get(name)
        if variant.staticlib_pass is None:
            return self.workload.program
        if name not in self._transformed:
            self._transformed[name] = variant.staticlib_pass(self.workload.program)
        return self._transformed[name]

    def frontend_factory(
        self, name: str, darsie_config: Optional[DarsieConfig] = None
    ) -> Optional[Callable]:
        """Resolve a variant name to a frontend factory.

        Explicit ``darsie_config`` knobs take precedence over the
        variant's declared defaults; an unregistered name with explicit
        knobs (ad-hoc ablation points like ``DARSIE-ports4``) builds a
        plain DARSIE frontend with those knobs.
        """
        if darsie_config is not None:
            return lambda: DarsieFrontend(self.analysis, darsie_config)
        variant = self.registry.get(name)
        return variant.make_frontend(self, variant.darsie_defaults)

    # -- running -----------------------------------------------------------------

    def run(
        self,
        config_name: str,
        darsie_config: Optional[DarsieConfig] = None,
        checkpoint: Optional[CheckpointPlan] = None,
    ) -> RunResult:
        """Run (and cache) one named configuration.

        With a :class:`CheckpointPlan`, the run resumes from the plan's
        on-disk checkpoint when a valid one exists (otherwise starting
        fresh) and periodically re-checkpoints; the resumed run's result
        is bit-identical to an uninterrupted one, so callers — and the
        sweep cache — never observe the difference.
        """
        cache_key = config_name if darsie_config is None else None
        if cache_key and cache_key in self._results:
            return self._results[cache_key]
        if checkpoint is None:
            factory = self.frontend_factory(config_name, darsie_config)
            mem, params = self.workload.fresh()
            sim = simulate(
                self.simulation_program(config_name),
                self.workload.launch,
                mem,
                params=params,
                config=self.gpu_config,
                frontend_factory=factory,
            )
        else:
            sim, mem, params = self._run_checkpointed(
                config_name, darsie_config, checkpoint
            )
        if not self.workload.verify(mem, params):
            raise VerificationError(
                f"{self.workload.abbr} under {config_name}: output mismatch vs oracle"
            )
        energy = self.energy_model.total_energy_pj(sim.stats, self.gpu_config.num_sms)
        result = RunResult(
            workload=self.workload.abbr,
            config_name=config_name,
            sim=sim,
            energy_pj=energy,
        )
        if cache_key:
            self._results[cache_key] = result
        return result

    def _run_checkpointed(
        self,
        config_name: str,
        darsie_config: Optional[DarsieConfig],
        plan: CheckpointPlan,
    ):
        """Run through the checkpoint/resume path of a :class:`GPU`.

        An invalid or corrupt checkpoint (torn write, version skew) is
        treated exactly like no checkpoint: start from cycle zero.  On
        resume, memory and parameters come from the restored execution
        context — the workload's fresh inputs were already consumed by
        the original run.
        """
        gpu: Optional[GPU] = None
        if plan.path and os.path.exists(plan.path):
            try:
                gpu = read_checkpoint(plan.path)
            except CheckpointError:
                gpu = None
            else:
                plan.resumed = True
        if gpu is None:
            factory = self.frontend_factory(config_name, darsie_config)
            config = self.gpu_config
            if plan.max_cycles > 0:
                config = config.scaled(max_cycles=plan.max_cycles)
            mem, params = self.workload.fresh()
            gpu = GPU(
                self.simulation_program(config_name),
                self.workload.launch,
                mem,
                params=params,
                config=config,
                frontend_factory=factory,
            )
        callback: Optional[Callable[[GPU], None]] = None
        if plan.interval_cycles > 0 and plan.path:

            def callback(g: GPU) -> None:
                write_checkpoint(plan.path, g)
                plan.written += 1
                if plan.on_write is not None:
                    plan.on_write(plan.written)

        sim = gpu.run(
            checkpoint_interval=plan.interval_cycles, checkpoint_cb=callback
        )
        return sim, gpu.ctx.memory, gpu.ctx.params.as_dict()

    def run_config(self, config: RunConfig) -> RunResult:
        """Run the variant a :class:`RunConfig` names (the workload,
        scale, GPU and energy model must match this runner's)."""
        return self.run(config.variant, config.darsie)

    def speedup(self, config_name: str) -> float:
        return self.run("BASE").cycles / self.run(config_name).cycles

    def instruction_reduction(self, config_name: str) -> float:
        """Fraction of baseline instruction slots removed before fetch
        plus eliminated at issue."""
        base = self.run("BASE").stats.instructions_executed
        res = self.run(config_name).stats
        removed = res.instructions_skipped + res.executions_eliminated
        return removed / max(1, base)

    def energy_reduction(self, config_name: str) -> float:
        base = self.run("BASE").energy_pj
        return 1.0 - self.run(config_name).energy_pj / base

    def overhead_fraction(self, config_name: str) -> float:
        """Added-hardware energy overhead of a variant (its registry
        hook; 0.0 when the variant declares none)."""
        variant = self.registry.get(config_name)
        if variant.overhead_fraction is None:
            return 0.0
        return variant.overhead_fraction(
            self.energy_model, self.run(config_name).stats, self.gpu_config.num_sms
        )


def make_runners(
    abbrs, scale: str = "small", gpu_config: Optional[GPUConfig] = None
) -> List[WorkloadRunner]:
    return [WorkloadRunner(build_workload(a, scale), gpu_config) for a in abbrs]


_RUNNER_CACHE: Dict[Tuple[str, str, Optional[GPUConfig]], WorkloadRunner] = {}


def get_runner(
    abbr: str, scale: str = "small", gpu_config: Optional[GPUConfig] = None
) -> WorkloadRunner:
    """Process-wide memoized runner.

    Timing results are deterministic, so experiments that share a
    (workload, scale, GPU config) triple — e.g. Figure 8's speedups and
    Figure 10's instruction reductions — reuse each other's runs instead
    of re-simulating.
    """
    key = (abbr, scale, gpu_config)
    if key not in _RUNNER_CACHE:
        _RUNNER_CACHE[key] = WorkloadRunner(build_workload(abbr, scale), gpu_config)
    return _RUNNER_CACHE[key]


def clear_runner_cache() -> None:
    _RUNNER_CACHE.clear()
