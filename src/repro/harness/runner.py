"""Workload runner: named configurations over the shared substrate.

Every configuration runs the same kernel on the same timing model and is
verified against the workload's numpy oracle — a run that produces wrong
results raises, so no experiment can silently report numbers from a
broken mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines import DacIdealFrontend, UVFrontend, build_dac_profile
from repro.core import CompilerAnalysis, DarsieConfig, DarsieFrontend, analyze_program
from repro.energy import EnergyModel, PASCAL_ENERGY_MODEL
from repro.simt import Tracer, run_functional
from repro.simt.tracer import ExecutionTrace
from repro.timing import GPUConfig, SimulationResult, simulate, small_config
from repro.timing.frontend import SiliconSyncFrontend
from repro.workloads import Workload, build_workload

#: Configuration names understood by :meth:`WorkloadRunner.run`.
CONFIG_NAMES = (
    "BASE",
    "UV",
    "DAC-IDEAL",
    "DARSIE",
    "DARSIE-IGNORE-STORE",
    "DARSIE-NO-CF-SYNC",
    "DARSIE-SYNC-ON-WRITE",
    "SILICON-SYNC",
)


class VerificationError(AssertionError):
    """A timing run produced results that disagree with the oracle."""


@dataclass
class RunResult:
    """One (workload, configuration) timing run."""

    workload: str
    config_name: str
    sim: SimulationResult
    energy_pj: float

    @property
    def cycles(self) -> int:
        return self.sim.cycles

    @property
    def stats(self):
        return self.sim.stats


class WorkloadRunner:
    """Runs one workload under the named configurations, with caching."""

    def __init__(
        self,
        workload: Workload,
        gpu_config: Optional[GPUConfig] = None,
        energy_model: EnergyModel = PASCAL_ENERGY_MODEL,
    ):
        self.workload = workload
        self.gpu_config = gpu_config or small_config(num_sms=1)
        self.energy_model = energy_model
        self.analysis: CompilerAnalysis = analyze_program(workload.program)
        self._results: Dict[str, RunResult] = {}
        self._dac_profile = None
        self._trace: Optional[ExecutionTrace] = None

    # -- building blocks -----------------------------------------------------

    def functional_trace(self) -> ExecutionTrace:
        """Functional run with the tracer attached (limit studies)."""
        if self._trace is None:
            mem, params = self.workload.fresh()
            tracer = Tracer()
            run_functional(
                self.workload.program, self.workload.launch, mem,
                params=params, tracer=tracer,
            )
            if not self.workload.verify(mem, params):
                raise VerificationError(f"{self.workload.abbr}: functional run failed oracle")
            self._trace = tracer.trace
        return self._trace

    def dac_profile(self):
        if self._dac_profile is None:
            mem, params = self.workload.fresh()
            self._dac_profile = build_dac_profile(
                self.workload.program, self.workload.launch, mem.words.copy(), params
            )
        return self._dac_profile

    def _frontend_factory(self, name: str) -> Optional[Callable]:
        if name == "BASE":
            return None
        if name == "UV":
            return lambda: UVFrontend(self.analysis)
        if name == "DAC-IDEAL":
            profile = self.dac_profile()
            return lambda: DacIdealFrontend(profile)
        if name == "DARSIE":
            return lambda: DarsieFrontend(self.analysis)
        if name == "DARSIE-IGNORE-STORE":
            return lambda: DarsieFrontend(self.analysis, DarsieConfig(ignore_store=True))
        if name == "DARSIE-NO-CF-SYNC":
            return lambda: DarsieFrontend(self.analysis, DarsieConfig(no_cf_sync=True))
        if name == "DARSIE-SYNC-ON-WRITE":
            return lambda: DarsieFrontend(self.analysis, DarsieConfig(sync_on_write=True))
        if name == "SILICON-SYNC":
            return SiliconSyncFrontend
        raise KeyError(f"unknown configuration {name!r}; known: {CONFIG_NAMES}")

    # -- running -----------------------------------------------------------------

    def run(self, config_name: str, darsie_config: Optional[DarsieConfig] = None) -> RunResult:
        """Run (and cache) one named configuration."""
        cache_key = config_name if darsie_config is None else None
        if cache_key and cache_key in self._results:
            return self._results[cache_key]
        if darsie_config is not None:
            factory: Optional[Callable] = lambda: DarsieFrontend(self.analysis, darsie_config)
        else:
            factory = self._frontend_factory(config_name)
        mem, params = self.workload.fresh()
        sim = simulate(
            self.workload.program,
            self.workload.launch,
            mem,
            params=params,
            config=self.gpu_config,
            frontend_factory=factory,
        )
        if not self.workload.verify(mem, params):
            raise VerificationError(
                f"{self.workload.abbr} under {config_name}: output mismatch vs oracle"
            )
        energy = self.energy_model.total_energy_pj(sim.stats, self.gpu_config.num_sms)
        result = RunResult(
            workload=self.workload.abbr,
            config_name=config_name,
            sim=sim,
            energy_pj=energy,
        )
        if cache_key:
            self._results[cache_key] = result
        return result

    def speedup(self, config_name: str) -> float:
        return self.run("BASE").cycles / self.run(config_name).cycles

    def instruction_reduction(self, config_name: str) -> float:
        """Fraction of baseline instruction slots removed before fetch
        plus eliminated at issue."""
        base = self.run("BASE").stats.instructions_executed
        res = self.run(config_name).stats
        removed = res.instructions_skipped + res.executions_eliminated
        return removed / max(1, base)

    def energy_reduction(self, config_name: str) -> float:
        base = self.run("BASE").energy_pj
        return 1.0 - self.run(config_name).energy_pj / base


def make_runners(
    abbrs, scale: str = "small", gpu_config: Optional[GPUConfig] = None
) -> List[WorkloadRunner]:
    return [WorkloadRunner(build_workload(a, scale), gpu_config) for a in abbrs]


_RUNNER_CACHE: Dict[Tuple[str, str, Optional[GPUConfig]], WorkloadRunner] = {}


def get_runner(
    abbr: str, scale: str = "small", gpu_config: Optional[GPUConfig] = None
) -> WorkloadRunner:
    """Process-wide memoized runner.

    Timing results are deterministic, so experiments that share a
    (workload, scale, GPU config) triple — e.g. Figure 8's speedups and
    Figure 10's instruction reductions — reuse each other's runs instead
    of re-simulating.
    """
    key = (abbr, scale, gpu_config)
    if key not in _RUNNER_CACHE:
        _RUNNER_CACHE[key] = WorkloadRunner(build_workload(abbr, scale), gpu_config)
    return _RUNNER_CACHE[key]


def clear_runner_cache() -> None:
    _RUNNER_CACHE.clear()
