"""Idealized Decoupled Affine Computation (DAC-IDEAL) [Wang & Lin, 2017].

The paper models an idealized DAC "by detecting affine instructions at
runtime, and assuming that all affine instructions (both redundant and
otherwise) will be executed only once.  We also assume there is no
synchronization cost between affine and non-affine instruction streams"
(Section 5).  DAC covers uniform and affine value structure but *not*
unstructured redundancy — that gap is DARSIE's headline advantage.

Model: a profiling pass (:func:`build_dac_profile`) runs the kernel
functionally and finds every dynamic instance whose output is uniform or
affine in *every* warp of its TB.  In the timing run, the lowest-numbered
warp executes the instance normally (the affine stream); all other warps
receive it as a zero-cost I-buffer entry — never fetched, issued or
executed on the SIMD path, draining with zero latency subject only to
true data dependences (the idealized "no synchronization cost").

Memory instructions are excluded: DAC decouples affine *computation*;
loads stay in the SIMT stream.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa.instructions import INSTRUCTION_BYTES
from repro.simt.grid import LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.simt.tracer import AFFINE, Tracer, UNIFORM
from repro.timing.core import IBufferEntry
from repro.timing.frontend import Frontend

#: Profile: (tb, warp, pc, occurrence) -> value-pattern kind, for every
#: instance a non-executing warp receives for free.
DacProfile = Dict[Tuple[int, int, int, int], str]


def build_dac_profile(program, launch: LaunchConfig, memory_words, params) -> DacProfile:
    """Run the oracle profiling pass over a fresh copy of memory.

    ``memory_words`` is the *initial* global-memory image (the profiling
    run must not disturb the memory the timing run will use).
    """
    memory = GlobalMemory(len(memory_words))
    memory.words[:] = memory_words
    tracer = Tracer()
    from repro.simt.executor import run_functional  # local import: avoid cycle

    run_functional(program, launch, memory, params=dict(params), tracer=tracer)
    profile: DacProfile = {}
    warps = launch.warps_per_block
    for (tb, pc, occ), records in tracer.trace.grouped_by_tb():
        if len(records) != warps:
            continue  # control divergence: not a clean TB-wide instance
        inst = program.at(pc)
        if inst.is_memory:
            continue
        if inst.dest_register() is None and inst.dest_predicate() is None:
            continue
        kinds = {r.summary.kind for r in records}
        if any(r.divergent for r in records):
            continue
        if kinds <= {UNIFORM, AFFINE}:
            executor = min(r.warp_id for r in records)
            kind = UNIFORM if kinds == {UNIFORM} else AFFINE
            for rec in records:
                if rec.warp_id != executor:
                    profile[(tb, rec.warp_id, pc, occ)] = kind
    return profile


class DacIdealFrontend(Frontend):
    """Oracle affine-stream removal with zero synchronization cost."""

    name = "DAC-IDEAL"

    def __init__(self, profile: DacProfile):
        self.profile = profile

    def on_tb_launch(self, tb_rt) -> None:
        tb_rt.frontend_state = {"occ": {}}

    def fetch_cycle(self, cycle: int) -> None:
        """Convert profiled instances into zero-cost I-buffer entries.

        This runs outside fetch bandwidth: the affine stream is a
        separate (idealized) pipeline.
        """
        for tb_rt in self.sm.tbs:
            occ_state = tb_rt.frontend_state["occ"]
            for wrt in tb_rt.warps:
                if wrt.exited or not wrt.fetch_ready():
                    continue
                while wrt.fetch_pc < self.sm.ctx.program.end_pc:
                    pc = wrt.fetch_pc
                    inst = self.sm.ctx.program.at(pc)
                    key = (wrt.warp.warp_id, pc)
                    occ = occ_state.get(key, 0)
                    pkey = (tb_rt.tb.tb_index, wrt.warp.warp_id, pc, occ)
                    kind = self.profile.get(pkey)
                    if kind is None:
                        break
                    occ_state[key] = occ + 1
                    wrt.push_entry(IBufferEntry(inst=inst, free=True))
                    self.sm.note_activity()
                    self.sm.stats.skipped_by_class[kind] += 1
                    wrt.fetch_pc = pc + INSTRUCTION_BYTES

    def on_fetch(self, wrt, inst, is_leader: bool) -> Optional[Dict]:
        # Count occurrences of normally fetched instructions too, so the
        # profile's occurrence numbering stays aligned per (warp, pc).
        occ_state = wrt.tb_rt.frontend_state["occ"]
        key = (wrt.warp.warp_id, inst.pc)
        occ_state[key] = occ_state.get(key, 0) + 1
        return None
