"""Comparison techniques from prior work (Section 5).

- :mod:`repro.baselines.uv` — Uniform Vector (Xiang et al., ICS 2013):
  issue-stage elimination of uniform-redundant instructions through an
  instruction reuse buffer.  Instructions are still fetched and decoded.
- :mod:`repro.baselines.dac` — idealized Decoupled Affine Computation
  (Wang & Lin, ISCA 2017): every affine (and uniform) value-producing
  instruction is executed only once per TB, with no synchronization
  cost between the affine and vector streams.
"""

from repro.baselines.dac import DacIdealFrontend, build_dac_profile
from repro.baselines.uv import UVFrontend

__all__ = ["UVFrontend", "DacIdealFrontend", "build_dac_profile"]
