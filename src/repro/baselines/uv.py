"""Uniform Vector (UV) baseline [Xiang et al., ICS 2013].

UV "makes use of an instruction reuse buffer to eliminate instructions
that read uniform scalar register values.  UV prevents instructions from
executing at the issue stage of the pipeline after being loaded into the
instruction buffer.  It does not consider non-uniform redundant vectors,
and does not skip memory operations" (Section 5).

Model: an instruction instance is UV-eliminable when it is statically
*definitely redundant* (DR — i.e. uniform redundancy in the taxonomy:
"uniform redundant values are always definitely redundant", Section 4.2),
produces a register and is not a memory operation.  The first warp of a
TB to issue the instance fills the reuse buffer; subsequent warps read
the buffered result instead of executing.  Fetch, decode and issue
bandwidth are still consumed — which is exactly why UV saturates on
fetch-bound applications (Section 6.1: "UV is typically limited by fetch
throughput").
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.taxonomy import Marking
from repro.simt.tracer import UNIFORM
from repro.timing.frontend import Frontend


class UVFrontend(Frontend):
    """Issue-stage uniform-redundancy elimination."""

    name = "UV"

    def __init__(self, analysis):
        self.analysis = analysis
        self.uniform_pcs: Set[int] = set()

    def bind(self, sm) -> None:
        super().bind(sm)
        program = sm.ctx.program
        markings = self.analysis.instruction_markings
        self.uniform_pcs = set()
        for inst in program.instructions:
            if markings.get(inst.pc) is not Marking.REDUNDANT:
                continue
            if inst.is_memory:
                continue  # UV does not skip memory operations
            if inst.dest_register() is None and inst.dest_predicate() is None:
                continue
            self.uniform_pcs.add(inst.pc)

    def on_tb_launch(self, tb_rt) -> None:
        # Reuse buffer: (pc, instance#) entries already produced by some
        # warp of this TB; per-warp instance counters keep loop
        # iterations distinct.
        tb_rt.frontend_state = {
            "filled": set(),    # type: Set[Tuple[int, int]]
            "count": {},        # type: Dict[Tuple[int, int], int]
        }

    def eliminate_at_issue(self, wrt, inst) -> Optional[str]:
        if inst.pc not in self.uniform_pcs:
            return None
        state = wrt.tb_rt.frontend_state
        key = (wrt.warp.warp_id, inst.pc)
        occ = state["count"].get(key, 0)
        state["count"][key] = occ + 1
        instance = (inst.pc, occ)
        if instance in state["filled"]:
            return UNIFORM
        state["filled"].add(instance)
        return None
