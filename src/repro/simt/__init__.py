"""SIMT execution substrate: launch geometry, warps, memory, executor.

This subpackage provides the functional GPU model the reproduction runs
on.  It mirrors the programming model of Section 1: kernels are launched
over a grid of threadblocks (TBs); TBs are (up to) three-dimensional
arrangements of scalar threads grouped into warps by the hardware, with
the x dimension varying fastest (Section 2: "threadIds are assigned to
warps by varying the x dimension first").

Register values are modelled as 32-lane numpy vectors — exactly the
granularity at which DARSIE reasons about redundancy.
"""

from repro.simt.executor import (
    ExecutionContext,
    ExecutionError,
    FunctionalEngine,
    ThreadBlockState,
    run_functional,
)
from repro.simt.grid import Dim3, LaunchConfig, WarpLayout
from repro.simt.memory import GlobalMemory, KernelParams, SharedMemory
from repro.simt.register_file import WarpRegisterFile
from repro.simt.tracer import DynamicInstruction, ExecutionTrace, Tracer
from repro.simt.warp import SimtStackEntry, WarpState

__all__ = [
    "Dim3",
    "LaunchConfig",
    "WarpLayout",
    "GlobalMemory",
    "KernelParams",
    "SharedMemory",
    "WarpRegisterFile",
    "SimtStackEntry",
    "WarpState",
    "ExecutionContext",
    "ExecutionError",
    "FunctionalEngine",
    "ThreadBlockState",
    "run_functional",
    "DynamicInstruction",
    "ExecutionTrace",
    "Tracer",
]
