"""Functional SIMT executor.

Executes assembled kernels warp-by-warp with full architectural
semantics: 32-lane vector operations, predication, SIMT-stack divergence,
shared/global memory and TB-wide barriers.

Two consumers share this engine:

- :func:`run_functional` — a standalone functional simulation used by the
  redundancy limit studies (Figures 1 and 2) and as the correctness
  oracle that DARSIE-enabled timing runs are checked against;
- :mod:`repro.timing` — the cycle-level model calls
  :meth:`FunctionalEngine.execute_instruction` at the issue stage, so
  timing and functional behaviour can never diverge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.isa.instructions import CmpOp, DType, INSTRUCTION_BYTES, Instruction, Opcode
from repro.isa.operands import Immediate, MemRef, MemSpace, Param, Predicate, Register, Special
from repro.isa.program import Program
from repro.simt.grid import Dim3, LaunchConfig, WarpLayout
from repro.simt.memory import GlobalMemory, KernelParams, SharedMemory
from repro.simt.tracer import Tracer
from repro.simt.warp import WarpState


class ExecutionError(RuntimeError):
    """Raised on a semantic error during kernel execution."""


@dataclass
class ExecutionContext:
    """Everything a kernel launch needs besides per-TB state."""

    program: Program
    launch: LaunchConfig
    memory: GlobalMemory
    params: KernelParams
    layout: WarpLayout = field(init=False)

    def __post_init__(self) -> None:
        self.params.validate_against(self.program.params)
        self.layout = WarpLayout(self.launch)


class ThreadBlockState:
    """Runtime state of one threadblock resident on an SM."""

    def __init__(self, ctx: ExecutionContext, tb_index: int):
        self.ctx = ctx
        self.tb_index = tb_index
        self.block_idx: Dim3 = ctx.launch.block_index(tb_index)
        shared_words = max(ctx.program.shared_words, 1)
        self.shared = SharedMemory(shared_words)
        self.warps: List[WarpState] = [
            WarpState.create(w, tb_index, ctx.layout.active_mask(w))
            for w in range(ctx.launch.warps_per_block)
        ]

    @property
    def done(self) -> bool:
        return all(w.exited for w in self.warps)

    def live_warps(self) -> List[WarpState]:
        return [w for w in self.warps if not w.exited]

    def release_barrier_if_ready(self) -> bool:
        """Release all warps when every live warp has reached ``bar.sync``."""
        live = self.live_warps()
        if live and all(w.at_barrier for w in live):
            for w in live:
                w.at_barrier = False
            return True
        return False


@dataclass
class StepResult:
    """Outcome of executing one warp instruction."""

    inst: Instruction
    warp: WarpState
    exec_mask: np.ndarray
    dest_value: Optional[np.ndarray] = None
    branch_taken_mask: Optional[np.ndarray] = None
    mem_addresses: Optional[np.ndarray] = None
    retired: bool = False
    hit_barrier: bool = False


_INT = np.int64
_FLOAT = np.float64


def _to_int(arr: np.ndarray) -> np.ndarray:
    if arr.dtype.kind == "f":
        return np.trunc(arr).astype(_INT)
    return arr.astype(_INT, copy=False)


def _to_float(arr: np.ndarray) -> np.ndarray:
    return arr.astype(_FLOAT, copy=False)


class FunctionalEngine:
    """Executes instructions with architectural semantics."""

    def __init__(self, ctx: ExecutionContext, tracer: Optional[Tracer] = None):
        self.ctx = ctx
        self.tracer = tracer
        self.instructions_executed = 0
        #: true once any global atomic has run (DARSIE's global
        #: communication event, Section 4.4).
        self.global_communication_seen = False
        # Operand overrides for the instruction currently executing.
        # DARSIE follower warps read renamed registers: the timing core
        # captures those values in fetch order and passes them here so
        # evaluation bypasses the warp's (stale) private register.
        self._reg_overrides: Dict[str, np.ndarray] = {}
        self._pred_overrides: Dict[str, np.ndarray] = {}

    # -- operand evaluation ------------------------------------------------

    def _eval(self, operand, warp: WarpState, tb: ThreadBlockState) -> np.ndarray:
        n = self.ctx.launch.warp_size
        if isinstance(operand, Register):
            override = self._reg_overrides.get(operand.name)
            if override is not None:
                return override
            return warp.registers.read(operand.name)
        if isinstance(operand, Predicate):
            override = self._pred_overrides.get(operand.name)
            if override is not None:
                return override
            return warp.registers.read_pred(operand.name)
        if isinstance(operand, Immediate):
            dtype = _FLOAT if operand.is_float else _INT
            return np.full(n, operand.value, dtype=dtype)
        if isinstance(operand, Param):
            value = self.ctx.params[operand.name]
            dtype = _FLOAT if isinstance(value, float) else _INT
            return np.full(n, value, dtype=dtype)
        if isinstance(operand, Special):
            return self._eval_special(operand.name, warp, tb)
        raise ExecutionError(f"cannot evaluate operand {operand!r}")

    def _eval_special(self, name: str, warp: WarpState, tb: ThreadBlockState) -> np.ndarray:
        n = self.ctx.launch.warp_size
        layout = self.ctx.layout
        if name.startswith("tid."):
            return layout.tid(warp.warp_id, name[-1])
        if name.startswith("ntid."):
            return np.full(n, getattr(self.ctx.launch.block_dim, name[-1]), dtype=_INT)
        if name.startswith("ctaid."):
            return np.full(n, getattr(tb.block_idx, name[-1]), dtype=_INT)
        if name.startswith("nctaid."):
            return np.full(n, getattr(self.ctx.launch.grid_dim, name[-1]), dtype=_INT)
        if name == "laneid":
            return np.arange(n, dtype=_INT)
        if name == "warpid":
            return np.full(n, warp.warp_id, dtype=_INT)
        if name == "smem_base":
            return np.zeros(n, dtype=_INT)
        raise ExecutionError(f"unhandled special %{name}")

    def _address(self, mem: MemRef, warp: WarpState, tb: ThreadBlockState) -> np.ndarray:
        addr = _to_int(self._eval(mem.base, warp, tb)).copy()
        if mem.index is not None:
            addr += _to_int(self._eval(mem.index, warp, tb))
        if mem.offset:
            addr += mem.offset
        return addr

    def _space(self, mem: MemRef, tb: ThreadBlockState):
        if mem.space is MemSpace.GLOBAL:
            return self.ctx.memory
        if mem.space is MemSpace.SHARED:
            return tb.shared
        raise ExecutionError(f"cannot load/store space {mem.space}")

    # -- instruction semantics ----------------------------------------------

    def execute_instruction(
        self,
        tb: ThreadBlockState,
        warp: WarpState,
        inst: Instruction,
        reg_overrides: Optional[Dict[str, np.ndarray]] = None,
        pred_overrides: Optional[Dict[str, np.ndarray]] = None,
    ) -> StepResult:
        """Execute ``inst`` for ``warp`` and advance its PC.

        The caller is responsible for only invoking this at the warp's
        current PC (the timing model guarantees it by issuing in order).
        ``reg_overrides`` / ``pred_overrides`` substitute source values
        for renamed registers (DARSIE follower reads).
        """
        if warp.exited:
            raise ExecutionError("executing on an exited warp")
        self._reg_overrides = reg_overrides or {}
        self._pred_overrides = pred_overrides or {}
        active = warp.active_mask
        if inst.guard is not None:
            override = self._pred_overrides.get(inst.guard.name)
            guard = override if override is not None else warp.registers.read_pred(inst.guard.name)
            if inst.guard_negated:
                guard = ~guard
            exec_mask = active & guard
        else:
            exec_mask = active.copy()

        self.instructions_executed += 1
        result = StepResult(inst=inst, warp=warp, exec_mask=exec_mask)
        op = inst.opcode

        if op is Opcode.BRA:
            self._execute_branch(tb, warp, inst, exec_mask, result)
        elif op is Opcode.EXIT:
            self._execute_exit(warp, result)
        elif op is Opcode.BAR:
            warp.at_barrier = True
            result.hit_barrier = True
            self._advance(warp)
        elif op is Opcode.LD:
            self._execute_load(tb, warp, inst, exec_mask, result)
            self._advance(warp)
        elif op is Opcode.ST:
            self._execute_store(tb, warp, inst, exec_mask, result)
            self._advance(warp)
        elif op is Opcode.ATOM:
            self._execute_atomic(tb, warp, inst, exec_mask, result)
            self._advance(warp)
        elif op is Opcode.NOP:
            self._advance(warp)
        elif op is Opcode.SETP:
            value = self._alu(inst, warp, tb)
            warp.registers.write_pred(inst.dest_predicate().name, value, exec_mask)
            result.dest_value = value
            self._advance(warp)
        else:
            value = self._alu(inst, warp, tb)
            warp.registers.write(inst.dest_register().name, value, exec_mask)
            result.dest_value = value
            self._advance(warp)

        self._reg_overrides = {}
        self._pred_overrides = {}
        if self.tracer is not None:
            self.tracer.record(tb, warp, result)
        return result

    def _advance(self, warp: WarpState) -> None:
        warp.pc += INSTRUCTION_BYTES
        warp.maybe_reconverge()

    def _execute_branch(
        self,
        tb: ThreadBlockState,
        warp: WarpState,
        inst: Instruction,
        exec_mask: np.ndarray,
        result: StepResult,
    ) -> None:
        active = warp.active_mask
        taken = exec_mask
        result.branch_taken_mask = taken.copy()
        fallthrough = inst.pc + INSTRUCTION_BYTES
        assert inst.target_pc is not None
        if not taken.any():
            warp.pc = fallthrough
        elif bool(np.array_equal(taken, active)):
            warp.pc = inst.target_pc
        else:
            rpc = self.ctx.program.reconvergence_pc(inst.pc)
            warp.diverge(taken, fallthrough, inst.target_pc, rpc)
        warp.maybe_reconverge()

    def _execute_exit(self, warp: WarpState, result: StepResult) -> None:
        if len(warp.stack) > 1:
            # Divergent lanes finished; resume the other paths.
            warp.stack.pop()
            warp.invalidate_divergence()
        else:
            warp.retire()
            result.retired = True

    def _execute_load(self, tb, warp, inst, exec_mask, result) -> None:
        space = self._space(inst.mem, tb)
        addr = self._address(inst.mem, warp, tb)
        result.mem_addresses = np.where(exec_mask, addr, 0)
        safe_addr = np.where(exec_mask, addr, 0)
        values = space.load(safe_addr, as_float=inst.dtype.is_float)
        warp.registers.write(inst.dest_register().name, values, exec_mask)
        result.dest_value = values

    def _execute_store(self, tb, warp, inst, exec_mask, result) -> None:
        space = self._space(inst.mem, tb)
        addr = self._address(inst.mem, warp, tb)
        result.mem_addresses = np.where(exec_mask, addr, 0)
        values = self._eval(inst.srcs[0], warp, tb)
        values = _to_float(values) if inst.dtype.is_float else _to_int(values)
        if exec_mask.all():
            space.store(addr, values)
        elif exec_mask.any():
            space.store(addr[exec_mask], values[exec_mask])

    def _execute_atomic(self, tb, warp, inst, exec_mask, result) -> None:
        if inst.mem.space is MemSpace.GLOBAL:
            self.global_communication_seen = True
        space = self._space(inst.mem, tb)
        addr = self._address(inst.mem, warp, tb)
        result.mem_addresses = np.where(exec_mask, addr, 0)
        operand = self._eval(inst.srcs[0], warp, tb)
        old = np.zeros(self.ctx.launch.warp_size, dtype=_FLOAT)
        for lane in np.flatnonzero(exec_mask):
            a = np.asarray([addr[lane]])
            old[lane] = space.load(a, as_float=True)[0]
            space.store(a, np.asarray([old[lane] + float(operand[lane])]))
        out = old if inst.dtype.is_float else old.astype(_INT)
        warp.registers.write(inst.dest_register().name, out, exec_mask)
        result.dest_value = out

    # -- ALU / SFU ops ------------------------------------------------------

    def _alu(self, inst: Instruction, warp: WarpState, tb: ThreadBlockState) -> np.ndarray:
        op = inst.opcode
        if op is Opcode.SELP:
            a = self._eval(inst.srcs[0], warp, tb)
            b = self._eval(inst.srcs[1], warp, tb)
            p = self._eval(inst.srcs[2], warp, tb).astype(bool)
            if inst.dtype.is_float:
                return np.where(p, _to_float(a), _to_float(b))
            return np.where(p, _to_int(a), _to_int(b))

        cast = _to_float if inst.dtype.is_float else _to_int
        args = [cast(self._eval(s, warp, tb)) for s in inst.srcs]

        if op in (Opcode.MOV, Opcode.CVT):
            return args[0].copy()
        if op is Opcode.ADD:
            return args[0] + args[1]
        if op is Opcode.SUB:
            return args[0] - args[1]
        if op is Opcode.MUL:
            return args[0] * args[1]
        if op is Opcode.MAD:
            return args[0] * args[1] + args[2]
        if op is Opcode.MIN:
            return np.minimum(args[0], args[1])
        if op is Opcode.MAX:
            return np.maximum(args[0], args[1])
        if op is Opcode.ABS:
            return np.abs(args[0])
        if op is Opcode.NEG:
            return -args[0]
        if op is Opcode.AND:
            return _to_int(args[0]) & _to_int(args[1])
        if op is Opcode.OR:
            return _to_int(args[0]) | _to_int(args[1])
        if op is Opcode.XOR:
            return _to_int(args[0]) ^ _to_int(args[1])
        if op is Opcode.NOT:
            return ~_to_int(args[0])
        if op is Opcode.SHL:
            return _to_int(args[0]) << np.clip(_to_int(args[1]), 0, 63)
        if op is Opcode.SHR:
            return _to_int(args[0]) >> np.clip(_to_int(args[1]), 0, 63)
        if op is Opcode.DIV:
            return self._safe_div(args[0], args[1], inst.dtype)
        if op is Opcode.REM:
            # C-style remainder: a - trunc(a/b)*b (also for floats).
            quot = np.trunc(self._safe_div(args[0], args[1], DType.F32))
            if inst.dtype.is_float:
                return args[0] - quot * args[1]
            return args[0] - quot.astype(_INT) * args[1]
        if op is Opcode.RCP:
            return self._safe_div(np.ones_like(args[0], dtype=_FLOAT), _to_float(args[0]), DType.F32)
        if op is Opcode.SQRT:
            return np.sqrt(np.maximum(_to_float(args[0]), 0.0))
        if op is Opcode.EX2:
            return np.exp2(np.clip(_to_float(args[0]), -1000, 1000))
        if op is Opcode.LG2:
            x = _to_float(args[0])
            return np.log2(np.where(x > 0, x, 1.0))
        if op is Opcode.SIN:
            return np.sin(_to_float(args[0]))
        if op is Opcode.COS:
            return np.cos(_to_float(args[0]))
        if op is Opcode.SETP:
            return self._compare(inst.cmp, args[0], args[1])
        raise ExecutionError(f"unimplemented opcode {op}")

    @staticmethod
    def _safe_div(a: np.ndarray, b: np.ndarray, dtype: DType) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(b != 0, _to_float(a) / np.where(b != 0, _to_float(b), 1.0), 0.0)
        if dtype.is_float:
            return out
        return np.trunc(out).astype(_INT)

    @staticmethod
    def _compare(cmp: CmpOp, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        table = {
            CmpOp.EQ: np.equal,
            CmpOp.NE: np.not_equal,
            CmpOp.LT: np.less,
            CmpOp.LE: np.less_equal,
            CmpOp.GT: np.greater,
            CmpOp.GE: np.greater_equal,
        }
        return table[cmp](a, b)


def run_functional(
    program: Program,
    launch: LaunchConfig,
    memory: GlobalMemory,
    params: Optional[Dict] = None,
    tracer: Optional[Tracer] = None,
    max_steps: int = 50_000_000,
) -> FunctionalEngine:
    """Run a kernel to completion functionally.

    Threadblocks execute one after another; within a TB, live warps are
    stepped round-robin one instruction at a time, which approximates the
    lock-step progression DARSIE's static analysis assumes (Section 4.2)
    and aligns dynamic instruction streams for the limit studies.

    Returns the engine (for executed-instruction counts and the
    global-communication flag).
    """
    ctx = ExecutionContext(
        program=program,
        launch=launch,
        memory=memory,
        params=KernelParams(params or {}),
    )
    engine = FunctionalEngine(ctx, tracer=tracer)
    steps = 0
    for tb_index in range(launch.num_blocks):
        tb = ThreadBlockState(ctx, tb_index)
        if tracer is not None:
            tracer.begin_block(tb)
        while not tb.done:
            progressed = False
            for warp in tb.warps:
                if warp.exited or warp.at_barrier:
                    continue
                inst = program.at(warp.pc)
                engine.execute_instruction(tb, warp, inst)
                progressed = True
                steps += 1
                if steps > max_steps:
                    raise ExecutionError(f"exceeded {max_steps} steps; runaway kernel?")
            if not progressed and not tb.done:
                released = tb.release_barrier_if_ready()
                if not released:
                    raise ExecutionError("deadlock: no runnable warps and barrier not ready")
            else:
                tb.release_barrier_if_ready()
    return engine
