"""Warp state and the SIMT reconvergence stack.

Divergence handling follows the classic immediate-post-dominator stack
(the baseline GPGPU-Sim model the paper builds on): a divergent branch
pushes the not-taken and taken paths with the branch's reconvergence PC;
a warp pops an entry when its PC reaches the entry's reconvergence PC.

DARSIE distinguishes two kinds of divergence (Section 4.5):

- *SIMD (intra-warp) divergence*: lanes of one warp disagree — the warp
  stops participating in instruction skipping;
- *warp-level divergence*: a whole warp takes a different path than the
  TB majority — only that warp leaves the majority path.

:attr:`WarpState.has_simd_divergence` exposes the first condition to the
DARSIE frontend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.simt.grid import WARP_SIZE
from repro.simt.register_file import WarpRegisterFile


@dataclass
class SimtStackEntry:
    """One reconvergence-stack level.

    ``reconv_pc`` of ``None`` means the paths only rejoin at kernel exit.
    """

    pc: int
    active_mask: np.ndarray
    reconv_pc: Optional[int] = None


@dataclass
class WarpState:
    """Architectural state of one warp."""

    warp_id: int                      # index within the TB
    tb_index: int                     # linear TB index within the grid
    registers: WarpRegisterFile = field(default_factory=WarpRegisterFile)
    stack: List[SimtStackEntry] = field(default_factory=list)
    exited: bool = False
    at_barrier: bool = False
    #: lanes that exist (TB size may not be a warp multiple)
    hw_mask: np.ndarray = field(default_factory=lambda: np.ones(WARP_SIZE, dtype=bool))
    #: memoized :attr:`has_simd_divergence` as ``(key, value)``;
    #: invalidated on stack change
    _simd_div: Optional[tuple] = field(default=None, repr=False, compare=False)

    @classmethod
    def create(cls, warp_id: int, tb_index: int, hw_mask: np.ndarray, start_pc: int = 0):
        warp = cls(
            warp_id=warp_id,
            tb_index=tb_index,
            registers=WarpRegisterFile(warp_size=len(hw_mask)),
            hw_mask=hw_mask.copy(),
        )
        warp.stack.append(SimtStackEntry(pc=start_pc, active_mask=hw_mask.copy()))
        return warp

    # -- control state -----------------------------------------------------

    @property
    def top(self) -> SimtStackEntry:
        return self.stack[-1]

    @property
    def pc(self) -> int:
        return self.top.pc

    @pc.setter
    def pc(self, value: int) -> None:
        self.top.pc = value

    @property
    def active_mask(self) -> np.ndarray:
        return self.top.active_mask

    @property
    def active_count(self) -> int:
        return int(np.count_nonzero(self.top.active_mask))

    @property
    def has_simd_divergence(self) -> bool:
        """True when some hardware lanes are inactive (Section 4.5).

        Active masks are never mutated in place — entries are pushed,
        popped, or have their mask rebound — so the answer is cached
        between stack changes instead of re-reducing the mask every
        cycle.  The cache key (stack depth, top-mask identity) makes a
        direct rebinding of ``top.active_mask`` miss on its own; the
        in-simulator mutation paths also invalidate explicitly.
        """
        top = self.stack[-1]
        key = (len(self.stack), id(top.active_mask))
        cached = self._simd_div
        if cached is not None and cached[0] == key:
            return cached[1]
        value = len(self.stack) > 1 or bool(np.any(self.hw_mask & ~top.active_mask))
        self._simd_div = (key, value)
        return value

    def invalidate_divergence(self) -> None:
        """Drop the memoized divergence answer after a stack mutation."""
        self._simd_div = None

    def __getstate__(self):
        """Pickle without the divergence memo: its key embeds ``id()`` of
        the top active mask, and a reconstituted object's new mask could
        coincidentally reuse a stale id — a recompute on first probe is
        cheap and always correct."""
        state = self.__dict__.copy()
        state["_simd_div"] = None
        return state

    def maybe_reconverge(self) -> bool:
        """Pop stack entries whose reconvergence PC has been reached."""
        popped = False
        while len(self.stack) > 1 and self.top.reconv_pc is not None and self.pc == self.top.reconv_pc:
            self.stack.pop()
            popped = True
        if popped:
            self._simd_div = None
        return popped

    def diverge(
        self,
        taken_mask: np.ndarray,
        not_taken_pc: int,
        taken_pc: int,
        reconv_pc: Optional[int],
    ) -> None:
        """Split the current top entry at a divergent branch.

        The current entry becomes the reconvergence continuation; the
        not-taken path is pushed first so the taken path executes first
        (matching GPGPU-Sim's convention — the order is arbitrary but
        must be deterministic).
        """
        self._simd_div = None
        current = self.top
        not_taken_mask = current.active_mask & ~taken_mask
        if reconv_pc is None:
            # Rejoin only at exit: turn the current entry into the taken
            # path and push the not-taken path to run afterwards.
            current.pc = taken_pc
            current.active_mask = taken_mask
            self.stack.append(
                SimtStackEntry(pc=not_taken_pc, active_mask=not_taken_mask, reconv_pc=None)
            )
            # Execute not-taken first (it is on top); either order is legal.
            return
        current.pc = reconv_pc
        self.stack.append(
            SimtStackEntry(pc=not_taken_pc, active_mask=not_taken_mask, reconv_pc=reconv_pc)
        )
        self.stack.append(
            SimtStackEntry(pc=taken_pc, active_mask=taken_mask, reconv_pc=reconv_pc)
        )

    def retire(self) -> None:
        self.exited = True
        self.at_barrier = False
