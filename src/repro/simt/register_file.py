"""Per-warp architectural register state.

Each warp owns a private 32-lane instance of every named register
(Section 3: "each warp has a set of private vector registers that store
per-thread scalar values in each vector lane").  Integer values are held
as int64 lanes and floats as float64; the producing instruction's type
suffix decides which, as in PTXPlus.

Predicates live in a separate per-warp space of boolean lane vectors.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.simt.grid import WARP_SIZE


class WarpRegisterFile:
    """Vector + predicate register storage for a single warp."""

    def __init__(self, warp_size: int = WARP_SIZE):
        self.warp_size = warp_size
        self._regs: Dict[str, np.ndarray] = {}
        self._preds: Dict[str, np.ndarray] = {}

    # -- vector registers --------------------------------------------------

    def read(self, name: str) -> np.ndarray:
        """Current value of register ``name`` (zeros if never written)."""
        value = self._regs.get(name)
        if value is None:
            value = np.zeros(self.warp_size, dtype=np.int64)
            self._regs[name] = value
        return value

    def write(self, name: str, value: np.ndarray, mask: Optional[np.ndarray] = None) -> None:
        """Write ``value`` into ``name`` under an optional lane ``mask``.

        A masked write merges new lanes over the previous contents,
        promoting storage to float64 if either side is float.
        """
        value = np.asarray(value)
        if value.shape != (self.warp_size,):
            value = np.broadcast_to(value, (self.warp_size,)).copy()
        if mask is None or bool(np.all(mask)):
            self._regs[name] = value.copy()
            return
        old = self.read(name)
        if old.dtype != value.dtype:
            merged = np.where(mask, value.astype(np.float64), old.astype(np.float64))
            if not value.dtype.kind == "f" and not old.dtype.kind == "f":
                merged = merged.astype(np.int64)
        else:
            merged = np.where(mask, value, old)
        self._regs[name] = merged

    def names(self):
        return tuple(self._regs)

    # -- predicate registers -------------------------------------------------

    def read_pred(self, name: str) -> np.ndarray:
        value = self._preds.get(name)
        if value is None:
            value = np.zeros(self.warp_size, dtype=bool)
            self._preds[name] = value
        return value

    def write_pred(self, name: str, value: np.ndarray, mask: Optional[np.ndarray] = None) -> None:
        value = np.asarray(value, dtype=bool)
        if mask is None or bool(np.all(mask)):
            self._preds[name] = value.copy()
        else:
            self._preds[name] = np.where(mask, value, self.read_pred(name))

    def snapshot(self) -> Dict[str, np.ndarray]:
        """Copy of all vector registers (used by tests and the tracer)."""
        return {name: value.copy() for name, value in self._regs.items()}
