"""Launch geometry: grids, threadblocks, and the warp/thread-ID layout.

The layout rules here are the root cause of the redundancy DARSIE
exploits (Section 2): scalar threads are linearised inside a TB with the
x index varying fastest, then chopped into consecutive groups of
``warp_size``.  When ``blockDim.x`` divides the warp size (power of two,
<= warp size), every warp in the TB sees the *same* ``tid.x`` vector —
the seed of affine and unstructured TB-wide redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

#: Pascal warp width (Table 2: 32 SIMD width).
WARP_SIZE = 32


@dataclass(frozen=True)
class Dim3:
    """A CUDA-style three-component extent (x, y, z)."""

    x: int
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise ValueError(f"dimensions must be >= 1, got {self}")

    @property
    def count(self) -> int:
        return self.x * self.y * self.z

    @property
    def dimensionality(self) -> int:
        """1, 2 or 3 — how many axes exceed one element."""
        return max(1, sum(1 for v in (self.x, self.y, self.z) if v > 1))

    def __iter__(self) -> Iterator[int]:
        return iter((self.x, self.y, self.z))

    def __str__(self) -> str:
        return f"({self.x},{self.y},{self.z})"


def dim3(value) -> Dim3:
    """Coerce an int, tuple or Dim3 into a :class:`Dim3`."""
    if isinstance(value, Dim3):
        return value
    if isinstance(value, int):
        return Dim3(value)
    return Dim3(*value)


@dataclass(frozen=True)
class LaunchConfig:
    """Grid and block dimensions of one kernel launch."""

    grid_dim: Dim3
    block_dim: Dim3
    warp_size: int = WARP_SIZE

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid_dim", dim3(self.grid_dim))
        object.__setattr__(self, "block_dim", dim3(self.block_dim))
        if self.warp_size < 1:
            raise ValueError("warp_size must be positive")

    @property
    def threads_per_block(self) -> int:
        return self.block_dim.count

    @property
    def warps_per_block(self) -> int:
        return -(-self.threads_per_block // self.warp_size)

    @property
    def num_blocks(self) -> int:
        return self.grid_dim.count

    @property
    def total_warps(self) -> int:
        return self.num_blocks * self.warps_per_block

    def block_index(self, linear: int) -> Dim3:
        """The (x, y, z) block index of linear block ``linear``."""
        gx, gy, _gz = self.grid_dim
        x = linear % gx
        y = (linear // gx) % gy
        z = linear // (gx * gy)
        return _raw_dim3(x, y, z)

    def block_indices(self) -> Iterator[Tuple[int, Dim3]]:
        for linear in range(self.num_blocks):
            yield linear, self.block_index(linear)


def _raw_dim3(x: int, y: int, z: int) -> Dim3:
    """Dim3 carrying zero-based indices (bypasses the >=1 validation)."""
    d = object.__new__(Dim3)
    object.__setattr__(d, "x", x)
    object.__setattr__(d, "y", y)
    object.__setattr__(d, "z", z)
    return d


class WarpLayout:
    """Per-warp thread-index vectors for one launch configuration.

    For warp ``w`` of a TB, lane ``l`` holds the scalar thread with linear
    id ``w * warp_size + l``; linear ids map to (x, y, z) with x fastest.
    Lanes past the TB's thread count are inactive (their index values are
    zero and their bit is clear in :meth:`active_mask`).
    """

    def __init__(self, config: LaunchConfig):
        self.config = config
        bx, by, bz = config.block_dim
        n = config.threads_per_block
        w = config.warp_size
        padded = config.warps_per_block * w
        linear = np.arange(padded, dtype=np.int64)
        valid = linear < n
        clamped = np.where(valid, linear, 0)
        self._tid_x = (clamped % bx).reshape(-1, w)
        self._tid_y = ((clamped // bx) % by).reshape(-1, w)
        self._tid_z = (clamped // (bx * by)).reshape(-1, w)
        self._valid = valid.reshape(-1, w)

    def tid(self, warp: int, axis: str) -> np.ndarray:
        """The 32-lane ``tid.<axis>`` vector of warp ``warp``."""
        table = {"x": self._tid_x, "y": self._tid_y, "z": self._tid_z}
        return table[axis][warp].copy()

    def active_mask(self, warp: int) -> np.ndarray:
        """Boolean lane mask of threads that exist in this warp."""
        return self._valid[warp].copy()

    def lane_ids(self) -> np.ndarray:
        return np.arange(self.config.warp_size, dtype=np.int64)

    @property
    def warps_per_block(self) -> int:
        return self.config.warps_per_block


def tidx_is_tb_redundant(block_dim: Dim3, warp_size: int = WARP_SIZE) -> bool:
    """The launch-time promotion criterion of Section 4.2.

    ``tid.x`` repeats identically in every warp of the TB iff the kernel
    has multi-dimensional TBs and the x extent is a power of two no wider
    than the warp (so warps never straddle an x-row boundary unevenly).
    """
    x = block_dim.x
    multi_dimensional = block_dim.y > 1 or block_dim.z > 1
    power_of_two = x > 0 and (x & (x - 1)) == 0
    return multi_dimensional and power_of_two and x <= warp_size


def tidy_is_tb_redundant(block_dim: Dim3, warp_size: int = WARP_SIZE) -> bool:
    """3D extension of the promotion criterion (Section 2's observation).

    ``tid.y`` repeats identically in every warp iff the TB is 3D and each
    warp covers whole (x, y) planes identically: ``x*y`` must be a power
    of two no wider than the warp.  This implies the ``tid.x`` criterion.
    """
    xy = block_dim.x * block_dim.y
    power_of_two = xy > 0 and (xy & (xy - 1)) == 0
    return block_dim.z > 1 and power_of_two and xy <= warp_size
