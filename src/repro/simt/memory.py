"""Memory spaces of the machine model.

All spaces are byte-addressed with 4-byte words, matching the 32-bit lane
width of the register file.  Values are held in float64 storage: 32-bit
integers are represented exactly, and this keeps load/store semantics
uniform across integer and floating-point kernels.

``GlobalMemory`` offers a tiny allocator so workloads can place arrays and
pass base addresses as kernel parameters — the same calling convention the
paper's benchmarks use.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

WORD_BYTES = 4


class MemoryError_(Exception):
    """Out-of-range or misaligned access."""


def _check_addr(addr: np.ndarray, limit_bytes: int, space: str) -> np.ndarray:
    if addr.size and (addr.min() < 0 or addr.max() >= limit_bytes):
        raise MemoryError_(
            f"{space} access out of range: [{addr.min()}, {addr.max()}] "
            f"outside [0, {limit_bytes})"
        )
    if addr.size and np.any(addr % WORD_BYTES):
        raise MemoryError_(f"misaligned {space} access")
    return addr >> 2


class _WordSpace:
    """Common word-array storage for global and shared memory."""

    def __init__(self, size_words: int, name: str):
        self.name = name
        self.words = np.zeros(size_words, dtype=np.float64)

    @property
    def size_bytes(self) -> int:
        return self.words.size * WORD_BYTES

    def load(self, byte_addr: np.ndarray, as_float: bool) -> np.ndarray:
        """Gather one word per element of ``byte_addr``."""
        idx = _check_addr(np.asarray(byte_addr, dtype=np.int64), self.size_bytes, self.name)
        values = self.words[idx]
        return values if as_float else values.astype(np.int64)

    def store(self, byte_addr: np.ndarray, values: np.ndarray) -> None:
        """Scatter ``values`` (later lanes win on address collisions)."""
        idx = _check_addr(np.asarray(byte_addr, dtype=np.int64), self.size_bytes, self.name)
        self.words[idx] = np.asarray(values, dtype=np.float64)

    def read_array(self, byte_addr: int, count: int, dtype=np.float64) -> np.ndarray:
        """Bulk host-side read of ``count`` words starting at ``byte_addr``."""
        start = byte_addr >> 2
        out = self.words[start : start + count]
        if np.issubdtype(np.dtype(dtype), np.integer):
            return out.astype(np.int64)
        return out.copy()

    def write_array(self, byte_addr: int, values) -> None:
        """Bulk host-side write starting at ``byte_addr``."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        start = byte_addr >> 2
        if start < 0 or start + arr.size > self.words.size:
            raise MemoryError_(f"host write out of range in {self.name}")
        self.words[start : start + arr.size] = arr


class GlobalMemory(_WordSpace):
    """Device global memory with a bump allocator for workload setup."""

    def __init__(self, size_words: int = 1 << 20):
        super().__init__(size_words, "global")
        self._brk = 0
        self._allocations: Dict[str, int] = {}

    def alloc(self, words: int, name: Optional[str] = None, align_words: int = 32) -> int:
        """Reserve ``words`` words; returns the base *byte* address.

        Allocations are aligned to ``align_words`` words (128 bytes by
        default — one memory transaction line) so coalescing behaviour is
        realistic.
        """
        self._brk = -(-self._brk // align_words) * align_words
        base = self._brk
        if base + words > self.words.size:
            raise MemoryError_("global memory exhausted")
        self._brk = base + words
        byte_base = base * WORD_BYTES
        if name is not None:
            self._allocations[name] = byte_base
        return byte_base

    def alloc_array(self, values, name: Optional[str] = None) -> int:
        """Allocate and initialise from a numpy array; returns byte base."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        base = self.alloc(arr.size, name)
        self.write_array(base, arr)
        return base

    def base_of(self, name: str) -> int:
        return self._allocations[name]


class SharedMemory(_WordSpace):
    """Per-threadblock scratchpad."""

    def __init__(self, size_words: int = 96 * 1024 // 4):
        # Table 2: 96KB shared memory per SM; one TB gets at most all of it.
        super().__init__(size_words, "shared")


class KernelParams:
    """Launch parameter values, uniform across the grid.

    The paper marks "global kernel input parameters" definitely redundant
    (Section 4.2); this class is the runtime source of those values.
    """

    def __init__(self, values: Optional[Dict[str, Union[int, float]]] = None):
        self._values: Dict[str, Union[int, float]] = dict(values or {})

    def __getitem__(self, name: str) -> Union[int, float]:
        try:
            return self._values[name]
        except KeyError:
            raise KeyError(f"kernel parameter {name!r} was not provided") from None

    def __setitem__(self, name: str, value: Union[int, float]) -> None:
        self._values[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def names(self):
        return tuple(self._values)

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """Plain-dict copy of the parameter values (oracle/resume aid)."""
        return dict(self._values)

    def validate_against(self, declared) -> None:
        """Raise if any declared kernel parameter is missing a value."""
        missing = [p for p in declared if p not in self._values]
        if missing:
            raise KeyError(f"missing kernel parameter values: {missing}")
