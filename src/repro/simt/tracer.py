"""Execution tracing for the redundancy limit studies.

The taxonomy studies (Figures 1 and 2) need, for every dynamically
executed instruction, the *pattern* its output vector makes and whether
that pattern repeats across warps (TB-wide) or across the whole grid.

Storing every 32-lane vector would be prohibitive, so the tracer folds
each output into a compact :class:`ValueSummary` at record time:

- ``uniform``  — every lane holds the same scalar; summarised by value;
- ``affine``   — lanes form ``base + stride * lane`` with stride != 0;
  summarised by ``(base, stride)``;
- ``unstructured`` — anything else; summarised by a digest of the raw
  lane bytes.

Two warps executed the same redundant instruction iff their summaries
compare equal — exactly the paper's definition: affine redundancy is a
repeated ``(base, stride)`` pair, unstructured redundancy is equal vector
values "with no discernible pattern" (Section 2).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.isa.instructions import Instruction, Opcode, SFU_OPS

#: Summary pattern kinds.
UNIFORM = "uniform"
AFFINE = "affine"
UNSTRUCTURED = "unstructured"
NONE = "none"          # instruction produced no register value


@dataclass(frozen=True)
class ValueSummary:
    """Compact, comparable description of one 32-lane output vector."""

    kind: str
    base: float = 0.0
    stride: float = 0.0
    digest: int = 0

    @classmethod
    def of(cls, values: np.ndarray) -> "ValueSummary":
        if values.dtype == bool:
            values = values.astype(np.int64)
        first = values[0]
        if np.all(values == first):
            return cls(kind=UNIFORM, base=float(first))
        diffs = np.diff(values)
        if np.all(diffs == diffs[0]):
            return cls(kind=AFFINE, base=float(first), stride=float(diffs[0]))
        return cls(kind=UNSTRUCTURED, digest=zlib.crc32(np.ascontiguousarray(values).tobytes()))

    @classmethod
    def none(cls) -> "ValueSummary":
        return cls(kind=NONE)


@dataclass
class DynamicInstruction:
    """One executed warp instruction, as seen by the limit study."""

    __slots__ = ("tb_index", "warp_id", "pc", "occurrence", "opclass", "summary", "divergent")

    tb_index: int
    warp_id: int
    pc: int
    occurrence: int
    opclass: str
    summary: ValueSummary
    divergent: bool


def _opclass(inst: Instruction) -> str:
    if inst.opcode is Opcode.LD:
        return "load"
    if inst.opcode is Opcode.ST:
        return "store"
    if inst.opcode is Opcode.ATOM:
        return "atomic"
    if inst.is_branch:
        return "branch"
    if inst.opcode in (Opcode.BAR, Opcode.EXIT, Opcode.NOP):
        return "control"
    if inst.opcode in SFU_OPS:
        return "sfu"
    return "alu"


class Tracer:
    """Records executed instructions into an :class:`ExecutionTrace`."""

    def __init__(self) -> None:
        self.trace = ExecutionTrace()
        self._occurrence: Dict[Tuple[int, int, int], int] = {}

    def begin_block(self, tb) -> None:
        self.trace.warps_per_block = max(self.trace.warps_per_block, len(tb.warps))
        self.trace.num_blocks = max(self.trace.num_blocks, tb.tb_index + 1)

    def record(self, tb, warp, result) -> None:
        key = (tb.tb_index, warp.warp_id, result.inst.pc)
        occ = self._occurrence.get(key, 0)
        self._occurrence[key] = occ + 1
        if result.dest_value is not None:
            values = np.asarray(result.dest_value)
            # A partial warp's dead lanes hold whatever the ALU computed
            # over stale inputs; they are never architecturally written,
            # so they must not break uniformity (or fabricate it).
            if values.shape == warp.hw_mask.shape and not warp.hw_mask.all():
                values = values[warp.hw_mask]
            summary = ValueSummary.of(values)
        else:
            summary = ValueSummary.none()
        divergent = bool(np.any(warp.hw_mask & ~result.exec_mask))
        self.trace.records.append(
            DynamicInstruction(
                tb_index=tb.tb_index,
                warp_id=warp.warp_id,
                pc=result.inst.pc,
                occurrence=occ,
                opclass=_opclass(result.inst),
                summary=summary,
                divergent=divergent,
            )
        )


class ExecutionTrace:
    """All dynamic instructions of one functional kernel run."""

    def __init__(self) -> None:
        self.records: List[DynamicInstruction] = []
        self.warps_per_block: int = 0
        self.num_blocks: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def total_executed(self) -> int:
        return len(self.records)

    def grouped_by_tb(self) -> Iterator[Tuple[Tuple[int, int, int], List[DynamicInstruction]]]:
        """Group records by (tb, pc, occurrence) — one group per static
        instruction instance, holding the per-warp executions."""
        groups: Dict[Tuple[int, int, int], List[DynamicInstruction]] = {}
        for rec in self.records:
            groups.setdefault((rec.tb_index, rec.pc, rec.occurrence), []).append(rec)
        return iter(groups.items())

    def grouped_by_grid(self) -> Iterator[Tuple[Tuple[int, int], List[DynamicInstruction]]]:
        """Group records by (pc, occurrence) across the entire grid."""
        groups: Dict[Tuple[int, int], List[DynamicInstruction]] = {}
        for rec in self.records:
            groups.setdefault((rec.pc, rec.occurrence), []).append(rec)
        return iter(groups.items())
