"""The typed run-configuration spine.

One run of the reproduction is fully described by a :class:`RunConfig`:
which workload at which scale, under which named variant, on which
:class:`~repro.timing.GPUConfig`, with which DARSIE knobs and energy
model.  Every layer that needs to name a run — the sweep cache, the
``BENCH_*.json`` baselines, the golden-stats files, the CLI — shares
this one description instead of re-plumbing strings and tuples.

Canonical serialization
-----------------------
``RunConfig.to_dict`` emits a *canonical* plain-data form: identity
fields (``abbr``/``variant``/``scale``) always appear, nested configs
appear as the fields that differ from their defaults, and everything
equal to a default is elided.  Two configs describe the same run iff
their canonical dicts are equal, which is exactly the property the
sweep-cache fingerprint relies on.  ``from_dict`` is the strict
inverse: unknown keys and type mismatches raise :class:`ConfigError`
(naming the valid fields), and ``from_dict(to_dict(c)) == c`` for every
config — the round-trip contract the property tests pin down.

Dotted-path overrides
---------------------
:func:`apply_overrides` updates a config through dotted paths —
``gpu.l1_lines=512``, ``darsie.sync_on_write=true``, ``scale=tiny`` —
with values coerced to the target field's type.  This is what
``python -m repro ... --set PATH=VALUE`` and the generalized
``ablation_sweep`` ride on: any axis of the spine is sweepable without
writing a new driver.
"""

from __future__ import annotations

import dataclasses
import json
import typing
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.core.darsie import DarsieConfig
from repro.timing.config import GPUConfig, small_config

#: The GPU every run uses unless told otherwise (mirrors
#: :class:`~repro.harness.runner.WorkloadRunner`'s historical default).
DEFAULT_GPU = small_config(num_sms=1)

#: Default energy-model name (see :data:`repro.energy.ENERGY_MODELS`).
DEFAULT_ENERGY = "pascal"


@dataclass(frozen=True)
class ExecPolicy:
    """How a sweep *executes* a run — never what the run computes.

    These knobs shape scheduling (timeouts, retries, quarantine) and are
    therefore serialized with the config for round-trip fidelity but
    **excluded from the sweep-cache identity**: two runs differing only
    in policy produce bit-identical results and share a cache entry (see
    :func:`repro.harness.parallel.cache_key`).
    """

    #: per-spec wall-clock budget in seconds; 0 disables the timeout.
    #: Enforced only under the process pool — a single-process sweep
    #: cannot preempt its own simulation.
    timeout_s: float = 0.0
    #: how many times a retryable failure (transient exception, timeout,
    #: worker crash) is re-attempted; 0 disables retries.
    max_retries: int = 0
    #: exponential-backoff floor between retries (decorrelated jitter).
    backoff_base_s: float = 0.05
    #: backoff ceiling.
    backoff_cap_s: float = 2.0
    #: quarantine a spec after this many hard worker crashes — it is
    #: recorded as failed and never rescheduled, so one poison spec
    #: cannot wedge the sweep in a crash loop.
    quarantine_after: int = 2
    #: write a crash-safe simulation checkpoint every N simulated cycles
    #: (see :mod:`repro.timing.checkpoint`); 0 disables checkpointing.
    #: Retries of a timed-out or crashed spec resume from the newest
    #: valid checkpoint and still produce bit-identical results.
    checkpoint_interval_cycles: int = 0
    #: override the simulated-cycle budget (``GPUConfig.max_cycles``)
    #: for sweep runs; 0 keeps the GPU config's own budget.  A budget
    #: overrun raises a structured ``DeadlockError`` with a per-warp
    #: diagnostic dump instead of hanging until the wall-clock timeout.
    max_cycles: int = 0
    #: fsync the resume journal after every appended record, trading
    #: sweep throughput for journal durability across power loss.
    journal_fsync: bool = False


class ConfigError(ValueError):
    """A config dict or override does not fit the typed spine."""


# ---------------------------------------------------------------------------
# Flat-dataclass (de)serialization helpers
# ---------------------------------------------------------------------------

_hints_memo: Dict[type, Dict[str, type]] = {}


def config_fields(cls: type) -> Dict[str, type]:
    """Resolved ``{field name: type}`` for a flat config dataclass."""
    if cls not in _hints_memo:
        hints = typing.get_type_hints(cls)
        _hints_memo[cls] = {f.name: hints[f.name] for f in dataclasses.fields(cls)}
    return _hints_memo[cls]


def _unwrap_optional(typ: type) -> Tuple[type, bool]:
    """``Optional[T]`` -> ``(T, True)``; anything else -> ``(typ, False)``."""
    if typing.get_origin(typ) is typing.Union:
        args = [a for a in typing.get_args(typ) if a is not type(None)]
        if len(args) == 1:
            return args[0], True
    return typ, False


def _check_value(value: Any, typ: type, path: str) -> Any:
    """Type-check one already-parsed value (bool is never an int here)."""
    typ, optional = _unwrap_optional(typ)
    if optional and value is None:
        return None
    if typ is bool:
        if not isinstance(value, bool):
            raise ConfigError(f"{path}: expected bool, got {value!r}")
        return value
    if typ is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(f"{path}: expected int, got {value!r}")
        return value
    if typ is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigError(f"{path}: expected float, got {value!r}")
        return float(value)
    if typ is str:
        if not isinstance(value, str):
            raise ConfigError(f"{path}: expected str, got {value!r}")
        return value
    raise ConfigError(f"{path}: unsupported config field type {typ!r}")


def _coerce(value: Any, typ: type, path: str) -> Any:
    """Coerce an override value (possibly a CLI string) to a field type."""
    inner, optional = _unwrap_optional(typ)
    if optional:
        if value is None or (isinstance(value, str) and value.strip().lower() in ("none", "null")):
            return None
        typ = inner
    if not isinstance(value, str) or typ is str:
        return _check_value(value, typ, path)
    text = value.strip()
    if typ is bool:
        low = text.lower()
        if low in ("true", "1", "yes", "on"):
            return True
        if low in ("false", "0", "no", "off"):
            return False
        raise ConfigError(f"{path}: cannot parse {value!r} as bool "
                          "(use true/false, 1/0, yes/no, on/off)")
    try:
        if typ is int:
            return int(text, 0)
        if typ is float:
            return float(text)
    except ValueError:
        raise ConfigError(
            f"{path}: cannot parse {value!r} as {typ.__name__}"
        ) from None
    raise ConfigError(f"{path}: unsupported config field type {typ!r}")


def flat_to_dict(obj: Any, defaults: Any) -> Dict[str, Any]:
    """Canonical dict of ``obj``: only the fields differing from ``defaults``."""
    out = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if value != getattr(defaults, f.name):
            out[f.name] = value
    return out


def flat_from_dict(cls: type, data: Any, defaults: Any, path: str) -> Any:
    """Inverse of :func:`flat_to_dict`; rejects unknown keys and bad types."""
    if not isinstance(data, Mapping):
        raise ConfigError(f"{path}: expected a mapping, got {data!r}")
    hints = config_fields(cls)
    unknown = set(data) - set(hints)
    if unknown:
        raise ConfigError(
            f"{path}: unknown key(s) {sorted(unknown)}; "
            f"valid fields: {sorted(hints)}"
        )
    kwargs = {
        name: _check_value(value, hints[name], f"{path}.{name}")
        for name, value in data.items()
    }
    return replace(defaults, **kwargs)


def gpu_to_dict(gpu: GPUConfig) -> Dict[str, Any]:
    """Canonical (default-elided) dict form of a :class:`GPUConfig`."""
    return flat_to_dict(gpu, DEFAULT_GPU)


def gpu_from_dict(data: Mapping) -> GPUConfig:
    return flat_from_dict(GPUConfig, data, DEFAULT_GPU, "gpu")


def darsie_to_dict(cfg: DarsieConfig) -> Dict[str, Any]:
    return flat_to_dict(cfg, DarsieConfig())


def darsie_from_dict(data: Mapping) -> DarsieConfig:
    return flat_from_dict(DarsieConfig, data, DarsieConfig(), "darsie")


def policy_to_dict(policy: ExecPolicy) -> Dict[str, Any]:
    return flat_to_dict(policy, ExecPolicy())


def policy_from_dict(data: Mapping) -> ExecPolicy:
    return flat_from_dict(ExecPolicy, data, ExecPolicy(), "policy")


# ---------------------------------------------------------------------------
# RunConfig
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunConfig:
    """One timing run, fully described by typed, serializable data."""

    #: Table 1 workload abbreviation (e.g. ``"MM"``)
    abbr: str
    #: variant name in the :data:`repro.variants.REGISTRY` (or an ad-hoc
    #: label when :attr:`darsie` carries explicit knobs)
    variant: str = "BASE"
    #: workload problem size (:data:`repro.workloads.SCALES`)
    scale: str = "small"
    #: simulated GPU (defaults to the historical 1-SM experiment config)
    gpu: GPUConfig = DEFAULT_GPU
    #: explicit DARSIE knobs; ``None`` means "the variant's defaults"
    darsie: Optional[DarsieConfig] = None
    #: energy-model name (:data:`repro.energy.ENERGY_MODELS`)
    energy: str = DEFAULT_ENERGY
    #: execution policy (timeouts/retries/quarantine) — serialized for
    #: round-trip fidelity, excluded from the cache identity
    policy: ExecPolicy = ExecPolicy()

    _TOP_KEYS = ("abbr", "variant", "scale", "gpu", "darsie", "energy", "policy")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-data form: identity always, defaults elided."""
        out: Dict[str, Any] = {
            "abbr": self.abbr,
            "variant": self.variant,
            "scale": self.scale,
        }
        gpu = gpu_to_dict(self.gpu)
        if gpu:
            out["gpu"] = gpu
        if self.darsie is not None:
            out["darsie"] = darsie_to_dict(self.darsie)
        if self.energy != DEFAULT_ENERGY:
            out["energy"] = self.energy
        policy = policy_to_dict(self.policy)
        if policy:
            out["policy"] = policy
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunConfig":
        """Strict inverse of :meth:`to_dict`."""
        if not isinstance(data, Mapping):
            raise ConfigError(f"run config: expected a mapping, got {data!r}")
        unknown = set(data) - set(cls._TOP_KEYS)
        if unknown:
            raise ConfigError(
                f"run config: unknown key(s) {sorted(unknown)}; "
                f"valid fields: {list(cls._TOP_KEYS)}"
            )
        if "abbr" not in data:
            raise ConfigError("run config: missing required key 'abbr'")
        kwargs: Dict[str, Any] = {}
        for name in ("abbr", "variant", "scale", "energy"):
            if name in data:
                kwargs[name] = _check_value(data[name], str, name)
        if "gpu" in data:
            kwargs["gpu"] = gpu_from_dict(data["gpu"])
        if "darsie" in data:
            kwargs["darsie"] = darsie_from_dict(data["darsie"])
        if "policy" in data:
            kwargs["policy"] = policy_from_dict(data["policy"])
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """The canonical serialization as a stable JSON string — the
        single identity the sweep cache fingerprints."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def with_overrides(self, overrides: Mapping[str, Any]) -> "RunConfig":
        return apply_overrides(self, overrides)

    @property
    def label(self) -> str:
        return f"{self.abbr}/{self.variant}@{self.scale}"


# ---------------------------------------------------------------------------
# Dotted-path overrides
# ---------------------------------------------------------------------------

#: top-level RunConfig fields assignable via overrides
_TOP_OVERRIDES = ("abbr", "variant", "scale", "energy")

#: nested config roots addressable as ``root.field``
_NESTED_ROOTS: Dict[str, type] = {
    "gpu": GPUConfig,
    "darsie": DarsieConfig,
    "policy": ExecPolicy,
}


def valid_override_paths() -> Tuple[str, ...]:
    """Every dotted path :func:`apply_overrides` understands."""
    paths = list(_TOP_OVERRIDES)
    paths += [f"gpu.{name}" for name in config_fields(GPUConfig)]
    paths += [f"darsie.{name}" for name in config_fields(DarsieConfig)]
    paths += [f"policy.{name}" for name in config_fields(ExecPolicy)]
    return tuple(paths)


def parse_overrides(pairs: Iterable[str]) -> Dict[str, str]:
    """Parse ``PATH=VALUE`` strings (CLI ``--set``) into an override map."""
    out: Dict[str, str] = {}
    for item in pairs:
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ConfigError(
                f"override {item!r} must have the form PATH=VALUE "
                "(e.g. gpu.l1_lines=512)"
            )
        out[key] = value.strip()
    return out


def apply_overrides(cfg: RunConfig, overrides: Mapping[str, Any]) -> RunConfig:
    """A copy of ``cfg`` with every dotted-path override applied.

    Values may be CLI strings (coerced to the field's type) or already
    typed.  Unknown paths raise :class:`ConfigError` naming the valid
    fields of the root they tried to address.
    """
    for path, raw in overrides.items():
        root, _, leaf = path.partition(".")
        if root in _NESTED_ROOTS and leaf:
            hints = config_fields(_NESTED_ROOTS[root])
            if leaf not in hints:
                raise ConfigError(
                    f"unknown override path {path!r}; "
                    f"valid {root} fields: {sorted(hints)}"
                )
            value = _coerce(raw, hints[leaf], path)
            if root == "gpu":
                cfg = replace(cfg, gpu=replace(cfg.gpu, **{leaf: value}))
            elif root == "policy":
                cfg = replace(cfg, policy=replace(cfg.policy, **{leaf: value}))
            else:
                base = cfg.darsie if cfg.darsie is not None else DarsieConfig()
                cfg = replace(cfg, darsie=replace(base, **{leaf: value}))
        elif not leaf and root in _TOP_OVERRIDES:
            cfg = replace(cfg, **{root: _coerce(raw, str, root)})
        else:
            raise ConfigError(
                f"unknown override path {path!r}; valid paths: "
                f"{', '.join(_TOP_OVERRIDES)}, gpu.<field>, darsie.<field>, "
                f"policy.<field> "
                f"(gpu fields: {sorted(config_fields(GPUConfig))}; "
                f"darsie fields: {sorted(config_fields(DarsieConfig))}; "
                f"policy fields: {sorted(config_fields(ExecPolicy))})"
            )
    return cfg
