"""Control-flow graph view for the static-analysis layer.

:class:`repro.isa.program.Program` already partitions instructions into
basic blocks and computes reconvergence points for the SIMT stack.  The
analyses in :mod:`repro.staticlib` need more graph structure than the
executor does — predecessor maps, reachability, deterministic traversal
orders, and a distinction between *explicit* kernel exit (an ``exit``
instruction) and *implicit* exit (control falling off the end of the
instruction stream).  :class:`ControlFlowGraph` derives all of that from
a ``Program`` without mutating it, and is deliberately tolerant of
malformed programs (e.g. a branch whose target was corrupted to a
non-instruction PC) so the linter can report on them instead of
crashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.isa.instructions import INSTRUCTION_BYTES
from repro.isa.program import BasicBlock, Program

#: Virtual node representing kernel completion (matches
#: :data:`repro.isa.program.EXIT_NODE`).
EXIT_BLOCK = -1


@dataclass(frozen=True)
class ControlFlowGraph:
    """Immutable CFG over a program's basic blocks.

    Nodes are basic-block indices plus the virtual :data:`EXIT_BLOCK`.
    Edge construction distinguishes branch-taken, fallthrough and exit
    edges; a predicated ``exit`` contributes *both* an exit edge and a
    fallthrough edge (the lanes whose guard is false continue).
    """

    program: Program
    #: block index -> successor block indices (may include EXIT_BLOCK)
    succ: Dict[int, Tuple[int, ...]]
    #: block index (incl. EXIT_BLOCK) -> predecessor block indices
    pred: Dict[int, Tuple[int, ...]]
    #: blocks reachable from the entry block
    reachable: FrozenSet[int]
    #: reverse postorder over reachable blocks, entry first
    rpo: Tuple[int, ...]
    #: reachable-or-not blocks whose control can run off the end of the
    #: instruction stream (implicit exit with no ``exit`` instruction)
    fallthrough_exit: FrozenSet[int]
    #: PCs of branches whose target is not a valid instruction PC
    broken_branch_pcs: Tuple[int, ...]

    # -- construction ----------------------------------------------------

    @classmethod
    def from_program(cls, program: Program) -> "ControlFlowGraph":
        pc_to_block: Dict[int, int] = {}
        for block in program.blocks:
            for inst in block:
                pc_to_block[inst.pc] = block.index

        succ: Dict[int, List[int]] = {b.index: [] for b in program.blocks}
        fallthrough_exit = set()
        broken: List[int] = []
        for block in program.blocks:
            term = block.terminator
            edges = succ[block.index]
            if term.is_exit and term.guard is None:
                edges.append(EXIT_BLOCK)
                continue
            if term.is_exit:
                # Predicated exit: some lanes leave, the rest fall through.
                edges.append(EXIT_BLOCK)
            if term.is_branch:
                tgt = term.target_pc
                if tgt is None or tgt not in pc_to_block:
                    broken.append(term.pc)
                else:
                    edges.append(pc_to_block[tgt])
                if term.guard is None:
                    continue  # unconditional branch: no fallthrough
            nxt = term.pc + INSTRUCTION_BYTES
            if nxt < program.end_pc:
                edges.append(pc_to_block[nxt])
            else:
                edges.append(EXIT_BLOCK)
                fallthrough_exit.add(block.index)

        succ_t = {b: tuple(dict.fromkeys(e)) for b, e in succ.items()}
        pred: Dict[int, List[int]] = {b.index: [] for b in program.blocks}
        pred[EXIT_BLOCK] = []
        for b, edges in succ_t.items():
            for s in edges:
                pred[s].append(b)
        pred_t = {b: tuple(p) for b, p in pred.items()}

        reachable = cls._reachable_from_entry(succ_t, program)
        rpo = cls._reverse_postorder(succ_t, reachable)
        return cls(
            program=program,
            succ=succ_t,
            pred=pred_t,
            reachable=frozenset(reachable),
            rpo=rpo,
            fallthrough_exit=frozenset(fallthrough_exit),
            broken_branch_pcs=tuple(broken),
        )

    @staticmethod
    def _reachable_from_entry(succ: Dict[int, Tuple[int, ...]], program: Program) -> set:
        if not program.blocks:
            return set()
        seen = {0}
        stack = [0]
        while stack:
            node = stack.pop()
            for s in succ.get(node, ()):
                if s != EXIT_BLOCK and s not in seen:
                    seen.add(s)
                    stack.append(s)
        return seen

    @staticmethod
    def _reverse_postorder(succ: Dict[int, Tuple[int, ...]], reachable: set) -> Tuple[int, ...]:
        if not reachable:
            return ()
        post: List[int] = []
        seen = set()
        # Iterative DFS with an explicit finish phase for postorder.
        stack: List[Tuple[int, bool]] = [(0, False)]
        while stack:
            node, finished = stack.pop()
            if finished:
                post.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            for s in reversed(succ.get(node, ())):
                if s != EXIT_BLOCK and s not in seen:
                    stack.append((s, False))
        return tuple(reversed(post))

    # -- queries ---------------------------------------------------------

    @property
    def blocks(self) -> List[BasicBlock]:
        return self.program.blocks

    def block_of_pc(self, pc: int) -> BasicBlock:
        return self.program.block_of(pc)

    def is_reachable_pc(self, pc: int) -> bool:
        return self.program.block_of(pc).index in self.reachable

    def region_between(self, branch_pc: int, stop_pc=None) -> FrozenSet[int]:
        """Blocks on paths from a branch's successors up to (excluding)
        the block starting at ``stop_pc``.

        This is the *divergent region* of a branch: with ``stop_pc`` the
        branch's reconvergence point (immediate post-dominator), these
        are exactly the blocks that can execute while the warp's lanes
        are split between the taken and fallthrough paths.  ``stop_pc``
        of ``None`` means the paths only rejoin at kernel exit, so the
        region extends to every block reachable from the branch.
        """
        branch_block = self.program.block_of(branch_pc).index
        stop_block = None
        if stop_pc is not None:
            stop_block = self.program.block_of(stop_pc).index
        region: set = set()
        stack = [s for s in self.succ.get(branch_block, ()) if s != EXIT_BLOCK]
        while stack:
            node = stack.pop()
            if node == stop_block or node in region:
                continue
            region.add(node)
            for s in self.succ.get(node, ()):
                if s != EXIT_BLOCK:
                    stack.append(s)
        return frozenset(region)


def region_between(program, branch_pc: int, stop_pc=None) -> FrozenSet[int]:
    """Module-level convenience for
    :meth:`ControlFlowGraph.region_between`: the divergent region of the
    branch at ``branch_pc``, computed on a freshly built CFG."""
    return ControlFlowGraph.from_program(program).region_between(branch_pc, stop_pc)
