"""Generic gen/kill dataflow solver over a :class:`ControlFlowGraph`.

Both analyses the framework ships (reaching definitions, liveness) are
*may* analyses — the meet over paths is set union — so one worklist
solver covers them:

- **forward**: ``in[b] = U out[p] for p in pred(b)``,
  ``out[b] = gen[b] | (in[b] - kill[b])``, entry seeded with
  ``boundary``;
- **backward**: ``out[b] = U in[s] for s in succ(b)``,
  ``in[b] = gen[b] | (out[b] - kill[b])``, exit edges seeded with
  ``boundary``.

Facts are opaque hashable values.  Unreachable blocks keep empty fact
sets — they contribute nothing to any path from entry, and the linter
reports them separately.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Mapping, Tuple

from repro.staticlib.cfg import EXIT_BLOCK, ControlFlowGraph

Facts = FrozenSet[Hashable]


def solve_gen_kill(
    cfg: ControlFlowGraph,
    gen: Mapping[int, Facts],
    kill: Mapping[int, Facts],
    direction: str = "forward",
    boundary: Facts = frozenset(),
) -> Tuple[Dict[int, Facts], Dict[int, Facts]]:
    """Solve a union-meet gen/kill problem to a fixpoint.

    Returns ``(in_facts, out_facts)`` keyed by block index.  The solver
    iterates reachable blocks in reverse postorder (forward) or its
    reverse (backward), which converges in a couple of sweeps for the
    reducible CFGs kernels produce, and terminates for any CFG because
    the transfer functions are monotone over a finite powerset.
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"direction must be 'forward' or 'backward', got {direction!r}")
    forward = direction == "forward"
    order = cfg.rpo if forward else tuple(reversed(cfg.rpo))
    reachable = cfg.reachable
    empty: Facts = frozenset()

    in_facts: Dict[int, Facts] = {b.index: empty for b in cfg.program.blocks}
    out_facts: Dict[int, Facts] = {b.index: empty for b in cfg.program.blocks}

    changed = True
    while changed:
        changed = False
        for block in order:
            if forward:
                if block == 0:
                    merged = boundary
                else:
                    merged = empty
                    for p in cfg.pred.get(block, ()):
                        if p in reachable:
                            merged = merged | out_facts[p]
                if merged != in_facts[block]:
                    in_facts[block] = merged
                new_out = gen.get(block, empty) | (merged - kill.get(block, empty))
                if new_out != out_facts[block]:
                    out_facts[block] = new_out
                    changed = True
            else:
                merged = empty
                for s in cfg.succ.get(block, ()):
                    if s == EXIT_BLOCK:
                        merged = merged | boundary
                    elif s in reachable:
                        merged = merged | in_facts[s]
                if merged != out_facts[block]:
                    out_facts[block] = merged
                new_in = gen.get(block, empty) | (merged - kill.get(block, empty))
                if new_in != in_facts[block]:
                    in_facts[block] = new_in
                    changed = True
    return in_facts, out_facts
