"""Differential verification of the control-flow melding transform.

The melder's soundness argument (DESIGN.md §4h) is static; this module
checks it *dynamically*: every workload is executed twice through the
functional SIMT executor — once with its original program, once after
:func:`repro.staticlib.passes.darm_ideal_pass` (every legal meld, no
profitability bar, so the check covers strictly more rewrites than the
DARM variant ever applies) — and the two runs must be observationally
identical:

- **Global memory** must match bit for bit (``np.array_equal`` on the
  raw word array, not a tolerance check).
- **Per-warp register and predicate files** must match, with a missing
  register treated as zeros on both sides — the register file allocates
  zeros on first read, so a melded program may *materialize* registers
  (an inactive lane's guarded read pulls the zero page in) that the
  original never touched.  Materializing zeros is not a semantic
  difference.
- **The workload oracle** must accept both runs.
- **The linter** must find nothing new in the melded program.

``python -m repro meld-verify`` runs this over every workload
(Table 1 + the divergent suite) and exits nonzero on any mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.program import Program
from repro.simt.executor import ExecutionContext, FunctionalEngine, ThreadBlockState
from repro.simt.memory import KernelParams
from repro.workloads import EXTENDED_ABBRS, Workload, build_workload

#: (tb_index, warp_index, kind, name) -> lane-vector; kind is "r" or "p".
RegisterDump = Dict[Tuple[int, int, str, str], np.ndarray]


@dataclass
class FunctionalOutcome:
    """Observable state after one functional run of one program."""

    memory_words: np.ndarray
    registers: RegisterDump
    oracle_ok: bool
    instructions_executed: int


def _run_capturing(workload: Workload, program: Program) -> FunctionalOutcome:
    """Run ``program`` under ``workload``'s launch, keeping final state.

    Mirrors :func:`repro.simt.run_functional`'s TB-serial, round-robin
    warp loop, but retains each threadblock's register files instead of
    discarding the :class:`ThreadBlockState` — the differential check
    needs them.
    """
    memory, params = workload.fresh()
    ctx = ExecutionContext(
        program=program,
        launch=workload.launch,
        memory=memory,
        params=KernelParams(params or {}),
    )
    engine = FunctionalEngine(ctx)
    registers: RegisterDump = {}
    for tb_index in range(workload.launch.num_blocks):
        tb = ThreadBlockState(ctx, tb_index)
        while not tb.done:
            progressed = False
            for warp in tb.warps:
                if warp.exited or warp.at_barrier:
                    continue
                engine.execute_instruction(tb, warp, program.at(warp.pc))
                progressed = True
            if not progressed and not tb.done:
                if not tb.release_barrier_if_ready():
                    raise RuntimeError("deadlock during differential run")
            else:
                tb.release_barrier_if_ready()
        for warp in tb.warps:
            rf = warp.registers
            for name, value in rf._regs.items():
                registers[(tb_index, warp.warp_id, "r", name)] = value.copy()
            for name, value in rf._preds.items():
                registers[(tb_index, warp.warp_id, "p", name)] = value.copy()
    oracle_ok = workload.verify(memory, params)
    return FunctionalOutcome(
        memory_words=memory.words.copy(),
        registers=registers,
        oracle_ok=oracle_ok,
        instructions_executed=engine.instructions_executed,
    )


def _diff_registers(base: RegisterDump, melded: RegisterDump) -> List[str]:
    """Mismatch descriptions; a register missing on one side is zeros."""
    problems: List[str] = []
    for key in sorted(set(base) | set(melded), key=str):
        tb, warp, kind, name = key
        a, b = base.get(key), melded.get(key)
        if a is None:
            a = np.zeros_like(b)
        if b is None:
            b = np.zeros_like(a)
        if not np.array_equal(a, b):
            sigil = "$" if kind == "r" else "$"
            problems.append(
                f"tb{tb}/warp{warp} {sigil}{name}: base={a.tolist()} melded={b.tolist()}"
            )
    return problems


def _lint_regressions(original: Program, melded: Program) -> List[str]:
    """Per-rule finding counts that grew from original to melded."""
    from repro.staticlib.passes import _lint_fingerprint

    base_rules, base_uninit = _lint_fingerprint(original)
    meld_rules, meld_uninit = _lint_fingerprint(melded)
    problems = [
        f"lint rule {rule!r}: {base_rules.get(rule, 0)} -> {count} findings"
        for rule, count in sorted(meld_rules.items())
        if count > base_rules.get(rule, 0)
    ]
    if meld_uninit > base_uninit:
        problems.append(f"uninitialized reads: {base_uninit} -> {meld_uninit}")
    return problems


@dataclass
class WorkloadMeldCheck:
    """Differential verdict for one workload."""

    abbr: str
    scale: str
    melds_applied: int
    melds_rejected: int
    instructions_before: int
    instructions_after: int
    dynamic_before: int
    dynamic_after: int
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def changed(self) -> bool:
        return self.melds_applied > 0

    def summary(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        detail = (
            f"{self.melds_applied} meld(s), "
            f"{self.instructions_before}->{self.instructions_after} static, "
            f"{self.dynamic_before}->{self.dynamic_after} dynamic"
            if self.changed
            else "no meldable regions"
        )
        return f"{self.abbr:<8} {verdict:<5} {detail}"

    def to_dict(self) -> Dict:
        return {
            "abbr": self.abbr,
            "scale": self.scale,
            "ok": self.ok,
            "melds_applied": self.melds_applied,
            "melds_rejected": self.melds_rejected,
            "instructions_before": self.instructions_before,
            "instructions_after": self.instructions_after,
            "dynamic_before": self.dynamic_before,
            "dynamic_after": self.dynamic_after,
            "problems": list(self.problems),
        }


def verify_workload(
    workload: Workload,
    transform: Optional[Callable[[Program], Program]] = None,
) -> WorkloadMeldCheck:
    """Differentially verify melding on one workload.

    By default the transform is the *ideal* melder (threshold ``None``),
    so the check exercises every legal meld, not just the profitable
    subset DARM would keep.
    """
    from repro.staticlib.passes import meld_program

    original = workload.program
    if transform is None:
        result = meld_program(original, threshold=None)
        melded = result.program
        applied, rejected = len(result.applied), len(result.rejected)
    else:
        melded = transform(original)
        applied = int(melded is not original)
        rejected = 0

    base = _run_capturing(workload, original)
    after = _run_capturing(workload, melded)

    problems: List[str] = []
    if not base.oracle_ok:
        problems.append("original program fails its oracle")
    if not after.oracle_ok:
        problems.append("melded program fails its oracle")
    if not np.array_equal(base.memory_words, after.memory_words):
        diff = int(np.count_nonzero(base.memory_words != after.memory_words))
        problems.append(f"global memory differs in {diff} word(s)")
    problems.extend(_diff_registers(base.registers, after.registers))
    problems.extend(_lint_regressions(original, melded))

    return WorkloadMeldCheck(
        abbr=workload.abbr,
        scale=workload.scale,
        melds_applied=applied,
        melds_rejected=rejected,
        instructions_before=len(original.instructions),
        instructions_after=len(melded.instructions),
        dynamic_before=base.instructions_executed,
        dynamic_after=after.instructions_executed,
        problems=problems,
    )


@dataclass
class MeldVerifyReport:
    """Batch verdict over a set of workloads."""

    checks: List[WorkloadMeldCheck]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def melded(self) -> List[WorkloadMeldCheck]:
        return [c for c in self.checks if c.changed]

    def render(self) -> str:
        lines = [c.summary() for c in self.checks]
        for check in self.checks:
            for problem in check.problems:
                lines.append(f"  {check.abbr}: {problem}")
        lines.append(
            f"{len(self.checks)} workload(s): "
            f"{len(self.melded)} melded, "
            f"{sum(len(c.problems) for c in self.checks)} problem(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "workloads": [c.to_dict() for c in self.checks],
        }


def verify_all(
    scale: str = "tiny",
    abbrs: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[WorkloadMeldCheck], None]] = None,
) -> MeldVerifyReport:
    """Differentially verify melding over ``abbrs`` (default: everything)."""
    checks: List[WorkloadMeldCheck] = []
    for abbr in abbrs if abbrs is not None else EXTENDED_ABBRS:
        check = verify_workload(build_workload(abbr, scale))
        checks.append(check)
        if progress is not None:
            progress(check)
    return MeldVerifyReport(checks)
