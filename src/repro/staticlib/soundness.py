"""Marking soundness cross-checker: static DR vs. dynamic uniformity.

The compiler pass promises (Section 4.2) that a *definitely redundant*
instruction produces the same value vector in every warp of a TB — for
DR proper that vector is lane-uniform (all its seeds are), and for CR
instructions promoted at launch it repeats across warps.  Nothing in the
marking pass itself verifies this; an over-promotion would make follower
warps consume a leader value that is simply wrong.

This module replays each workload through the functional executor with
:class:`repro.simt.tracer.Tracer` attached and checks, for every dynamic
instance of every promoted-DR instruction, that all warps of the TB
executed it, none under SIMD divergence, and all produced the same
:class:`ValueSummary` — reporting any violation as a compiler-pass bug
with enough context to reproduce it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.compiler_pass import analyze_program
from repro.core.promotion import promote_markings
from repro.core.taxonomy import Marking, RedundancyClass, classify_group
from repro.isa.program import Program
from repro.simt.tracer import ExecutionTrace, Tracer


@dataclass(frozen=True)
class SoundnessViolation:
    """One statically-DR instruction instance that was not TB-redundant."""

    workload: str
    pc: int
    tb_index: int
    occurrence: int
    marking: str
    observed: str
    message: str

    def render(self) -> str:
        return (
            f"{self.workload} pc={self.pc:#06x} tb={self.tb_index} "
            f"occ={self.occurrence} [{self.marking}]: {self.message}"
        )


@dataclass
class WorkloadAudit:
    """Soundness result for one workload run."""

    abbr: str
    scale: str
    dr_pcs: int
    groups_checked: int
    violations: List[SoundnessViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        head = (
            f"{self.abbr:>8} [{self.scale}]: {self.dr_pcs} DR pc(s), "
            f"{self.groups_checked} TB instance(s) checked — {status}"
        )
        if self.ok:
            return head
        return "\n".join([head] + [f"  {v.render()}" for v in self.violations])


@dataclass
class SoundnessReport:
    """Cross-checker results over a set of workloads."""

    audits: List[WorkloadAudit] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(a.ok for a in self.audits)

    @property
    def violations(self) -> List[SoundnessViolation]:
        return [v for a in self.audits for v in a.violations]

    def render(self) -> str:
        lines = [a.render() for a in self.audits]
        total_groups = sum(a.groups_checked for a in self.audits)
        verdict = "sound" if self.ok else f"{len(self.violations)} violation(s)"
        lines.append(
            f"soundness: {len(self.audits)} workload(s), {total_groups} "
            f"TB instance(s) — {verdict}"
        )
        return "\n".join(lines)


def _describe_group(records, expected_warps: int, cls: RedundancyClass) -> str:
    if len(records) != expected_warps:
        return f"executed by {len(records)}/{expected_warps} warps"
    if any(r.divergent for r in records):
        return "executed under SIMD divergence"
    return f"dynamically {cls.value}"


def audit_trace(
    program: Program,
    static_markings: Dict[int, Marking],
    promoted_markings: Dict[int, Marking],
    trace: ExecutionTrace,
    workload: str = "?",
) -> Tuple[List[SoundnessViolation], int, int]:
    """Check one execution trace against one set of markings.

    Returns ``(violations, dr_pcs, groups_checked)``.  Separated from
    :func:`audit_workload` so tests can inject deliberately
    over-promoted markings and watch the checker catch them.
    """
    expected = trace.warps_per_block
    violations: List[SoundnessViolation] = []
    checked_pcs = set()
    groups_checked = 0
    # Sites executed under control-flow divergence are unverifiable from
    # a functional trace: warps on different paths reach a PC different
    # numbers of times, so occurrence-aligned groups pair unrelated
    # dynamic instances, and a record with a partial execution mask means
    # the warp had left (or never joined) the majority path — DARSIE's
    # hardware never shares values in either situation, so neither is a
    # marking bug.  Skip every group at such a site.
    site_counts: Dict[Tuple[int, int], Dict[int, int]] = {}
    divergent_sites = set()
    for rec in trace.records:
        site = (rec.tb_index, rec.pc)
        counts = site_counts.setdefault(site, {})
        counts[rec.warp_id] = counts.get(rec.warp_id, 0) + 1
        if rec.divergent:
            divergent_sites.add(site)

    def _verifiable(site: Tuple[int, int]) -> bool:
        if site in divergent_sites:
            return False
        counts = site_counts[site]
        return len(counts) == expected and len(set(counts.values())) == 1

    for (tb_index, pc, occurrence), records in trace.grouped_by_tb():
        if promoted_markings.get(pc) is not Marking.REDUNDANT:
            continue
        if not _verifiable((tb_index, pc)):
            continue
        inst = program.at(pc)
        if inst.dest_register() is None and inst.dest_predicate() is None:
            continue  # no value to share through renaming
        checked_pcs.add(pc)
        groups_checked += 1
        cls = classify_group(records, expected)
        static = static_markings.get(pc, Marking.VECTOR)
        if static is Marking.REDUNDANT:
            sound = cls is RedundancyClass.UNIFORM
            expectation = "uniform across all warps"
            marking = "DR"
        else:
            sound = cls is not RedundancyClass.NON_REDUNDANT
            expectation = "TB-redundant across all warps"
            marking = f"{static.short}->DR"
        if sound:
            continue
        observed = _describe_group(records, expected, cls)
        violations.append(
            SoundnessViolation(
                workload=workload,
                pc=pc,
                tb_index=tb_index,
                occurrence=occurrence,
                marking=marking,
                observed=observed,
                message=f"statically marked {marking} (must be {expectation}) "
                f"but was {observed} — compiler-pass bug: `{inst}`",
            )
        )
    return violations, len(checked_pcs), groups_checked


def audit_workload(
    workload,
    markings: Optional[Dict[int, Marking]] = None,
    enable_3d: bool = False,
) -> WorkloadAudit:
    """Replay one workload functionally and cross-check its markings.

    ``markings`` overrides the static markings (tests use this to verify
    the checker fails on a deliberate over-promotion); by default the
    real compiler pass runs.
    """
    program = workload.program
    if markings is None:
        markings = analyze_program(program, enable_3d=enable_3d).instruction_markings
    promoted = promote_markings(markings, workload.launch)

    from repro.simt.executor import run_functional

    memory, params = workload.fresh()
    tracer = Tracer()
    run_functional(program, workload.launch, memory, params=params, tracer=tracer)
    if not workload.verify(memory, params):
        raise RuntimeError(
            f"{workload.abbr}: functional replay failed its oracle; "
            "cannot trust the trace for a soundness audit"
        )
    violations, dr_pcs, groups = audit_trace(
        program, markings, promoted, tracer.trace, workload=workload.abbr
    )
    return WorkloadAudit(
        abbr=workload.abbr,
        scale=workload.scale,
        dr_pcs=dr_pcs,
        groups_checked=groups,
        violations=violations,
    )


def audit_all(
    scale: str = "tiny", abbrs: Optional[Iterable[str]] = None
) -> SoundnessReport:
    """Cross-check every registered workload at the given scale."""
    from repro.workloads import ALL_ABBRS, build_workload

    report = SoundnessReport()
    for abbr in abbrs if abbrs is not None else ALL_ABBRS:
        report.audits.append(audit_workload(build_workload(abbr, scale)))
    return report
