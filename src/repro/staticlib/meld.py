"""DARM-style control-flow melding: divergent arms to predicated code.

A divergent if-then-else costs a SIMT machine twice: the warp serializes
both arms (each at partial lane occupancy), and the reconvergence-stack
traffic flushes the frontend.  Melding rewrites the diamond into
straight-line predicated code: instructions the two arms share (found by
sequence alignment) execute once unguarded, arm-unique instructions
execute under the branch predicate (``@$p`` / ``@!$p``), and the branch
itself disappears.

Soundness rests on how the executor treats predication (and on what
:func:`check_legality` refuses):

- register/predicate writes merge under the execution mask, so a guarded
  instruction cannot touch lanes of the other arm;
- loads mask their addresses to a safe address for inactive lanes and
  stores/atomics skip them, so a fully-masked-off arm instruction has no
  architectural effect;
- the two guards are complementary under the pre-branch active mask, so
  interleaving arm instructions in any order that preserves each arm's
  internal order is execution-equivalent to running the arms back to
  back.

What is *not* legal to predicate: barriers and exits (the executor acts
on them warp-wide regardless of the mask), nested control flow, already
guarded instructions (the ISA has no predicate conjunction), and arms
that redefine their own branch predicate (later guarded instructions
would read the new value).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.isa.instructions import INSTRUCTION_BYTES, Instruction
from repro.isa.program import Program
from repro.staticlib.cfg import ControlFlowGraph
from repro.staticlib.regions import Diamond, arm_instructions, find_diamonds

#: Default similarity bar for profitable melding (DARM's alignment
#: heuristic): meld when at least this fraction of arm instruction slots
#: pair up.  ``DARM-IDEAL`` ignores the bar and melds every legal region.
DEFAULT_THRESHOLD = 0.3


class MeldError(RuntimeError):
    """An internal invariant of the melder was violated."""


def instruction_key(inst: Instruction) -> Tuple:
    """Alignment identity: everything but position and guard."""
    return (
        inst.opcode,
        inst.dtype,
        inst.cmp,
        str(inst.dst),
        tuple(str(s) for s in inst.srcs),
        str(inst.mem),
    )


def diamond_signature(program: Program, diamond: Diamond) -> Tuple:
    """Position-independent identity of a diamond (stable across the PC
    renumbering earlier melds cause), used to remember rejected melds."""
    branch = program.at(diamond.branch_pc)
    return (
        instruction_key(branch),
        str(branch.guard),
        branch.guard_negated,
        tuple(instruction_key(i) for i in arm_instructions(program, diamond.taken_arm, diamond.join_pc)),
        tuple(instruction_key(i) for i in arm_instructions(program, diamond.fall_arm, diamond.join_pc)),
    )


# ---------------------------------------------------------------------------
# Legality
# ---------------------------------------------------------------------------


def check_legality(program: Program, diamond: Diamond) -> Optional[str]:
    """Reason the diamond cannot be melded, or ``None`` when it can."""
    branch = program.at(diamond.branch_pc)
    if branch.guard is None:
        return "branch is unconditional"
    guard_name = branch.guard.name
    for arm in diamond.arm_blocks():
        body = arm_instructions(program, arm, diamond.join_pc)
        for inst in body:
            if inst.is_branch:
                return f"nested branch at {inst.pc:#06x}"
            if inst.is_barrier:
                return f"bar.sync at {inst.pc:#06x} acts warp-wide regardless of the mask"
            if inst.is_exit:
                return f"exit at {inst.pc:#06x} retires the warp regardless of the mask"
            if inst.guard is not None:
                return f"instruction at {inst.pc:#06x} is already predicated"
            dp = inst.dest_predicate()
            if dp is not None and dp.name == guard_name:
                return f"arm redefines branch predicate ${guard_name} at {inst.pc:#06x}"
    return None


# ---------------------------------------------------------------------------
# Alignment and scoring
# ---------------------------------------------------------------------------


def align_arms(
    taken: Sequence[Instruction], fall: Sequence[Instruction]
) -> List[Tuple[int, int]]:
    """Longest common subsequence of the two arms' instruction keys.

    Returns matched index pairs ``(i, j)`` in increasing order; matched
    instructions are emitted once, unguarded.
    """
    tk = [instruction_key(i) for i in taken]
    fk = [instruction_key(i) for i in fall]
    n, m = len(tk), len(fk)
    # Classic DP table; arms are tiny (a handful of instructions).
    lcs = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            if tk[i] == fk[j]:
                lcs[i][j] = lcs[i + 1][j + 1] + 1
            else:
                lcs[i][j] = max(lcs[i + 1][j], lcs[i][j + 1])
    pairs: List[Tuple[int, int]] = []
    i = j = 0
    while i < n and j < m:
        if tk[i] == fk[j]:
            pairs.append((i, j))
            i += 1
            j += 1
        elif lcs[i + 1][j] >= lcs[i][j + 1]:
            i += 1
        else:
            j += 1
    return pairs


@dataclass(frozen=True)
class MeldPlan:
    """A scored, legal meld of one diamond."""

    diamond: Diamond
    matched: int
    taken_len: int
    fall_len: int

    @property
    def melded_len(self) -> int:
        return self.taken_len + self.fall_len - self.matched

    @property
    def similarity(self) -> float:
        """DARM's alignment profitability: fraction of arm slots paired."""
        total = self.taken_len + self.fall_len
        return (2.0 * self.matched / total) if total else 0.0

    @property
    def saved_slots(self) -> int:
        """Static instruction slots the rewrite removes (branch, arm
        ``bra join`` terminators, one copy of each matched pair)."""
        region = self.diamond.join_pc - self.diamond.branch_pc
        return region // INSTRUCTION_BYTES - self.melded_len

    def profitable(self, threshold: float = DEFAULT_THRESHOLD) -> bool:
        return self.similarity >= threshold


def plan_meld(program: Program, diamond: Diamond) -> MeldPlan:
    taken = arm_instructions(program, diamond.taken_arm, diamond.join_pc)
    fall = arm_instructions(program, diamond.fall_arm, diamond.join_pc)
    return MeldPlan(
        diamond=diamond,
        matched=len(align_arms(taken, fall)),
        taken_len=len(taken),
        fall_len=len(fall),
    )


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


def _predicated(inst: Instruction, branch: Instruction, negate: bool) -> dict:
    """Replacement fields predicating ``inst`` under the branch guard."""
    return {
        "guard": branch.guard,
        "guard_negated": branch.guard_negated ^ negate,
    }


def _melded_sequence(program: Program, diamond: Diamond) -> List[Tuple[Instruction, Optional[dict]]]:
    """The diamond's replacement: ``(source instruction, guard fields)``
    in emission order; ``None`` guard fields mean emit unguarded."""
    branch = program.at(diamond.branch_pc)
    taken = arm_instructions(program, diamond.taken_arm, diamond.join_pc)
    fall = arm_instructions(program, diamond.fall_arm, diamond.join_pc)
    on_taken = _predicated(branch, branch, negate=False)
    on_fall = _predicated(branch, branch, negate=True)
    out: List[Tuple[Instruction, Optional[dict]]] = []
    i = j = 0
    for ti, fj in align_arms(taken, fall):
        out.extend((inst, on_taken) for inst in taken[i:ti])
        out.extend((inst, on_fall) for inst in fall[j:fj])
        out.append((taken[ti], None))
        i, j = ti + 1, fj + 1
    out.extend((inst, on_taken) for inst in taken[i:])
    out.extend((inst, on_fall) for inst in fall[j:])
    return out


def apply_meld(program: Program, diamond: Diamond) -> Program:
    """Re-materialize ``program`` with one diamond melded away.

    Every surviving instruction is rebuilt with its new PC, a cleared
    cached ``text`` (so listings show the new guards) and a cleared
    marking (the melded program is re-analyzed from scratch); branch
    targets and labels are remapped through the renumbering.
    """
    reason = check_legality(program, diamond)
    if reason is not None:
        raise MeldError(f"illegal meld at {diamond.branch_pc:#06x}: {reason}")
    prefix = [i for i in program.instructions if i.pc < diamond.branch_pc]
    suffix = [i for i in program.instructions if i.pc >= diamond.join_pc]
    middle = _melded_sequence(program, diamond)

    # New PC of every surviving old PC (the splice preserves order).
    pc_map = {}
    pc = 0
    for inst in prefix:
        pc_map[inst.pc] = pc
        pc += INSTRUCTION_BYTES
    pc += len(middle) * INSTRUCTION_BYTES
    # A branch targeting the (deleted) branch PC or an arm PC cannot
    # exist — the arms are single-predecessor and the branch terminates
    # its block — but a branch to the join must follow it to its new
    # home, as must one to the branch block's start when the branch is
    # its own leader (the region's entry simply became the melded code).
    pc_map[diamond.branch_pc] = len(prefix) * INSTRUCTION_BYTES
    for inst in suffix:
        pc_map[inst.pc] = pc
        pc += INSTRUCTION_BYTES

    def rebuild(inst: Instruction, new_pc: int, index: int, extra: Optional[dict]) -> Instruction:
        fields = dict(pc=new_pc, index=index, text="", mark=None)
        if extra:
            fields.update(extra)
        if inst.is_branch:
            old_target = inst.target_pc
            if old_target not in pc_map:
                raise MeldError(
                    f"branch at {inst.pc:#06x} targets melded-away pc {old_target:#06x}"
                )
            fields["target_pc"] = pc_map[old_target]
        return replace(inst, **fields)

    new_insts: List[Instruction] = []
    for inst in prefix:
        new_insts.append(rebuild(inst, pc_map[inst.pc], len(new_insts), None))
    for inst, extra in middle:
        new_insts.append(
            rebuild(inst, len(new_insts) * INSTRUCTION_BYTES, len(new_insts), extra)
        )
    for inst in suffix:
        new_insts.append(rebuild(inst, pc_map[inst.pc], len(new_insts), None))

    labels = {
        name: pc_map[old] for name, old in program.labels.items() if old in pc_map
    }
    return Program(
        name=program.name,
        instructions=new_insts,
        labels=labels,
        params=program.params,
        shared_words=program.shared_words,
    )


# ---------------------------------------------------------------------------
# Whole-program driver (one step at a time, for the pass pipeline)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MeldRecord:
    """What one committed (or rejected) meld did."""

    branch_pc: int
    join_pc: int
    matched: int
    taken_len: int
    fall_len: int
    similarity: float
    saved_slots: int

    @classmethod
    def from_plan(cls, plan: MeldPlan) -> "MeldRecord":
        return cls(
            branch_pc=plan.diamond.branch_pc,
            join_pc=plan.diamond.join_pc,
            matched=plan.matched,
            taken_len=plan.taken_len,
            fall_len=plan.fall_len,
            similarity=plan.similarity,
            saved_slots=plan.saved_slots,
        )


def meldable_plans(
    program: Program,
    threshold: Optional[float] = DEFAULT_THRESHOLD,
    cfg: Optional[ControlFlowGraph] = None,
) -> List[MeldPlan]:
    """Legal (and, unless ``threshold`` is ``None``, profitable) melds
    available in ``program`` right now, in PC order."""
    plans = []
    for diamond in find_diamonds(program, cfg):
        if check_legality(program, diamond) is not None:
            continue
        plan = plan_meld(program, diamond)
        if threshold is not None and not plan.profitable(threshold):
            continue
        plans.append(plan)
    return plans
