"""Divergent-region discovery: the SESE diamonds a melder can rewrite.

DARM-style control-flow melding (Saumya et al.) operates on the simplest
single-entry/single-exit divergent region there is: an if-then-else
*diamond* — a conditional branch whose two successor arms are
straight-line blocks that both flow into the branch's reconvergence
point (its immediate post-dominator), with no other way in or out.  A
*triangle* (if-then with an empty else) is the degenerate diamond where
one successor already is the join block.

This module only finds candidate shapes; whether an arm's contents are
legal to predicate is :mod:`repro.staticlib.meld`'s job.  The structural
conditions enforced here are what make the rewrite a pure splice:

- the branch block's two successors are distinct and neither is the
  virtual exit;
- each arm has the branch block as its *only* predecessor and the join
  block as its *only* successor (single-entry, single-exit);
- the instructions strictly between the branch and the join are exactly
  the arm instructions (the region is PC-contiguous), so the melded
  sequence can replace a contiguous byte range and every surviving
  branch target survives the renumbering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.instructions import INSTRUCTION_BYTES, Instruction
from repro.isa.program import Program
from repro.staticlib.cfg import EXIT_BLOCK, ControlFlowGraph


@dataclass(frozen=True)
class Diamond:
    """One meldable if-then-else (or if-then) region.

    ``taken_arm`` / ``fall_arm`` are basic-block indices; ``None`` marks
    the empty arm of a triangle whose corresponding branch edge goes
    straight to the join block.
    """

    branch_pc: int
    branch_block: int
    taken_arm: Optional[int]
    fall_arm: Optional[int]
    join_block: int
    join_pc: int

    def arm_blocks(self) -> Tuple[int, ...]:
        return tuple(a for a in (self.taken_arm, self.fall_arm) if a is not None)


def arm_instructions(program: Program, arm: Optional[int], join_pc: int) -> List[Instruction]:
    """The predicable body of one arm: its instructions minus a trailing
    unconditional ``bra`` to the join (a pure layout artifact that the
    melded straight-line form no longer needs)."""
    if arm is None:
        return []
    insts = list(program.blocks[arm].instructions)
    term = insts[-1]
    if term.is_branch and term.guard is None and term.target_pc == join_pc:
        insts = insts[:-1]
    return insts


def _is_simple_arm(
    cfg: ControlFlowGraph, arm: int, branch_block: int, join_block: int
) -> bool:
    """Single predecessor (the branch), single successor (the join)."""
    return (
        cfg.pred.get(arm) == (branch_block,)
        and cfg.succ.get(arm) == (join_block,)
    )


def _contiguous(program: Program, branch_pc: int, join_pc: int, arms: Tuple[int, ...]) -> bool:
    """The deleted byte range [branch_pc+8, join_pc) is exactly the arms."""
    if join_pc <= branch_pc:
        return False
    expected = set(range(branch_pc + INSTRUCTION_BYTES, join_pc, INSTRUCTION_BYTES))
    covered = {inst.pc for arm in arms for inst in program.blocks[arm]}
    return covered == expected


def find_diamonds(
    program: Program, cfg: Optional[ControlFlowGraph] = None
) -> List[Diamond]:
    """All structurally meldable diamonds/triangles, in PC order."""
    if cfg is None:
        cfg = ControlFlowGraph.from_program(program)
    out: List[Diamond] = []
    for block in program.blocks:
        if block.index not in cfg.reachable:
            continue
        term = block.terminator
        if not term.is_branch or term.guard is None:
            continue
        if term.pc in cfg.broken_branch_pcs:
            continue
        join_pc = program.reconvergence_pc(term.pc)
        if join_pc is None:
            continue  # paths rejoin only at exit; not a SESE region
        join_block = program.block_of(join_pc).index
        succs = cfg.succ.get(block.index, ())
        if EXIT_BLOCK in succs or len(succs) != 2:
            continue
        taken_block = program.block_of(term.target_pc).index
        fall_block = program.block_of(term.pc + INSTRUCTION_BYTES).index
        if taken_block == fall_block:
            continue
        taken_arm: Optional[int] = None if taken_block == join_block else taken_block
        fall_arm: Optional[int] = None if fall_block == join_block else fall_block
        if taken_arm is None and fall_arm is None:
            continue  # both edges reach the join directly; nothing to meld
        arms = tuple(a for a in (taken_arm, fall_arm) if a is not None)
        if any(not _is_simple_arm(cfg, a, block.index, join_block) for a in arms):
            continue
        # An arm must not be the branch block itself (self-loop) or the
        # join; _is_simple_arm's pred/succ shape already excludes loops,
        # but be explicit about degenerate overlap.
        if block.index in arms or join_block in arms:
            continue
        if not _contiguous(program, term.pc, join_pc, arms):
            continue
        out.append(
            Diamond(
                branch_pc=term.pc,
                branch_block=block.index,
                taken_arm=taken_arm,
                fall_arm=fall_arm,
                join_block=join_block,
                join_pc=join_pc,
            )
        )
    return out
