"""Kernel linter: the SIMT correctness traps, machine-checked.

Every rule protects a specific part of the paper's argument:

=====================  ========  =================================================
rule id                severity  protects
=====================  ========  =================================================
uninitialized-read     error     Section 4.2 — the marking pass defaults unseen
                                 registers to DR; a genuine read-before-write
                                 makes that default load-bearing.
invalid-branch-target  error     CFG construction / reconvergence — a branch to a
                                 non-instruction PC breaks the SIMT stack.
fallthrough-end        error     control running off the end of the instruction
                                 stream (no ``exit`` on some path).
unreachable-code       warning   dead instructions distort static marking counts
                                 (Figure 7) and hide real bugs.
divergent-barrier      error     Section 4.3 — ``bar.sync`` under thread-divergent
                                 control flow deadlocks real hardware (the DARM
                                 class of bugs).
store-invalidation     warning   Section 4.4 — a vector store while a DR-skipped
                                 load of the same space is live relies on the
                                 hardware load-invalidation path.
=====================  ========  =================================================

Findings carry the PC, severity, rule id and a Figure-6-style annotated
listing excerpt so a report reads like the paper's own marking figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.compiler_pass import CompilerAnalysis, analyze_program
from repro.core.promotion import promote_markings
from repro.core.taxonomy import Marking
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.isa.program import Program
from repro.staticlib.cfg import ControlFlowGraph
from repro.staticlib.liveness import Liveness
from repro.staticlib.reaching import ReachingDefinitions

#: rule id -> (severity, one-line description)
RULES: Dict[str, Tuple[str, str]] = {
    "uninitialized-read": (
        "error",
        "register or predicate read before any write on some path (Section 4.2 precondition)",
    ),
    "invalid-branch-target": ("error", "branch target is not a valid instruction PC"),
    "fallthrough-end": ("error", "control can fall off the end of the program"),
    "unreachable-code": ("warning", "instructions can never execute"),
    "divergent-barrier": (
        "error",
        "bar.sync reachable under thread-divergent control flow (Section 4.3)",
    ),
    "store-invalidation": (
        "warning",
        "vector store while a DR-skipped load of the same space is live (Section 4.4)",
    ),
}

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a PC where possible."""

    rule: str
    severity: str
    pc: Optional[int]
    message: str
    excerpt: str = ""

    def render(self) -> str:
        where = f" pc={self.pc:#06x}" if self.pc is not None else ""
        head = f"{self.severity}[{self.rule}]{where}: {self.message}"
        if not self.excerpt:
            return head
        body = "\n".join(f"    {line}" for line in self.excerpt.splitlines())
        return f"{head}\n{body}"


@dataclass
class LintReport:
    """All findings for one program."""

    program_name: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def render(self) -> str:
        if not self.findings:
            return f"{self.program_name}: clean"
        lines = [
            f"{self.program_name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        lines.extend(f.render() for f in self.findings)
        return "\n".join(lines)


def _excerpt(
    program: Program,
    markings: Dict[int, Marking],
    pc: int,
    context: int = 2,
) -> str:
    """Figure-6-style annotated listing slice around ``pc``."""
    idx = pc // INSTRUCTION_BYTES
    lo = max(0, idx - context)
    hi = min(len(program.instructions), idx + context + 1)
    pc_to_label = {label_pc: lbl for lbl, label_pc in program.labels.items()}
    lines: List[str] = []
    for inst in program.instructions[lo:hi]:
        if inst.pc in pc_to_label:
            lines.append(f"   {pc_to_label[inst.pc]}:")
        pointer = ">>" if inst.pc == pc else "  "
        mark = markings.get(inst.pc)
        col = mark.short if mark is not None else "?"
        lines.append(f"{pointer} {col:>4} {inst.pc:#06x}  {inst}")
    return "\n".join(lines)


def lint_program(
    program: Program,
    analysis: Optional[CompilerAnalysis] = None,
    launch=None,
) -> LintReport:
    """Run every lint rule over one assembled program.

    ``analysis`` defaults to running the marking pass; ``launch`` (when
    given) resolves conditional markings for the store-invalidation
    rule, so the DR-skipped load set matches what the hardware would
    actually skip for that launch.
    """
    if analysis is None:
        analysis = analyze_program(program)
    cfg = ControlFlowGraph.from_program(program)
    markings = analysis.instruction_markings
    report = LintReport(program_name=program.name)
    findings: List[Finding] = []

    findings.extend(_check_branch_targets(program, markings))
    findings.extend(_check_unreachable(program, cfg, markings))
    findings.extend(_check_fallthrough(program, cfg, markings))
    findings.extend(_check_uninitialized(program, cfg, markings))
    findings.extend(_check_divergent_barriers(program, cfg, analysis))
    findings.extend(_check_store_invalidation(program, cfg, analysis, launch))

    report.findings = sorted(
        findings, key=lambda f: (f.pc if f.pc is not None else -1, f.rule)
    )
    return report


def lint_workload(workload) -> LintReport:
    """Lint one Table 1 workload with its real launch configuration."""
    return lint_program(workload.program, launch=workload.launch)


# -- individual rules ------------------------------------------------------


def _check_branch_targets(program: Program, markings) -> List[Finding]:
    valid_pcs = {inst.pc for inst in program.instructions}
    out = []
    for inst in program.instructions:
        if not inst.is_branch:
            continue
        tgt = inst.target_pc
        if tgt is not None and tgt in valid_pcs:
            continue
        shown = "unresolved" if tgt is None else f"{tgt:#06x}"
        out.append(
            Finding(
                rule="invalid-branch-target",
                severity=ERROR,
                pc=inst.pc,
                message=f"branch target {shown} is not an instruction PC "
                f"(valid range [0, {program.end_pc:#06x}))",
                excerpt=_excerpt(program, markings, inst.pc),
            )
        )
    return out


def _check_unreachable(program: Program, cfg: ControlFlowGraph, markings) -> List[Finding]:
    out = []
    for block in program.blocks:
        if block.index in cfg.reachable:
            continue
        out.append(
            Finding(
                rule="unreachable-code",
                severity=WARNING,
                pc=block.start_pc,
                message=f"block of {len(block)} instruction(s) starting at "
                f"{block.start_pc:#06x} is unreachable from entry",
                excerpt=_excerpt(program, markings, block.start_pc, context=1),
            )
        )
    return out


def _check_fallthrough(program: Program, cfg: ControlFlowGraph, markings) -> List[Finding]:
    out = []
    for bidx in sorted(cfg.fallthrough_exit):
        if bidx not in cfg.reachable:
            continue
        term = program.blocks[bidx].terminator
        out.append(
            Finding(
                rule="fallthrough-end",
                severity=ERROR,
                pc=term.pc,
                message="control can fall off the end of the program "
                f"(no exit after {term.pc:#06x} on some path)",
                excerpt=_excerpt(program, markings, term.pc),
            )
        )
    return out


def _check_uninitialized(program: Program, cfg: ControlFlowGraph, markings) -> List[Finding]:
    reaching = ReachingDefinitions(program, cfg)
    out = []
    for read in reaching.uninitialized_reads():
        kind = "predicate" if read.var[0] == "p" else "register"
        out.append(
            Finding(
                rule="uninitialized-read",
                severity=ERROR,
                pc=read.pc,
                message=f"{kind} {read.display_name} may be read before any write "
                "(the marking pass would treat it as uniformly zero)",
                excerpt=_excerpt(program, markings, read.pc),
            )
        )
    return out


def _check_divergent_barriers(
    program: Program, cfg: ControlFlowGraph, analysis: CompilerAnalysis
) -> List[Finding]:
    """``bar.sync`` reachable while a warp's lanes may be split.

    A conditional branch diverges a warp when its guard can vary across
    lanes — any marking below DR (CR values are TB-*redundant* but still
    lane-varying, e.g. ``tid.x`` chains).  The divergent region is the
    set of blocks between the branch and its reconvergence point.
    """
    markings = analysis.instruction_markings
    out = []
    flagged = set()
    for inst in program.instructions:
        if not inst.is_branch or inst.guard is None:
            continue
        if not cfg.is_reachable_pc(inst.pc):
            continue
        if markings.get(inst.pc, Marking.VECTOR) is Marking.REDUNDANT:
            continue  # TB-uniform guard: all lanes agree, no divergence
        try:
            rpc = program.reconvergence_pc(inst.pc)
        except KeyError:
            rpc = None
        region = cfg.region_between(inst.pc, rpc)
        for bidx in sorted(region):
            for binst in program.blocks[bidx]:
                if not binst.is_barrier or binst.pc in flagged:
                    continue
                flagged.add(binst.pc)
                out.append(
                    Finding(
                        rule="divergent-barrier",
                        severity=ERROR,
                        pc=binst.pc,
                        message=f"bar.sync at {binst.pc:#06x} is reachable inside the "
                        f"divergent region of the {markings[inst.pc].short}-guarded "
                        f"branch at {inst.pc:#06x}",
                        excerpt=_excerpt(program, markings, binst.pc),
                    )
                )
    return out


def _check_store_invalidation(
    program: Program,
    cfg: ControlFlowGraph,
    analysis: CompilerAnalysis,
    launch,
) -> List[Finding]:
    """Vector store while a DR-skipped load of the same space is live.

    Follower warps read skipped-load results out of the rename file; a
    store from vector (per-warp) addresses may rewrite the loaded
    location first.  The hardware handles this by invalidating load
    entries (Section 4.4) — the lint surfaces where that machinery is
    actually load-bearing, using same-address-space as the (conservative)
    alias test.
    """
    markings = analysis.instruction_markings
    if launch is not None:
        markings = promote_markings(markings, launch)
    skippable = analysis.skippable_pcs(markings)
    dr_loads = [
        inst for inst in program.instructions if inst.pc in skippable and inst.is_load
    ]
    if not dr_loads:
        return []
    liveness = Liveness(program, cfg)
    out = []
    for store in program.instructions:
        if not store.is_store or not cfg.is_reachable_pc(store.pc):
            continue
        if markings.get(store.pc, Marking.VECTOR) is not Marking.VECTOR:
            continue
        live = liveness.live_out_at(store.pc)
        for load in dr_loads:
            dest = load.dest_register()
            if dest is None or ("r", dest.name) not in live:
                continue
            if load.mem is None or store.mem is None or load.mem.space is not store.mem.space:
                continue
            out.append(
                Finding(
                    rule="store-invalidation",
                    severity=WARNING,
                    pc=store.pc,
                    message=f"vector store at {store.pc:#06x} to {store.mem.space} while the "
                    f"DR-skipped load of ${dest.name} at {load.pc:#06x} is live "
                    "(relies on Section 4.4 load invalidation)",
                    excerpt=_excerpt(program, markings, store.pc),
                )
            )
    return out
