"""Static-analysis *and transform* framework over
:class:`repro.isa.program.Program`.

DARSIE's whole-program guarantee rests on the static marking pass never
over-promoting an instruction to DR (Section 4.2): a definitely-redundant
instruction is *skipped* by follower warps, so a marking that is wrong at
runtime silently corrupts results.  This subpackage provides the
independent machinery to check that, to machine-check kernels people add
before they ever reach the simulator, and — since the melding work — to
*rewrite* programs under the same invariants:

- :mod:`repro.staticlib.cfg` — CFG construction (blocks, branch and
  fallthrough edges, reachability, traversal orders, divergent regions);
- :mod:`repro.staticlib.dominators` — dominator / post-dominator trees
  (Cooper-Harvey-Kennedy);
- :mod:`repro.staticlib.dataflow` — a generic gen/kill worklist solver;
- :mod:`repro.staticlib.reaching` — reaching definitions and def-use
  chains, including synthetic entry definitions that expose
  read-before-write registers;
- :mod:`repro.staticlib.liveness` — backward liveness;
- :mod:`repro.staticlib.lint` — the kernel linter (divergence hazards,
  uninitialized reads, malformed control flow, Section 4.4 store
  hazards), producing Figure-6-style annotated findings;
- :mod:`repro.staticlib.soundness` — the marking soundness cross-checker:
  replays workloads through :mod:`repro.simt.tracer` and asserts every
  statically-DR instruction is dynamically uniform across all warps of
  every TB;
- :mod:`repro.staticlib.regions` — SESE diamond discovery over the CFG
  (the meldable divergent regions of DARM);
- :mod:`repro.staticlib.meld` — instruction-sequence alignment,
  legality, profitability scoring and the predicated splice emitter;
- :mod:`repro.staticlib.passes` — the :class:`PassManager` pipeline that
  applies melds and refuses any transform the linter or the
  reaching-definitions invariants reject;
- :mod:`repro.staticlib.verify` — the differential harness executing
  melded vs unmelded kernels through the functional executor
  (``python -m repro meld-verify``).

Layering: ``cfg``/``dominators``/``dataflow``/``reaching``/``liveness``
and the transform stack (``regions``/``meld``/``passes``) depend only on
:mod:`repro.isa` (the compiler pass itself calls into them); ``lint``,
``soundness`` and ``verify`` additionally consume :mod:`repro.core` and
:mod:`repro.simt`.
"""

from repro.staticlib.cfg import EXIT_BLOCK, ControlFlowGraph, region_between
from repro.staticlib.dataflow import solve_gen_kill
from repro.staticlib.dominators import dominates, dominator_tree, postdominator_tree
from repro.staticlib.lint import RULES, Finding, LintReport, lint_program, lint_workload
from repro.staticlib.liveness import Liveness
from repro.staticlib.meld import (
    DEFAULT_THRESHOLD,
    MeldError,
    MeldPlan,
    MeldRecord,
    align_arms,
    apply_meld,
    check_legality,
    meldable_plans,
    plan_meld,
)
from repro.staticlib.passes import (
    MeldPass,
    PassManager,
    PipelineResult,
    Rejection,
    darm_ideal_pass,
    darm_pass,
    meld_program,
)
from repro.staticlib.reaching import (
    ENTRY_PC,
    Definition,
    ReachingDefinitions,
    UninitializedRead,
    find_uninitialized_reads,
)
from repro.staticlib.regions import Diamond, arm_instructions, find_diamonds
from repro.staticlib.soundness import (
    SoundnessReport,
    SoundnessViolation,
    WorkloadAudit,
    audit_all,
    audit_trace,
    audit_workload,
)
from repro.staticlib.verify import (
    MeldVerifyReport,
    WorkloadMeldCheck,
    verify_all,
    verify_workload,
)

__all__ = [
    # cfg / dominators / dataflow
    "EXIT_BLOCK",
    "ControlFlowGraph",
    "region_between",
    "dominator_tree",
    "postdominator_tree",
    "dominates",
    "solve_gen_kill",
    # reaching / liveness
    "ENTRY_PC",
    "Definition",
    "ReachingDefinitions",
    "UninitializedRead",
    "find_uninitialized_reads",
    "Liveness",
    # lint
    "RULES",
    "Finding",
    "LintReport",
    "lint_program",
    "lint_workload",
    # soundness
    "SoundnessReport",
    "SoundnessViolation",
    "WorkloadAudit",
    "audit_all",
    "audit_trace",
    "audit_workload",
    # regions / meld / passes (the DARM transform stack)
    "Diamond",
    "arm_instructions",
    "find_diamonds",
    "DEFAULT_THRESHOLD",
    "MeldError",
    "MeldPlan",
    "MeldRecord",
    "align_arms",
    "apply_meld",
    "check_legality",
    "meldable_plans",
    "plan_meld",
    "MeldPass",
    "PassManager",
    "PipelineResult",
    "Rejection",
    "darm_pass",
    "darm_ideal_pass",
    "meld_program",
    # differential verification
    "MeldVerifyReport",
    "WorkloadMeldCheck",
    "verify_all",
    "verify_workload",
]
