"""Static-analysis framework over :class:`repro.isa.program.Program`.

DARSIE's whole-program guarantee rests on the static marking pass never
over-promoting an instruction to DR (Section 4.2): a definitely-redundant
instruction is *skipped* by follower warps, so a marking that is wrong at
runtime silently corrupts results.  This subpackage provides the
independent machinery to check that, and to machine-check kernels people
add before they ever reach the simulator:

- :mod:`repro.staticlib.cfg` — CFG construction (blocks, branch and
  fallthrough edges, reachability, traversal orders);
- :mod:`repro.staticlib.dominators` — dominator / post-dominator trees
  (Cooper-Harvey-Kennedy);
- :mod:`repro.staticlib.dataflow` — a generic gen/kill worklist solver;
- :mod:`repro.staticlib.reaching` — reaching definitions and def-use
  chains, including synthetic entry definitions that expose
  read-before-write registers;
- :mod:`repro.staticlib.liveness` — backward liveness;
- :mod:`repro.staticlib.lint` — the kernel linter (divergence hazards,
  uninitialized reads, malformed control flow, Section 4.4 store
  hazards), producing Figure-6-style annotated findings;
- :mod:`repro.staticlib.soundness` — the marking soundness cross-checker:
  replays workloads through :mod:`repro.simt.tracer` and asserts every
  statically-DR instruction is dynamically uniform across all warps of
  every TB.

Layering: ``cfg``/``dominators``/``dataflow``/``reaching``/``liveness``
depend only on :mod:`repro.isa` (the compiler pass itself calls into
them); ``lint`` and ``soundness`` additionally consume
:mod:`repro.core` and :mod:`repro.simt`.
"""

from repro.staticlib.cfg import EXIT_BLOCK, ControlFlowGraph
from repro.staticlib.dataflow import solve_gen_kill
from repro.staticlib.dominators import dominates, dominator_tree, postdominator_tree
from repro.staticlib.lint import RULES, Finding, LintReport, lint_program, lint_workload
from repro.staticlib.liveness import Liveness
from repro.staticlib.reaching import (
    ENTRY_PC,
    Definition,
    ReachingDefinitions,
    UninitializedRead,
    find_uninitialized_reads,
)
from repro.staticlib.soundness import (
    SoundnessReport,
    SoundnessViolation,
    WorkloadAudit,
    audit_all,
    audit_trace,
    audit_workload,
)

__all__ = [
    "EXIT_BLOCK",
    "ControlFlowGraph",
    "dominator_tree",
    "postdominator_tree",
    "dominates",
    "solve_gen_kill",
    "ENTRY_PC",
    "Definition",
    "ReachingDefinitions",
    "UninitializedRead",
    "find_uninitialized_reads",
    "Liveness",
    "RULES",
    "Finding",
    "LintReport",
    "lint_program",
    "lint_workload",
    "SoundnessReport",
    "SoundnessViolation",
    "WorkloadAudit",
    "audit_all",
    "audit_trace",
    "audit_workload",
]
