"""Backward liveness over registers and predicates.

A variable is *live* at a point when some path from that point reads it
before any unguarded write.  Guarded writes do not kill (lanes whose
guard is false keep the old value — see :mod:`repro.staticlib.reaching`
for the same convention on the forward side).

The linter uses liveness for the Section 4.4 store-invalidation hazard:
a DR-skipped load whose destination is still live when a vector store to
the same space executes means follower warps may consume a renamed value
the store has just made stale.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.isa.program import Program
from repro.staticlib.cfg import ControlFlowGraph
from repro.staticlib.dataflow import solve_gen_kill
from repro.staticlib.reaching import Var, var_def, var_reads


class Liveness:
    """Per-block and per-instruction live variable sets."""

    def __init__(self, program: Program, cfg: Optional[ControlFlowGraph] = None):
        self.program = program
        self.cfg = cfg or ControlFlowGraph.from_program(program)
        self._compute()

    def _compute(self) -> None:
        gen: Dict[int, FrozenSet[Var]] = {}
        kill: Dict[int, FrozenSet[Var]] = {}
        for block in self.program.blocks:
            use: set = set()
            defined: set = set()
            for inst in block:
                for var in var_reads(inst):
                    if var not in defined:
                        use.add(var)
                d = var_def(inst)
                if d is not None and inst.guard is None:
                    defined.add(d)
            gen[block.index] = frozenset(use)
            kill[block.index] = frozenset(defined)
        self.block_in, self.block_out = solve_gen_kill(
            self.cfg, gen, kill, direction="backward", boundary=frozenset()
        )

        self._live_in: Dict[int, FrozenSet[Var]] = {}
        self._live_out: Dict[int, FrozenSet[Var]] = {}
        for block in self.program.blocks:
            live = self.block_out[block.index]
            for inst in reversed(block.instructions):
                self._live_out[inst.pc] = live
                d = var_def(inst)
                if d is not None and inst.guard is None:
                    live = live - {d}
                live = live | frozenset(var_reads(inst))
                self._live_in[inst.pc] = live

    def live_in_at(self, pc: int) -> FrozenSet[Var]:
        """Variables live just before the instruction at ``pc``."""
        return self._live_in[pc]

    def live_out_at(self, pc: int) -> FrozenSet[Var]:
        """Variables live just after the instruction at ``pc``."""
        return self._live_out[pc]
