"""Transform pass pipeline: every rewrite is re-verified before commit.

The analysis half of :mod:`repro.staticlib` exists because the paper's
whole-program guarantee cannot survive silent miscompilation; the same
bar applies to our own transforms.  :class:`PassManager` therefore
treats every candidate rewrite as untrusted: after each single-step
transform it re-runs the full 6-rule linter and the reaching-definitions
uninitialized-read analysis on the result, and refuses (reverts) any
step that makes either worse than the program it started from.  A
refused step is reported, the offending region is blocklisted by its
position-independent signature, and the pipeline continues with the
remaining candidates.

The comparison is *monotone*, not absolute: a kernel that already lints
dirty may still be transformed, as long as no rule's finding count grows
and no new uninitialized read appears.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.isa.program import Program
from repro.staticlib.cfg import ControlFlowGraph
from repro.staticlib.meld import (
    DEFAULT_THRESHOLD,
    MeldRecord,
    apply_meld,
    diamond_signature,
    meldable_plans,
)
from repro.staticlib.reaching import ReachingDefinitions

#: Hard cap on transform steps per pipeline run — a structural rewrite
#: that keeps producing new candidates is a bug, not progress.
MAX_STEPS = 64


def _lint_fingerprint(program: Program) -> Tuple[Counter, int]:
    """Per-rule finding counts plus the uninitialized-read count.

    PCs shift under transforms, so the monotonicity check compares
    rule-level counts, not positions.  Imported lazily because
    :mod:`repro.staticlib.lint` pulls in the compiler pass.
    """
    from repro.staticlib.lint import lint_program

    report = lint_program(program)
    by_rule = Counter(f.rule for f in report.findings)
    cfg = ControlFlowGraph.from_program(program)
    uninit = len(ReachingDefinitions(program, cfg).uninitialized_reads())
    return by_rule, uninit


@dataclass(frozen=True)
class Rejection:
    """One refused transform step."""

    pass_name: str
    branch_pc: int
    reason: str


@dataclass
class PipelineResult:
    """Outcome of one :meth:`PassManager.run`."""

    program: Program
    applied: List[MeldRecord] = field(default_factory=list)
    rejected: List[Rejection] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.applied)

    def summary(self) -> str:
        return (
            f"{self.program.name}: {len(self.applied)} meld(s) applied, "
            f"{len(self.rejected)} rejected"
        )


class MeldPass:
    """One-diamond-at-a-time control-flow melding (see :mod:`.meld`).

    ``threshold`` of ``None`` melds every legal diamond (the
    ``DARM-IDEAL`` policy); otherwise only alignments at or above the
    similarity bar are taken (``DARM``).
    """

    name = "meld"

    def __init__(self, threshold: Optional[float] = DEFAULT_THRESHOLD):
        self.threshold = threshold
        self._blocked: set = set()

    def block(self, program: Program, record: MeldRecord) -> None:
        """Never retry the diamond this record came from."""
        for plan in meldable_plans(program, threshold=None):
            if plan.diamond.branch_pc == record.branch_pc:
                self._blocked.add(diamond_signature(program, plan.diamond))
                return

    def step(self, program: Program) -> Optional[Tuple[Program, MeldRecord]]:
        """Apply the first unblocked profitable meld, or ``None``."""
        for plan in meldable_plans(program, threshold=self.threshold):
            if diamond_signature(program, plan.diamond) in self._blocked:
                continue
            return apply_meld(program, plan.diamond), MeldRecord.from_plan(plan)
        return None


class PassManager:
    """Runs transform passes to quiescence with per-step verification."""

    def __init__(self, passes: Optional[List] = None, validate: bool = True):
        self.passes = passes if passes is not None else [MeldPass()]
        self.validate = validate

    def run(self, program: Program) -> PipelineResult:
        result = PipelineResult(program=program)
        baseline = _lint_fingerprint(program) if self.validate else None
        steps = 0
        progress = True
        while progress and steps < MAX_STEPS:
            progress = False
            for p in self.passes:
                out = p.step(result.program)
                if out is None:
                    continue
                candidate, record = out
                steps += 1
                if baseline is not None:
                    reason = self._regression(baseline, candidate)
                    if reason is not None:
                        p.block(result.program, record)
                        result.rejected.append(
                            Rejection(pass_name=p.name, branch_pc=record.branch_pc,
                                      reason=reason)
                        )
                        progress = True
                        break
                result.program = candidate
                result.applied.append(record)
                progress = True
                break  # re-discover regions on the rewritten program
        return result

    @staticmethod
    def _regression(baseline, candidate: Program) -> Optional[str]:
        """Why the candidate is less sound than the input, or ``None``."""
        base_rules, base_uninit = baseline
        cand_rules, cand_uninit = _lint_fingerprint(candidate)
        for rule, count in cand_rules.items():
            if count > base_rules.get(rule, 0):
                return (
                    f"lint rule {rule!r} grew from {base_rules.get(rule, 0)} "
                    f"to {count} finding(s)"
                )
        if cand_uninit > base_uninit:
            return (
                f"uninitialized reads grew from {base_uninit} to {cand_uninit}"
            )
        return None


def meld_program(
    program: Program, threshold: Optional[float] = DEFAULT_THRESHOLD
) -> PipelineResult:
    """Meld every (profitable, verified-sound) diamond in ``program``."""
    return PassManager([MeldPass(threshold=threshold)]).run(program)


def darm_pass(program: Program) -> Program:
    """The ``DARM`` variant hook: profitability-gated melding."""
    return meld_program(program, threshold=DEFAULT_THRESHOLD).program


def darm_ideal_pass(program: Program) -> Program:
    """The ``DARM-IDEAL`` variant hook: meld every legal diamond."""
    return meld_program(program, threshold=None).program
