"""Dominator and post-dominator trees (Cooper-Harvey-Kennedy).

The linter uses post-dominance to reason about where divergent paths
rejoin and dominance to relate definitions to uses across blocks; both
are the standard "engineering a simple, fast dominance algorithm"
iteration over reverse postorder, with no sparse-tree tricks — kernels
here are tens of blocks at most.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.staticlib.cfg import EXIT_BLOCK, ControlFlowGraph


def _reverse_postorder(
    root: int, succ_of: Callable[[int], Tuple[int, ...]]
) -> List[int]:
    post: List[int] = []
    seen = set()
    stack: List[Tuple[int, bool]] = [(root, False)]
    while stack:
        node, finished = stack.pop()
        if finished:
            post.append(node)
            continue
        if node in seen:
            continue
        seen.add(node)
        stack.append((node, True))
        for s in succ_of(node):
            if s not in seen:
                stack.append((s, False))
    return list(reversed(post))


def _idoms(
    root: int,
    succ_of: Callable[[int], Tuple[int, ...]],
    pred_of: Callable[[int], Tuple[int, ...]],
) -> Dict[int, int]:
    """Immediate dominators for every node reachable from ``root``.

    ``idom[root] == root``; nodes unreachable from ``root`` are absent.
    """
    order = _reverse_postorder(root, succ_of)
    index = {node: i for i, node in enumerate(order)}
    idom: Dict[int, int] = {root: root}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order[1:]:
            preds = [p for p in pred_of(node) if p in idom]
            if not preds:
                continue
            new = preds[0]
            for p in preds[1:]:
                new = intersect(new, p)
            if idom.get(node) != new:
                idom[node] = new
                changed = True
    return idom


def dominator_tree(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Immediate dominator of every reachable block (entry maps to itself)."""
    if not cfg.program.blocks:
        return {}
    reachable = cfg.reachable

    def succ_of(node: int) -> Tuple[int, ...]:
        return tuple(s for s in cfg.succ.get(node, ()) if s != EXIT_BLOCK and s in reachable)

    def pred_of(node: int) -> Tuple[int, ...]:
        return tuple(p for p in cfg.pred.get(node, ()) if p in reachable)

    return _idoms(0, succ_of, pred_of)


def postdominator_tree(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Immediate post-dominator of every block that can reach kernel exit.

    Rooted at the virtual :data:`EXIT_BLOCK`; blocks that cannot reach
    exit (e.g. provably infinite loops) are absent from the result.
    """

    def succ_of(node: int) -> Tuple[int, ...]:
        return cfg.pred.get(node, ())

    def pred_of(node: int) -> Tuple[int, ...]:
        return cfg.succ.get(node, ())

    return _idoms(EXIT_BLOCK, succ_of, pred_of)


def dominates(idom: Dict[int, int], a: int, b: int) -> bool:
    """True when ``a`` (post-)dominates ``b`` under the given tree."""
    node: Optional[int] = b
    while node is not None:
        if node == a:
            return True
        parent = idom.get(node)
        node = parent if parent != node else None
    return False
