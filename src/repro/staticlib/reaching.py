"""Reaching definitions and def-use chains over registers and predicates.

Variables are ``(kind, name)`` pairs — ``("r", "acc")`` for general
registers, ``("p", "p0")`` for predicates — matching the two separate
register spaces of the ISA.  Two deliberate modelling choices:

- **Synthetic entry definitions.**  Every variable the program touches
  gets a definition at the virtual :data:`ENTRY_PC`.  A read that one of
  these reaches is a *read-before-write*: the machine architecturally
  supplies zeros, but DARSIE's compiler pass additionally *assumes* that
  implicit zero is TB-uniform when it defaults unseen registers to DR
  (Section 4.2's precondition).  :func:`find_uninitialized_reads` makes
  the assumption checkable.

- **Guarded writes do not kill.**  ``@$p mov $a, ...`` merges new lanes
  into ``$a`` under the guard; lanes where the guard is false keep the
  prior value, so earlier definitions (including the entry definition)
  still reach past it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.staticlib.cfg import ControlFlowGraph
from repro.staticlib.dataflow import solve_gen_kill

#: PC of the synthetic definition every variable has at kernel entry.
ENTRY_PC = -1

#: A variable: ("r", register_name) or ("p", predicate_name).
Var = Tuple[str, str]


def var_reads(inst: Instruction) -> Tuple[Var, ...]:
    """Variables read by ``inst``: sources, address registers, guard."""
    reads: List[Var] = [("r", r.name) for r in inst.source_registers()]
    reads.extend(("p", p.name) for p in inst.source_predicates())
    return tuple(dict.fromkeys(reads))


def var_def(inst: Instruction) -> Optional[Var]:
    """The variable ``inst`` writes, if any."""
    dreg = inst.dest_register()
    if dreg is not None:
        return ("r", dreg.name)
    dpred = inst.dest_predicate()
    if dpred is not None:
        return ("p", dpred.name)
    return None


@dataclass(frozen=True)
class Definition:
    """One write of one variable (or the synthetic entry write)."""

    pc: int
    var: Var

    @property
    def is_entry(self) -> bool:
        return self.pc == ENTRY_PC

    def __repr__(self) -> str:
        where = "entry" if self.is_entry else f"{self.pc:#06x}"
        return f"Def({self.var[0]}:{self.var[1]}@{where})"


@dataclass(frozen=True)
class UninitializedRead:
    """A read that a synthetic entry definition can reach."""

    pc: int
    var: Var

    @property
    def display_name(self) -> str:
        return f"${self.var[1]}"


class ReachingDefinitions:
    """Flow-sensitive reaching definitions for one program."""

    def __init__(self, program: Program, cfg: Optional[ControlFlowGraph] = None):
        self.program = program
        self.cfg = cfg or ControlFlowGraph.from_program(program)
        self._compute()

    # -- construction ----------------------------------------------------

    def _compute(self) -> None:
        program = self.program
        self.variables: FrozenSet[Var] = frozenset(
            v
            for inst in program.instructions
            for v in (*var_reads(inst), *((var_def(inst),) if var_def(inst) else ()))
        )
        self.entry_defs: FrozenSet[Definition] = frozenset(
            Definition(ENTRY_PC, v) for v in self.variables
        )
        defs_by_var: Dict[Var, set] = {v: {Definition(ENTRY_PC, v)} for v in self.variables}
        for inst in program.instructions:
            d = var_def(inst)
            if d is not None:
                defs_by_var[d].add(Definition(inst.pc, d))
        self._defs_by_var = {v: frozenset(s) for v, s in defs_by_var.items()}

        gen: Dict[int, FrozenSet] = {}
        kill: Dict[int, FrozenSet] = {}
        for block in program.blocks:
            facts: FrozenSet[Definition] = frozenset()
            killed: FrozenSet[Definition] = frozenset()
            for inst in block:
                facts, killed = self._transfer(inst, facts, killed)
            gen[block.index] = facts
            kill[block.index] = killed
        self.block_in, self.block_out = solve_gen_kill(
            self.cfg, gen, kill, direction="forward", boundary=self.entry_defs
        )

        # Per-instruction facts: definitions reaching the *start* of each pc.
        self._at: Dict[int, FrozenSet[Definition]] = {}
        for block in program.blocks:
            facts = self.block_in[block.index]
            for inst in block:
                self._at[inst.pc] = facts
                facts, _ = self._transfer(inst, facts, frozenset())

    def _transfer(
        self, inst: Instruction, facts: FrozenSet, killed: FrozenSet
    ) -> Tuple[FrozenSet, FrozenSet]:
        d = var_def(inst)
        if d is None:
            return facts, killed
        new_def = Definition(inst.pc, d)
        if inst.guard is None:
            others = self._defs_by_var[d] - {new_def}
            return (facts - others) | {new_def}, killed | others
        return facts | {new_def}, killed

    # -- queries ---------------------------------------------------------

    def at(self, pc: int) -> FrozenSet[Definition]:
        """Definitions reaching the start of the instruction at ``pc``."""
        return self._at[pc]

    def reaching_defs_of(self, pc: int, var: Var) -> FrozenSet[Definition]:
        return frozenset(d for d in self._at[pc] if d.var == var)

    def def_use_chains(self) -> Dict[Definition, Tuple[int, ...]]:
        """Map each definition to the PCs of the reads it can reach."""
        chains: Dict[Definition, List[int]] = {}
        for inst in self.program.instructions:
            reads = var_reads(inst)
            if not reads:
                continue
            reaching = self._at[inst.pc]
            for var in reads:
                for d in reaching:
                    if d.var == var:
                        chains.setdefault(d, []).append(inst.pc)
        return {d: tuple(pcs) for d, pcs in chains.items()}

    def uninitialized_reads(self) -> Tuple[UninitializedRead, ...]:
        """Reachable reads that a synthetic entry definition reaches.

        These are the reads for which the compiler pass's "unwritten
        register is REDUNDANT" default actually fires — the lint-backed
        precondition of :func:`repro.core.compiler_pass.analyze_program`.

        One predicate-aware refinement keeps the guarded reduction idiom
        the Table 1 kernels use (``@$p ld $a, ...`` then ``@$p add ...,
        $a, ...``) from flagging: a read under guard ``g`` is *covered*
        by an earlier same-block write of the same variable under the
        same ``g`` (same predicate, same polarity, predicate not
        redefined in between) — both instructions execute with the same
        lane mask, so every lane that reads did write.  Coverage is
        deliberately block-local: across blocks the mask equality would
        need path-sensitive reasoning.

        A second refinement covers the *melded* idiom the control-flow
        melding pass emits (:mod:`repro.staticlib.meld`): writes of the
        same variable under **both polarities** of one predicate
        (``@$p mul $m, ...`` then ``@!$p mul $m, ...``) jointly cover
        every active lane — within a block the active mask is constant,
        and each lane satisfies exactly one polarity — so any later
        same-block read of that variable (guarded or not) is
        initialized.  Redefining the predicate between the pair and the
        read invalidates the fact, as above.
        """

        def _fully_covered(keys: set) -> bool:
            return any(
                (name, True) in keys for (name, neg) in keys if not neg
            )

        out: List[UninitializedRead] = []
        for block in self.program.blocks:
            if block.index not in self.cfg.reachable:
                continue
            facts = self.block_in[block.index]
            # var -> set of (guard predicate name, negated) that wrote it
            covered: Dict[Var, set] = {}
            for inst in block:
                guard_key = None
                if inst.guard is not None:
                    guard_key = (inst.guard.name, inst.guard_negated)
                for var in var_reads(inst):
                    if Definition(ENTRY_PC, var) not in facts:
                        continue
                    keys = covered.get(var, set())
                    if guard_key is not None and guard_key in keys:
                        continue
                    if _fully_covered(keys):
                        continue
                    out.append(UninitializedRead(pc=inst.pc, var=var))
                d = var_def(inst)
                if d is not None:
                    if inst.guard is None:
                        covered.pop(d, None)
                    else:
                        covered.setdefault(d, set()).add(guard_key)
                    if d[0] == "p":
                        # Redefining a predicate invalidates every
                        # coverage fact conditioned on it.
                        for keys in covered.values():
                            keys.discard((d[1], False))
                            keys.discard((d[1], True))
                facts, _ = self._transfer(inst, facts, frozenset())
        return tuple(sorted(out, key=lambda u: (u.pc, u.var)))


def find_uninitialized_reads(program: Program) -> Tuple[UninitializedRead, ...]:
    """Convenience wrapper used by the compiler pass's precondition check."""
    return ReachingDefinitions(program).uninitialized_reads()
