"""Campaign driver: hypothesis generation + shrinking + corpus capture.

:func:`fuzz_campaign` runs ``budget`` random kernels through the oracle
stack.  On a failure hypothesis shrinks the program to a minimal
reproducer (the :class:`~repro.fuzz.oracles.OracleFailure` carries the
spec through the shrink), and the driver writes it to the corpus
directory under a content-hashed name with a triage note — ``git add``
that file to pin the bug forever via the corpus-replay test.

The campaign is deterministic: same seed + budget ⇒ same candidates and
the same shrunk counterexample (the hypothesis example database is
disabled so state never leaks between runs).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.fuzz.oracles import OracleFailure, check_spec
from repro.fuzz.spec import KernelSpec, default_corpus_dir


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seed: int
    budget: int
    examples: int
    failure: Optional[OracleFailure] = None
    corpus_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def render(self) -> str:
        if self.ok:
            return (
                f"fuzz: seed={self.seed} budget={self.budget} — "
                f"{self.examples} candidate(s) survived all oracles"
            )
        lines = [
            f"fuzz: seed={self.seed} budget={self.budget} — "
            f"oracle {self.failure.oracle!r} FAILED after {self.examples} candidate(s)"
        ]
        if self.corpus_path:
            lines.append(f"minimized reproducer saved to {self.corpus_path}")
        lines.append(str(self.failure))
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "examples": self.examples,
            "ok": self.ok,
            "failed_oracle": self.failure.oracle if self.failure else None,
            "corpus_path": self.corpus_path,
        }


def _corpus_name(failure: OracleFailure) -> str:
    digest = hashlib.sha256(failure.spec.source.encode()).hexdigest()[:10]
    slug = failure.oracle.replace(":", "_").replace("-", "_")
    return f"fuzz_{slug}_{digest}"


def save_failure(failure: OracleFailure, corpus_dir: Optional[str] = None) -> str:
    """Write the shrunk counterexample to the corpus; returns the path."""
    note = f"{failure.oracle}: {failure.detail.splitlines()[0][:200]}"
    named = replace(failure.spec, name=_corpus_name(failure), note=note)
    return named.save(corpus_dir or default_corpus_dir())


def fuzz_campaign(
    seed: int,
    budget: int,
    corpus_dir: Optional[str] = None,
    oracles: Optional[Dict[str, Callable[[KernelSpec], None]]] = None,
    save: bool = True,
) -> FuzzReport:
    """Run one deterministic campaign; stop at the first (shrunk) failure.

    One failure per campaign is deliberate: the workflow is fix → rerun,
    so each campaign either comes back green or hands you exactly one
    minimized program to triage.
    """
    if budget <= 0:
        # Corpus-replay-only invocations (`--budget 0`) skip generation.
        return FuzzReport(seed=seed, budget=budget, examples=0)

    from hypothesis import HealthCheck, Phase, given, settings
    from hypothesis import seed as hyp_seed

    from repro.fuzz.generate import kernel_specs

    progress = {"examples": 0}

    @settings(
        max_examples=budget,
        deadline=None,
        database=None,
        suppress_health_check=list(HealthCheck),
        phases=(Phase.generate, Phase.shrink),
        report_multiple_bugs=False,
        print_blob=False,
    )
    @hyp_seed(seed)
    @given(spec=kernel_specs())
    def _case(spec: KernelSpec) -> None:
        progress["examples"] += 1
        check_spec(spec, oracles=oracles)

    try:
        _case()
    except OracleFailure as failure:
        path = save_failure(failure, corpus_dir) if save else None
        return FuzzReport(
            seed=seed,
            budget=budget,
            examples=progress["examples"],
            failure=failure,
            corpus_path=path,
        )
    return FuzzReport(seed=seed, budget=budget, examples=progress["examples"])


def replay_corpus(
    corpus_dir: Optional[str] = None,
    oracles: Optional[Dict[str, Callable[[KernelSpec], None]]] = None,
) -> List[Dict]:
    """Run every committed corpus program through the oracle stack.

    Returns one record per program; a record with ``ok=False`` carries
    the failure text.  Used by both ``python -m repro fuzz`` (pre-flight)
    and ``tests/properties/test_corpus_replay.py``.
    """
    from repro.fuzz.spec import corpus_specs

    records: List[Dict] = []
    for path, spec in corpus_specs(corpus_dir):
        record = {"path": path, "name": spec.name, "note": spec.note, "ok": True}
        try:
            check_spec(spec, oracles=oracles)
        except OracleFailure as failure:
            record["ok"] = False
            record["failure"] = str(failure)
        records.append(record)
    return records


def generator_health(seed: int = 0, samples: int = 100) -> Dict:
    """Measure the raw generator: how many candidates assemble and how
    many pass the linter *before* the ``assume`` filter.  A healthy
    generator assembles everything and lints nearly everything — if the
    lint rate collapses, the by-construction validity rules have rotted
    and the fuzzer is silently discarding most of its budget."""
    from hypothesis import HealthCheck, Phase, given, settings
    from hypothesis import seed as hyp_seed

    from repro.fuzz.generate import raw_kernel_specs
    from repro.staticlib.lint import lint_program

    stats = {"samples": 0, "assembled": 0, "lint_ok": 0, "errors": []}

    @settings(
        max_examples=samples,
        deadline=None,
        database=None,
        suppress_health_check=list(HealthCheck),
        phases=(Phase.generate,),
    )
    @hyp_seed(seed)
    @given(spec=raw_kernel_specs())
    def _sample(spec: KernelSpec) -> None:
        stats["samples"] += 1
        try:
            program = spec.program()
        except Exception as exc:  # noqa: BLE001 — counted, not raised
            if len(stats["errors"]) < 5:
                stats["errors"].append(f"assemble: {exc}")
            return
        stats["assembled"] += 1
        report = lint_program(program)
        if report.ok:
            stats["lint_ok"] += 1
        elif len(stats["errors"]) < 5:
            findings = "; ".join(str(f) for f in report.errors[:3])
            stats["errors"].append(f"lint: {findings}\n{spec.source}")

    _sample()
    stats["assemble_rate"] = stats["assembled"] / max(1, stats["samples"])
    stats["lint_rate"] = stats["lint_ok"] / max(1, stats["samples"])
    return stats
