"""Differential random-kernel fuzzer (ROADMAP: workload frontier).

The marking-soundness checker and the meld verifier only exercise the
sixteen hand-written workloads; this package turns them into a standing
adversary.  :mod:`repro.fuzz.generate` draws well-formed DSL kernels
over the full opcode surface with hypothesis, :mod:`repro.fuzz.oracles`
runs each candidate through a stack of differential oracles, and
:mod:`repro.fuzz.driver` wires both into ``python -m repro fuzz`` with
shrinking and a committed counterexample corpus (``tests/corpus/``).
"""

from repro.fuzz.spec import KernelSpec, build_fuzz_workload, corpus_specs, load_spec
from repro.fuzz.oracles import (
    ORACLES,
    OracleFailure,
    check_spec,
    oracle_checkpoint_resume,
    oracle_event_skip,
    oracle_functional_end_state,
    oracle_marking_soundness,
    oracle_meld,
)
from repro.fuzz.driver import (
    FuzzReport,
    fuzz_campaign,
    generator_health,
    replay_corpus,
    save_failure,
)

__all__ = [
    "KernelSpec",
    "build_fuzz_workload",
    "corpus_specs",
    "load_spec",
    "ORACLES",
    "OracleFailure",
    "check_spec",
    "oracle_functional_end_state",
    "oracle_marking_soundness",
    "oracle_meld",
    "oracle_event_skip",
    "oracle_checkpoint_resume",
    "FuzzReport",
    "fuzz_campaign",
    "generator_health",
    "replay_corpus",
    "save_failure",
]
