"""The differential oracle stack: the ways DARSIE must agree with BASE.

Each oracle takes a :class:`~repro.fuzz.spec.KernelSpec` and raises
:class:`OracleFailure` on disagreement; returning normally means the
candidate passed.  The stack:

1. **functional** — run the timing simulator twice, BASE frontend vs
   DARSIE frontend, and require the final global memory and every
   warp's architectural register/predicate files to match *bit for
   bit*.  Comparisons go through raw bytes, not ``==``, so NaN payloads
   produced by overflowing float chains compare like any other value.
2. **soundness** — replay the kernel functionally with the tracer and
   run :func:`repro.staticlib.soundness.audit_trace` over the promoted
   markings: static DR must be dynamically UNIFORM, promoted CR must be
   TB-redundant.
3. **meld** — :func:`repro.staticlib.verify.verify_workload` with the
   ideal (thresholdless) DARM melder.
4. **event-skip** — the DARSIE timing run with ``event_skip=True`` must
   produce the exact ``SimulationResult.to_dict()`` of the
   cycle-stepped run; the idle-cycle fast-forward may never change
   simulated statistics.
5. **staged-pipeline** — the staged BASE pipeline drains cleanly, its
   per-stage counters are consistent, and its final memory matches the
   functional reference.
6. **checkpoint-resume** — pausing at a ``data_seed``-derived mid-run
   cycle, round-tripping through the on-disk checkpoint container, and
   resuming must reproduce the straight-through run bit for bit.

Register capture uses :class:`CapturingFrontend`, a pure delegator that
snapshots register files at ``on_tb_complete`` — the last hook at which
a threadblock's warps are still attached to the SM.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.compiler_pass import analyze_program
from repro.core.darsie import DarsieFrontend
from repro.fuzz.spec import KernelSpec, build_fuzz_workload
from repro.timing.config import small_config
from repro.timing.frontend import Frontend, NullFrontend
from repro.timing.gpu import SimulationResult, simulate

#: (tb_index, warp_id, "r"|"p", name) -> final lane vector.
RegisterDump = Dict[Tuple[int, int, str, str], np.ndarray]


class OracleFailure(AssertionError):
    """One oracle rejected one spec.  Carries the spec so hypothesis'
    shrinking re-raises the *minimal* failing program to the driver."""

    def __init__(self, oracle: str, spec: KernelSpec, detail: str):
        self.oracle = oracle
        self.spec = spec
        self.detail = detail
        super().__init__(
            f"oracle {oracle!r} failed for kernel "
            f"(grid={spec.grid_dim}, block={spec.block_dim}, "
            f"data_seed={spec.data_seed}):\n{detail}\n--- source ---\n{spec.source}"
        )


class CapturingFrontend(Frontend):
    """Delegate every hook to ``inner``; snapshot register files into
    ``sink`` as each threadblock completes."""

    def __init__(self, inner: Frontend, sink: RegisterDump):
        self.inner = inner
        self.sink = sink
        self.name = inner.name

    def bind(self, sm) -> None:
        self.sm = sm
        self.inner.bind(sm)

    def make_issue_stage(self, pipeline):
        return self.inner.make_issue_stage(pipeline)

    def on_tb_launch(self, tb_rt) -> None:
        self.inner.on_tb_launch(tb_rt)

    def on_tb_complete(self, tb_rt) -> None:
        self.inner.on_tb_complete(tb_rt)
        tb_index = tb_rt.tb.tb_index
        for wrt in tb_rt.warps:
            rf = wrt.warp.registers
            for name, value in rf._regs.items():
                self.sink[(tb_index, wrt.warp.warp_id, "r", name)] = np.asarray(value).copy()
            for name, value in rf._preds.items():
                self.sink[(tb_index, wrt.warp.warp_id, "p", name)] = np.asarray(value).copy()

    def fetch_cycle(self, cycle: int) -> None:
        self.inner.fetch_cycle(cycle)

    def next_wake(self, cycle: int) -> Optional[int]:
        return self.inner.next_wake(cycle)

    def filter_fetch(self, warp_rt, pc: int):
        return self.inner.filter_fetch(warp_rt, pc)

    def on_fetch(self, warp_rt, inst, is_leader: bool) -> Optional[Dict]:
        return self.inner.on_fetch(warp_rt, inst, is_leader)

    def eliminate_at_issue(self, warp_rt, inst) -> Optional[str]:
        return self.inner.eliminate_at_issue(warp_rt, inst)

    def on_executed(self, warp_rt, inst, result) -> None:
        self.inner.on_executed(warp_rt, inst, result)

    def on_writeback(self, warp_rt, inst, entry_meta) -> None:
        self.inner.on_writeback(warp_rt, inst, entry_meta)

    def blocks_after_branch(self, warp_rt, inst) -> bool:
        return self.inner.blocks_after_branch(warp_rt, inst)

    def on_syncthreads(self, tb_rt) -> None:
        self.inner.on_syncthreads(tb_rt)

    def on_warp_exit(self, warp_rt) -> None:
        self.inner.on_warp_exit(warp_rt)

    def on_store(self, tb_rt) -> None:
        self.inner.on_store(tb_rt)

    def on_global_communication(self) -> None:
        self.inner.on_global_communication()


def _darsie_factory(spec: KernelSpec) -> Callable[[], Frontend]:
    analysis = analyze_program(spec.program())
    return lambda: DarsieFrontend(analysis)


def _timing_run(
    spec: KernelSpec,
    frontend_factory: Callable[[], Frontend],
    event_skip: bool = True,
) -> Tuple[SimulationResult, np.ndarray, RegisterDump]:
    """One single-SM timing run; returns (result, memory words, registers)."""
    memory, params = spec.fresh_memory()
    registers: RegisterDump = {}
    config = small_config(num_sms=1, event_skip=event_skip)
    with np.errstate(all="ignore"):
        result = simulate(
            spec.program(),
            spec.launch(),
            memory,
            params,
            config=config,
            frontend_factory=lambda: CapturingFrontend(frontend_factory(), registers),
        )
    return result, memory.words.copy(), registers


def _bits_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bit-exact array equality: NaN == NaN iff same payload."""
    return a.dtype == b.dtype and a.shape == b.shape and a.tobytes() == b.tobytes()


def _diff_registers(base: RegisterDump, other: RegisterDump) -> List[str]:
    """Bit-exact register diff; a register missing on one side is zeros
    (the register file materializes zeros on first read)."""
    problems: List[str] = []
    for key in sorted(set(base) | set(other), key=str):
        tb, warp, kind, name = key
        a, b = base.get(key), other.get(key)
        if a is None:
            a = np.zeros_like(b)
        if b is None:
            b = np.zeros_like(a)
        if not _bits_equal(a, b):
            problems.append(
                f"tb{tb}/warp{warp} ${name} ({kind}): "
                f"base={a.tolist()} other={b.tolist()}"
            )
    return problems


def _diff_memory(base: np.ndarray, other: np.ndarray) -> Optional[str]:
    if _bits_equal(base, other):
        return None
    a = base.view(np.uint8).reshape(base.size, -1)
    b = other.view(np.uint8).reshape(other.size, -1)
    words = np.nonzero((a != b).any(axis=1))[0]
    sample = ", ".join(
        f"[{w}] {base[w]!r} != {other[w]!r}" for w in words[:8]
    )
    return f"global memory differs in {words.size} word(s): {sample}"


# -- the oracles -----------------------------------------------------------


def oracle_functional_end_state(spec: KernelSpec) -> None:
    """BASE and DARSIE must leave bit-identical memory + register files."""
    _, base_mem, base_regs = _timing_run(spec, NullFrontend)
    _, dar_mem, dar_regs = _timing_run(spec, _darsie_factory(spec))
    problems: List[str] = []
    mem_problem = _diff_memory(base_mem, dar_mem)
    if mem_problem:
        problems.append(mem_problem)
    problems.extend(_diff_registers(base_regs, dar_regs))
    if problems:
        raise OracleFailure("functional", spec, "\n".join(problems[:12]))


def oracle_marking_soundness(spec: KernelSpec) -> None:
    """Static DR ⇒ dynamically uniform; promoted CR ⇒ TB-redundant."""
    from repro.staticlib.soundness import audit_workload

    with np.errstate(all="ignore"):
        audit = audit_workload(build_fuzz_workload(spec))
    if not audit.ok:
        detail = "\n".join(v.render() for v in audit.violations[:8])
        raise OracleFailure("soundness", spec, detail)


def oracle_meld(spec: KernelSpec) -> None:
    """The ideal DARM melder must preserve observable behaviour."""
    from repro.staticlib.verify import verify_workload

    with np.errstate(all="ignore"):
        check = verify_workload(build_fuzz_workload(spec))
    if not check.ok:
        raise OracleFailure("meld", spec, "\n".join(check.problems[:12]))


def oracle_event_skip(spec: KernelSpec) -> None:
    """Idle-cycle fast-forward may not change any simulated statistic."""
    factory = _darsie_factory(spec)
    skipped, _, _ = _timing_run(spec, factory, event_skip=True)
    stepped, _, _ = _timing_run(spec, factory, event_skip=False)
    a, b = skipped.to_dict(), stepped.to_dict()
    if a != b:
        diffs = [
            f"{key}: skip={a.get(key)!r} step={b.get(key)!r}"
            for key in sorted(set(a) | set(b))
            if a.get(key) != b.get(key)
        ]
        raise OracleFailure("event-skip", spec, "\n".join(diffs))


def oracle_staged_pipeline(spec: KernelSpec) -> None:
    """The staged BASE pipeline must drain cleanly and agree with the
    functional reference.

    Runs the kernel through :class:`~repro.timing.gpu.GPU` directly (so
    the stage pipeline's inter-stage buffers are inspectable after the
    run) and requires: the typed buffers drained at completion (no live
    warp left anything behind), the
    per-stage counters consistent (one decode per fetch, one execute per
    issue, nothing skipped or eliminated under BASE), and final global
    memory bit-identical to :func:`repro.simt.executor.run_functional`.
    """
    from repro.simt.executor import run_functional
    from repro.timing.gpu import GPU

    memory, params = spec.fresh_memory()
    with np.errstate(all="ignore"):
        gpu = GPU(
            spec.program(),
            spec.launch(),
            memory,
            params,
            config=small_config(num_sms=1),
        )
        result = gpu.run()

    problems: List[str] = []
    for sm in gpu.sms:
        pipe = sm.pipeline
        if sm.warps:
            problems.append(f"sm{sm.sm_id}: {len(sm.warps)} warp(s) still resident")
        # The run ends when the last TB completes; writebacks scheduled
        # past that cycle legitimately stay queued — but only ever for
        # warps that already exited (their values are architectural at
        # execute; writeback only releases scoreboard entries).
        stuck = [item for item in pipe.wbq.pending() if not item[2].exited]
        if stuck:
            problems.append(
                f"sm{sm.sm_id}: {len(stuck)} in-flight instruction(s) of "
                "live warps never wrote back"
            )
        if pipe.zero_cost.total:
            problems.append(
                f"sm{sm.sm_id}: zero-cost ledger nonzero after drain "
                f"({pipe.zero_cost.total})"
            )
    s = result.stats
    if s.instructions_fetched != s.instructions_decoded:
        problems.append(
            f"fetched {s.instructions_fetched} != decoded {s.instructions_decoded}"
        )
    if s.instructions_issued != s.instructions_executed:
        problems.append(
            f"issued {s.instructions_issued} != executed {s.instructions_executed}"
        )
    if s.instructions_skipped or s.executions_eliminated:
        problems.append(
            f"BASE skipped {s.instructions_skipped} / "
            f"eliminated {s.executions_eliminated} instruction(s)"
        )

    ref_memory, ref_params = spec.fresh_memory()
    with np.errstate(all="ignore"):
        run_functional(spec.program(), spec.launch(), ref_memory, ref_params)
    mem_problem = _diff_memory(ref_memory.words.copy(), memory.words.copy())
    if mem_problem:
        problems.append(mem_problem)
    if problems:
        raise OracleFailure("staged-pipeline", spec, "\n".join(problems[:12]))


def oracle_checkpoint_resume(spec: KernelSpec) -> None:
    """Pausing at a random mid-run cycle, round-tripping the simulator
    through an on-disk checkpoint, and finishing must be bit-identical
    to running straight through.

    The pause cycle is derived from ``data_seed`` so hypothesis explores
    different split points while each spec stays deterministic; the
    round trip goes through :func:`repro.timing.checkpoint`'s container
    (not a bare pickle), so the file format is fuzzed too.
    """
    import os
    import tempfile

    from repro.timing.checkpoint import read_checkpoint, write_checkpoint
    from repro.timing.gpu import GPU

    factory = _darsie_factory(spec)
    config = small_config(num_sms=1)

    def fresh_gpu() -> GPU:
        memory, params = spec.fresh_memory()
        return GPU(spec.program(), spec.launch(), memory, params,
                   config=config, frontend_factory=factory)

    with np.errstate(all="ignore"):
        ref_gpu = fresh_gpu()
        ref = ref_gpu.run()
        stop = 1 + spec.data_seed % max(1, ref.cycles - 1)
        paused = fresh_gpu()
        partial = paused.run_to(stop)
        if partial is not None:
            # event-skip jumped straight past stop to completion; the
            # straight-through comparison below still applies.
            resumed_gpu, result = paused, partial
        else:
            fd, path = tempfile.mkstemp(suffix=".ckpt")
            os.close(fd)
            try:
                write_checkpoint(path, paused)
                resumed_gpu = read_checkpoint(path)
            finally:
                os.unlink(path)
            result = resumed_gpu.run()

    problems: List[str] = []
    a, b = ref.to_dict(), result.to_dict()
    if a != b:
        problems.extend(
            f"{key}: straight={a.get(key)!r} resumed={b.get(key)!r}"
            for key in sorted(set(a) | set(b))
            if a.get(key) != b.get(key)
        )
    mem_problem = _diff_memory(
        ref_gpu.ctx.memory.words.copy(), resumed_gpu.ctx.memory.words.copy()
    )
    if mem_problem:
        problems.append(mem_problem)
    if problems:
        raise OracleFailure(
            "checkpoint-resume", spec,
            f"paused at cycle {stop}:\n" + "\n".join(problems[:12]),
        )


#: Name -> oracle, in the order the stack runs.
ORACLES: Dict[str, Callable[[KernelSpec], None]] = {
    "functional": oracle_functional_end_state,
    "soundness": oracle_marking_soundness,
    "meld": oracle_meld,
    "event-skip": oracle_event_skip,
    "staged-pipeline": oracle_staged_pipeline,
    "checkpoint-resume": oracle_checkpoint_resume,
}


def check_spec(
    spec: KernelSpec, oracles: Optional[Dict[str, Callable[[KernelSpec], None]]] = None
) -> None:
    """Run ``spec`` through the oracle stack.  Any non-oracle exception
    (assembler crash, simulator deadlock, …) is itself a finding and is
    wrapped as an :class:`OracleFailure` so it shrinks like one."""
    for name, oracle in (oracles if oracles is not None else ORACLES).items():
        try:
            oracle(spec)
        except OracleFailure:
            raise
        except Exception as exc:  # noqa: BLE001 — every crash is a finding
            raise OracleFailure(
                f"crash:{name}", spec, f"{type(exc).__name__}: {exc}"
            ) from exc
