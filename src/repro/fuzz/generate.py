"""Hypothesis strategies over the full DSL opcode surface.

Kernels are generated *mostly-valid by construction* — every register is
written before it is read on every path, loops are counted do-while
loops off immediate bounds (so they terminate and their guards are
DR-marked, making in-loop ``bar.sync`` legal under the divergent-barrier
lint rule), and branch regions are forward skips — then the PR-2 linter
is applied as the final validity filter (:func:`kernel_specs` assumes
``lint_program(...).ok``).

Race-freedom discipline (so the differential oracles are meaningful):

- plain loads read the read-only ``inp`` table (index masked to
  ``DATA_WORDS - 1``) or the thread's *own* ``out`` slot;
- plain stores write only the thread's own ``out`` slot or its own
  shared-memory word;
- atomics to the shared ``acc`` word are add-only with small operands
  (exact in float64 word storage, hence order-independent), and the
  schedule-dependent old value is clobbered immediately.

Everything else — guarded ops over DR predicates, SFU chains, CR→DR
promotion flipping with the block shape, partial warps — is fair game.
"""

from __future__ import annotations

from hypothesis import assume, strategies as st

from repro.fuzz.spec import DATA_WORDS, KernelSpec
from repro.staticlib.lint import lint_program

#: Block shapes: CR→DR promotion fires for multi-dim TBs whose x extent
#: is a power of two <= the warp size, and must stay off otherwise.
#: The mix covers 1D/2D/3D, promotion on/off, partial warps (x*y % 32
#: != 0) and a single-warp TB (skipping disabled at bind).
BLOCK_DIMS = [
    (32, 2, 1),   # promoted, 2 warps
    (16, 4, 1),   # promoted, 2 warps
    (8, 2, 2),    # promoted 3D, 1 warp -> skipping disabled
    (16, 2, 1),   # promoted, single warp -> skipping disabled
    (4, 8, 1),    # promoted, 1 warp
    (32, 4, 1),   # promoted, 4 warps
    (64, 1, 1),   # 1D: no promotion, 2 warps
    (48, 2, 1),   # x not a power of two: no promotion, 3 warps
    (20, 3, 1),   # partial warps (60 threads), no promotion
    (32, 3, 1),   # promoted, 3 warps
]

GRID_DIMS = [(1, 1, 1), (2, 1, 1), (1, 2, 1), (2, 2, 1)]

#: Registers the prologue computes; the body reads but never writes them.
_RESERVED = ("lin", "blk", "bsz", "gid", "gaddr", "saddr")
#: Scratch registers the prologue zero-initialises so items (including
#: ones inside branch regions) can always use them as destinations.
_SCRATCH_INT = ("at",)
_SCRATCH_FLOAT = ("ft",)

_INT_REGS = tuple(f"v{i}" for i in range(6))
_FLOAT_REGS = tuple(f"f{i}" for i in range(3))
_PREDS = tuple(f"p{i}" for i in range(4))

#: Lane-varying specials (V-marked) plus the CR seed ``tid.x``.
_VARYING_SPECIALS = ("%tid.x", "%tid.y", "%tid.z", "%laneid", "%warpid")
#: TB-uniform specials (DR-marked).
_UNIFORM_SPECIALS = (
    "%ntid.x", "%ntid.y", "%ntid.z",
    "%ctaid.x", "%ctaid.y", "%nctaid.x", "%nctaid.y",
)

_ALU2_OPS = ("add", "sub", "mul", "min", "max", "and", "or", "xor", "rem")
_ALU1_OPS = ("mov", "abs", "neg", "not")
_SFU_OPS = ("rcp", "sqrt", "ex2", "lg2", "sin", "cos")
_CMPS = ("lt", "le", "gt", "ge", "eq", "ne")
_FLOAT_IMMS = ("0.5", "1.5", "-2.25", "3.0", "-0.75", "8.0")

#: Shared-memory words declared by every kernel; covers one word per
#: thread for the largest block shape above (192 threads).
_SHARED_WORDS = 256

_SIMPLE_KINDS = (
    "alu2", "alu2", "alu1", "mad", "shift", "div",
    "cvt", "falu", "sfu", "setp", "selp", "guarded",
    "ld_inp", "ld_own", "st_own", "atom_own", "atom_acc", "shared_rt",
)
_TOP_KINDS = _SIMPLE_KINDS + (
    "bar", "shared_bcast", "if_region", "loop", "if_region", "loop",
)
_LOOP_KINDS = _SIMPLE_KINDS + ("bar", "shared_bcast")


class _Gen:
    """Mutable generation state: emitted lines + initialised-name sets."""

    def __init__(self) -> None:
        self.lines = []
        self.init_ints = set(_RESERVED) | set(_SCRATCH_INT)
        self.init_floats = set(_SCRATCH_FLOAT)
        self.init_preds = set()
        self.labels = 0
        self.loops = 0

    def emit(self, line: str) -> None:
        self.lines.append(line)


def _int_source(draw, g: _Gen) -> str:
    """An int-valued source operand, biased toward uniform values so
    DR marking (and therefore skipping) fires often."""
    kind = draw(st.sampled_from(
        ("imm", "imm", "uniform", "uniform", "reg", "reg", "reg",
         "varying", "param")
    ))
    if kind == "imm":
        return str(draw(st.integers(-64, 64)))
    if kind == "uniform":
        return draw(st.sampled_from(_UNIFORM_SPECIALS))
    if kind == "varying":
        return draw(st.sampled_from(_VARYING_SPECIALS))
    if kind == "param":
        return draw(st.sampled_from(("%param.inp", "%param.out", "%param.acc")))
    return "$" + draw(st.sampled_from(sorted(g.init_ints)))


def _float_source(draw, g: _Gen) -> str:
    if g.init_floats and draw(st.booleans()):
        return "$" + draw(st.sampled_from(sorted(g.init_floats)))
    return draw(st.sampled_from(_FLOAT_IMMS))


def _int_dest(draw, g: _Gen, conditional: bool) -> str:
    """Pick an int destination; on conditional paths (guards, branch
    regions) only already-initialised registers are legal dests, since
    guarded/region writes do not count as initialisation."""
    pool = sorted(g.init_ints - set(_RESERVED)) if conditional else list(_INT_REGS)
    pool = pool or list(_SCRATCH_INT)
    name = draw(st.sampled_from(pool))
    if not conditional:
        g.init_ints.add(name)
    return name


def _float_dest(draw, g: _Gen, conditional: bool) -> str:
    pool = sorted(g.init_floats) if conditional else list(_FLOAT_REGS)
    pool = pool or list(_SCRATCH_FLOAT)
    name = draw(st.sampled_from(pool))
    if not conditional:
        g.init_floats.add(name)
    return name


def _pred_dest(draw, g: _Gen, conditional: bool) -> str:
    pool = sorted(g.init_preds) if conditional else list(_PREDS)
    name = draw(st.sampled_from(pool)) if pool else _PREDS[0]
    if not conditional:
        g.init_preds.add(name)
    return name


def _ensure_pred(draw, g: _Gen) -> str:
    """A predicate guaranteed to be initialised (emits a setp if none is)."""
    if not g.init_preds:
        p = _PREDS[0]
        g.emit(f"    setp.{draw(st.sampled_from(_CMPS))}.s32 ${p}, "
               f"{_int_source(draw, g)}, {_int_source(draw, g)}")
        g.init_preds.add(p)
    return draw(st.sampled_from(sorted(g.init_preds)))


def _emit_item(draw, g: _Gen, kind: str, conditional: bool) -> None:
    # Sources are always drawn *before* the destination is registered as
    # initialised, so an instruction can only read its own dest when a
    # previous write made that legal.
    if kind == "alu2":
        op = draw(st.sampled_from(_ALU2_OPS))
        a, b = _int_source(draw, g), _int_source(draw, g)
        d = _int_dest(draw, g, conditional)
        g.emit(f"    {op}.s32 ${d}, {a}, {b}")
    elif kind == "alu1":
        op = draw(st.sampled_from(_ALU1_OPS))
        a = _int_source(draw, g)
        d = _int_dest(draw, g, conditional)
        g.emit(f"    {op}.s32 ${d}, {a}")
    elif kind == "mad":
        a, b, c = (_int_source(draw, g) for _ in range(3))
        d = _int_dest(draw, g, conditional)
        g.emit(f"    mad.s32 ${d}, {a}, {b}, {c}")
    elif kind == "shift":
        op = draw(st.sampled_from(("shl", "shr")))
        a, b = _int_source(draw, g), _int_source(draw, g)
        d = _int_dest(draw, g, conditional)
        g.emit(f"    {op}.u32 ${d}, {a}, {b}")
    elif kind == "div":
        op = draw(st.sampled_from(("div", "rem")))
        a, b = _int_source(draw, g), _int_source(draw, g)
        d = _int_dest(draw, g, conditional)
        g.emit(f"    {op}.s32 ${d}, {a}, {b}")
    elif kind == "cvt":
        a = _int_source(draw, g)
        d = _float_dest(draw, g, conditional)
        g.emit(f"    cvt.f32 ${d}, {a}")
    elif kind == "falu":
        op = draw(st.sampled_from(("add", "sub", "mul", "min", "max")))
        a, b = _float_source(draw, g), _float_source(draw, g)
        d = _float_dest(draw, g, conditional)
        g.emit(f"    {op}.f32 ${d}, {a}, {b}")
    elif kind == "sfu":
        op = draw(st.sampled_from(_SFU_OPS))
        a = _float_source(draw, g)
        d = _float_dest(draw, g, conditional)
        g.emit(f"    {op}.f32 ${d}, {a}")
    elif kind == "setp":
        p = _pred_dest(draw, g, conditional)
        if g.init_floats and draw(st.booleans()):
            g.emit(f"    setp.{draw(st.sampled_from(_CMPS))}.f32 ${p}, "
                   f"{_float_source(draw, g)}, {_float_source(draw, g)}")
        else:
            g.emit(f"    setp.{draw(st.sampled_from(_CMPS))}.s32 ${p}, "
                   f"{_int_source(draw, g)}, {_int_source(draw, g)}")
    elif kind == "selp":
        p = _ensure_pred(draw, g)
        a, b = _int_source(draw, g), _int_source(draw, g)
        d = _int_dest(draw, g, conditional)
        g.emit(f"    selp.s32 ${d}, {a}, {b}, ${p}")
    elif kind == "guarded":
        p = _ensure_pred(draw, g)
        bang = "!" if draw(st.booleans()) else ""
        op = draw(st.sampled_from(_ALU2_OPS))
        d = _int_dest(draw, g, True)  # guarded writes never initialise
        g.emit(f"@{bang}${p} {op}.s32 ${d}, {_int_source(draw, g)}, "
               f"{_int_source(draw, g)}")
    elif kind == "ld_inp":
        a = _int_source(draw, g)
        d = _int_dest(draw, g, conditional)
        g.emit(f"    and.s32 $at, {a}, {DATA_WORDS - 1}")
        g.emit("    shl.u32 $at, $at, 2")
        g.emit("    add.u32 $at, $at, %param.inp")
        g.emit(f"    ld.global.s32 ${d}, [$at]")
    elif kind == "ld_own":
        d = _int_dest(draw, g, conditional)
        g.emit(f"    ld.global.s32 ${d}, [$gaddr]")
    elif kind == "st_own":
        if g.init_floats and draw(st.booleans()):
            g.emit(f"    st.global.f32 [$gaddr], {_float_source(draw, g)}")
        else:
            g.emit(f"    st.global.s32 [$gaddr], {_int_source(draw, g)}")
    elif kind == "atom_own":
        a = _int_source(draw, g)
        d = _int_dest(draw, g, conditional)
        g.emit(f"    atom.global.add.s32 ${d}, [$gaddr], {a}")
    elif kind == "atom_acc":
        # Order-exact accumulation: small masked operand, and the
        # schedule-dependent old value is clobbered immediately.
        a = _int_source(draw, g)
        d = _int_dest(draw, g, conditional)
        g.emit(f"    and.s32 $at, {a}, 255")
        g.emit(f"    atom.global.add.s32 ${d}, [%param.acc], $at")
        g.emit(f"    mov.s32 ${d}, 0")
    elif kind == "shared_rt":
        a = _int_source(draw, g)
        d = _int_dest(draw, g, conditional)
        g.emit(f"    st.shared.s32 [$saddr], {a}")
        g.emit(f"    ld.shared.s32 ${d}, [$saddr]")
    elif kind == "shared_bcast":
        # Barrier-ordered broadcast: every thread publishes to its own
        # shared slot, then everyone reads one fixed low slot.  The
        # load's address is DR (immediate), so followers *skip* it and
        # consume the leader's loaded value — the only race-free way to
        # make a skipped load's value observable.  The trailing barrier
        # closes the round so a later iteration's store cannot race the
        # reads.
        a = _int_source(draw, g)
        d = _int_dest(draw, g, conditional)
        word = draw(st.integers(0, 3))
        g.emit(f"    st.shared.s32 [$saddr], {a}")
        g.emit("    bar.sync")
        g.emit(f"    mov.s32 $at, {word * 4}")
        g.emit(f"    ld.shared.s32 ${d}, [$at]")
        g.emit("    bar.sync")
    elif kind == "bar":
        g.emit("    bar.sync")
    elif kind == "if_region":
        p = _ensure_pred(draw, g)
        bang = "!" if draw(st.booleans()) else ""
        label = f"skip{g.labels}"
        g.labels += 1
        g.emit(f"@{bang}${p} bra {label}")
        for _ in range(draw(st.integers(1, 3))):
            _emit_item(draw, g, draw(st.sampled_from(_SIMPLE_KINDS)), True)
        g.emit(f"{label}:")
    elif kind == "loop":
        idx = g.loops
        g.loops += 1
        counter, guard = f"lc{idx}", f"p9{idx}"
        label = f"loop{idx}"
        trip = draw(st.integers(2, 4))
        g.emit(f"    mov.s32 ${counter}, 0")
        g.emit(f"{label}:")
        for _ in range(draw(st.integers(1, 3))):
            _emit_item(draw, g, draw(st.sampled_from(_LOOP_KINDS)), conditional)
        g.emit(f"    add.s32 ${counter}, ${counter}, 1")
        g.emit(f"    setp.lt.s32 ${guard}, ${counter}, {trip}")
        g.emit(f"@${guard} bra {label}")
    else:  # pragma: no cover - exhaustive over the kind tables
        raise AssertionError(f"unknown item kind {kind}")


@st.composite
def raw_kernel_specs(draw) -> KernelSpec:
    """A well-formed-by-construction spec, *before* the lint filter."""
    g = _Gen()
    g.emit(".kernel fuzz")
    g.emit(".param inp")
    g.emit(".param out")
    g.emit(".param acc")
    g.emit(f".shared {_SHARED_WORDS}")
    # Global linear thread id -> this thread's private out slot, plus a
    # per-thread shared-memory slot.  Reserved: the body never writes
    # these.  tid.y/tid.z make lin V-marked (never skipped); tid.x alone
    # would make per-thread addresses CR and promotion would share them.
    g.emit("    mul.s32 $lin, %tid.z, %ntid.y")
    g.emit("    add.s32 $lin, $lin, %tid.y")
    g.emit("    mul.s32 $lin, $lin, %ntid.x")
    g.emit("    add.s32 $lin, $lin, %tid.x")
    g.emit("    mul.s32 $blk, %ctaid.z, %nctaid.y")
    g.emit("    add.s32 $blk, $blk, %ctaid.y")
    g.emit("    mul.s32 $blk, $blk, %nctaid.x")
    g.emit("    add.s32 $blk, $blk, %ctaid.x")
    g.emit("    mul.s32 $bsz, %ntid.x, %ntid.y")
    g.emit("    mul.s32 $bsz, $bsz, %ntid.z")
    g.emit("    mad.s32 $gid, $blk, $bsz, $lin")
    g.emit("    shl.u32 $gaddr, $gid, 2")
    g.emit("    add.u32 $gaddr, $gaddr, %param.out")
    g.emit("    shl.u32 $saddr, $lin, 2")
    g.emit("    mov.s32 $at, 0")
    g.emit("    cvt.f32 $ft, 0")

    for _ in range(draw(st.integers(3, 10))):
        _emit_item(draw, g, draw(st.sampled_from(_TOP_KINDS)), False)

    # Epilogue: every thread publishes a deterministic value, so the
    # end-state comparison always has memory to disagree about.
    tail = "$" + draw(st.sampled_from(sorted(g.init_ints - set(_SCRATCH_INT))))
    g.emit(f"    st.global.s32 [$gaddr], {tail}")
    g.emit("    exit")

    return KernelSpec(
        name="fuzz",
        source="\n".join(g.lines) + "\n",
        grid_dim=draw(st.sampled_from(GRID_DIMS)),
        block_dim=draw(st.sampled_from(BLOCK_DIMS)),
        data_seed=draw(st.integers(0, 7)),
    )


@st.composite
def kernel_specs(draw) -> KernelSpec:
    """Raw specs passed through the PR-2 linter as the validity filter."""
    spec = draw(raw_kernel_specs())
    report = lint_program(spec.program())
    assume(report.ok)
    return spec
