"""Fuzz kernel specs: a JSON round-trippable program + launch + data.

A :class:`KernelSpec` is the unit the fuzzer generates, shrinks, saves
to the corpus and replays: the rendered DSL source, the launch geometry
and a deterministic data seed.  Specs become ordinary
:class:`repro.workloads.Workload` objects (with a vacuous numpy oracle —
the *differential* oracles are the check) so every existing verifier
(:func:`repro.staticlib.verify.verify_workload`,
:func:`repro.staticlib.soundness.audit_trace`) accepts them unchanged.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.simt.grid import Dim3, LaunchConfig
from repro.simt.memory import GlobalMemory
from repro.workloads.base import Workload

#: Size of the read-only input table every fuzz kernel may load from.
#: Loads mask their index to ``DATA_WORDS - 1``, so this must stay a
#: power of two.
DATA_WORDS = 32

#: Kernel parameters every generated spec declares, in order: the input
#: table, the per-thread output array and a one-word shared accumulator.
PARAM_NAMES = ("inp", "out", "acc")

CORPUS_DIRNAME = "corpus"


@dataclass(frozen=True)
class KernelSpec:
    """One fuzz candidate: program text, launch shape and input data."""

    name: str
    source: str
    grid_dim: Tuple[int, int, int] = (1, 1, 1)
    block_dim: Tuple[int, int, int] = (32, 2, 1)
    data_seed: int = 0
    #: triage breadcrumb for corpus entries: which oracle failed and why
    note: str = ""

    # -- derived objects ---------------------------------------------------

    def program(self) -> Program:
        return assemble(self.source, name=self.name)

    def launch(self) -> LaunchConfig:
        return LaunchConfig(grid_dim=Dim3(*self.grid_dim), block_dim=Dim3(*self.block_dim))

    @property
    def total_threads(self) -> int:
        gx, gy, gz = self.grid_dim
        bx, by, bz = self.block_dim
        return gx * gy * gz * bx * by * bz

    def input_data(self) -> np.ndarray:
        """Deterministic signed input table derived from ``data_seed``."""
        rng = np.random.default_rng(self.data_seed)
        return rng.integers(-100, 100, size=DATA_WORDS)

    def fresh_memory(self) -> Tuple[GlobalMemory, Dict[str, float]]:
        memory = GlobalMemory(1 << 16)
        params = {
            "inp": memory.alloc_array(self.input_data()),
            "out": memory.alloc(max(1, self.total_threads)),
            "acc": memory.alloc(1),
        }
        return memory, params

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict:
        payload = {
            "name": self.name,
            "source": self.source,
            "grid_dim": list(self.grid_dim),
            "block_dim": list(self.block_dim),
            "data_seed": self.data_seed,
        }
        if self.note:
            payload["note"] = self.note
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "KernelSpec":
        return cls(
            name=payload["name"],
            source=payload["source"],
            grid_dim=tuple(payload.get("grid_dim", (1, 1, 1))),
            block_dim=tuple(payload.get("block_dim", (32, 2, 1))),
            data_seed=int(payload.get("data_seed", 0)),
            note=payload.get("note", ""),
        )

    def save(self, directory: str) -> str:
        """Write ``<directory>/<name>.kernel.json``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.name}.kernel.json")
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def load_spec(path: str) -> KernelSpec:
    with open(path) as fh:
        return KernelSpec.from_dict(json.load(fh))


def default_corpus_dir() -> str:
    """The committed corpus: ``tests/corpus`` relative to the repo root."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / CORPUS_DIRNAME
        if candidate.is_dir():
            return str(candidate)
    # Fall back to the conventional location even if it does not exist
    # yet (the first saved counterexample creates it).
    return str(here.parents[2].parent / "tests" / CORPUS_DIRNAME)


def corpus_specs(directory: str = None) -> Iterator[Tuple[str, KernelSpec]]:
    """Yield ``(path, spec)`` for every committed corpus program."""
    directory = directory or default_corpus_dir()
    if not os.path.isdir(directory):
        return
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".kernel.json"):
            path = os.path.join(directory, entry)
            yield path, load_spec(path)


def build_fuzz_workload(spec: KernelSpec) -> Workload:
    """Wrap a spec as a :class:`Workload` with a vacuous value oracle.

    Fuzz kernels have no closed-form expected output — correctness is
    *differential* (same end state under every execution mechanism) —
    so ``check`` always passes and the oracle stack does the judging.
    """
    program = spec.program()
    launch = spec.launch()
    return Workload(
        name=f"fuzz:{spec.name}",
        abbr=spec.name.upper()[:12],
        suite="fuzz",
        tb_dim=(spec.block_dim[0], spec.block_dim[1]),
        dimensionality=sum(1 for d in spec.block_dim if d > 1) or 1,
        program=program,
        launch=launch,
        make_memory=spec.fresh_memory,
        check=lambda memory, params: True,
        scale="tiny",
        description=spec.note or "random differential-fuzz kernel",
    )
