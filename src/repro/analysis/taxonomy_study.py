"""Figure 2: taxonomy breakdown of TB-redundant instructions.

For each benchmark, the fraction of dynamically executed instructions
whose TB-wide instance is uniform / affine / unstructured redundant,
with everything else (including instructions in diverged control flow)
non-redundant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.taxonomy import RedundancyClass, classify_group
from repro.simt.tracer import ExecutionTrace


@dataclass
class TaxonomyBreakdown:
    """Per-class fractions of one workload's executed instructions."""

    total: int
    uniform: float
    affine: float
    unstructured: float
    non_redundant: float

    @property
    def tb_redundant(self) -> float:
        return self.uniform + self.affine + self.unstructured

    def as_dict(self) -> Dict[str, float]:
        return {
            "uniform": self.uniform,
            "affine": self.affine,
            "unstructured": self.unstructured,
            "non_redundant": self.non_redundant,
        }


def taxonomy_breakdown(trace: ExecutionTrace) -> TaxonomyBreakdown:
    """Classify a workload trace under the Section 2 taxonomy."""
    total = len(trace.records)
    if total == 0:
        raise ValueError("empty trace")
    warps = trace.warps_per_block
    counts = {cls: 0 for cls in RedundancyClass}
    for _key, records in trace.grouped_by_tb():
        cls = classify_group(records, warps)
        counts[cls] += len(records)
    return TaxonomyBreakdown(
        total=total,
        uniform=counts[RedundancyClass.UNIFORM] / total,
        affine=counts[RedundancyClass.AFFINE] / total,
        unstructured=counts[RedundancyClass.UNSTRUCTURED] / total,
        non_redundant=counts[RedundancyClass.NON_REDUNDANT] / total,
    )
