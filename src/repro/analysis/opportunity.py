"""Per-PC redundancy opportunity profiler.

A kernel-author-facing tool: given a functional trace and the static
analysis, report — per static instruction — how many dynamic executions
were TB-redundant, how DARSIE classifies the instruction, and *why* a
redundant instruction is not being skipped (vector marking, failed
promotion, non-register-producing, atomic).  This is the diagnostic the
paper's workflow implies: find where the limit study's opportunity
(Figure 1) is lost on the way to Figure 10's realized reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.compiler_pass import CompilerAnalysis
from repro.core.promotion import promote_markings
from repro.core.taxonomy import Marking, RedundancyClass, classify_group
from repro.simt.grid import LaunchConfig
from repro.simt.tracer import ExecutionTrace


@dataclass
class PCOpportunity:
    """Redundancy opportunity at one static instruction."""

    pc: int
    text: str
    marking: Marking
    promoted: Marking
    executions: int
    redundant_executions: int
    skippable: bool
    blocker: Optional[str]

    @property
    def redundant_fraction(self) -> float:
        return self.redundant_executions / self.executions if self.executions else 0.0


@dataclass
class OpportunityReport:
    """Whole-kernel opportunity profile, sorted by lost redundancy."""

    rows: List[PCOpportunity]
    total_executions: int

    def lost(self) -> List[PCOpportunity]:
        """Redundant-but-not-skippable instructions, biggest first."""
        return [r for r in self.rows if r.redundant_executions and not r.skippable]

    def captured_fraction(self) -> float:
        """Share of redundant executions DARSIE can actually skip."""
        redundant = sum(r.redundant_executions for r in self.rows)
        captured = sum(r.redundant_executions for r in self.rows if r.skippable)
        return captured / redundant if redundant else 0.0

    def render(self, limit: int = 20) -> str:
        # Local import: repro.harness imports repro.analysis, so a
        # module-level import here would create a package cycle.
        from repro.harness.reporting import format_table

        headers = ["PC", "insn", "mark", "promoted", "exec", "TB-red", "skippable", "blocker"]
        rows = []
        ordered = sorted(self.rows, key=lambda r: -r.redundant_executions)
        for r in ordered[:limit]:
            rows.append([
                f"{r.pc:#06x}",
                r.text.strip()[:40],
                r.marking.short,
                r.promoted.short,
                r.executions,
                r.redundant_executions,
                "yes" if r.skippable else "",
                r.blocker or "",
            ])
        title = (
            "Redundancy opportunity by PC "
            f"({self.captured_fraction():.0%} of TB-redundant executions skippable)"
        )
        return format_table(headers, rows, title=title)


def _blocker(inst, promoted: Marking) -> Optional[str]:
    if inst.is_atomic:
        return "atomic"
    if inst.dest_register() is None and inst.dest_predicate() is None:
        return "no destination register"
    if promoted is Marking.VECTOR:
        return "vector marking (or failed promotion)"
    if promoted in (Marking.CONDITIONAL, Marking.CONDITIONAL_Y):
        return "unresolved conditional"
    return None


def opportunity_report(
    analysis: CompilerAnalysis,
    trace: ExecutionTrace,
    launch: LaunchConfig,
) -> OpportunityReport:
    """Cross-reference dynamic redundancy with static skippability."""
    program = analysis.program
    promoted = promote_markings(analysis.instruction_markings, launch)
    skippable = analysis.skippable_pcs(promoted)

    executions: Dict[int, int] = {}
    redundant: Dict[int, int] = {}
    warps = trace.warps_per_block
    for (_tb, pc, _occ), records in trace.grouped_by_tb():
        executions[pc] = executions.get(pc, 0) + len(records)
        cls = classify_group(records, warps)
        if cls is not RedundancyClass.NON_REDUNDANT:
            redundant[pc] = redundant.get(pc, 0) + len(records)

    rows = []
    for inst in program.instructions:
        promo = promoted.get(inst.pc, Marking.VECTOR)
        is_skippable = inst.pc in skippable
        rows.append(
            PCOpportunity(
                pc=inst.pc,
                text=str(inst),
                marking=analysis.instruction_markings.get(inst.pc, Marking.VECTOR),
                promoted=promo,
                executions=executions.get(inst.pc, 0),
                redundant_executions=redundant.get(inst.pc, 0),
                skippable=is_skippable,
                blocker=None if is_skippable else _blocker(inst, promo),
            )
        )
    return OpportunityReport(rows=rows, total_executions=len(trace.records))
