"""Redundancy limit studies and shared statistics helpers.

- :mod:`repro.analysis.limit_study` — Figure 1: redundancy at the grid,
  TB and warp grouping levels.
- :mod:`repro.analysis.taxonomy_study` — Figure 2: per-benchmark
  uniform / affine / unstructured breakdown of TB-redundant work.
- :mod:`repro.analysis.survey` — the Section 1 survey of TB
  dimensionality across 133 applications (synthetic dataset).
- :mod:`repro.analysis.stats` — geometric means and table helpers.
"""

from repro.analysis.limit_study import LevelBreakdown, redundancy_levels
from repro.analysis.opportunity import OpportunityReport, PCOpportunity, opportunity_report
from repro.analysis.stats import geomean, percent
from repro.analysis.survey import ApplicationSurvey, SurveyEntry, default_survey
from repro.analysis.taxonomy_study import TaxonomyBreakdown, taxonomy_breakdown

__all__ = [
    "geomean",
    "percent",
    "LevelBreakdown",
    "redundancy_levels",
    "TaxonomyBreakdown",
    "taxonomy_breakdown",
    "ApplicationSurvey",
    "SurveyEntry",
    "default_survey",
    "OpportunityReport",
    "PCOpportunity",
    "opportunity_report",
]
