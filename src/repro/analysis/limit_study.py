"""Figure 1 limit study: redundancy per GPU thread-grouping level.

"Instructions are classified as redundant at the grid-level when all the
grid's warp instructions operate on the same vector operands ...
Similarly ... for TBs if all warp instructions within a TB use the same
vector operands.  Warp-wide redundancy occurs if all scalar threads in a
warp operate on the same scalar value" (Section 1).

We classify by the *output* vector of each dynamic instruction (the
output pattern is what propagates and what DARSIE shares); Figure 3 uses
the same convention.  The five reported categories:

- ``grid`` — the instance's value summary is identical in every warp of
  the whole grid (grid-redundant instances are necessarily TB-redundant);
- ``tb`` — identical in every warp of the instance's TB;
- ``warp`` — the output is uniform across the lanes of the executing
  warp (a scalar-unit candidate), regardless of other warps;
- ``scalar`` — warp-uniform but *not* TB-redundant (what a conventional
  scalar unit captures that DARSIE's TB sharing does not, and vice versa);
- ``vector`` — neither TB-redundant nor warp-uniform: true vector work.

``grid``/``tb``/``warp`` overlap by construction (the paper's Figure 1
plots them as independent bars, not a stack); ``scalar``/``vector`` are
disjoint complements of ``tb``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.taxonomy import RedundancyClass, classify_group
from repro.simt.tracer import ExecutionTrace, UNIFORM


@dataclass
class LevelBreakdown:
    """Fractions of dynamically executed instructions per level."""

    total: int
    grid: float
    tb: float
    warp: float
    vector: float
    scalar: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "grid": self.grid,
            "tb": self.tb,
            "warp": self.warp,
            "vector": self.vector,
            "scalar": self.scalar,
        }


def redundancy_levels(trace: ExecutionTrace) -> LevelBreakdown:
    """Classify one workload's trace at all grouping levels."""
    total = len(trace.records)
    if total == 0:
        raise ValueError("empty trace")
    warps = trace.warps_per_block
    blocks = trace.num_blocks

    tb_redundant_keys = set()
    for (tb, pc, occ), records in trace.grouped_by_tb():
        if classify_group(records, warps) is not RedundancyClass.NON_REDUNDANT:
            tb_redundant_keys.add((tb, pc, occ))

    grid_count = 0
    for (_pc, _occ), records in trace.grouped_by_grid():
        if classify_group(records, warps * blocks) is not RedundancyClass.NON_REDUNDANT:
            grid_count += len(records)

    tb_count = 0
    warp_count = 0
    scalar_count = 0
    vector_count = 0
    for rec in trace.records:
        in_tb = (rec.tb_index, rec.pc, rec.occurrence) in tb_redundant_keys
        warp_uniform = rec.summary.kind == UNIFORM and not rec.divergent
        if in_tb:
            tb_count += 1
        if warp_uniform:
            warp_count += 1
        if warp_uniform and not in_tb:
            scalar_count += 1
        if not warp_uniform and not in_tb:
            vector_count += 1

    return LevelBreakdown(
        total=total,
        grid=grid_count / total,
        tb=tb_count / total,
        warp=warp_count / total,
        vector=vector_count / total,
        scalar=scalar_count / total,
    )


def average_levels(breakdowns: List[LevelBreakdown]) -> LevelBreakdown:
    """Arithmetic mean across workloads (Figure 1 averages over Table 1)."""
    n = len(breakdowns)
    if n == 0:
        raise ValueError("no breakdowns to average")
    return LevelBreakdown(
        total=sum(b.total for b in breakdowns),
        grid=sum(b.grid for b in breakdowns) / n,
        tb=sum(b.tb for b in breakdowns) / n,
        warp=sum(b.warp for b in breakdowns) / n,
        vector=sum(b.vector for b in breakdowns) / n,
        scalar=sum(b.scalar for b in breakdowns) / n,
    )
