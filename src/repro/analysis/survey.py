"""Section 1 application survey (synthetic reproduction).

The paper surveys 133 applications from twelve suites on a Volta GPU and
reports:

- over 33 % of applications exhibit multi-dimensional TB characteristics;
- among applications using optimized libraries (cuDNN, cuBLAS, ...),
  60 % are multi-dimensional;
- in applications with at least one multi-dimensional kernel, an average
  of 71 % of execution time is spent in those kernels;
- of 128 unique 2D kernels, only one fails the promotion criterion
  (x-dimension a power of two and <= the warp size).

The raw profiling data is not published, so we ship a synthetic survey
dataset *constructed to match those aggregate statistics* while keeping
realistic per-suite structure.  The analysis code
(:class:`ApplicationSurvey`) is real — point it at your own profiling
CSV to survey an actual machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.simt.grid import Dim3, tidx_is_tb_redundant


@dataclass(frozen=True)
class SurveyEntry:
    """One application profile."""

    name: str
    suite: str
    uses_library: bool
    #: TB dimensions of each kernel, paired with the fraction of the
    #: application's execution time spent in that kernel.
    kernels: Tuple[Tuple[Dim3, float], ...]

    @property
    def is_multi_dimensional(self) -> bool:
        return any(dim.dimensionality >= 2 for dim, _t in self.kernels)

    @property
    def multi_dimensional_time(self) -> float:
        return sum(t for dim, t in self.kernels if dim.dimensionality >= 2)


class ApplicationSurvey:
    """Aggregate statistics over a set of application profiles."""

    def __init__(self, entries: List[SurveyEntry], warp_size: int = 32):
        if not entries:
            raise ValueError("empty survey")
        self.entries = entries
        self.warp_size = warp_size

    @property
    def num_applications(self) -> int:
        return len(self.entries)

    @property
    def fraction_multi_dimensional(self) -> float:
        md = sum(1 for e in self.entries if e.is_multi_dimensional)
        return md / len(self.entries)

    @property
    def fraction_library_multi_dimensional(self) -> float:
        lib = [e for e in self.entries if e.uses_library]
        if not lib:
            return 0.0
        return sum(1 for e in lib if e.is_multi_dimensional) / len(lib)

    @property
    def mean_time_in_multi_dimensional_kernels(self) -> float:
        md = [e for e in self.entries if e.is_multi_dimensional]
        if not md:
            return 0.0
        return sum(e.multi_dimensional_time for e in md) / len(md)

    def unique_2d_kernels(self) -> List[Dim3]:
        seen = {}
        for e in self.entries:
            for dim, _t in e.kernels:
                if dim.dimensionality >= 2:
                    seen[(dim.x, dim.y, dim.z)] = dim
        return list(seen.values())

    def promotion_failures(self) -> List[Dim3]:
        """2D kernels failing the Section 4.2 criterion."""
        return [
            dim
            for dim in self.unique_2d_kernels()
            if not tidx_is_tb_redundant(dim, self.warp_size)
        ]


#: Suites surveyed in the paper (Section 1 cites 12 sources).
_SUITES = [
    "cuda-sdk",
    "rodinia",
    "parboil",
    "pannotia",
    "shoc",
    "polybench",
    "lonestar",
    "xsbench",
    "gpgpu-sim",
    "combustion",
    "dynpar",
    "cudnn-apps",
]

#: Common multi-dimensional TB shapes observed in GPU code.
_2D_SHAPES = [(16, 16), (8, 8), (32, 8), (16, 8), (32, 32), (8, 32), (32, 4), (4, 16)]
_1D_SHAPES = [(256, 1), (512, 1), (128, 1), (1024, 1), (64, 1), (192, 1)]


def default_survey(seed: int = 2020) -> ApplicationSurvey:
    """The synthetic 133-application dataset matching Section 1's stats."""
    rng = random.Random(seed)
    entries: List[SurveyEntry] = []
    # 45/133 applications multi-dimensional (33.8%); library apps are
    # multi-dimensional 60% of the time; md apps spend ~71% of their
    # time in md kernels.
    num_apps = 133
    num_md = 45
    num_lib = 30
    lib_md = 18  # 60% of library apps
    plan = []
    plan += [("lib", True)] * lib_md
    plan += [("lib", False)] * (num_lib - lib_md)
    plan += [("plain", True)] * (num_md - lib_md)
    plan += [("plain", False)] * (num_apps - num_lib - (num_md - lib_md))
    rng.shuffle(plan)

    md_time_targets = []
    for i, (kind, is_md) in enumerate(plan):
        suite = _SUITES[i % len(_SUITES)]
        kernels: List[Tuple[Dim3, float]] = []
        if is_md:
            md_time = min(0.98, max(0.30, rng.gauss(0.71, 0.12)))
            md_time_targets.append(md_time)
            shape = rng.choice(_2D_SHAPES)
            kernels.append((Dim3(*shape), md_time))
            kernels.append((Dim3(*rng.choice(_1D_SHAPES)), 1.0 - md_time))
        else:
            kernels.append((Dim3(*rng.choice(_1D_SHAPES)), 1.0))
        entries.append(
            SurveyEntry(
                name=f"app{i:03d}",
                suite=suite,
                uses_library=(kind == "lib"),
                kernels=tuple(kernels),
            )
        )
    # Re-centre md times on the paper's 71% mean.
    if md_time_targets:
        mean = sum(md_time_targets) / len(md_time_targets)
        shift = 0.71 - mean
        adjusted: List[SurveyEntry] = []
        for e in entries:
            if e.is_multi_dimensional:
                kernels = tuple(
                    (dim, min(0.99, max(0.01, t + shift)) if dim.dimensionality >= 2
                     else max(0.01, 1.0 - min(0.99, max(0.01, e.multi_dimensional_time + shift))))
                    for dim, t in e.kernels
                )
                adjusted.append(
                    SurveyEntry(e.name, e.suite, e.uses_library, kernels)
                )
            else:
                adjusted.append(e)
        entries = adjusted
    # One 2D kernel that fails the promotion criterion (x not a power of
    # two), mirroring "only one fails to meet this requirement".
    failing = entries[0]
    entries[0] = SurveyEntry(
        name=failing.name,
        suite=failing.suite,
        uses_library=failing.uses_library,
        kernels=failing.kernels + ((Dim3(48, 4), 0.0),),
    )
    return ApplicationSurvey(entries)
