"""Small statistics helpers shared by the experiment harness."""

from __future__ import annotations

import math
import warnings
from typing import Iterable


def geomean(values: Iterable[float], *, skip_nonpositive: bool = False) -> float:
    """Geometric mean; the paper reports GMEAN speedups and reductions.

    With ``skip_nonpositive`` the mean is taken over the positive members
    only and each dropped value is reported through :mod:`warnings` — a
    degenerate run (zero cycles, 100% energy reduction) then leaves the
    figure honest instead of dragging it toward zero via a clamp.
    """
    values = list(values)
    if skip_nonpositive:
        kept = [v for v in values if v > 0]
        for v in values:
            if v <= 0:
                warnings.warn(
                    f"geomean: skipping non-positive value {v!r} "
                    f"({len(kept)}/{len(values)} kept)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        values = kept
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"
