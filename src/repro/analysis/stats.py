"""Small statistics helpers shared by the experiment harness."""

from __future__ import annotations

import math
from typing import Iterable


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports GMEAN speedups and reductions."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"
