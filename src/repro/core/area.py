"""Area estimation (Section 6.3).

Pure arithmetic over the sizes of DARSIE's added structures:

- PC Skip Table entry: 48-bit PC + 32-bit warp-waiting mask + IsLoad +
  LeaderWB = 82 bits; 8 entries/TB x 32 TBs/SM = 256 entries.
- Majority path mask: 32 bits/TB x 32 TBs = 1024 bits.
- Rename + version table entry: 8-bit named register (CUDA allows 255
  named registers/thread) + 8-bit physical tag + 5-bit version = 21
  bits; 32 entries/TB x 32 TBs.

Total: 5.31 kB, about 2.1 % of the Pascal register file.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AreaModel:
    """Bit-level sizing of DARSIE's hardware structures."""

    pc_bits: int = 48
    warp_mask_bits: int = 32          # at most 32 warps per TB
    is_load_bits: int = 1
    leader_wb_bits: int = 1
    skip_entries_per_tb: int = 8
    tbs_per_sm: int = 32
    majority_mask_bits_per_tb: int = 32
    named_reg_bits: int = 8           # 255 named registers per thread
    phys_tag_bits: int = 8
    version_bits: int = 5
    rename_entries_per_tb: int = 32
    #: register file: 2K vector registers x 32 lanes x 4 B
    register_file_bytes: int = 2048 * 32 * 4

    @property
    def skip_entry_bits(self) -> int:
        """82 bits per skip-table entry."""
        return self.pc_bits + self.warp_mask_bits + self.is_load_bits + self.leader_wb_bits

    @property
    def skip_table_entries(self) -> int:
        """256 entries per SM."""
        return self.skip_entries_per_tb * self.tbs_per_sm

    @property
    def skip_table_bits(self) -> int:
        return self.skip_entry_bits * self.skip_table_entries

    @property
    def skip_table_bytes(self) -> int:
        """2624 bytes (the paper rounds 20992 bits / 8)."""
        return self.skip_table_bits // 8

    @property
    def majority_mask_bits(self) -> int:
        """1024 bits = 128 bytes."""
        return self.majority_mask_bits_per_tb * self.tbs_per_sm

    @property
    def majority_mask_bytes(self) -> int:
        return self.majority_mask_bits // 8

    @property
    def rename_entry_bits(self) -> int:
        """21 bits per rename/version-table entry."""
        return self.named_reg_bits + self.phys_tag_bits + self.version_bits

    @property
    def rename_table_bits(self) -> int:
        return self.rename_entry_bits * self.rename_entries_per_tb * self.tbs_per_sm

    @property
    def rename_table_bytes(self) -> int:
        """2688 bytes."""
        return self.rename_table_bits // 8

    @property
    def total_bytes(self) -> int:
        return self.skip_table_bytes + self.majority_mask_bytes + self.rename_table_bytes

    @property
    def total_kb(self) -> float:
        """5.31 kB (Section 6.3)."""
        return self.total_bytes / 1024.0

    @property
    def fraction_of_register_file(self) -> float:
        """~2.1 % of the Pascal register file."""
        return self.total_bytes / self.register_file_bytes

    def report(self) -> str:
        lines = [
            "DARSIE area estimate (Section 6.3)",
            f"  skip table entry        : {self.skip_entry_bits} bits",
            f"  skip table ({self.skip_table_entries} entries) : "
            f"{self.skip_table_bits} bits = {self.skip_table_bytes} bytes",
            f"  majority path masks     : {self.majority_mask_bits} bits = "
            f"{self.majority_mask_bytes} bytes",
            f"  rename entry            : {self.rename_entry_bits} bits",
            f"  rename/version tables   : {self.rename_table_bits} bits = "
            f"{self.rename_table_bytes} bytes",
            f"  total                   : {self.total_kb:.2f} kB "
            f"({self.fraction_of_register_file:.1%} of the register file)",
        ]
        return "\n".join(lines)


def paper_area_model() -> AreaModel:
    """The exact configuration Section 6.3 evaluates."""
    return AreaModel()
