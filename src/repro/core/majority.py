"""Majority-path mask (Section 4.3.3).

One bit per warp of a TB indicates whether the warp is executing on the
TB-majority control-flow path.  Warps that deviate (or suffer SIMD
divergence, Section 4.5) have their bit cleared and stop participating
in instruction skipping.  ``syncthreads`` sets all live warps' bits back
to one, since the whole TB is in sync again.
"""

from __future__ import annotations

from typing import List, Set


class MajorityPathMask:
    """Per-TB majority-path bookkeeping."""

    def __init__(self, num_warps: int):
        self.num_warps = num_warps
        self._on_path: Set[int] = set(range(num_warps))
        self._exited: Set[int] = set()

    def is_on_path(self, warp_id: int) -> bool:
        return warp_id in self._on_path

    def clear(self, warp_id: int) -> None:
        """Warp left the majority path (divergence)."""
        self._on_path.discard(warp_id)

    def warp_exited(self, warp_id: int) -> None:
        """An exited warp neither skips nor blocks synchronization."""
        self._exited.add(warp_id)
        self._on_path.discard(warp_id)

    def reset_at_syncthreads(self) -> None:
        """All bits set back to one at a TB-wide ``bar.sync``."""
        self._on_path = set(range(self.num_warps)) - self._exited

    def members(self) -> List[int]:
        return sorted(self._on_path)

    @property
    def count(self) -> int:
        return len(self._on_path)

    def bitmask(self) -> int:
        mask = 0
        for w in self._on_path:
            mask |= 1 << w
        return mask
