"""The PC Skip Table (Section 4.3.2).

One entry per PC currently being skipped in a TB.  Each entry holds the
five architectural fields of Section 4.3.2:

1. ``pc`` — the program counter being skipped;
2. ``warps_waiting`` — warps synchronizing at this PC (used when the
   rename freelist empties, or under the sync-on-write ablation);
3. the majority-path bitmask lives in :class:`~repro.core.majority.
   MajorityPathMask` (referenced, not duplicated, per TB);
4. ``is_load`` — loads must be removed when stores / global
   communication execute (Section 4.4);
5. ``leader_wb`` — followers may only leave the instruction once the
   leader has written the redundant value back.

A TB owns :attr:`PCSkipTable.capacity` entries (8 in the paper's area
estimate), "replaced dynamically": an entry with no waiting warps can be
evicted to make room; a PC without an entry simply is not skipped, which
is always safe (the warp executes the instruction itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class SkipTableEntry:
    """One Skip-PC-Table entry."""

    pc: int
    leader_warp: int
    is_load: bool = False
    leader_wb: bool = False
    #: which dynamic instance of this PC the entry represents — the
    #: destination register's write count this instance produces.  Warps
    #: compare their own count against it: equal-next means "skip here",
    #: greater means "past this instance, wait for retirement", smaller
    #: means "missed instances, execute privately to catch up".
    instance: int = 0
    #: warps blocked at this PC waiting for synchronization
    warps_waiting: Set[int] = field(default_factory=set)
    #: warps that have already skipped this entry (leader included once
    #: it executes); the entry retires when all majority warps are here.
    warps_done: Set[int] = field(default_factory=set)
    #: entry acts as a TB synchronization point (freelist exhaustion or
    #: the sync-on-write ablation)
    sync_required: bool = False
    #: LRU stamp for dynamic replacement
    last_use: int = 0


class PCSkipTable:
    """Per-TB skip table with dynamic replacement."""

    def __init__(self, capacity: int = 8):
        self.capacity = capacity
        self._entries: Dict[int, SkipTableEntry] = {}
        self.probes = 0
        self.inserts = 0
        self.evictions = 0
        self.load_invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, pc: int, now: int = 0) -> Optional[SkipTableEntry]:
        self.probes += 1
        entry = self._entries.get(pc)
        if entry is not None:
            entry.last_use = now
        return entry

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(
        self,
        pc: int,
        leader_warp: int,
        is_load: bool,
        now: int = 0,
        sync_required: bool = False,
    ) -> Optional[SkipTableEntry]:
        """Create an entry for ``pc``; returns None when the table is
        full (the caller decides what to evict — evicting an entry has
        side effects on warps that have not consumed it yet)."""
        if pc in self._entries:
            raise ValueError(f"duplicate skip entry for pc {pc:#x}")
        if self.full:
            return None
        entry = SkipTableEntry(
            pc=pc,
            leader_warp=leader_warp,
            is_load=is_load,
            sync_required=sync_required,
            last_use=now,
        )
        self._entries[pc] = entry
        self.inserts += 1
        return entry

    def remove(self, pc: int) -> Optional[SkipTableEntry]:
        return self._entries.pop(pc, None)

    def eviction_victim(self) -> Optional[SkipTableEntry]:
        """The LRU entry with no warps waiting on it, or None.

        The caller must retire/cancel the victim itself (warps that have
        not consumed it need to execute the instruction privately)."""
        candidates = [
            e for e in self._entries.values() if not e.warps_waiting and e.leader_wb
        ]
        if not candidates:
            return None
        self.evictions += 1
        return min(candidates, key=lambda e: e.last_use)

    def invalidate_loads(self) -> List[SkipTableEntry]:
        """Remove all load entries (store / global-communication event).

        Returns the removed entries so the frontend can release any warps
        waiting on them (they will execute the load themselves)."""
        removed = [e for e in self._entries.values() if e.is_load]
        for entry in removed:
            del self._entries[entry.pc]
            self.load_invalidations += 1
        return removed

    def entries(self) -> List[SkipTableEntry]:
        return list(self._entries.values())
