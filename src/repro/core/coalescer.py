"""The PC coalescer (Section 4.3.4).

"The PC coalescer acts like the global memory coalescer in the load/store
unit, except instead of coalescing global memory addresses to cache
lines, it coalesces PCs based on exact matches."  It bounds the number of
skip-table ports needed per cycle: warps skipping the *same* PC in the
same cycle share one access; distinct PCs beyond the port count wait for
the next cycle.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


class PCCoalescer:
    """Groups per-cycle skip candidates by PC under a port budget."""

    def __init__(self, ports: int = 2):
        if ports < 1:
            raise ValueError("coalescer needs at least one port")
        self.ports = ports
        self.requests = 0
        self.coalesced_accesses = 0
        self.deferred = 0

    def arbitrate(
        self, candidates: Sequence[Tuple[int, int]]
    ) -> Tuple[List[Tuple[int, List[int]]], List[Tuple[int, int]]]:
        """Arbitrate ``(warp_id, pc)`` candidates for this cycle.

        Returns ``(serviced, deferred)`` where ``serviced`` is a list of
        ``(pc, [warp_ids])`` groups — at most :attr:`ports` of them — and
        ``deferred`` is the remaining candidates, to be retried next
        cycle.  Groups are serviced oldest-PC-first (insertion order) so
        no PC starves.
        """
        self.requests += len(candidates)
        groups: Dict[int, List[int]] = {}
        for warp_id, pc in candidates:
            groups.setdefault(pc, []).append(warp_id)
        ordered = list(groups.items())
        serviced = ordered[: self.ports]
        self.coalesced_accesses += len(serviced)
        deferred_groups = ordered[self.ports :]
        deferred = [(w, pc) for pc, warps in deferred_groups for w in warps]
        self.deferred += len(deferred)
        return [(pc, warps) for pc, warps in serviced], deferred
