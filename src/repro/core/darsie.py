"""DARSIE's fetch-stage instruction skipper (Sections 4.1, 4.3–4.5).

The frontend ties together the PC skip table, the PC coalescer, the
register rename/version unit and the majority-path mask:

- The first majority-path warp to reach a skippable PC becomes the
  **leader**: it fetches and executes the instruction normally; at
  writeback a new register version is created and the entry's LeaderWB
  bit is set (Section 4.3.5).
- **Follower** warps reaching the PC afterwards skip it entirely —
  their PC is incremented by 8 without touching the fetch scheduler or
  the I-cache — and their rename mapping advances to the leader's
  version.  Skips are arbitrated by the PC coalescer under the skip
  table's port budget.
- **Branches force a TB-wide barrier** among majority-path warps so all
  skipping warps share one control-flow history; warps that take the
  minority direction, or diverge at SIMD granularity, leave the majority
  path and stop skipping (``DARSIE-NO-CF-SYNC`` disables the barrier and
  detects deviation without waiting — the idealised Figure 12 variant).
- **Stores and global communication invalidate skipped loads**
  (Section 4.4); warps that had not yet consumed an invalidated entry
  execute the load privately (``DARSIE-IGNORE-STORE`` disables this —
  the Figure 8 variant).
- When the **rename freelist empties**, the entry becomes a TB
  synchronization point: all majority warps gather at the PC so stale
  versions can be reclaimed (Section 4.3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.coalescer import PCCoalescer
from repro.core.majority import MajorityPathMask
from repro.core.promotion import promote_markings
from repro.core.rename import Materialization, PortBudget, RegisterRenameUnit
from repro.core.skip_table import PCSkipTable, SkipTableEntry
from repro.core.taxonomy import Marking
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction
from repro.isa.operands import MemSpace
from repro.timing.core import IBufferEntry
from repro.timing.frontend import FetchAction, Frontend
from repro.timing.stats import EnergyEvent


@dataclass(frozen=True)
class DarsieConfig:
    """DARSIE feature knobs (paper defaults)."""

    #: skip-table entries allocated per TB (Section 6.3)
    skip_entries_per_tb: int = 8
    #: rename registers per TB (Section 4.3.1)
    rename_regs_per_tb: int = 32
    #: skip-table ports after PC coalescing (Section 4.3.4)
    skip_ports: int = 2
    #: DARSIE-IGNORE-STORE: keep load entries across stores (Figure 8)
    ignore_store: bool = False
    #: DARSIE-NO-CF-SYNC: no TB barrier at branches (Figure 12)
    no_cf_sync: bool = False
    #: ablation: synchronize the TB on every redundant write instead of
    #: versioning (Section 4.1, rejected option 1)
    sync_on_write: bool = False


class _TBState:
    """Per-threadblock DARSIE hardware state."""

    def __init__(
        self,
        num_warps: int,
        cfg: DarsieConfig,
        rf_banks: int,
        rename_ports: Optional[int] = None,
        version_table_ports: Optional[int] = None,
    ):
        self.table = PCSkipTable(capacity=cfg.skip_entries_per_tb)
        self.rename = RegisterRenameUnit(
            num_warps, freelist_size=cfg.rename_regs_per_tb, rf_banks=rf_banks
        )
        #: decode-path rename-table read ports (None = ideal)
        self.rename_budget = PortBudget(rename_ports)
        #: skip-engine version-table ports (None = ideal)
        self.version_budget = PortBudget(version_table_ports)
        self.majority = MajorityPathMask(num_warps)
        #: branch-barrier bookkeeping: pc -> {warp_id: (post_pc, simd_div)}
        self.branch_wait: Dict[int, Dict[int, Tuple[int, bool]]] = {}
        #: NO-CF-SYNC: first-recorded outcome per (pc, instance)
        self.branch_outcomes: Dict[Tuple[int, int], int] = {}
        #: per-warp branch instance counters (NO-CF-SYNC)
        self.branch_count: Dict[Tuple[int, int], int] = {}
        #: per-warp pending leader writes: key -> FIFO of reserved versions
        self.pending_leader: Dict[int, Dict[tuple, list]] = {}


def _dest_key(inst: Instruction) -> Optional[tuple]:
    return inst.dest_key


class DarsieFrontend(Frontend):
    """The DARSIE instruction skipper, plugged into the SM frontend."""

    name = "DARSIE"

    def __init__(self, analysis, config: Optional[DarsieConfig] = None):
        self.analysis = analysis
        self.cfg = config or DarsieConfig()
        if self.cfg.ignore_store:
            self.name = "DARSIE-IGNORE-STORE"
        if self.cfg.no_cf_sync:
            self.name = "DARSIE-NO-CF-SYNC"
        self.skip_pcs: Set[int] = set()
        self.promoted: Dict[int, Marking] = {}
        self._global_loads_disabled = False
        self._leader_pending_fetch: Dict[Tuple[int, int], int] = {}
        self.coalescer = PCCoalescer(ports=self.cfg.skip_ports)

    # -- setup -------------------------------------------------------------

    def bind(self, sm) -> None:
        super().bind(sm)
        self.promoted = promote_markings(
            self.analysis.instruction_markings, sm.ctx.launch
        )
        self.skip_pcs = self.analysis.skippable_pcs(self.promoted)
        if sm.ctx.launch.warps_per_block < 2:
            # A single-warp TB has no followers to share with: skipping
            # would be pure overhead (leader election, versioning) for
            # zero elimination.  The launch-time check disables it.
            self.skip_pcs = set()
        self.program = sm.ctx.program

    def on_tb_launch(self, tb_rt) -> None:
        tb_rt.frontend_state = _TBState(
            num_warps=len(tb_rt.warps),
            cfg=self.cfg,
            rf_banks=self.sm.config.rf_banks,
            rename_ports=self.sm.config.rename_ports,
            version_table_ports=self.sm.config.version_table_ports,
        )

    # -- helpers --------------------------------------------------------------

    def _st(self, tb_rt) -> _TBState:
        return tb_rt.frontend_state

    def _eligible(self, wrt) -> bool:
        st = wrt.tb_rt.frontend_state
        return (
            not wrt.exited
            and st.majority.is_on_path(wrt.warp.warp_id)
            and not wrt.warp.has_simd_divergence
        )

    def _skippable_here(self, wrt, pc: int) -> bool:
        if pc not in self.skip_pcs:
            return False
        if pc in wrt.bypass_pcs:
            return False
        if self._global_loads_disabled:
            inst = self.program.at(pc)
            if inst.is_load and inst.mem.space is MemSpace.GLOBAL:
                return False
        return self._eligible(wrt)

    def _bypass_pending(self, tb_rt, pc: int) -> bool:
        return any(pc in w.bypass_pcs for w in tb_rt.warps if not w.exited)

    # -- the skip engine (runs in parallel with the fetch scheduler) ----------

    def fetch_cycle(self, cycle: int) -> None:
        skip_pcs = self.skip_pcs
        if not skip_pcs:
            return  # fixed at bind time; nothing ever skips or blocks
        pending = self._leader_pending_fetch
        candidates: List[Tuple[tuple, tuple]] = []
        warp_of: Dict[tuple, object] = {}
        for tb_rt in self.sm.tbs:
            st = self._st(tb_rt)
            for wrt in tb_rt.warps:
                if wrt.exited:
                    continue
                pc = wrt.fetch_pc
                if (
                    pc not in skip_pcs
                    or not wrt.fetch_ready()
                    or not self._skippable_here(wrt, pc)
                ):
                    wrt.skip_blocked = False
                    wrt.skip_parked = False
                    if pending:
                        pending.pop((tb_rt.seq, wrt.warp.warp_id), None)
                    continue
                if wrt.skip_parked:
                    # Parked in the warps-waiting bitmask: nothing that
                    # could change its classification has happened since
                    # (a wake event clears the bit), so skip the probe.
                    continue
                wid = (tb_rt.seq, wrt.warp.warp_id)
                if pending.get(wid) == pc:
                    continue  # already elected; waiting for the fetch stage
                state = self._classify(cycle, tb_rt, st, wrt, pc)
                if state == "skip":
                    candidates.append((wid, (tb_rt.seq, pc)))
                    warp_of[wid] = (tb_rt, wrt)
                    wrt.skip_blocked = True  # released below if serviced
                elif state == "wait" or state == "park":
                    if not wrt.skip_blocked:
                        # One probe per arrival; the warps-waiting bitmask
                        # parks the warp without re-probing (4.3.2).
                        self.sm.stats.count(EnergyEvent.SKIP_TABLE_PROBE)
                    wrt.skip_blocked = True
                    # "park" has a guaranteed wake event (the leader's
                    # writeback); "wait" reasons are re-checked per cycle.
                    wrt.skip_parked = state == "park"
                elif state == "lead":
                    wrt.skip_blocked = False
                    self._leader_pending_fetch[wid] = pc
                else:  # "fetch" — execute privately
                    wrt.skip_blocked = False

        if not candidates:
            return
        serviced, _deferred = self.coalescer.arbitrate(candidates)
        self.sm.stats.count(EnergyEvent.PC_COALESCER)
        for (_tb_seq, pc), wids in serviced:
            for wid in wids:
                tb_rt, wrt = warp_of[wid]
                self._perform_skip(tb_rt, wrt, pc)

    def _classify(self, cycle, tb_rt, st: _TBState, wrt, pc: int) -> str:
        """Decide what a majority-path warp at skippable ``pc`` does."""
        warp_id = wrt.warp.warp_id
        inst = self.program.at(pc)
        key = inst.dest_key
        assert key is not None
        expected = st.rename.count(warp_id, key) + 1
        entry = st.table.lookup(pc, now=cycle)
        if entry is None:
            if self._bypass_pending(tb_rt, pc):
                # A previous instance of this PC was invalidated and some
                # warps must still execute it privately; hold off new
                # leaders until they do (instances serialize).
                return "wait"
            sync_required = (not st.rename.can_allocate()) or self.cfg.sync_on_write
            if st.table.full:
                victim = st.table.eviction_victim()
                if victim is None:
                    return "fetch"  # nothing evictable: execute privately
                # Dynamic replacement (Section 6.3): warps that have not
                # consumed the victim execute its instruction privately.
                self._cancel_entry(tb_rt, st, victim)
            entry = st.table.insert(
                pc,
                leader_warp=warp_id,
                is_load=inst.is_load,
                now=cycle,
                sync_required=sync_required,
            )
            if entry is None:
                return "fetch"  # table full: execute privately, no skip
            entry.instance = expected
            self.sm.stats.count(EnergyEvent.SKIP_TABLE_WRITE)
            if sync_required:
                entry.warps_waiting.add(warp_id)
                self._maybe_release_sync(tb_rt, st, entry)
                if entry.sync_required:
                    return "wait"
            return "lead"
        if expected > entry.instance:
            # The warp already covered this instance (skipped it, or
            # executed it privately after a cancellation); it is at a
            # *later* instance — wait for the entry to retire.
            return "wait"
        if expected < entry.instance:
            # The warp missed instances that no longer have entries
            # (cancelled while it was away): catch up privately, one
            # instance per arrival.
            return "fetch"
        if entry.sync_required:
            entry.warps_waiting.add(warp_id)
            self._maybe_release_sync(tb_rt, st, entry)
            if entry.sync_required:
                return "wait"
            # Fall through: sync released; re-classify below.
        if entry.leader_warp == warp_id:
            return "lead" if not entry.leader_wb else "wait"
        if not entry.leader_wb:
            # The dominant wait: a follower parked until LeaderWB.  The
            # writeback (or a cancellation) is the only event that can
            # change this answer, and both wake the TB's parked warps —
            # so the scan need not re-probe every cycle.
            return "park"
        return "skip"

    def _maybe_release_sync(self, tb_rt, st: _TBState, entry: SkipTableEntry) -> None:
        members = set(st.majority.members())
        key = self.program.at(entry.pc).dest_key
        # Warps already past this instance never arrive here again; only
        # the ones still needing it must gather.
        required = {m for m in members if st.rename.count(m, key) < entry.instance}
        if not required or not (entry.warps_waiting >= required):
            return
        self.sm.stats.freelist_syncs += 1
        # Everyone is aligned at this PC; any still-pinned old versions
        # belong to nobody and have been reclaimed by the advancing
        # warps.  If rename space is still unavailable, cancel the entry
        # and let the whole TB execute this instance privately.
        if st.rename.can_allocate() or self.cfg.sync_on_write:
            entry.sync_required = False
            entry.warps_waiting.clear()
            self.sm.note_activity()
            for w in tb_rt.warps:
                if w.warp.warp_id in members:
                    w.skip_blocked = False
        else:
            self._cancel_entry(tb_rt, st, entry)

    def _wake_parked(self, tb_rt) -> None:
        """Clear the warps-waiting park bits: something happened that can
        change a parked warp's classification (LeaderWB, cancellation),
        so the scan re-probes each of them once."""
        for w in tb_rt.warps:
            w.skip_parked = False

    def _cancel_entry(self, tb_rt, st: _TBState, entry: SkipTableEntry) -> None:
        """Remove an entry before all majority warps consumed it; the
        remaining warps execute the instruction privately (one-shot)."""
        st.table.remove(entry.pc)
        self.sm.note_activity()
        self._wake_parked(tb_rt)
        key = self.program.at(entry.pc).dest_key
        members = set(st.majority.members())
        for w in tb_rt.warps:
            wid = w.warp.warp_id
            if wid in members and st.rename.count(wid, key) < entry.instance:
                w.bypass_pcs.add(entry.pc)
                w.skip_blocked = False

    def _perform_skip(self, tb_rt, wrt, pc: int) -> None:
        st = self._st(tb_rt)
        entry = st.table.lookup(pc)
        if entry is None or not entry.leader_wb:
            wrt.skip_blocked = True
            return
        if not st.version_budget.acquire(self.sm.cycle):
            # Finite version-table ports: the skip engine already spent
            # this cycle's accesses on other followers.  The warp stays
            # skip-blocked (not parked) and re-arbitrates next cycle.
            self.sm.stats.version_table_port_stalls += 1
            self.sm.note_activity()
            wrt.skip_blocked = True
            return
        inst = self.program.at(pc)
        key = inst.dest_key
        assert key is not None
        vv = st.rename.follower_skip(wrt.warp.warp_id, key)
        stats = self.sm.stats
        stats.follower_skips += 1
        stats.instructions_skipped += 1
        stats.skipped_by_class[vv.kind] += 1
        stats.count(EnergyEvent.SKIP_TABLE_PROBE)
        stats.count(EnergyEvent.RENAME_WRITE)
        stats.count(EnergyEvent.VERSION_TABLE)
        entry.warps_done.add(wrt.warp.warp_id)
        wrt.fetch_pc = pc + INSTRUCTION_BYTES
        wrt.skip_blocked = False
        if self.sm.pipeline_trace is not None:
            self.sm.pipeline_trace.record(
                self.sm.cycle, self.sm.sm_id, tb_rt.tb.tb_index,
                wrt.warp.warp_id, "S", pc,
            )
        # Architectural PC must advance past the skipped instruction *in
        # program order*: enqueue a zero-cost skip token that bumps the
        # PC when it reaches the head of the I-buffer.
        wrt.push_entry(IBufferEntry(inst=inst, skip_token=True))
        self.sm.note_activity()
        self._maybe_retire(st, entry)

    def _maybe_retire(self, st: _TBState, entry: SkipTableEntry) -> None:
        if not entry.leader_wb:
            return
        key = self.program.at(entry.pc).dest_key
        if all(
            st.rename.count(wid, key) >= entry.instance
            for wid in st.majority.members()
        ):
            st.table.remove(entry.pc)

    # -- fetch-stage integration --------------------------------------------------

    def filter_fetch(self, wrt, pc: int) -> FetchAction:
        if not self._skippable_here(wrt, pc):
            return self._gate_rename_ports(wrt, pc, FetchAction.FETCH)
        wid = (wrt.tb_rt.seq, wrt.warp.warp_id)
        if self._leader_pending_fetch.get(wid) == pc:
            return self._gate_rename_ports(wrt, pc, FetchAction.FETCH_LEADER)
        if wrt.skip_blocked:
            return FetchAction.WAIT
        return FetchAction.HANDLED

    def _gate_rename_ports(self, wrt, pc: int, action: FetchAction) -> FetchAction:
        """Finite ``rename_ports``: a fetch whose decode would probe more
        rename-table entries than the cycle has ports left must wait."""
        if self.sm.config.rename_ports is None or not self.skip_pcs:
            return action
        st = self._st(wrt.tb_rt)
        needed = self._rename_reads_needed(st, wrt, self.program.at(pc))
        if needed and not st.rename_budget.acquire(self.sm.cycle, needed):
            self.sm.stats.rename_port_stalls += 1
            self.sm.note_activity()
            return FetchAction.WAIT
        return action

    def _rename_reads_needed(self, st: _TBState, wrt, inst) -> int:
        """Rename-table reads :meth:`on_fetch` will perform for ``inst``
        (live-mapped sources not superseded by an in-flight leader write,
        plus the guarded-destination probe)."""
        warp_id = wrt.warp.warp_id
        pending = st.pending_leader.get(warp_id, {})
        needed = 0
        for reg in inst.source_registers():
            key = ("r", reg.name)
            if not pending.get(key) and st.rename.read(warp_id, key) is not None:
                needed += 1
        for pred in inst.source_predicates():
            key = ("p", pred.name)
            if not pending.get(key) and st.rename.read(warp_id, key) is not None:
                needed += 1
        key = inst.dest_key
        if key is not None and inst.guard is not None and st.rename.read(warp_id, key) is not None:
            needed += 1
        return needed

    def on_fetch(self, wrt, inst, is_leader: bool) -> Optional[Dict]:
        st = self._st(wrt.tb_rt)
        warp_id = wrt.warp.warp_id
        if is_leader:
            self._leader_pending_fetch.pop((wrt.tb_rt.seq, warp_id), None)

        overrides = self._capture_sources(st, wrt, inst)

        key = inst.dest_key
        if key is not None and inst.guard is not None:
            # A guarded write may leave some (or all) live lanes holding
            # the *old* value, and that old value may live only in the
            # rename unit.  Hardware cannot know the guard outcome at
            # decode, so the superseded version is copied into private
            # space before the mapping is dropped; the (possibly partial)
            # write then merges over the correct base.
            vv = st.rename.read(warp_id, key)
            if vv is not None:
                self._materialize(
                    wrt,
                    [Materialization(key=key, value=vv.value.copy(), is_pred=vv.is_pred)],
                )
        if key is not None:
            pending = st.pending_leader.setdefault(warp_id, {})
            if is_leader:
                # Reserve the version number in fetch order; the value is
                # produced at writeback.  WAW scoreboarding keeps same-key
                # writebacks in program order, so a FIFO per key suffices.
                version = st.rename.reserve_version(warp_id, key)
                pending.setdefault(key, []).append(version)
            elif inst.pc in self.skip_pcs and st.majority.is_on_path(warp_id):
                # Skippable instance executed privately (bypass / table
                # full): advance this warp's write count to stay aligned.
                st.rename.private_instance_write(warp_id, key)
            else:
                st.rename.private_write(warp_id, key)
        return overrides

    def _capture_sources(self, st: _TBState, wrt, inst) -> Optional[Dict]:
        """Capture renamed source values in fetch order (Section 4.3.1:
        the rename table is probed prior to the baseline mapping)."""
        warp_id = wrt.warp.warp_id
        pending = st.pending_leader.get(warp_id, {})
        regs: Dict[str, np.ndarray] = {}
        preds: Dict[str, np.ndarray] = {}
        banks: List[int] = []
        for reg in inst.source_registers():
            key = ("r", reg.name)
            if pending.get(key):
                continue  # an older in-flight leader write supersedes
            vv = st.rename.read(warp_id, key)
            if vv is not None:
                regs[reg.name] = vv.value
                banks.append(st.rename.bank_of(vv.preg))
        for pred in inst.source_predicates():
            key = ("p", pred.name)
            if pending.get(key):
                continue
            vv = st.rename.read(warp_id, key)
            if vv is not None:
                preds[pred.name] = vv.value.astype(bool)
                banks.append(st.rename.bank_of(vv.preg))
        if not regs and not preds:
            return None
        self.sm.stats.count(EnergyEvent.RENAME_READ, len(regs) + len(preds))
        self.sm.stats.count(EnergyEvent.VERSION_TABLE, len(regs) + len(preds))
        return {"regs": regs, "preds": preds, "banks": banks}

    # -- writeback: LeaderWB ------------------------------------------------------

    def on_writeback(self, wrt, inst, meta) -> None:
        if not meta.get("is_leader"):
            return
        st = self._st(wrt.tb_rt)
        warp_id = wrt.warp.warp_id
        key = inst.dest_key
        pending = st.pending_leader.get(warp_id, {})
        version = None
        if key is not None and pending.get(key):
            version = pending[key].pop(0)
            if not pending[key]:
                del pending[key]
        entry = st.table.lookup(inst.pc)
        result = meta["result"]
        # A guarded instruction whose predicate masked off any live lane
        # did not architecturally produce ``dest_value`` — the register
        # kept its old (warp-private) contents there, so the value is
        # not shareable even though the PC is statically skippable.
        full_write = not bool(np.any(wrt.warp.hw_mask & ~result.exec_mask))
        if (
            entry is not None
            and entry.leader_warp == warp_id
            and not entry.leader_wb
            and result.dest_value is not None
            and full_write
            and version is not None
            and st.rename.can_allocate()
        ):
            st.rename.leader_write(
                warp_id,
                key,
                version,
                np.asarray(result.dest_value),
                is_pred=inst.dest_predicate() is not None,
                members=st.majority.members(),
            )
            entry.leader_wb = True
            entry.warps_done.add(warp_id)
            self._wake_parked(wrt.tb_rt)
            stats = self.sm.stats
            stats.leaders_elected += 1
            stats.count(EnergyEvent.RENAME_WRITE)
            stats.count(EnergyEvent.VERSION_TABLE)
            self._maybe_retire(st, entry)
        else:
            # Entry invalidated (store) or rename space raced away: the
            # instance was effectively executed privately.  The write
            # count already advanced at reserve_version (fetch time);
            # just cancel the entry so followers execute it themselves.
            if entry is not None and entry.leader_warp == warp_id and not entry.leader_wb:
                self._cancel_entry(wrt.tb_rt, st, entry)

    # -- branches & majority path ------------------------------------------------

    def blocks_after_branch(self, wrt, inst) -> bool:
        tb_rt = wrt.tb_rt
        st = self._st(tb_rt)
        warp_id = wrt.warp.warp_id
        if not self.skip_pcs or not st.majority.is_on_path(warp_id):
            return False
        post_pc = wrt.warp.pc
        simd_div = wrt.warp.has_simd_divergence
        if self.cfg.no_cf_sync:
            count = st.branch_count.get((warp_id, inst.pc), 0)
            st.branch_count[(warp_id, inst.pc)] = count + 1
            outcome_key = (inst.pc, count)
            expected = st.branch_outcomes.setdefault(outcome_key, post_pc)
            if simd_div or post_pc != expected:
                self._leave_path(tb_rt, wrt)
            return False
        waiters = st.branch_wait.setdefault(inst.pc, {})
        waiters[warp_id] = (post_pc, simd_div)
        self.sm.stats.count(EnergyEvent.MAJORITY_MASK)
        return not self._maybe_release_branch(tb_rt, st, inst.pc)

    def _maybe_release_branch(self, tb_rt, st: _TBState, pc: int) -> bool:
        waiters = st.branch_wait.get(pc)
        if waiters is None:
            return True
        members = set(st.majority.members())
        if not (set(waiters) >= members):
            return False
        # Claim the wait record before processing: _leave_path re-enters
        # this function through _recheck.
        del st.branch_wait[pc]
        self.sm.note_activity()
        # Majority vote among the warps that are still SIMD-convergent.
        votes: Dict[int, int] = {}
        for wid in members:
            post_pc, simd_div = waiters[wid]
            if not simd_div:
                votes[post_pc] = votes.get(post_pc, 0) + 1
        winner = max(votes, key=lambda p: (votes[p], -p)) if votes else None
        for w in tb_rt.warps:
            wid = w.warp.warp_id
            if wid not in waiters:
                continue
            if wid in members:
                post_pc, simd_div = waiters[wid]
                if simd_div or post_pc != winner:
                    self._leave_path(tb_rt, w)
            if not w.exited:
                w.branch_sync_blocked = False
                w.resync_fetch()
        self.sm.stats.branch_barriers += 1
        return True

    def _materialize(self, wrt, mats, count_energy: bool = True) -> None:
        """Copy renamed values into a warp's architectural registers.

        Writes are masked to the warp's hardware lanes: the leader's
        version vector is 32 lanes wide, but a partial warp (TB size not
        a multiple of 32) never writes its dead lanes under BASE, and
        the differential end-state contract holds bit-exactly.
        """
        hw = wrt.warp.hw_mask
        for mat in mats:
            kind, name = mat.key
            if kind == "r":
                wrt.warp.registers.write(name, mat.value, mask=hw)
            else:
                wrt.warp.registers.write_pred(name, mat.value, mask=hw)
            if count_energy:
                self.sm.stats.count(EnergyEvent.RF_WRITE)

    def _leave_path(self, tb_rt, wrt) -> None:
        """Section 4.3.5: a warp leaving the majority path copies its
        redundant register values into warp-private space and clears its
        rename state."""
        st = self._st(tb_rt)
        warp_id = wrt.warp.warp_id
        self._materialize(wrt, st.rename.clear_warp(warp_id))
        st.majority.clear(warp_id)
        self.sm.stats.warps_left_majority += 1
        self._recheck(tb_rt, st)

    def _recheck(self, tb_rt, st: _TBState) -> None:
        """Majority membership shrank: barriers, syncs and entries may
        now be releasable."""
        for pc in list(st.branch_wait):
            self._maybe_release_branch(tb_rt, st, pc)
        for entry in st.table.entries():
            if entry.sync_required:
                self._maybe_release_sync(tb_rt, st, entry)
            self._maybe_retire(st, entry)

    # -- TB-wide events -----------------------------------------------------------

    def on_syncthreads(self, tb_rt) -> None:
        if not self.skip_pcs:
            return
        st = self._st(tb_rt)
        for warp_id, mats in st.rename.reset_all().items():
            self._materialize(tb_rt.warps[warp_id], mats)
        for entry in st.table.entries():
            st.table.remove(entry.pc)
        st.branch_wait.clear()
        st.pending_leader.clear()
        st.majority.reset_at_syncthreads()
        self.sm.stats.count(EnergyEvent.MAJORITY_MASK)
        for w in tb_rt.warps:
            w.skip_blocked = False
            w.skip_parked = False
            w.bypass_pcs.clear()

    def on_warp_exit(self, wrt) -> None:
        tb_rt = wrt.tb_rt
        st = self._st(tb_rt)
        warp_id = wrt.warp.warp_id
        # Materialize outstanding renamed values into the architectural
        # file so the exited warp's register state matches BASE (a warp
        # may exit while still mapped to leader versions it never copied
        # out).  No RF_WRITE energy is counted: real hardware simply
        # drops a dead warp's registers, and the copy exists only to
        # keep the differential end-state contract exact.
        self._materialize(wrt, st.rename.clear_warp(warp_id), count_energy=False)
        st.majority.warp_exited(warp_id)
        self._recheck(tb_rt, st)

    # -- memory-dependence events ---------------------------------------------

    def on_store(self, tb_rt) -> None:
        if self.cfg.ignore_store:
            return
        st = self._st(tb_rt)
        removed = st.table.invalidate_loads()
        self.sm.stats.load_entries_invalidated += len(removed)
        members = set(st.majority.members())
        for entry in removed:
            for w in tb_rt.warps:
                wid = w.warp.warp_id
                if wid in members and wid not in entry.warps_done:
                    w.bypass_pcs.add(entry.pc)
                    w.skip_blocked = False

    def on_global_communication(self) -> None:
        self._global_loads_disabled = True
        for tb_rt in self.sm.tbs:
            st = self._st(tb_rt)
            removed = st.table.invalidate_loads()
            self.sm.stats.load_entries_invalidated += len(removed)
            members = set(st.majority.members())
            for entry in removed:
                for w in tb_rt.warps:
                    wid = w.warp.warp_id
                    if wid in members and wid not in entry.warps_done:
                        w.bypass_pcs.add(entry.pc)
                        w.skip_blocked = False
