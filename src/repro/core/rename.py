"""Multithreaded register renaming and versioning (Sections 4.1, 4.3.1).

The rename unit lets follower warps read values produced by the leader
warp.  Three structures from Figure 7 are modelled:

- the **register rename table** maps ``<warp, reg#>`` to this warp's
  ``<reg#, version#>``;
- the **version table** maps ``<reg#, version#>`` to a physical register
  (whose value vector we hold directly, since this is a functional+timing
  model);
- the **physical register freelist** supplies rename space — up to 32
  vector registers per TB (Section 4.3.1).

Versioning follows Figure 5: "each time a redundant register is written,
we create a new version of the register tagged with the number of times
it has been written by this TB"; each warp independently counts the
writes *it* has seen, so a trailing warp reads the older version until it
skips the producing instruction itself.  A version's physical register
returns to the freelist once every participating warp has moved past it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.simt.tracer import ValueSummary

#: Rename-space key: ("r", name) for vector registers, ("p", name) for
#: predicates (separate architectural spaces).
RegKey = Tuple[str, str]


class RenameError(RuntimeError):
    """Internal invariant violation in the rename unit."""


@dataclass
class VersionValue:
    """One live version of a renamed register."""

    key: RegKey
    version: int
    preg: int
    value: np.ndarray
    is_pred: bool
    #: taxonomy kind of the value (uniform/affine/unstructured) — used to
    #: attribute skipped instructions to Figure 9/10 categories.
    kind: str


@dataclass
class Materialization:
    """A renamed value to be copied into a warp's private space."""

    key: RegKey
    value: np.ndarray
    is_pred: bool


class PortBudget:
    """Per-cycle access-port budget of one DARSIE hardware structure.

    ``ports=None`` models an ideal (unbounded) structure — every acquire
    succeeds and nothing is counted, which keeps the default
    configuration bit-identical to the historical model.  A finite value
    grants at most ``ports`` accesses per cycle; the budget resets
    lazily on the first acquire of a new cycle.

    An access group larger than the whole structure (``n > ports``) is
    granted against a fresh budget — the hardware would serialize the
    reads over the cycle — so a wide instruction can never deadlock on a
    narrow table.
    """

    __slots__ = ("ports", "_cycle", "_used")

    def __init__(self, ports: Optional[int]):
        self.ports = ports
        self._cycle = -1
        self._used = 0

    def acquire(self, cycle: int, n: int = 1) -> bool:
        """Try to take ``n`` ports this cycle; False means stall."""
        if self.ports is None or n <= 0:
            return True
        if cycle != self._cycle:
            self._cycle = cycle
            self._used = 0
        if self._used == 0 and n >= self.ports:
            self._used = self.ports
            return True
        if self._used + n > self.ports:
            return False
        self._used += n
        return True


class RegisterRenameUnit:
    """Per-TB rename/version tables and freelist."""

    def __init__(self, num_warps: int, freelist_size: int = 32, rf_banks: int = 16):
        self.num_warps = num_warps
        self.freelist_size = freelist_size
        self.rf_banks = rf_banks
        self._freelist: List[int] = list(range(freelist_size))
        #: (warp, key) -> version currently visible to that warp
        self._rename: Dict[Tuple[int, RegKey], int] = {}
        #: (key, version) -> VersionValue
        self._versions: Dict[Tuple[RegKey, int], VersionValue] = {}
        #: (key, version) -> warps that may still need this version
        self._refs: Dict[Tuple[RegKey, int], Set[int]] = {}
        #: (warp, key) -> number of skip-table writes this warp has seen
        self._write_count: Dict[Tuple[int, RegKey], int] = {}
        # statistics
        self.allocations = 0
        self.frees = 0
        self.peak_live = 0

    # -- capacity ----------------------------------------------------------

    def can_allocate(self) -> bool:
        return bool(self._freelist)

    def count(self, warp: int, key: RegKey) -> int:
        """How many skip-set writes of ``key`` this warp has seen."""
        return self._write_count.get((warp, key), 0)

    @property
    def live_versions(self) -> int:
        return len(self._versions)

    # -- core operations ------------------------------------------------------

    def reserve_version(self, warp: int, key: RegKey) -> int:
        """Advance the leader's write count at *fetch* time.

        Rename-table state must change in fetch order (the hardware
        updates it at decode): the leader's count advances and its own
        rename entry for ``key`` is dropped — the leader's private
        register always holds its current value, so pointing its rename
        entry at the new version would resurrect a stale mapping if a
        younger private write to the same register was already fetched.
        The version *value* is filled in at writeback by
        :meth:`leader_write`.
        """
        version = self._write_count.get((warp, key), 0) + 1
        self._write_count[(warp, key)] = version
        previous = self._rename.pop((warp, key), None)
        if previous is not None:
            self._drop_ref(warp, key, previous)
        return version

    def leader_write(
        self,
        warp: int,
        key: RegKey,
        version: int,
        value: np.ndarray,
        is_pred: bool,
        members: List[int],
    ) -> VersionValue:
        """Record the leader's writeback of a skipped-PC destination.

        ``version`` is the number returned by :meth:`reserve_version` at
        the leader's fetch; ``members`` is the current majority-path
        membership — each member holds a reference to the new version
        until it advances past it.
        """
        if not self._freelist:
            raise RenameError("leader_write with empty freelist")
        if (key, version) in self._versions:
            raise RenameError(f"duplicate version {version} for {key}")
        preg = self._freelist.pop()
        vv = VersionValue(
            key=key,
            version=version,
            preg=preg,
            value=np.asarray(value).copy(),
            is_pred=is_pred,
            kind=ValueSummary.of(np.asarray(value)).kind,
        )
        self._versions[(key, version)] = vv
        # The leader never reads its own version through the rename table
        # (its private register holds the same value), so it takes no
        # reference.  Members that already advanced past this version
        # (having executed the instance privately) must not pin it either.
        refs = {
            m
            for m in members
            if m != warp and self._write_count.get((m, key), 0) < version
        }
        self._refs[(key, version)] = refs
        self.allocations += 1
        self.peak_live = max(self.peak_live, len(self._versions))
        self._release_if_unreferenced(key, version)
        return vv

    def follower_skip(self, warp: int, key: RegKey) -> VersionValue:
        """A follower skipped the producing instruction: advance its
        version mapping and release the version it moved past."""
        version = self._write_count.get((warp, key), 0) + 1
        vv = self._versions.get((key, version))
        if vv is None:
            raise RenameError(
                f"follower warp {warp} skipping write #{version} of {key} "
                "before the leader produced it"
            )
        self._advance(warp, key, version)
        return vv

    def _advance(self, warp: int, key: RegKey, version: int) -> None:
        self._write_count[(warp, key)] = version
        previous = self._rename.get((warp, key))
        self._rename[(warp, key)] = version
        if previous is not None and previous != version:
            self._drop_ref(warp, key, previous)

    def read(self, warp: int, key: RegKey) -> Optional[VersionValue]:
        """The renamed value visible to ``warp`` for ``key``, if any."""
        version = self._rename.get((warp, key))
        if version is None:
            return None
        vv = self._versions.get((key, version))
        if vv is None:
            # The version was reclaimed (warp left path / reset); the
            # private copy is authoritative.
            del self._rename[(warp, key)]
            return None
        return vv

    def has_entry(self, warp: int, key: RegKey) -> bool:
        return (warp, key) in self._rename

    def renamed_keys(self, warp: int) -> List[RegKey]:
        return [k for (w, k) in self._rename if w == warp]

    def private_write(self, warp: int, key: RegKey) -> None:
        """A non-skipped instruction wrote ``key``: the warp's reads must
        come from its private space from now on."""
        version = self._rename.pop((warp, key), None)
        if version is not None:
            self._drop_ref(warp, key, version)

    def private_instance_write(self, warp: int, key: RegKey) -> None:
        """A *skippable* instruction instance executed privately (its
        skip-table entry was invalidated or never created): the warp's
        write count must still advance so future versions stay aligned
        across the TB ("the number of times it has been written by this
        TB" counts writes in the instruction stream, skipped or not)."""
        version = self._write_count.get((warp, key), 0) + 1
        self._write_count[(warp, key)] = version
        previous = self._rename.pop((warp, key), None)
        if previous is not None:
            self._drop_ref(warp, key, previous)
        # The warp will never read the shared copy of this instance;
        # release its reference if the leader did create one.
        self._drop_ref(warp, key, version)

    # -- path / barrier events ----------------------------------------------

    def clear_warp(self, warp: int) -> List[Materialization]:
        """Warp left the majority path (Section 4.3.5): return its
        renamed values for copying into private space, then clear all of
        its rename state and references."""
        out: List[Materialization] = []
        for key in self.renamed_keys(warp):
            vv = self.read(warp, key)
            if vv is not None:
                out.append(Materialization(key=key, value=vv.value.copy(), is_pred=vv.is_pred))
        for key in self.renamed_keys(warp):
            version = self._rename.pop((warp, key))
            self._drop_ref(warp, key, version)
        # Drop every other reference this warp still pins.
        for (key, version), refs in list(self._refs.items()):
            if warp in refs:
                refs.discard(warp)
                self._release_if_unreferenced(key, version)
        return out

    def reset_all(self) -> Dict[int, List[Materialization]]:
        """TB-wide reset (at ``bar.sync``): materialise every warp's
        renamed values, then clear all tables and refill the freelist.

        Returns per-warp materialisations the caller must apply before
        warps resume."""
        out: Dict[int, List[Materialization]] = {}
        for warp in range(self.num_warps):
            mats: List[Materialization] = []
            for key in self.renamed_keys(warp):
                vv = self.read(warp, key)
                if vv is not None:
                    mats.append(
                        Materialization(key=key, value=vv.value.copy(), is_pred=vv.is_pred)
                    )
            if mats:
                out[warp] = mats
        self._rename.clear()
        self._versions.clear()
        self._refs.clear()
        self._write_count.clear()
        self._freelist = list(range(self.freelist_size))
        return out

    # -- freeing --------------------------------------------------------------

    def _drop_ref(self, warp: int, key: RegKey, version: int) -> None:
        refs = self._refs.get((key, version))
        if refs is None:
            return
        refs.discard(warp)
        self._release_if_unreferenced(key, version)

    def _release_if_unreferenced(self, key: RegKey, version: int) -> None:
        refs = self._refs.get((key, version))
        if refs is not None and not refs:
            del self._refs[(key, version)]
            vv = self._versions.pop((key, version), None)
            if vv is not None:
                self._freelist.append(vv.preg)
                self.frees += 1

    def bank_of(self, preg: int) -> int:
        """Renamed registers are strided across the RF banks (4.3.1)."""
        return preg % self.rf_banks
