"""The GPU redundancy taxonomy of Section 2, and the marking lattice.

Two related classifications live here:

1. :class:`RedundancyClass` — *dynamic* (value-level) classification of a
   TB-redundant instruction: uniform, affine or unstructured.  Used by
   the limit studies (Figures 1, 2) and the per-class instruction
   reduction breakdowns (Figures 9, 10).

2. :class:`Marking` — *static* classification attached to instructions by
   the compiler pass: definitely redundant, conditionally redundant or
   true vector.  Uniform redundancy is always definitely redundant;
   affine and unstructured redundancy are conditionally redundant
   (Section 4.2).

The meet rule of the compiler pass ("if more than one of our three
redundancy definitions reaches a source operand, we assign the weakest")
is :func:`Marking.meet` — VECTOR < CONDITIONAL < REDUNDANT.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Tuple

from repro.simt.tracer import AFFINE, DynamicInstruction, NONE, UNIFORM, UNSTRUCTURED


class Marking(enum.IntEnum):
    """Static redundancy marking (ordered: lower is weaker).

    The paper uses three states; CONDITIONAL_Y is this repository's
    implementation of the paper's 3D extension ("These observations also
    apply to 3D TBs, where both the tid.x and tid.y registers can be
    conditionally redundant", Section 2).  Its promotion criterion
    (``x*y`` a power of two ≤ the warp size, 3D TB) *implies* the tid.x
    criterion, so the lattice stays linear: a value mixing tid.x- and
    tid.y-conditional inputs is redundant exactly when the stricter
    (tid.y) condition holds, which is what the meet computes.
    """

    VECTOR = 0
    CONDITIONAL_Y = 1
    CONDITIONAL = 2
    REDUNDANT = 3

    @staticmethod
    def meet(a: "Marking", b: "Marking") -> "Marking":
        """The weakest of two markings (paper's combination rule)."""
        return a if a <= b else b

    @property
    def short(self) -> str:
        return {
            Marking.VECTOR: "V",
            Marking.CONDITIONAL_Y: "CRy",
            Marking.CONDITIONAL: "CR",
            Marking.REDUNDANT: "DR",
        }[self]


class RedundancyClass(enum.Enum):
    """Dynamic classification of one TB-wide instruction instance."""

    UNIFORM = "uniform"
    AFFINE = "affine"
    UNSTRUCTURED = "unstructured"
    NON_REDUNDANT = "non-redundant"


def classify_group(
    records: List[DynamicInstruction], expected_warps: int
) -> RedundancyClass:
    """Classify one (tb, pc, occurrence) group of warp executions.

    A group is TB-redundant only when *every* warp of the TB executed
    this dynamic instance, none with SIMD divergence ("instructions
    executed in diverged control flow are considered non-redundant",
    Figure 2 caption), and all produced identical value summaries.  The
    sub-class follows the shared summary's pattern kind.
    """
    if len(records) != expected_warps:
        return RedundancyClass.NON_REDUNDANT
    first = records[0].summary
    if first.kind == NONE:
        return RedundancyClass.NON_REDUNDANT
    for rec in records:
        if rec.divergent or rec.summary != first:
            return RedundancyClass.NON_REDUNDANT
    if first.kind == UNIFORM:
        return RedundancyClass.UNIFORM
    if first.kind == AFFINE:
        return RedundancyClass.AFFINE
    assert first.kind == UNSTRUCTURED
    return RedundancyClass.UNSTRUCTURED


def classify_tb_groups(
    groups: Iterable[Tuple[tuple, List[DynamicInstruction]]],
    expected_warps: int,
) -> Dict[RedundancyClass, int]:
    """Count executed instructions per redundancy class over TB groups.

    Each group contributes ``len(records)`` executed instructions (every
    warp fetched and executed its copy in the baseline).
    """
    counts = {cls: 0 for cls in RedundancyClass}
    for _key, records in groups:
        cls = classify_group(records, expected_warps)
        counts[cls] += len(records)
    return counts


#: Mapping from dynamic class to the static marking that identifies it
#: (Section 4.2: uniform values are definitely redundant, affine and
#: unstructured values are conditionally redundant).
STATIC_MARKING_OF_CLASS = {
    RedundancyClass.UNIFORM: Marking.REDUNDANT,
    RedundancyClass.AFFINE: Marking.CONDITIONAL,
    RedundancyClass.UNSTRUCTURED: Marking.CONDITIONAL,
    RedundancyClass.NON_REDUNDANT: Marking.VECTOR,
}
