"""Kernel-launch-time promotion of conditional redundancy (Section 4.2).

"Conditionally redundant instructions are evaluated at kernel launch time
based on the kernel's specified TB size, and are static for the duration
of the kernel. ... the check simply tests if the kernel has 2D TBs, and
that the width of the x-dimension is a power of 2, and less than or equal
to the warp size.  If so, conditionally redundant instructions are marked
as definitely redundant, or are otherwise marked as true vector
instructions."

The paper notes this can live in the driver's JIT finalisation pass or in
a small hardware comparator (which also covers dynamic parallelism); both
reduce to the same pure function, implemented here.
"""

from __future__ import annotations

from typing import Dict

from repro.core.taxonomy import Marking
from repro.simt.grid import Dim3, LaunchConfig, tidx_is_tb_redundant, tidy_is_tb_redundant


def promotion_applies(launch: LaunchConfig) -> bool:
    """True when this launch's TB dimensions make ``tid.x`` TB-redundant."""
    return tidx_is_tb_redundant(launch.block_dim, launch.warp_size)


def promotion_applies_y(launch: LaunchConfig) -> bool:
    """3D extension: true when ``tid.y`` is TB-redundant for this launch."""
    return tidy_is_tb_redundant(launch.block_dim, launch.warp_size)


def promote_markings(
    markings: Dict[int, Marking], launch: LaunchConfig
) -> Dict[int, Marking]:
    """Finalise static markings for a concrete launch.

    Returns a new marking map in which every CONDITIONAL entry has been
    promoted to REDUNDANT (criterion met) or demoted to VECTOR
    (criterion not met); CONDITIONAL_Y entries (3D extension) resolve
    under the stricter ``x*y`` criterion.  DR and V markings pass
    through unchanged.
    """
    resolved_x = Marking.REDUNDANT if promotion_applies(launch) else Marking.VECTOR
    resolved_y = Marking.REDUNDANT if promotion_applies_y(launch) else Marking.VECTOR

    def resolve(mark: Marking) -> Marking:
        if mark is Marking.CONDITIONAL:
            return resolved_x
        if mark is Marking.CONDITIONAL_Y:
            return resolved_y
        return mark

    return {pc: resolve(mark) for pc, mark in markings.items()}


def describe_promotion(launch: LaunchConfig) -> str:
    """Human-readable explanation of the launch-time decision."""
    bd: Dim3 = launch.block_dim
    if promotion_applies(launch):
        return (
            f"TB {bd} is multi-dimensional with x={bd.x} a power of two "
            f"<= warp size {launch.warp_size}: CR instructions promoted to DR"
        )
    return (
        f"TB {bd} fails the promotion criterion: CR instructions demoted to vector"
    )
