"""DARSIE core: the paper's primary contribution.

- :mod:`repro.core.taxonomy` — the redundancy taxonomy of Section 2 and
  the marking lattice used by the compiler pass.
- :mod:`repro.core.compiler_pass` — static DR/CR/VEC marking (Section 4.2).
- :mod:`repro.core.promotion` — kernel-launch-time promotion of
  conditionally redundant markings (Section 4.2).
- :mod:`repro.core.skip_table`, :mod:`repro.core.rename`,
  :mod:`repro.core.coalescer`, :mod:`repro.core.majority` — the hardware
  structures of Section 4.3.
- :mod:`repro.core.darsie` — the fetch-stage instruction skipper tying
  the structures together (Sections 4.1, 4.3.5, 4.4, 4.5).
- :mod:`repro.core.area` — the Section 6.3 area estimate.
"""

from repro.core.area import AreaModel, paper_area_model
from repro.core.coalescer import PCCoalescer
from repro.core.compiler_pass import (
    CompilerAnalysis,
    UninitializedReadError,
    UninitializedReadWarning,
    analyze_program,
)
from repro.core.darsie import DarsieConfig, DarsieFrontend
from repro.core.majority import MajorityPathMask
from repro.core.promotion import promote_markings, promotion_applies, promotion_applies_y
from repro.core.rename import RegisterRenameUnit, RenameError
from repro.core.skip_table import PCSkipTable, SkipTableEntry
from repro.core.taxonomy import Marking, RedundancyClass, classify_group, classify_tb_groups

__all__ = [
    "Marking",
    "RedundancyClass",
    "classify_group",
    "classify_tb_groups",
    "CompilerAnalysis",
    "analyze_program",
    "UninitializedReadError",
    "UninitializedReadWarning",
    "promote_markings",
    "promotion_applies",
    "promotion_applies_y",
    "PCSkipTable",
    "SkipTableEntry",
    "RegisterRenameUnit",
    "RenameError",
    "PCCoalescer",
    "MajorityPathMask",
    "DarsieConfig",
    "DarsieFrontend",
    "AreaModel",
    "paper_area_model",
]
