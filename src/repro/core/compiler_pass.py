"""DARSIE's static compiler pass (Section 4.2).

Marks every instruction *definitely redundant* (DR), *conditionally
redundant* (CR) or *vector* (V):

1. Intrinsic seeds: block indices/dimensions, grid dimensions, scalar
   constants, kernel parameters and the shared-memory base are DR;
   ``tid.x`` is CR ("we limit the analysis to only threadIdx.x" — the
   studied applications use at most 2D TBs); every other lane-varying
   intrinsic (``tid.y``, ``laneid``, ``warpid``) is V.
2. Propagation: the program-dependence information is iterated to a
   fixpoint; each instruction takes the *weakest* marking reaching any
   of its source operands (including address registers and the guard
   predicate), and each register takes the weakest marking of any
   instruction defining it.
3. Loads "that access redundant or conditionally redundant addresses
   (and their corresponding output registers) are also marked" — their
   marking follows the address.
4. Atomics are always vector (each warp observes a different old value).

The pass only *adds hints*; the instruction stream is unchanged
(Section 4.2), so binaries run unmodified on non-DARSIE hardware.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.taxonomy import Marking
from repro.isa.instructions import Instruction
from repro.isa.operands import Immediate, Param, Predicate, Register, Special
from repro.isa.program import Program


class UninitializedReadWarning(UserWarning):
    """A kernel reads a register that no path has written (see below)."""


class UninitializedReadError(ValueError):
    """Strict-mode rejection of a kernel with read-before-write registers."""


def _intrinsic_marking(operand, enable_3d: bool = False) -> Optional[Marking]:
    """Marking of a non-register operand, or None for registers."""
    if isinstance(operand, Immediate) or isinstance(operand, Param):
        return Marking.REDUNDANT
    if isinstance(operand, Special):
        if operand.is_tb_uniform:
            return Marking.REDUNDANT
        if operand.is_conditionally_redundant:
            return Marking.CONDITIONAL
        if enable_3d and operand.name == "tid.y":
            # 3D extension: tid.y is conditionally redundant under the
            # stricter x*y criterion (Section 2's 3D observation).
            return Marking.CONDITIONAL_Y
        return Marking.VECTOR
    return None


@dataclass
class CompilerAnalysis:
    """Result of the static pass for one program."""

    program: Program
    instruction_markings: Dict[int, Marking]
    register_markings: Dict[str, Marking]
    predicate_markings: Dict[str, Marking]
    #: reads of never-written registers found by reaching definitions —
    #: the places where the pass's "unwritten register is DR" default
    #: actually fired (empty for every well-formed kernel).
    uninitialized_reads: Tuple = field(default_factory=tuple)

    def marking_of(self, pc: int) -> Marking:
        return self.instruction_markings[pc]

    def skippable_pcs(self, markings: Optional[Dict[int, Marking]] = None) -> Set[int]:
        """PCs eligible for the PC skip table under ``markings``.

        Only register-producing instructions can be skipped (their value
        is shared through renaming); stores, branches, barriers, atomics
        and exits always execute in every warp.
        """
        markings = markings if markings is not None else self.instruction_markings
        pcs = set()
        for inst in self.program.instructions:
            if markings.get(inst.pc) is not Marking.REDUNDANT:
                continue
            if inst.dest_register() is None and inst.dest_predicate() is None:
                continue
            if inst.is_atomic:
                continue
            pcs.add(inst.pc)
        return pcs

    def load_pcs(self) -> Set[int]:
        return {inst.pc for inst in self.program.instructions if inst.is_load}

    def annotated_listing(self, markings: Optional[Dict[int, Marking]] = None) -> str:
        """Figure 6-style listing with a DR/CR/V column per instruction."""
        markings = markings if markings is not None else self.instruction_markings
        return self.program.listing(
            annotate=lambda inst: markings.get(inst.pc, Marking.VECTOR).short
        )

    def counts(self) -> Dict[Marking, int]:
        out = {m: 0 for m in Marking}
        for mark in self.instruction_markings.values():
            out[mark] += 1
        return out


def analyze_program(
    program: Program, enable_3d: bool = False, strict: bool = False
) -> CompilerAnalysis:
    """Run the static redundancy-marking pass to a fixpoint.

    The analysis is flow-insensitive over registers (a register's class
    is the weakest of all its definitions), which is conservative: it can
    only demote a skippable instruction to vector, never the reverse, so
    it preserves the non-speculative guarantee the paper requires.

    **Precondition** (checked): every register and predicate is written
    before it is read on every path from entry.  The pass defaults a
    register with no recorded definition to DR — sound only because the
    machine architecturally zero-fills registers, which is TB-uniform.
    A kernel that actually *relies* on that implicit zero is almost
    always a porting bug, so reaching definitions are consulted: any
    genuinely uninitialized read raises :class:`UninitializedReadError`
    when ``strict`` is true, and otherwise emits an
    :class:`UninitializedReadWarning` (the same condition the
    ``uninitialized-read`` rule of :mod:`repro.staticlib.lint` reports)
    and is recorded on :attr:`CompilerAnalysis.uninitialized_reads`.

    ``enable_3d`` turns on the 3D extension: ``tid.y`` seeds the
    CONDITIONAL_Y class, promoted at launch under the ``x*y`` criterion
    (off by default — the paper limits its analysis to ``tid.x``).
    """
    # Deferred import: staticlib's linter layer consumes this module.
    from repro.staticlib.reaching import find_uninitialized_reads

    uninitialized = find_uninitialized_reads(program)
    if uninitialized:
        detail = ", ".join(
            f"{u.display_name}@{u.pc:#06x}" for u in uninitialized[:8]
        )
        message = (
            f"{program.name}: {len(uninitialized)} read(s) of never-written "
            f"registers ({detail}); the marking pass would treat them as "
            "uniformly zero"
        )
        if strict:
            raise UninitializedReadError(message)
        warnings.warn(message, UninitializedReadWarning, stacklevel=2)

    # Optimistic initialisation at the strongest marking; the meet-based
    # update is monotonically decreasing, so iteration terminates.
    reg_mark: Dict[str, Marking] = {}
    pred_mark: Dict[str, Marking] = {}
    inst_mark: Dict[int, Marking] = {}

    def reg_of(name: str, table: Dict[str, Marking]) -> Marking:
        # A register read before any write holds zeros in every lane of
        # every warp — uniform, hence definitely redundant (see the
        # checked precondition in the docstring: this default is only
        # reached for genuinely uninitialized reads, which are linted).
        return table.get(name, Marking.REDUNDANT)

    # Kleene iteration from the top of a finite lattice: every iteration
    # that reports a change strictly lowers at least one register or
    # predicate marking (instruction marks settle one sweep later), so
    # the principled bound is lattice height x table entries, plus the
    # settle/detect sweeps — not `len(program) + 2`, which a dependence
    # chain of one register per instruction ran within one sweep of.
    num_vars = len(
        {r.name for inst in program.instructions for r in inst.source_registers()}
        | {inst.dest_register().name for inst in program.instructions
           if inst.dest_register() is not None}
    ) + len(
        {p.name for inst in program.instructions for p in inst.source_predicates()}
        | {inst.dest_predicate().name for inst in program.instructions
           if inst.dest_predicate() is not None}
    )
    lattice_height = len(Marking) - 1
    max_iterations = lattice_height * num_vars + 3

    changed = True
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"compiler pass failed to converge within {max_iterations} "
                f"iterations (lattice height {lattice_height} x {num_vars} variables)"
            )
        new_reg: Dict[str, Marking] = {}
        new_pred: Dict[str, Marking] = {}
        for inst in program.instructions:
            mark = _instruction_marking(inst, reg_mark, pred_mark, reg_of, enable_3d)
            if inst_mark.get(inst.pc) != mark:
                inst_mark[inst.pc] = mark
                changed = True
            dest = inst.dest_register()
            if dest is not None:
                prev = new_reg.get(dest.name, Marking.REDUNDANT)
                new_reg[dest.name] = Marking.meet(prev, mark)
            dpred = inst.dest_predicate()
            if dpred is not None:
                prev = new_pred.get(dpred.name, Marking.REDUNDANT)
                new_pred[dpred.name] = Marking.meet(prev, mark)
        if new_reg != reg_mark or new_pred != pred_mark:
            reg_mark, pred_mark = new_reg, new_pred
            changed = True

    return CompilerAnalysis(
        program=program,
        instruction_markings=inst_mark,
        register_markings=reg_mark,
        predicate_markings=pred_mark,
        uninitialized_reads=uninitialized,
    )


def _instruction_marking(
    inst: Instruction, reg_mark, pred_mark, reg_of, enable_3d: bool = False
) -> Marking:
    if inst.is_atomic:
        return Marking.VECTOR
    mark = Marking.REDUNDANT
    for src in inst.srcs:
        if isinstance(src, Register):
            mark = Marking.meet(mark, reg_of(src.name, reg_mark))
        elif isinstance(src, Predicate):
            mark = Marking.meet(mark, reg_of(src.name, pred_mark))
        else:
            intrinsic = _intrinsic_marking(src, enable_3d)
            assert intrinsic is not None
            mark = Marking.meet(mark, intrinsic)
    if inst.mem is not None:
        base_intrinsic = _intrinsic_marking(inst.mem.base, enable_3d)
        if base_intrinsic is not None:
            mark = Marking.meet(mark, base_intrinsic)
        else:
            mark = Marking.meet(mark, reg_of(inst.mem.base.name, reg_mark))
        if inst.mem.index is not None:
            mark = Marking.meet(mark, reg_of(inst.mem.index.name, reg_mark))
    if inst.guard is not None:
        mark = Marking.meet(mark, reg_of(inst.guard.name, pred_mark))
    return mark
