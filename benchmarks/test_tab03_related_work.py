"""Table 3: capability matrix vs related work."""

from conftest import run_once

from repro.harness import experiments
from repro.harness.related_work import TABLE3, darsie_covers_all


def test_table3(benchmark, archive):
    text = run_once(benchmark, experiments.table3)
    archive("table3_related_work", text)

    assert darsie_covers_all()
    # Only DARSIE handles unstructured redundancy (row 3 of the matrix).
    unstructured = [t for t, flags in TABLE3.items() if flags[2]]
    assert unstructured == ["DARSIE"]
    # UV and DARSIE are the minimal-pipeline-modification techniques.
    minimal = {t for t, flags in TABLE3.items() if flags[3]}
    assert minimal == {"UV [50]", "DARSIE"}
