"""Shared fixtures for the per-figure reproduction benches.

Each bench runs its experiment once (``benchmark.pedantic`` with a
single round — these are reproduction drivers, not microbenchmarks),
prints the regenerated table/series, and archives it under
``results/``.
"""

import os

import pytest

from repro.harness import parallel

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Scale used by the reproduction benches (override with REPRO_SCALE).
SCALE = os.environ.get("REPRO_SCALE", "small")

#: Worker processes for sweep fan-out (override with REPRO_JOBS).
JOBS = int(os.environ.get("REPRO_JOBS", "1") or 1)

#: Set REPRO_NO_CACHE=1 to force every bench to re-simulate.
USE_CACHE = not os.environ.get("REPRO_NO_CACHE")


@pytest.fixture(scope="session", autouse=True)
def _sweep_defaults():
    """Route every figure driver through the parallel, cached layer."""
    parallel.configure(
        jobs=JOBS,
        use_cache=USE_CACHE,
        cache_dir=os.path.join(RESULTS_DIR, ".cache"),
    )
    yield
    stats = parallel.last_sweep_stats()
    if stats is not None:
        print(f"\n{stats.render()}")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Print a rendered experiment and save it to results/<name>.txt."""

    def _archive(name: str, text: str):
        print()
        print(text)
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        return path

    return _archive


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
