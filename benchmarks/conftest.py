"""Shared fixtures for the per-figure reproduction benches.

Each bench runs its experiment once (``benchmark.pedantic`` with a
single round — these are reproduction drivers, not microbenchmarks),
prints the regenerated table/series, and archives it under
``results/``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Scale used by the reproduction benches (override with REPRO_SCALE).
SCALE = os.environ.get("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Print a rendered experiment and save it to results/<name>.txt."""

    def _archive(name: str, text: str):
        print()
        print(text)
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        return path

    return _archive


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
