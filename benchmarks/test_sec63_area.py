"""Section 6.3: area estimation — reproduced exactly (it is arithmetic).

Paper numbers: 82-bit skip entries, 2624-byte skip table, 128-byte
majority masks, 21-bit rename entries, 2688-byte rename/version tables,
5.31 kB total = ~2.1 % of the Pascal register file.
"""

from conftest import run_once

from repro.core import paper_area_model
from repro.harness import experiments


def test_area(benchmark, archive):
    model = run_once(benchmark, paper_area_model)
    archive("sec63_area", experiments.area_estimate())

    assert model.skip_entry_bits == 82
    assert model.skip_table_entries == 256
    assert model.skip_table_bytes == 2624
    assert model.majority_mask_bytes == 128
    assert model.rename_entry_bits == 21
    assert model.rename_table_bytes == 2688
    assert abs(model.total_kb - 5.31) < 0.01
    assert abs(model.fraction_of_register_file - 0.021) < 0.001
