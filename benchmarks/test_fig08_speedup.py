"""Figure 8: speedup of UV / DAC-IDEAL / DARSIE / DARSIE-IGNORE-STORE.

Paper shape: on 2D benchmarks DARSIE (1.30) beats DAC-IDEAL (1.11) beats
UV (1.02); DARSIE-IGNORE-STORE is indistinguishable from DARSIE; on 1D
benchmarks DARSIE and DAC-IDEAL are roughly equal.  Absolute factors on
this substrate differ (scaled workloads, simplified memory system) but
the ordering and rough magnitudes must hold.
"""

from conftest import SCALE, run_once

from repro.harness import experiments


def test_figure8(benchmark, archive):
    result = run_once(benchmark, experiments.figure8, scale=SCALE)
    archive("figure08_speedup", result.render())

    g2 = result.gmean_2d
    g1 = result.gmean_1d
    # 2D ordering: DARSIE > DAC-IDEAL > UV ~ BASE.
    assert g2["DARSIE"] > g2["DAC-IDEAL"] > g2["UV"] >= 0.99
    assert g2["DARSIE"] > 1.10, f"2D DARSIE gmean {g2['DARSIE']:.2f} should be a clear win"
    assert g2["UV"] < 1.05, "UV is fetch-limited and should barely help"
    # IGNORE-STORE ~= DARSIE (stores end register-use chains).
    assert abs(g2["DARSIE-IGNORE-STORE"] - g2["DARSIE"]) < 0.05
    # 1D: DARSIE and DAC-IDEAL in the same band (both remove the uniform work).
    assert g1["DARSIE"] > 1.0 and g1["DAC-IDEAL"] > 1.0
    # Every workload/config verified against its oracle inside the runner.
