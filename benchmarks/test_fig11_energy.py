"""Figure 11: energy reduction vs the baseline.

Paper shape: DARSIE reduces energy the most (gmean 25 % on 2D apps),
then DAC-IDEAL (20 %), then UV (7 %); DARSIE's added hardware costs
about 0.95 % of dynamic energy.
"""

from conftest import SCALE, run_once

from repro.harness import experiments


def test_figure11(benchmark, archive):
    result = run_once(benchmark, experiments.figure11, scale=SCALE)
    archive("figure11_energy", result.render())

    g2 = result.gmean_2d
    assert g2["DARSIE"] > g2["DAC-IDEAL"] > g2["UV"], (
        "energy-reduction ordering must match the paper"
    )
    assert g2["DARSIE"] > 0.05, "DARSIE should show a clear 2D energy win"
    # The DARSIE structures are cheap (paper: 0.95 % of dynamic energy).
    for abbr, frac in result.darsie_overhead.items():
        assert frac < 0.03, f"{abbr}: DARSIE overhead {frac:.3%} too high"
