"""Figure 12: effects of synchronization.

Paper shape: removing DARSIE's control-flow synchronization
(DARSIE-NO-CF-SYNC) can only help; the silicon __syncthreads()
instrumentation (SILICON-SYNC) costs little on most applications
(the paper's one extreme outlier, LIB at -50 % on silicon, reflects
latency-hiding loss our in-order model underestimates — see
EXPERIMENTS.md).
"""

from conftest import SCALE, run_once

from repro.harness import experiments


def test_figure12(benchmark, archive):
    result = run_once(benchmark, experiments.figure12, scale=SCALE)
    archive("figure12_sync", result.render("Figure 12: effects of synchronization"))

    for abbr, vals in result.per_workload.items():
        # The idealized no-sync variant never loses to real DARSIE
        # (allow sub-percent scheduling noise).
        assert vals["DARSIE-NO-CF-SYNC"] >= vals["DARSIE"] - 0.02, abbr
        # SILICON-SYNC is instrumentation overhead only: never a speedup.
        assert vals["SILICON-SYNC"] <= 1.02, abbr
    # Somewhere the sync overhead must be visible.
    assert any(v["SILICON-SYNC"] < 0.995 for v in result.per_workload.values())
    assert any(
        v["DARSIE-NO-CF-SYNC"] > v["DARSIE"] + 0.01
        for v in result.per_workload.values()
    ), "branch synchronization should cost something somewhere"
