"""Section 1: the 133-application dimensionality survey.

Reproduced over the synthetic dataset constructed to match the paper's
aggregates: >33 % multi-dimensional apps, 60 % among library apps, 71 %
of time in multi-dimensional kernels, and exactly one 2D kernel failing
the promotion criterion.
"""

from conftest import run_once

from repro.harness import experiments


def test_survey(benchmark, archive):
    result = run_once(benchmark, experiments.survey)
    archive("sec01_survey", result.render())

    assert result.num_applications == 133
    assert result.fraction_multi_dimensional > 0.33
    assert abs(result.fraction_library_multi_dimensional - 0.60) < 0.01
    assert abs(result.mean_time_in_md_kernels - 0.71) < 0.02
    assert result.promotion_failures == 1
