"""Warp-scheduler sweep (Section 5 methodology).

"We swept different warp schedulers and observed that these regular
applications are insensitive to scheduler choice, with GTO being the
best performing option."  Reproduced here: BASE and DARSIE cycle counts
under GTO vs loose-round-robin issue scheduling stay within a few
percent on representative regular workloads.
"""

from conftest import SCALE, run_once

from repro.harness.reporting import format_table
from repro.harness.runner import WorkloadRunner
from repro.timing import small_config
from repro.workloads import build_workload

APPS = ("LIB", "CONVTEX", "HS", "FWS")


def sweep():
    rows = {}
    for abbr in APPS:
        rows[abbr] = {}
        for policy in ("gto", "lrr"):
            runner = WorkloadRunner(
                build_workload(abbr, SCALE),
                small_config(1, scheduler_policy=policy),
            )
            rows[abbr][policy] = {
                "base": runner.run("BASE").cycles,
                "darsie": runner.run("DARSIE").cycles,
            }
    return rows


def test_scheduler_insensitivity(benchmark, archive):
    rows = run_once(benchmark, sweep)
    table = [
        [
            abbr,
            r["gto"]["base"], r["lrr"]["base"],
            r["gto"]["darsie"], r["lrr"]["darsie"],
        ]
        for abbr, r in rows.items()
    ]
    archive(
        "scheduler_sweep",
        format_table(
            ["App", "BASE/GTO", "BASE/LRR", "DARSIE/GTO", "DARSIE/LRR"],
            table,
            title="Warp-scheduler sweep (Section 5: regular apps are insensitive)",
        ),
    )
    for abbr, r in rows.items():
        for config in ("base", "darsie"):
            gto, lrr = r["gto"][config], r["lrr"][config]
            assert abs(gto - lrr) / gto < 0.08, (
                f"{abbr}/{config}: GTO {gto} vs LRR {lrr} — "
                "regular workloads should be scheduler-insensitive"
            )
