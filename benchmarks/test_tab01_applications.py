"""Table 1: the application set — names, suites and TB dimensions."""

from conftest import run_once

from repro.harness import experiments
from repro.workloads import ALL_ABBRS, ONE_D_ABBRS, TABLE1, TWO_D_ABBRS


def test_table1(benchmark, archive):
    text = run_once(benchmark, experiments.table1)
    archive("table1_applications", text)

    assert len(ALL_ABBRS) == 13
    assert len(ONE_D_ABBRS) == 5 and len(TWO_D_ABBRS) == 8
    # The paper's TB dimensions, verbatim.
    expected = {
        "BIN": (256, 1), "PT": (1024, 1), "FW": (256, 1), "SR1": (512, 1),
        "LIB": (256, 1), "IMNLM": (16, 16), "BP": (16, 16), "DCT8x8": (8, 8),
        "FWS": (16, 16), "HS": (16, 16), "CP": (16, 8), "CONVTEX": (16, 16),
        "MM": (32, 32),
    }
    for abbr, dims in expected.items():
        assert TABLE1[abbr].tb_dim == dims, abbr
