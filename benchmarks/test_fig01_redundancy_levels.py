"""Figure 1: redundant instructions per GPU thread-grouping level.

Paper: TB-wide redundancy is the largest opportunity — on average ~33 %
of executed instructions need only execute once per TB, more than the
grid-wide fraction.
"""

from conftest import SCALE, run_once

from repro.harness import experiments


def test_figure1(benchmark, archive):
    result = run_once(benchmark, experiments.figure1, scale=SCALE)
    archive("figure01_redundancy_levels", result.render())

    avg = result.average
    # TB-wide redundancy is the largest redundancy opportunity.
    assert avg.tb >= avg.grid, "TB-wide redundancy should dominate grid-wide"
    # A significant fraction (paper: ~33 %) of instructions are TB-redundant.
    assert 0.15 <= avg.tb <= 0.6, f"TB-wide fraction {avg.tb:.2f} out of expected band"
    # There is real vector work left (the machine is not all-redundant).
    assert avg.vector > 0.2
