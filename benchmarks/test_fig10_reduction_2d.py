"""Figure 10: instruction reduction on 2D benchmarks.

Paper shape: DARSIE removes more than DAC-IDEAL and UV because only
DARSIE eliminates unstructured redundancy (gmean 17 % vs 11 % for DAC).
"""

from conftest import SCALE, run_once

from repro.harness import experiments


def test_figure10(benchmark, archive):
    result = run_once(benchmark, experiments.figure10, scale=SCALE)
    archive("figure10_reduction_2d", result.render())

    assert result.gmean_total["DARSIE"] > result.gmean_total["DAC-IDEAL"], (
        "only DARSIE removes unstructured redundancy"
    )
    assert result.gmean_total["DARSIE"] > result.gmean_total["UV"]
    assert result.gmean_total["DARSIE"] > 0.10, "2D reductions should be substantial"
    # Unstructured redundancy is removed by DARSIE alone.
    for _abbr, by_config in result.per_workload.items():
        assert by_config["UV"].get("unstructured", 0.0) == 0.0
        assert by_config["DAC-IDEAL"].get("unstructured", 0.0) == 0.0
    assert any(
        by_config["DARSIE"].get("unstructured", 0.0) > 0.0
        for by_config in result.per_workload.values()
    )
