"""Table 2: the baseline GPU configuration."""

from conftest import run_once

from repro.harness import experiments
from repro.timing import PASCAL_GTX1080TI


def test_table2(benchmark, archive):
    text = run_once(benchmark, experiments.table2)
    archive("table2_baseline", text)

    cfg = PASCAL_GTX1080TI
    assert cfg.num_sms == 28
    assert cfg.max_warps_per_sm == 64
    assert cfg.max_tbs_per_sm == 32
    assert cfg.warp_size == 32
    assert cfg.num_schedulers == 4
    assert cfg.vector_registers_per_sm == 2048
