"""Figure 6: compiler markings for the matrix-multiply kernel.

Paper: the MM kernel mixes DR, CR and V instructions; the unrolled inner
loop contains conditionally redundant shared-memory reads feeding a true
vector ``mad``.
"""

from conftest import SCALE, run_once

from repro.core import Marking, analyze_program
from repro.harness import experiments
from repro.workloads import build_workload


def test_figure6(benchmark, archive):
    result = run_once(benchmark, experiments.figure6, scale=SCALE)
    archive("figure06_markings", result.render())

    assert result.counts["DR"] > 0, "MM must contain definitely redundant instructions"
    assert result.counts["CR"] > 0, "MM must contain conditionally redundant instructions"
    assert result.counts["V"] > 0, "MM must contain true vector instructions"


def test_inner_loop_structure():
    """The inner-product loop matches Figure 6's granularity: CR
    shared-memory read of the B tile, vector mad."""
    wl = build_workload("MM", SCALE)
    analysis = analyze_program(wl.program)
    marks = analysis.instruction_markings
    loads = [i for i in wl.program.instructions if i.is_load and i.mem.space.value == "shared"]
    assert any(marks[i.pc] is Marking.CONDITIONAL for i in loads), (
        "the Bs tile read must be conditionally redundant"
    )
    mads = [i for i in wl.program.instructions if i.opcode.value == "mad"]
    assert any(marks[i.pc] is Marking.VECTOR for i in mads), (
        "the inner-product mad must stay vector"
    )
