"""Figure 2: taxonomy breakdown of TB-redundant instructions.

Paper: affine and unstructured redundancy are pervasive in 2D TBs but
largely absent in 1D; uniform redundancy is common in both.
"""

from conftest import SCALE, run_once

from repro.harness import experiments
from repro.workloads import ONE_D_ABBRS, TWO_D_ABBRS


def test_figure2(benchmark, archive):
    result = run_once(benchmark, experiments.figure2, scale=SCALE)
    archive("figure02_taxonomy", result.render())

    non_uniform_1d = [
        result.per_workload[a].affine + result.per_workload[a].unstructured
        for a in ONE_D_ABBRS
    ]
    non_uniform_2d = [
        result.per_workload[a].affine + result.per_workload[a].unstructured
        for a in TWO_D_ABBRS
    ]
    avg_1d = sum(non_uniform_1d) / len(non_uniform_1d)
    avg_2d = sum(non_uniform_2d) / len(non_uniform_2d)
    # Affine + unstructured redundancy is a 2D-TB phenomenon.
    assert avg_2d > 2 * avg_1d, (
        f"2D affine+unstructured ({avg_2d:.2f}) should dwarf 1D ({avg_1d:.2f})"
    )
    # Uniform redundancy appears in both 1D and 2D applications.
    assert all(result.per_workload[a].uniform > 0 for a in ONE_D_ABBRS)
    assert all(result.per_workload[a].uniform > 0 for a in TWO_D_ABBRS)
