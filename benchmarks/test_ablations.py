"""Design-choice ablations (DESIGN.md Section 4).

Not paper figures — benches for the design decisions the paper makes by
construction:

- PC-coalescer port count (the paper picks 2, Section 4.3.4);
- rename registers per TB (the paper allows 32, Section 4.3.1);
- register versioning vs synchronize-on-every-redundant-write
  (Section 4.1's rejected option 1).
"""

from conftest import SCALE, run_once

from repro.harness import experiments


def test_ablation_skip_ports(benchmark, archive):
    result = run_once(
        benchmark, experiments.ablation_skip_ports, abbr="MM", scale=SCALE
    )
    archive("ablation_skip_ports", result.render())
    speedups = dict(result.points)
    # Two ports suffice (paper: "the PC coalescer reduces the port
    # requirement ... to 2 while providing reasonable throughput").
    assert speedups[2] >= 0.97 * speedups[8]
    # One port can only be slower or equal.
    assert speedups[1] <= speedups[8] * 1.02


def test_ablation_rename_registers(benchmark, archive):
    result = run_once(
        benchmark, experiments.ablation_rename_registers, abbr="MM", scale=SCALE
    )
    archive("ablation_rename_regs", result.render())
    speedups = dict(result.points)
    # Starving the freelist forces synchronization; 32 registers must be
    # at least as good as 4.
    assert speedups[32] >= speedups[4] - 0.02


def test_ablation_sync_on_write(benchmark, archive):
    result = run_once(
        benchmark, experiments.ablation_sync_on_write, abbr="MM", scale=SCALE
    )
    archive("ablation_sync_on_write", result.render())
    speedups = dict(result.points)
    # The paper adopts versioning "to avoid excessive synchronization".
    assert speedups["versioning"] >= speedups["sync-on-write"] - 0.02
