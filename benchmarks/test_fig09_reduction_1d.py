"""Figure 9: instruction reduction on 1D benchmarks.

Paper shape: in 1D TBs there is (almost) no affine/unstructured
redundancy for DARSIE to remove — its reductions are uniform-class;
DAC-IDEAL additionally removes non-redundant affine computation; LIB is
the outlier with ~75 % (mostly uniform) reduction.
"""

from conftest import SCALE, run_once

from repro.harness import experiments


def test_figure9(benchmark, archive):
    result = run_once(benchmark, experiments.figure9, scale=SCALE)
    archive("figure09_reduction_1d", result.render())

    for abbr, by_config in result.per_workload.items():
        darsie = by_config["DARSIE"]
        total = sum(darsie.values())
        uniform = darsie.get("uniform", 0.0)
        # DARSIE's 1D reductions are dominated by uniform redundancy.
        assert uniform >= 0.8 * total, f"{abbr}: 1D reduction should be uniform-dominated"
    # LIB is the extreme case (paper: 75 %).
    lib_total = sum(result.per_workload["LIB"]["DARSIE"].values())
    assert lib_total > 0.45, f"LIB reduction {lib_total:.2f} should be the largest"
    assert lib_total == max(
        sum(v["DARSIE"].values()) for v in result.per_workload.values()
    )
