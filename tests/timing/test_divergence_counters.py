"""The SIMT-stack divergence counters and their response to melding."""

from repro.harness.runner import WorkloadRunner
from repro.workloads import build_workload


class TestDivergenceCounters:
    def test_divergent_kernel_counts_serialized_work(self):
        runner = WorkloadRunner(build_workload("DIVEO", "tiny"))
        stats = runner.run("BASE").stats
        assert stats.divergent_branches > 0
        assert stats.divergence_serialized_instructions > 0
        # every serialized instruction was issued under a split stack,
        # so there are at least as many as there are divergent branches
        assert (stats.divergence_serialized_instructions
                >= stats.divergent_branches)

    def test_melding_eliminates_divergence(self):
        runner = WorkloadRunner(build_workload("DIVEO", "tiny"))
        base = runner.run("BASE").stats
        darm = runner.run("DARM").stats
        assert base.divergent_branches > 0
        assert darm.divergent_branches == 0
        assert darm.divergence_serialized_instructions == 0
        assert darm.instructions_executed < base.instructions_executed

    def test_uniform_kernel_never_diverges(self):
        runner = WorkloadRunner(build_workload("MM", "tiny"))
        stats = runner.run("BASE").stats
        assert stats.divergent_branches == 0
        assert stats.divergence_serialized_instructions == 0

    def test_darm_is_identity_on_table1_kernel(self):
        runner = WorkloadRunner(build_workload("BIN", "tiny"))
        base = runner.run("BASE")
        darm = runner.run("DARM")
        assert darm.cycles == base.cycles
        assert darm.stats.instructions_executed == base.stats.instructions_executed
