"""Unit tests for the GPU configuration and statistics containers."""

import dataclasses
from collections import Counter

import pytest

from repro import Dim3, GlobalMemory, LaunchConfig, assemble, simulate
from repro.timing import EnergyEvent, PASCAL_GTX1080TI, SimStats, small_config


class TestConfig:
    def test_table2_defaults(self):
        c = PASCAL_GTX1080TI
        assert (c.num_sms, c.max_warps_per_sm, c.max_tbs_per_sm) == (28, 64, 32)
        assert c.warp_size == 32 and c.num_schedulers == 4

    def test_scaled_copy(self):
        c = PASCAL_GTX1080TI.scaled(num_sms=2)
        assert c.num_sms == 2
        assert PASCAL_GTX1080TI.num_sms == 28  # frozen original untouched

    def test_small_config(self):
        c = small_config(num_sms=3, alu_latency=6)
        assert c.num_sms == 3 and c.alu_latency == 6

    def test_hashable(self):
        assert hash(small_config(1)) == hash(small_config(1))


class TestStats:
    def test_energy_counting(self):
        s = SimStats()
        s.count(EnergyEvent.RF_READ, 3)
        s.count(EnergyEvent.RF_READ)
        assert s.energy_events[EnergyEvent.RF_READ] == 4

    def test_total_instruction_slots(self):
        s = SimStats()
        s.instructions_executed = 70
        s.instructions_skipped = 30
        assert s.total_instruction_slots == 100
        assert s.summary()["skip_fraction"] == 0.3

    def test_merge(self):
        a, b = SimStats(), SimStats()
        a.cycles, b.cycles = 10, 20
        a.instructions_executed, b.instructions_executed = 5, 7
        a.skipped_by_class["uniform"] = 2
        b.skipped_by_class["uniform"] = 3
        a.count(EnergyEvent.DECODE, 4)
        b.count(EnergyEvent.DECODE, 6)
        a.merge(b)
        assert a.cycles == 20          # max across SMs
        assert a.instructions_executed == 12
        assert a.skipped_by_class["uniform"] == 5
        assert a.energy_events[EnergyEvent.DECODE] == 10

    def test_merge_covers_every_field(self):
        """Every declared field participates in merge — a newly added
        counter cannot be silently dropped from multi-SM aggregation."""
        a, b = SimStats(), SimStats()
        for f in dataclasses.fields(SimStats):
            value = getattr(b, f.name)
            if isinstance(value, Counter):
                value["probe"] = 2
            else:
                setattr(b, f.name, 3)
        a.merge(b)
        for f in dataclasses.fields(SimStats):
            merged = getattr(a, f.name)
            if isinstance(merged, Counter):
                assert merged["probe"] == 2, f.name
            else:
                assert merged == 3, f.name
        # and merging again aggregates per the field's declared rule
        a.merge(b)
        assert a.cycles == 3                       # merge: max
        assert a.instructions_executed == 6        # merge: sum
        assert a.energy_events["probe"] == 4       # merge: Counter update

    def test_merge_rejects_fields_without_a_rule(self):
        @dataclasses.dataclass
        class BadStats(SimStats):
            note: str = ""

        with pytest.raises(TypeError, match="note"):
            BadStats().merge(BadStats())


class TestMultiSMStats:
    """The merged stats of a real multi-SM run are the per-SM sums."""

    SRC = """
    .param out
        mul.u32 $o, %tid.x, 4
        add.u32 $o, $o, %param.out
        mul.u32 $v, %tid.x, 3
        st.global.u32 [$o], $v
        exit
    """

    def _run(self, num_sms):
        prog = assemble(self.SRC)
        launch = LaunchConfig(grid_dim=Dim3(4), block_dim=Dim3(32))
        mem = GlobalMemory(1 << 12)
        params = {"out": mem.alloc(512)}
        return simulate(prog, launch, mem, params=params,
                        config=small_config(num_sms))

    def test_merge_is_per_sm_sum(self):
        res = self._run(num_sms=2)
        assert len(res.per_sm_stats) == 2
        assert all(s.instructions_executed > 0 for s in res.per_sm_stats)
        rebuilt = SimStats()
        for s in res.per_sm_stats:
            rebuilt.merge(s)
        rebuilt.cycles = res.cycles
        assert rebuilt == res.stats          # dataclass eq: every field
        assert res.stats.instructions_executed == sum(
            s.instructions_executed for s in res.per_sm_stats
        )
        assert res.stats.cycles == max(s.cycles for s in res.per_sm_stats)

    def test_identical_runs_are_bit_identical(self):
        a, b = self._run(num_sms=2), self._run(num_sms=2)
        assert a.cycles == b.cycles
        assert a.stats == b.stats            # dataclass eq: every counter
        for sa, sb in zip(a.per_sm_stats, b.per_sm_stats):
            assert sa == sb
