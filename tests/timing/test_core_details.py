"""Focused tests of SM-core internals: GTO, I-buffers, skip tokens."""

import numpy as np

from repro import (
    DarsieFrontend,
    Dim3,
    GlobalMemory,
    LaunchConfig,
    analyze_program,
    assemble,
    simulate,
    small_config,
)
from repro.timing.buffers import IBuffer, ZeroCostLedger
from repro.timing.core import IBufferEntry, _scoreboard_keys


class TestScoreboardKeys:
    def test_alu_keys(self):
        prog = assemble("mad.f32 $d, $a, $b, $c\nexit")
        srcs, dests = _scoreboard_keys(prog.instructions[0])
        assert set(srcs) == {("r", "a"), ("r", "b"), ("r", "c")}
        assert dests == [("r", "d")]

    def test_guard_and_address_are_sources(self):
        prog = assemble("@$p0 st.global.f32 [$a + $i], $v\nexit")
        srcs, dests = _scoreboard_keys(prog.instructions[0])
        assert set(srcs) == {("r", "a"), ("r", "i"), ("r", "v"), ("p", "p0")}
        assert dests == []

    def test_setp_dest_is_predicate(self):
        prog = assemble("setp.lt.u32 $p1, $a, $b\nexit")
        _, dests = _scoreboard_keys(prog.instructions[0])
        assert dests == [("p", "p1")]


class TestIBufferAccounting:
    def test_free_and_token_entries_do_not_occupy_slots(self):
        prog = assemble("nop\nexit")
        inst = prog.instructions[0]
        ibuf = IBuffer(ZeroCostLedger())
        ibuf.push(IBufferEntry(inst=inst))
        ibuf.push(IBufferEntry(inst=inst, free=True))
        ibuf.push(IBufferEntry(inst=inst, skip_token=True))
        assert ibuf.buffered == 1

    def test_pop_and_clear_keep_counters_in_sync(self):
        prog = assemble("nop\nexit")
        inst = prog.instructions[0]
        ibuf = IBuffer(ZeroCostLedger())
        ibuf.push(IBufferEntry(inst=inst))
        ibuf.push(IBufferEntry(inst=inst, free=True))
        assert (ibuf.buffered, ibuf.zero_cost) == (1, 1)
        ibuf.pop()
        assert (ibuf.buffered, ibuf.zero_cost) == (0, 1)
        ibuf.pop()
        assert (ibuf.buffered, ibuf.zero_cost) == (0, 0)
        ibuf.push(IBufferEntry(inst=inst, skip_token=True))
        ibuf.clear()
        assert (ibuf.buffered, ibuf.zero_cost) == (0, 0)
        assert not ibuf

    def test_ledger_tracks_shared_population_and_detach(self):
        prog = assemble("nop\nexit")
        inst = prog.instructions[0]
        ledger = ZeroCostLedger()
        a, b = IBuffer(ledger), IBuffer(ledger)
        a.push(IBufferEntry(inst=inst, skip_token=True))
        a.push(IBufferEntry(inst=inst))
        b.push(IBufferEntry(inst=inst, free=True))
        assert ledger.total == 2
        a.pop()
        assert ledger.total == 1
        b.detach()
        assert ledger.total == 0
        # detached buffers keep their entries but no longer count
        assert len(b) == 1 and b.zero_cost == 0


class TestDeterminism:
    SRC = """
    .param tab
    .param out
        mul.u32 $a, %tid.x, 4
        add.u32 $a, $a, %param.tab
        ld.global.s32 $v, [$a]
        mul.u32 $o, %tid.y, %ntid.x
        add.u32 $o, $o, %tid.x
        shl.u32 $o, $o, 2
        add.u32 $o, $o, %param.out
        st.global.s32 [$o], $v
        exit
    """

    def _run(self, factory=None):
        prog = assemble(self.SRC)
        launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(16, 16))
        mem = GlobalMemory(1 << 13)
        p = {"tab": mem.alloc_array(np.arange(16)), "out": mem.alloc(1024)}
        return simulate(prog, launch, mem, params=p, config=small_config(1),
                        frontend_factory=factory)

    def test_cycle_counts_are_deterministic(self):
        assert self._run().cycles == self._run().cycles

    def test_darsie_deterministic(self):
        prog = assemble(self.SRC)
        analysis = analyze_program(prog)
        a = self._run(lambda: DarsieFrontend(analysis))
        b = self._run(lambda: DarsieFrontend(analysis))
        assert a.cycles == b.cycles
        assert a.stats.instructions_skipped == b.stats.instructions_skipped


class TestEnergyCounters:
    def test_fetch_decode_issue_consistency(self):
        from repro.timing.stats import EnergyEvent

        res = TestDeterminism()._run()
        s = res.stats
        assert s.energy_events[EnergyEvent.DECODE] == s.instructions_decoded
        assert s.energy_events[EnergyEvent.ISSUE] == s.instructions_issued
        assert s.instructions_fetched == s.instructions_decoded
        # One I-cache probe serves up to fetch_width instructions.
        assert s.energy_events[EnergyEvent.ICACHE_FETCH] <= s.instructions_fetched

    def test_darsie_fetches_fewer(self):
        t = TestDeterminism()
        prog = assemble(t.SRC)
        analysis = analyze_program(prog)
        base = t._run()
        dar = t._run(lambda: DarsieFrontend(analysis))
        assert dar.stats.instructions_fetched < base.stats.instructions_fetched
        from repro.timing.stats import EnergyEvent

        assert (
            dar.stats.energy_events[EnergyEvent.ICACHE_FETCH]
            < base.stats.energy_events[EnergyEvent.ICACHE_FETCH]
        )
