"""Per-stage unit tests: each stage driven in isolation against
hand-built buffer states, plus the stage-occupancy trace."""

import dataclasses
import json

import pytest

from repro import (
    Dim3,
    GlobalMemory,
    LaunchConfig,
    assemble,
    simulate,
    small_config,
)
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.timing import StageOccupancyTrace
from repro.timing.buffers import IBufferEntry
from repro.timing.gpu import GPU
from repro.timing.stages import DualIssueStage, IssueStage
from repro.timing.stats import EnergyEvent

ALU_SRC = """
    add.u32 $a, %tid.x, 1
    add.u32 $b, $a, 2
    add.u32 $c, $b, 3
    add.u32 $d, $c, 4
    exit
"""


def make_sm(src=ALU_SRC, threads=32, config=None, frontend_factory=None):
    """A 1-SM GPU with one TB resident, stages untouched — the test
    drives individual stages by hand."""
    prog = assemble(src)
    launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(threads))
    gpu = GPU(prog, launch, GlobalMemory(1 << 12),
              config=config or small_config(1),
              frontend_factory=frontend_factory)
    sm = gpu.sms[0]
    sm.launch_tb(0)
    return gpu, sm


class TestFetchStage:
    def test_fetch_fills_one_warp_per_cycle(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        activity = pipe.fetch.tick(0)
        assert activity > 0
        w = sm.warps[0]
        assert w.ibuffer.buffered == sm.config.fetch_width
        assert sm.stats.instructions_fetched == sm.config.fetch_width
        assert sm.stats.instructions_decoded == sm.config.fetch_width
        # One I-cache probe served the whole fetch group.
        assert sm.stats.energy_events[EnergyEvent.ICACHE_FETCH] == 1

    def test_fetch_round_robins_across_warps(self):
        _, sm = make_sm(threads=64)
        pipe = sm.pipeline
        pipe.fetch.tick(0)
        pipe.fetch.tick(1)
        assert [w.ibuffer.buffered for w in sm.warps] == [2, 2]

    def test_fetch_respects_ibuffer_capacity(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        for cycle in range(10):
            pipe.fetch.tick(cycle)
        w = sm.warps[0]
        assert w.ibuffer.buffered <= sm.config.ibuffer_entries


class TestIssueStage:
    def test_issue_pops_entry_and_schedules_writeback(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        pipe.fetch.tick(0)
        w = sm.warps[0]
        before = w.ibuffer.buffered
        activity = pipe.issue.tick(1)
        assert activity > 0
        assert sm.stats.instructions_issued >= 1
        assert sm.stats.instructions_executed == sm.stats.instructions_issued
        assert w.ibuffer.buffered < before
        # the ALU result is in flight towards writeback
        assert len(pipe.wbq) >= 1
        assert ("r", "a") in w.scoreboard

    def test_scoreboard_hazard_blocks_issue(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        pipe.fetch.tick(0)
        w = sm.warps[0]
        # add.u32 $a, %tid.x, 1 writes $a; a pending write to it blocks
        w.scoreboard.add(("r", "a"))
        assert pipe.issue.tick(1) == 0
        assert sm.stats.instructions_issued == 0

    def test_zero_cost_head_is_not_issued(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        w = sm.warps[0]
        inst = sm.ctx.program.at(w.warp.pc)
        w.ibuffer.push(IBufferEntry(inst=inst, skip_token=True))
        assert pipe.issue.tick(0) == 0
        assert len(w.ibuffer) == 1  # left for the decode-skip drain


class TestDecodeSkipStage:
    def test_skip_token_advances_architectural_pc(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        w = sm.warps[0]
        inst = sm.ctx.program.at(w.warp.pc)
        w.ibuffer.push(IBufferEntry(inst=inst, skip_token=True))
        pc0 = w.warp.pc
        assert pipe.decode_skip.tick(0) == 1
        assert w.warp.pc == pc0 + INSTRUCTION_BYTES
        assert not w.ibuffer
        assert sm.stats.instructions_executed == 0

    def test_free_entry_executes_functionally_as_skip(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        w = sm.warps[0]
        inst = sm.ctx.program.at(w.warp.pc)
        w.ibuffer.push(IBufferEntry(inst=inst, free=True))
        pipe.decode_skip.tick(0)
        assert sm.stats.instructions_skipped == 1
        assert not w.ibuffer

    def test_free_entry_waits_on_hazard(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        w = sm.warps[0]
        inst = sm.ctx.program.at(w.warp.pc)  # reads %tid.x, writes $a
        w.scoreboard.add(("r", "a"))
        w.ibuffer.push(IBufferEntry(inst=inst, free=True))
        assert pipe.decode_skip.tick(0) == 0
        assert len(w.ibuffer) == 1

    def test_drain_early_outs_when_ledger_empty(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        assert pipe.zero_cost.total == 0
        assert pipe.decode_skip.tick(0) == 0


class TestWritebackStage:
    def test_due_item_releases_scoreboard(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        w = sm.warps[0]
        inst = sm.ctx.program.at(w.warp.pc)
        w.scoreboard.add(("r", "a"))
        pipe.wbq.schedule(5, w, inst, {"dests": (("r", "a"),)})
        assert w.inflight == 1
        assert pipe.writeback.tick(4) == 0
        assert w.scoreboard == {("r", "a")}
        assert pipe.writeback.tick(5) == 1
        assert w.scoreboard == set()
        assert w.inflight == 0
        assert len(pipe.wbq) == 0

    def test_ties_retire_in_issue_order(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        w = sm.warps[0]
        i0 = sm.ctx.program.instructions[0]
        i1 = sm.ctx.program.instructions[1]
        pipe.wbq.schedule(3, w, i0, {"dests": ()})
        pipe.wbq.schedule(3, w, i1, {"dests": ()})
        first = pipe.wbq.pop_ready(3)
        second = pipe.wbq.pop_ready(3)
        assert first[3] is i0 and second[3] is i1


class TestDualIssueStage:
    def _single_scheduler_config(self):
        return dataclasses.replace(small_config(1), num_schedulers=1)

    def test_dual_issue_takes_two_warps_per_cycle(self):
        cfg = self._single_scheduler_config()
        _, sm = make_sm(threads=64, config=cfg)
        pipe = sm.pipeline
        pipe.fetch.tick(0)
        pipe.fetch.tick(1)  # both warps now hold instructions
        assert isinstance(pipe.issue, IssueStage)
        single_issue = pipe.issue

        # baseline: one warp per scheduler per cycle
        n0 = sm.stats.instructions_issued
        single_issue.tick(2)
        issued_single = sm.stats.instructions_issued - n0
        warps_touched = sum(1 for w in sm.warps if w.scoreboard)
        assert warps_touched == 1

        # dual: the alternative stage issues from both warps in one tick
        _, sm2 = make_sm(threads=64, config=cfg)
        pipe2 = sm2.pipeline
        pipe2.issue = DualIssueStage(pipe2)
        for w in sm2.warps:
            pipe2.issue.add_warp(w)
        pipe2.fetch.tick(0)
        pipe2.fetch.tick(1)
        pipe2.issue.tick(2)
        warps_touched2 = sum(1 for w in sm2.warps if w.scoreboard)
        assert warps_touched2 == 2
        assert sm2.stats.instructions_issued > issued_single

    def test_dual_issue_variant_runs_end_to_end(self):
        prog = assemble(ALU_SRC)
        launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(64))
        from repro.timing.frontend import DualIssueFrontend

        base = simulate(prog, launch, GlobalMemory(1 << 12),
                        config=small_config(1))
        dual = simulate(prog, launch, GlobalMemory(1 << 12),
                        config=small_config(1),
                        frontend_factory=DualIssueFrontend)
        assert dual.stats.instructions_executed == base.stats.instructions_executed
        assert dual.cycles <= base.cycles


class TestStagePipelineAssembly:
    def test_occupancy_reports_buffer_state(self):
        _, sm = make_sm()
        pipe = sm.pipeline
        pipe.fetch.tick(0)
        occ = pipe.occupancy()
        assert occ["ibuffer"] == sm.config.fetch_width
        assert occ["zero_cost"] == 0
        assert occ["inflight"] == 0

    def test_stage_names_are_distinct(self):
        _, sm = make_sm()
        names = [s.name for s in sm.pipeline.stages]
        assert len(set(names)) == len(names) == 4


class TestStageOccupancyTrace:
    def _run_traced(self):
        prog = assemble(ALU_SRC)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(32))
        gpu = GPU(prog, launch, GlobalMemory(1 << 12), config=small_config(1))
        trace = StageOccupancyTrace()
        gpu.attach_stage_trace(trace)
        res = gpu.run()
        return res, trace

    def test_one_sample_per_busy_sm_cycle(self):
        res, trace = self._run_traced()
        assert len(trace.samples) == res.cycles
        cycles = [row["cycle"] for row in trace.samples]
        assert cycles == sorted(cycles)

    def test_samples_carry_stage_activity_and_occupancy(self):
        _, trace = self._run_traced()
        row = trace.samples[0]
        assert set(row) == {"cycle", "sm", "stages", "ibuffer",
                            "zero_cost", "inflight"}
        assert set(row["stages"]) == {"writeback", "decode-skip",
                                      "issue", "fetch"}
        totals = trace.busiest_stage()
        assert totals["fetch"] > 0 and totals["issue"] > 0

    def test_trace_does_not_change_cycle_count(self):
        prog = assemble(ALU_SRC)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(32))
        plain = simulate(prog, launch, GlobalMemory(1 << 12),
                         config=small_config(1))
        res, _ = self._run_traced()
        assert res.cycles == plain.cycles

    def test_write_jsonl_round_trips(self, tmp_path):
        _, trace = self._run_traced()
        path = tmp_path / "stages.jsonl"
        lines = trace.write_jsonl(str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == len(rows) == len(trace.samples)
        assert rows[0]["stages"]["fetch"] >= 0

    def test_cli_pipeline_trace_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "pt.jsonl"
        assert main(["run", "MM", "--scale", "tiny", "--config", "BASE",
                     "--pipeline-trace", str(path), "--no-cache"]) == 0
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows and {"cycle", "sm", "stages"} <= set(rows[0])
        assert "stage-occupancy samples" in capsys.readouterr().out
