"""Behavioural tests for the non-DARSIE frontends (BASE/UV/SSYNC)."""

import numpy as np

from repro import (
    Dim3,
    GlobalMemory,
    LaunchConfig,
    SiliconSyncFrontend,
    UVFrontend,
    analyze_program,
    assemble,
    run_functional,
    simulate,
    small_config,
)

CFG = small_config(num_sms=1)

UNIFORM_HEAVY = """
.param out
    mov.u32 $k, 0
    mov.u32 $acc, 0
top:
    mul.u32 $u, %ctaid.x, 3
    add.u32 $u, $u, 7
    mul.u32 $u, $u, 5
    add.u32 $acc, $acc, %tid.x
    add.u32 $k, $k, 1
    setp.lt.u32 $p0, $k, 8
@$p0 bra top
    add.u32 $acc, $acc, $u
    shl.u32 $o, %tid.x, 2
    add.u32 $o, $o, %param.out
    st.global.s32 [$o], $acc
    exit
"""


def run_with(factory, src=UNIFORM_HEAVY, block=(32, 4)):
    prog = assemble(src)
    analysis = analyze_program(prog)
    launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(*block))
    mem = GlobalMemory(1 << 13)
    p = {"out": mem.alloc(128)}
    res = simulate(prog, launch, mem, params=p, config=CFG,
                   frontend_factory=factory(analysis) if factory else None)
    return res, mem, p, prog, launch


class TestUV:
    def test_eliminates_uniform_executions_only(self):
        res, mem, p, prog, launch = run_with(lambda a: (lambda: UVFrontend(a)))
        assert res.stats.executions_eliminated > 0
        assert res.stats.eliminated_by_class["uniform"] == res.stats.executions_eliminated
        # Nothing removed before fetch: UV works at issue.
        assert res.stats.instructions_skipped == 0

    def test_fetch_count_unchanged_vs_base(self):
        """UV instructions are still fetched and decoded (Section 5)."""
        base, *_ = run_with(None)
        uv, *_ = run_with(lambda a: (lambda: UVFrontend(a)))
        assert uv.stats.instructions_fetched == base.stats.instructions_fetched

    def test_functional_correctness(self):
        uv, mem, p, prog, launch = run_with(lambda a: (lambda: UVFrontend(a)))
        mem_f = GlobalMemory(1 << 13)
        pf = {"out": mem_f.alloc(128)}
        run_functional(prog, launch, mem_f, params=pf)
        assert np.array_equal(mem.words, mem_f.words)

    def test_first_warp_fills_reuse_buffer(self):
        """One execution per (pc, instance) per TB fills; the other
        warps reuse.  Uniform instances per warp: 2 initial movs plus 5
        uniform ops x 8 iterations = 42; (4 - 1) warps eliminate each,
        in 2 TBs: 42 * 3 * 2 = 252."""
        res, *_ = run_with(lambda a: (lambda: UVFrontend(a)))
        assert res.stats.executions_eliminated == 252


class TestSiliconSync:
    def test_slower_or_equal_and_correct(self):
        base, *_ = run_with(None)
        res, mem, p, prog, launch = run_with(lambda a: SiliconSyncFrontend)
        assert res.cycles >= base.cycles
        assert res.stats.branch_barriers > 0
        mem_f = GlobalMemory(1 << 13)
        pf = {"out": mem_f.alloc(128)}
        run_functional(prog, launch, mem_f, params=pf)
        assert np.array_equal(mem.words, mem_f.words)

    def test_release_delay_costs_cycles(self):
        fast, *_ = run_with(lambda a: (lambda: SiliconSyncFrontend(release_delay=1)))
        slow, *_ = run_with(lambda a: (lambda: SiliconSyncFrontend(release_delay=100)))
        assert slow.cycles > fast.cycles
