"""The bit-identical SimStats contract of the hot-path overhaul.

Two guarantees pin the timing model down after the performance work:

1. **Event-driven cycle skipping is invisible.**  ``GPUConfig.event_skip``
   jumps the cycle loop over provably idle stretches and replays the
   per-idle-cycle accounting in closed form; running with it disabled
   must produce *identical* :class:`SimStats` — every counter, not just
   cycles.

2. **The golden contract.**  ``tests/timing/data/golden_tiny.json``
   records the canonical stats of every (workload, Figure-8 config)
   pair at tiny scale.  Any change to the simulator that moves one of
   these counters is a semantic change to the model, not an
   optimization, and must update the golden file deliberately:

       PYTHONPATH=src python -c "
       from tests.timing.test_event_skip import write_golden
       write_golden('tests/timing/data/golden_tiny.json')"
"""

import dataclasses
import json
import os
import zlib

import pytest

from repro.harness.runner import WorkloadRunner
from repro.isa.instructions import stable_bank
from repro.timing import small_config
from repro.workloads import ALL_ABBRS, build_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_tiny.json")
GOLDEN_CONFIGS = ("BASE", "UV", "DAC-IDEAL", "DARSIE")

#: scalar SimStats counters included in the canonical form
_COUNTERS = (
    "instructions_fetched", "instructions_decoded", "instructions_issued",
    "instructions_executed", "instructions_skipped", "executions_eliminated",
    "sync_wait_cycles", "branch_barriers", "rf_bank_conflicts",
    "darsie_bank_conflicts", "l1_hits", "l1_misses",
    "shared_bank_conflict_cycles", "leaders_elected", "follower_skips",
    "freelist_syncs", "load_entries_invalidated", "warps_left_majority",
)


def canonical(stats) -> dict:
    """JSON-comparable form of a :class:`SimStats` (all counters)."""
    d = {"cycles": stats.cycles}
    for name in _COUNTERS:
        d[name] = getattr(stats, name)
    d["skipped_by_class"] = dict(sorted(stats.skipped_by_class.items()))
    d["eliminated_by_class"] = dict(sorted(stats.eliminated_by_class.items()))
    d["energy_events"] = dict(sorted((e.value, n) for e, n in stats.energy_events.items()))
    return d


def write_golden(path: str) -> None:
    """Regenerate the golden file (intentional model changes only)."""
    entries = {}
    for abbr in ALL_ABBRS:
        runner = WorkloadRunner(build_workload(abbr, "tiny"))
        for config in GOLDEN_CONFIGS:
            entries[f"{abbr}/{config}"] = canonical(runner.run(config).sim.stats)
    payload = {
        "scale": "tiny",
        "configs": list(GOLDEN_CONFIGS),
        "entries": entries,
        "note": "Canonical per-(workload, config) SimStats at tiny scale. "
                "The timing simulator must reproduce these bit-for-bit; "
                "regenerate only for intentional model changes "
                "(tests/timing/test_event_skip.py explains how).",
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)


class TestGoldenContract:
    """Every (workload, config) reproduces the committed stats exactly."""

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH) as fh:
            return json.load(fh)

    @pytest.mark.parametrize("abbr", ALL_ABBRS)
    def test_workload_matches_golden(self, abbr, golden):
        runner = WorkloadRunner(build_workload(abbr, "tiny"))
        for config in golden["configs"]:
            got = canonical(runner.run(config).sim.stats)
            want = golden["entries"][f"{abbr}/{config}"]
            assert got == want, (
                f"{abbr}/{config}: SimStats deviates from the golden contract; "
                "if this change is intentional, regenerate the golden file "
                "(see module docstring)"
            )


class TestEventSkipEquivalence:
    """event_skip=True/False are bit-identical, per config family."""

    WORKLOADS = ("LIB", "CONVTEX", "MM")
    CONFIGS = ("BASE", "UV", "DAC-IDEAL", "DARSIE", "SILICON-SYNC")

    @pytest.mark.parametrize("abbr", WORKLOADS)
    def test_stats_identical_with_and_without_skipping(self, abbr):
        on = small_config(num_sms=1)
        off = dataclasses.replace(on, event_skip=False)
        assert on.event_skip and not off.event_skip
        runner_on = WorkloadRunner(build_workload(abbr, "tiny"), on)
        runner_off = WorkloadRunner(build_workload(abbr, "tiny"), off)
        for config in self.CONFIGS:
            a = runner_on.run(config).sim
            b = runner_off.run(config).sim
            assert a.cycles == b.cycles, f"{abbr}/{config}: cycle count diverged"
            assert canonical(a.stats) == canonical(b.stats), (
                f"{abbr}/{config}: event-skip changed a counter"
            )

    def test_multi_sm_equivalence(self):
        on = small_config(num_sms=2)
        off = dataclasses.replace(on, event_skip=False)
        a = WorkloadRunner(build_workload("BP", "tiny"), on).run("DARSIE").sim
        b = WorkloadRunner(build_workload("BP", "tiny"), off).run("DARSIE").sim
        assert canonical(a.stats) == canonical(b.stats)


class TestStableBank:
    """Bank selection no longer depends on per-process string-hash salt."""

    def test_crc32_definition(self):
        assert stable_bank(("r", "acc"), 16) == zlib.crc32(b"r:acc") % 16

    def test_spread_and_range(self):
        banks = {stable_bank(("r", f"v{i}"), 8) for i in range(64)}
        assert banks <= set(range(8))
        assert len(banks) > 1  # not degenerate

    def test_cross_process_stability(self):
        """The counters derived from bank hashing are reproducible in a
        fresh interpreter (a different PYTHONHASHSEED)."""
        import subprocess
        import sys

        code = (
            "from repro.isa.instructions import stable_bank;"
            "print([stable_bank(('r', n), 16) for n in ('a','b','acc','out')])"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env, check=True,
        ).stdout.strip()
        here = str([stable_bank(("r", n), 16) for n in ("a", "b", "acc", "out")])
        assert out == here
