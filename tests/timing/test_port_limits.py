"""Port-limited DARSIE structures: the PortBudget primitive, and the
pinned effect of finite rename/version-table ports on real workloads.

Defaults (``rename_ports=None`` / ``version_table_ports=None``) model
ideal structures and must leave every golden bit-identical; finite
values introduce structural stalls counted in
``SimStats.rename_port_stalls`` / ``version_table_port_stalls``.
"""

import dataclasses

import pytest

from repro.core.rename import PortBudget
from repro.harness.runner import WorkloadRunner
from repro.timing.config import GPUConfig
from repro.workloads import build_workload


class TestPortBudget:
    def test_ideal_budget_always_grants(self):
        b = PortBudget(None)
        assert all(b.acquire(0, n) for n in (1, 8, 1000))

    def test_finite_budget_consumes_within_cycle(self):
        b = PortBudget(2)
        assert b.acquire(5) and b.acquire(5)
        assert not b.acquire(5)

    def test_budget_resets_each_cycle(self):
        b = PortBudget(1)
        assert b.acquire(1)
        assert not b.acquire(1)
        assert b.acquire(2)

    def test_zero_reads_are_free(self):
        b = PortBudget(1)
        assert b.acquire(0, 0)
        assert b.acquire(0, 1)

    def test_wide_request_oversubscribes_rather_than_deadlocks(self):
        # An instruction needing more reads than the structure has ports
        # must still make progress (the hardware would serialize the
        # reads over the cycle), or the pipeline would stall forever.
        b = PortBudget(2)
        assert b.acquire(0, 5)
        # ... but it consumed the whole cycle's bandwidth.
        assert not b.acquire(0, 1)

    def test_wide_request_waits_behind_partial_use(self):
        b = PortBudget(2)
        assert b.acquire(0, 1)
        assert not b.acquire(0, 5)


def _run(abbr, scale, **gpu_overrides):
    runner = WorkloadRunner(build_workload(abbr, scale))
    if gpu_overrides:
        cfg = dataclasses.replace(runner.gpu_config, **gpu_overrides)
        runner = WorkloadRunner(build_workload(abbr, scale), gpu_config=cfg)
    return runner.run("DARSIE")


class TestPortContention:
    def test_default_config_is_ideal(self):
        cfg = GPUConfig()
        assert cfg.rename_ports is None
        assert cfg.version_table_ports is None

    def test_ideal_runs_never_stall_on_ports(self):
        res = _run("LIB", "tiny")
        assert res.stats.rename_port_stalls == 0
        assert res.stats.version_table_port_stalls == 0

    def test_finite_rename_ports_stall_strictly_more(self):
        # LIB promotes aggressively (many renamed sources fetched
        # back-to-back), so one rename read port is not enough.
        ideal = _run("LIB", "tiny")
        limited = _run("LIB", "tiny", rename_ports=1)
        assert limited.stats.rename_port_stalls > ideal.stats.rename_port_stalls
        assert limited.stats.rename_port_stalls == 14  # pinned

    def test_finite_version_ports_change_cycles_pinned(self):
        # Table 1's CONVTEX at the small scale: coalesced follower
        # groups hit the version table together, so one read port
        # serializes skips and the cycle count measurably moves.
        ideal = _run("CONVTEX", "small")
        limited = _run("CONVTEX", "small", version_table_ports=1)
        assert ideal.cycles == 1942  # pinned ideal baseline
        assert limited.cycles == 2036  # pinned: structural stalls cost cycles
        assert limited.stats.version_table_port_stalls == 6297
        assert ideal.stats.version_table_port_stalls == 0

    @pytest.mark.parametrize("overrides", [
        {"rename_ports": 1},
        {"version_table_ports": 1},
    ])
    def test_event_skip_equivalence_with_finite_ports(self, overrides):
        # Port stalls always ride on cycles with other activity, so the
        # event-driven skipper must never jump one: stats are identical
        # with skipping on and off.
        stepped = _run("LIB", "tiny", event_skip=False, **overrides)
        skipped = _run("LIB", "tiny", **overrides)
        assert stepped.cycles == skipped.cycles
        assert stepped.stats == skipped.stats
