"""Crash-safe checkpointing and the forward-progress watchdog.

The tentpole contract: a simulation paused at an arbitrary mid-run
cycle, serialized through the on-disk checkpoint container, and resumed
in a different GPU object must finish **bit-identical** to a run that
was never interrupted — for every variant family (one representative
per registry tag), not just the default frontend.  Alongside it, the
watchdog must turn the three ways a simulation can stop making progress
(cycle budget, no instruction retiring, idle with no wake event) into a
structured :class:`DeadlockError` carrying a per-stage/per-warp dump.
"""

import os
import pickle
import types

import pytest

from repro import Dim3, GlobalMemory, LaunchConfig, assemble
from repro.config import RunConfig
from repro.harness.runner import WorkloadRunner
from repro.timing import small_config
from repro.timing.buffers import IBuffer, IBufferEntry, WritebackQueue, ZeroCostLedger
from repro.timing.checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.timing.gpu import GPU, DeadlockError
from repro.variants import REGISTRY


def first_variant_per_tag():
    """One representative variant per registry tag (deduplicated)."""
    chosen = {}
    for variant in REGISTRY:
        for tag in variant.tags:
            chosen.setdefault(tag, variant.name)
    return sorted(set(chosen.values()))


def build_gpu(variant: str, abbr: str = "LIB") -> GPU:
    cfg = RunConfig(abbr=abbr, variant=variant, scale="tiny")
    runner = WorkloadRunner.from_config(cfg)
    mem, params = runner.workload.fresh()
    return GPU(
        runner.simulation_program(variant),
        runner.workload.launch,
        mem,
        params=params,
        config=runner.gpu_config,
        frontend_factory=runner.frontend_factory(variant, None),
    )


class TestKillResumeBitIdentical:
    """Pinned per-variant-family resume equivalence (the kill is modelled
    by discarding the paused GPU and reviving it from the file alone)."""

    @pytest.mark.parametrize("variant", first_variant_per_tag())
    def test_resume_matches_straight_through(self, variant, tmp_path):
        ref_gpu = build_gpu(variant)
        ref = ref_gpu.run()

        gpu = build_gpu(variant)
        stop = max(1, ref.cycles // 2)
        assert gpu.run_to(stop) is None  # paused mid-run, not finished

        path = str(tmp_path / "mid.ckpt")
        write_checkpoint(path, gpu)
        del gpu  # the "kill": only the file survives

        revived = read_checkpoint(path)
        result = revived.run()
        assert result.to_dict() == ref.to_dict()
        assert (
            revived.ctx.memory.words.tobytes()
            == ref_gpu.ctx.memory.words.tobytes()
        )

    def test_many_split_points_one_variant(self, tmp_path):
        """Every quartile split of a DARSIE run resumes identically."""
        ref_gpu = build_gpu("DARSIE")
        ref = ref_gpu.run()
        for frac in (0.1, 0.25, 0.5, 0.75, 0.9):
            gpu = build_gpu("DARSIE")
            assert gpu.run_to(max(1, int(ref.cycles * frac))) is None
            revived = GPU.restore(gpu.snapshot())
            assert revived.run().to_dict() == ref.to_dict()

    def test_snapshot_under_trace_is_a_usage_error(self):
        gpu = build_gpu("BASE")
        gpu.attach_trace(object())
        with pytest.raises(ValueError, match="trace"):
            gpu.snapshot()


class TestWatchdog:
    """The three no-forward-progress detectors."""

    INFINITE_LOOP = """
    loop:
        add.u32 $x, $x, 1
        bra loop
    """

    def _wedge_gpu(self, **overrides) -> GPU:
        prog = assemble("nop\nnop\nnop\nexit")
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(32))
        mem = GlobalMemory(1 << 10)
        return GPU(prog, launch, mem,
                   config=small_config(num_sms=1).scaled(**overrides))

    def test_infinite_loop_trips_cycle_budget(self):
        prog = assemble(self.INFINITE_LOOP)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(32))
        mem = GlobalMemory(1 << 10)
        budget = 2_000
        gpu = GPU(prog, launch, mem,
                  config=small_config(num_sms=1).scaled(max_cycles=budget))
        with pytest.raises(DeadlockError, match="max_cycles") as exc_info:
            gpu.run()
        dump = exc_info.value.dump
        assert dump["reason"] == "max_cycles"
        assert dump["cycle"] <= budget  # within the watchdog window
        assert exc_info.value.to_dict()["dump"] is dump

    def test_stagnation_detector_and_dump_shape(self):
        """No instruction retiring for the whole window raises, and the
        dump names every stage and every live warp."""
        window = 300
        gpu = self._wedge_gpu(watchdog_cycles=window, event_skip=False)
        # Wedge: the SM reports activity every tick but retires nothing.
        gpu.sms[0].tick = lambda cycle: 1
        with pytest.raises(DeadlockError, match="no instruction executed") as exc_info:
            gpu.run()
        dump = exc_info.value.dump
        assert dump["reason"] == "no_instruction_executed"
        assert dump["cycle"] <= window + 2
        (sm,) = dump["sms"]
        assert sm["stages"]  # per-stage identity...
        assert {"ibuffer", "zero_cost", "inflight"} <= set(sm["occupancy"])
        assert sm["warps"]  # ...and per-warp detail
        for warp in sm["warps"]:
            assert {"warp_id", "pc", "fetch_pc", "flags",
                    "scoreboard", "inflight"} <= set(warp)
        # the dump is a JSON-safe artifact (CI uploads it verbatim)
        import json

        json.dumps(exc_info.value.to_dict())

    def test_idle_no_wake_raises_promptly(self):
        """Zero activity with no scheduled wake provably repeats forever;
        the fast detector fires long before the stagnation window."""
        ticks = 40
        gpu = self._wedge_gpu(watchdog_idle_ticks=ticks, watchdog_cycles=100_000)
        gpu.sms[0].tick = lambda cycle: 0
        gpu.sms[0].wake_cycle = lambda: None
        with pytest.raises(DeadlockError, match="no wake event") as exc_info:
            gpu.run()
        assert exc_info.value.dump["reason"] == "idle_no_wake"
        assert exc_info.value.dump["cycle"] <= ticks + 2


class TestCheckpointContainer:
    @pytest.fixture
    def paused(self, tmp_path):
        gpu = build_gpu("BASE")
        assert gpu.run_to(10) is None
        path = str(tmp_path / "c.ckpt")
        write_checkpoint(path, gpu)
        return path

    def test_round_trip_reads_back(self, paused):
        assert isinstance(read_checkpoint(paused), GPU)

    def test_truncated_file(self, paused):
        blob = open(paused, "rb").read()
        with open(paused, "wb") as fh:
            fh.write(blob[:20])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(paused)

    def test_wrong_magic(self, paused):
        blob = open(paused, "rb").read()
        with open(paused, "wb") as fh:
            fh.write(b"X" + blob[1:])
        with pytest.raises(CheckpointError, match="magic"):
            read_checkpoint(paused)

    def test_unknown_version(self, paused):
        blob = bytearray(open(paused, "rb").read())
        blob[len(CHECKPOINT_MAGIC) + 3] ^= 0xFF
        with open(paused, "wb") as fh:
            fh.write(bytes(blob))
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(paused)

    def test_payload_bitrot_fails_checksum(self, paused):
        blob = bytearray(open(paused, "rb").read())
        blob[-1] ^= 0x01
        with open(paused, "wb") as fh:
            fh.write(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(paused)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(str(tmp_path / "nope.ckpt"))

    def test_interrupted_write_leaves_no_partial_file(self, tmp_path, monkeypatch):
        """A KeyboardInterrupt mid-write must leave neither the final
        checkpoint nor tmp litter behind."""
        gpu = build_gpu("BASE")
        assert gpu.run_to(10) is None
        path = str(tmp_path / "victim.ckpt")

        def interrupted(src, dst):
            raise KeyboardInterrupt()

        monkeypatch.setattr(os, "replace", interrupted)
        with pytest.raises(KeyboardInterrupt):
            write_checkpoint(path, gpu)
        assert os.listdir(tmp_path) == []


class TestStructureRoundTrips:
    """Isolated pickle round trips of the stateful pipeline structures."""

    def test_ibuffers_keep_sharing_one_ledger(self):
        ledger = ZeroCostLedger()
        bufs = [IBuffer(ledger), IBuffer(ledger)]
        inst = assemble("nop\nexit").instructions[0]
        bufs[0].push(IBufferEntry(inst=inst))
        bufs[0].push(IBufferEntry(inst=inst, skip_token=True))
        bufs[1].push(IBufferEntry(inst=inst, free=True))
        assert ledger.total == 2

        r0, r1 = pickle.loads(pickle.dumps(bufs))
        assert (r0.buffered, r0.zero_cost) == (1, 1)
        assert (r1.buffered, r1.zero_cost) == (0, 1)
        assert r0._ledger is r1._ledger  # aliasing survives the trip
        assert r0._ledger.total == 2
        r0.pop()  # real entry: ledger untouched
        r0.pop()  # skip token: shared ledger decremented
        assert r1._ledger.total == 1

    def test_writeback_queue_order_and_seq_survive(self):
        wbq = WritebackQueue()
        inst = assemble("nop\nexit").instructions[0]
        w = types.SimpleNamespace(inflight=0)
        wbq.schedule(7, w, inst, {"tag": "late"})
        wbq.schedule(3, w, inst, {"tag": "early"})
        wbq.schedule(3, w, inst, {"tag": "early2"})  # same cycle: seq tie-break

        restored = pickle.loads(pickle.dumps(wbq))
        assert len(restored) == 3
        assert restored.next_ready() == 3
        restored.schedule(3, restored.pending()[0][2], inst, {"tag": "early3"})
        tags = []
        for cycle in (3, 7):
            while True:
                item = restored.pop_ready(cycle)
                if item is None:
                    break
                tags.append(item[4]["tag"])
        # ready-cycle order, program order within a cycle — including an
        # entry scheduled after the round trip (the seq counter resumed)
        assert tags == ["early", "early2", "early3", "late"]

    def test_port_budget_mid_cycle(self):
        from repro.core.rename import PortBudget

        budget = PortBudget(4)
        assert budget.acquire(10, 3)
        restored = pickle.loads(pickle.dumps(budget))
        assert not restored.acquire(10, 2)  # 3 of 4 ports already spent
        assert restored.acquire(10, 1)      # the last port is still free
        assert restored.acquire(11, 4)      # a new cycle resets the budget
