"""Unit tests for the coalescer, L1 and shared-memory bank model."""

import numpy as np

from repro.timing import SimStats, small_config
from repro.timing.memory_system import (
    L1Cache,
    MemorySystem,
    coalesce_transactions,
    shared_bank_conflict_cycles,
)

FULL = np.ones(32, dtype=bool)


class TestCoalescing:
    def test_unit_stride_one_line(self):
        addrs = np.arange(32) * 4
        assert coalesce_transactions(addrs, FULL, 128) == [0]

    def test_strided_many_lines(self):
        addrs = np.arange(32) * 128
        assert len(coalesce_transactions(addrs, FULL, 128)) == 32

    def test_mask_filters_lanes(self):
        addrs = np.arange(32) * 128
        mask = np.zeros(32, dtype=bool)
        mask[0] = True
        assert coalesce_transactions(addrs, mask, 128) == [0]

    def test_empty_mask(self):
        assert coalesce_transactions(np.zeros(32), np.zeros(32, dtype=bool), 128) == []


class TestSharedBanks:
    def test_conflict_free(self):
        addrs = np.arange(32) * 4
        assert shared_bank_conflict_cycles(addrs, FULL, 32) == 0

    def test_broadcast_free(self):
        addrs = np.zeros(32, dtype=np.int64)
        assert shared_bank_conflict_cycles(addrs, FULL, 32) == 0

    def test_two_way_conflict(self):
        # Stride-2 word accesses: two distinct words per bank.
        addrs = np.arange(32) * 8
        assert shared_bank_conflict_cycles(addrs, FULL, 32) == 1

    def test_worst_case(self):
        # All lanes hit bank 0 with distinct words.
        addrs = np.arange(32) * 32 * 4
        assert shared_bank_conflict_cycles(addrs, FULL, 32) == 31


class TestL1:
    def test_miss_then_hit(self):
        l1 = L1Cache(lines=16, assoc=4, line_bytes=128)
        assert not l1.access(5, is_write=False)
        assert l1.access(5, is_write=False)

    def test_lru_eviction(self):
        l1 = L1Cache(lines=4, assoc=2, line_bytes=128)  # 2 sets x 2 ways
        s = l1.num_sets
        lines = [0, s, 2 * s]  # all map to set 0
        for ln in lines:
            l1.access(ln, is_write=False)
        assert not l1.access(0, is_write=False)   # evicted
        assert l1.access(2 * s, is_write=False)   # most recent survives

    def test_writes_do_not_allocate(self):
        l1 = L1Cache(lines=16, assoc=4, line_bytes=128)
        l1.access(3, is_write=True)
        assert not l1.access(3, is_write=False)


class TestMemorySystem:
    def test_hit_faster_than_miss(self):
        cfg = small_config(1)
        stats = SimStats()
        ms = MemorySystem(cfg, stats)
        addrs = np.arange(32) * 4
        t_miss = ms.global_access(0, addrs, FULL, is_write=False)
        t_hit = ms.global_access(0, addrs, FULL, is_write=False)
        assert t_miss >= cfg.dram_latency
        assert t_hit == cfg.l1_hit_latency
        assert stats.l1_misses == 1 and stats.l1_hits == 1

    def test_dram_bandwidth_queues(self):
        cfg = small_config(1)
        ms = MemorySystem(cfg, SimStats())
        wide = np.arange(32) * 128  # 32 transactions, all misses
        done = ms.global_access(0, wide, FULL, is_write=False)
        narrow_done = cfg.dram_latency
        assert done > narrow_done  # queueing delay visible

    def test_shared_access_latency(self):
        cfg = small_config(1)
        ms = MemorySystem(cfg, SimStats())
        addrs = np.arange(32) * 4
        assert ms.shared_access(10, addrs, FULL) == 10 + cfg.shared_latency
