"""Unit tests for the pipeline trace viewer."""

import numpy as np

from repro import (
    DarsieFrontend,
    Dim3,
    GlobalMemory,
    LaunchConfig,
    analyze_program,
    assemble,
    small_config,
)
from repro.timing import PipelineTrace
from repro.timing.gpu import GPU

SRC = """
.param tab
.param out
    mul.u32 $a, %tid.x, 4
    add.u32 $a, $a, %param.tab
    ld.global.s32 $v, [$a]
    mul.u32 $o, %tid.y, %ntid.x
    add.u32 $o, $o, %tid.x
    shl.u32 $o, $o, 2
    add.u32 $o, $o, %param.out
    st.global.s32 [$o], $v
    exit
"""


def traced_run(frontend_factory=None):
    prog = assemble(SRC)
    mem = GlobalMemory(1 << 12)
    p = {"tab": mem.alloc_array(np.arange(8)), "out": mem.alloc(256)}
    launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(8, 8))
    gpu = GPU(prog, launch, mem, params=p, config=small_config(1),
              frontend_factory=frontend_factory)
    trace = PipelineTrace()
    gpu.attach_trace(trace)
    result = gpu.run()
    return trace, result


class TestTrace:
    def test_base_run_records_fetch_issue_writeback(self):
        trace, result = traced_run()
        counts = trace.counts()
        assert counts["F"] == result.stats.instructions_fetched
        assert counts["I"] == result.stats.instructions_issued
        assert counts.get("S", 0) == 0

    def test_darsie_run_records_skips_and_blocks(self):
        prog = assemble(SRC)
        analysis = analyze_program(prog)
        trace, result = traced_run(lambda: DarsieFrontend(analysis))
        counts = trace.counts()
        assert counts["S"] == result.stats.instructions_skipped
        assert counts.get("B", 0) == result.stats.sync_wait_cycles

    def test_render_shows_legend_and_rows(self):
        trace, _ = traced_run()
        text = trace.render(max_cycles=50)
        assert "F=fetch" in text
        assert "sm0 tb0 w0" in text

    def test_event_cap(self):
        trace = PipelineTrace(max_events=2)
        for i in range(5):
            trace.record(i, 0, 0, 0, "F", 0)
        assert len(trace.events) == 2 and trace.dropped == 3
        assert "dropped" in trace.render()

    def test_leader_follower_summary(self):
        prog = assemble(SRC)
        analysis = analyze_program(prog)
        trace, result = traced_run(lambda: DarsieFrontend(analysis))
        summary = trace.leader_follower_summary()
        assert "skipped" in summary

    def test_empty_trace(self):
        assert "empty" in PipelineTrace().render()
