"""Unit tests for the GPU top level: dispatch, results, failure modes."""

import numpy as np
import pytest

from repro import Dim3, GlobalMemory, LaunchConfig, assemble, simulate, small_config
from repro.timing.gpu import GPU, SimulationResult

SRC = """
.param out
    mul.u32 $o, %ctaid.x, 4
    add.u32 $o, $o, %param.out
    setp.eq.u32 $p0, %tid.x, 0
@$p0 st.global.s32 [$o], 1
    exit
"""


class TestLaunchValidation:
    def test_warp_size_mismatch_rejected(self):
        prog = assemble(SRC)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(8), warp_size=8)
        with pytest.raises(ValueError, match="warp size"):
            GPU(prog, launch, GlobalMemory(256), params={"out": 0},
                config=small_config(1))

    def test_missing_params_rejected(self):
        prog = assemble(SRC)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(32))
        with pytest.raises(KeyError, match="missing kernel parameter"):
            GPU(prog, launch, GlobalMemory(256), params={}, config=small_config(1))


class TestResult:
    def _run(self, grid=4, sms=2):
        prog = assemble(SRC)
        launch = LaunchConfig(grid_dim=Dim3(grid), block_dim=Dim3(32))
        mem = GlobalMemory(1 << 10)
        p = {"out": mem.alloc(32)}
        res = simulate(prog, launch, mem, params=p, config=small_config(sms))
        return res, mem, p

    def test_all_tbs_complete(self):
        res, mem, p = self._run(grid=7)
        assert mem.read_array(p["out"], 7, dtype=np.int64).tolist() == [1] * 7

    def test_result_fields(self):
        res, _, _ = self._run()
        assert isinstance(res, SimulationResult)
        assert res.frontend_name == "BASE"
        assert res.ipc > 0
        assert len(res.per_sm_stats) == 2
        assert res.stats.cycles == res.cycles

    def test_speedup_over(self):
        a, _, _ = self._run(sms=1)
        b, _, _ = self._run(sms=2)
        assert b.speedup_over(a) >= 1.0  # two SMs never slower

    def test_stats_aggregate_across_sms(self):
        res, _, _ = self._run(grid=6, sms=2)
        total = sum(s.instructions_executed for s in res.per_sm_stats)
        assert res.stats.instructions_executed == total


class TestCLI:
    def test_main_list(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure8" in out and "area" in out

    def test_main_runs_static_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["area"]) == 0
        assert "5.31" in capsys.readouterr().out

    def test_main_rejects_unknown_app(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure8", "--apps", "NOPE"])


class TestSerialisation:
    def test_to_dict_roundtrips_through_json(self):
        import json

        res, _, _ = TestResult()._run()
        d = json.loads(res.to_json())
        assert d["frontend"] == "BASE"
        assert d["cycles"] == res.cycles
        assert d["counters"]["executed"] == res.stats.instructions_executed
        assert isinstance(d["energy_events"], dict)
