"""Behavioural tests of the SM pipeline (fetch / issue / writeback)."""

import numpy as np
import pytest

from repro import Dim3, GlobalMemory, LaunchConfig, assemble, run_functional, simulate, small_config
from repro.timing.gpu import DeadlockError

CFG = small_config(num_sms=1)


def timed(src, block=(32, 1), grid=1, setup=None, config=CFG):
    prog = assemble(src)
    mem = GlobalMemory(1 << 14)
    params = setup(mem) if setup else {}
    launch = LaunchConfig(grid_dim=Dim3(grid), block_dim=Dim3(*block))
    res = simulate(prog, launch, mem, params=params, config=config)
    return res, mem, params


class TestBasicExecution:
    def test_straight_line_completes(self):
        res, _, _ = timed(".param out\nmov.u32 $a, 1\nadd.u32 $a, $a, 2\nexit\n",
                          setup=lambda m: {"out": m.alloc(4)})
        assert res.cycles > 0
        assert res.stats.instructions_executed == 3

    def test_functional_equivalence_with_loop(self):
        src = """
        .param out
            mov.u32 $acc, 0
            mov.u32 $i, 0
        top:
            add.u32 $acc, $acc, %tid.x
            add.u32 $i, $i, 1
            setp.lt.u32 $p0, $i, 6
        @$p0 bra top
            shl.u32 $o, %tid.x, 2
            add.u32 $o, $o, %param.out
            st.global.s32 [$o], $acc
            exit
        """
        prog = assemble(src)
        launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(32))
        mem_a = GlobalMemory(1 << 12)
        pa = {"out": mem_a.alloc(128)}
        run_functional(prog, launch, mem_a, params=pa)
        mem_b = GlobalMemory(1 << 12)
        pb = {"out": mem_b.alloc(128)}
        simulate(prog, launch, mem_b, params=pb, config=CFG)
        assert np.array_equal(mem_a.words, mem_b.words)

    def test_divergent_kernel_timing_matches_functional(self):
        src = """
        .param out
            and.u32 $odd, %tid.x, 1
            setp.eq.u32 $p0, $odd, 1
            mov.u32 $r, 0
        @$p0 bra odd
            add.u32 $r, $r, 100
            bra join
        odd:
            add.u32 $r, $r, 200
        join:
            shl.u32 $o, %tid.x, 2
            add.u32 $o, $o, %param.out
            st.global.s32 [$o], $r
            exit
        """
        res, mem, p = timed(src, setup=lambda m: {"out": m.alloc(128)})
        got = mem.read_array(p["out"], 32, dtype=np.int64)
        assert got.tolist() == [100, 200] * 16


class TestScheduling:
    def test_more_warps_more_throughput(self):
        """Multithreading hides ALU latency: IPC grows with warps."""
        src = """
        .param out
            mov.u32 $a, 1
            mul.u32 $a, $a, 3
            mul.u32 $a, $a, 3
            mul.u32 $a, $a, 3
            mul.u32 $a, $a, 3
            mul.u32 $a, $a, 3
            exit
        """
        res1, _, _ = timed(src, block=(32, 1), setup=lambda m: {"out": m.alloc(4)})
        res8, _, _ = timed(src, block=(32, 8), setup=lambda m: {"out": m.alloc(4)})
        assert res8.ipc > res1.ipc

    def test_fetch_bandwidth_bounds_ipc(self):
        cfg = CFG
        src = ".param out\n" + "\n".join(["add.u32 $a, $a, 1"] * 20) + "\nexit"
        res, _, _ = timed(src, block=(32, 16), setup=lambda m: {"out": m.alloc(4)})
        # One fetch initiation per cycle, fetch_width instructions each.
        assert res.ipc <= cfg.fetch_warps_per_cycle * cfg.fetch_width + 0.01

    def test_barrier_aligns_warps(self):
        src = """
        .param out
        .shared 64
            shl.u32 $a, %tid.x, 2
            mul.u32 $v, %tid.x, 7
            st.shared.s32 [$a], $v
            bar.sync
            add.u32 $n, %tid.x, 1
            and.u32 $n, $n, 31
            shl.u32 $b, $n, 2
            ld.shared.s32 $r, [$b]
            shl.u32 $o, %tid.x, 2
            add.u32 $o, $o, %param.out
            st.global.s32 [$o], $r
            exit
        """
        res, mem, p = timed(src, block=(32, 4), setup=lambda m: {"out": m.alloc(128)})
        got = mem.read_array(p["out"], 32, dtype=np.int64)
        assert got.tolist() == [7 * ((i + 1) % 32) for i in range(32)]


class TestMultiSM:
    def test_tbs_distribute_across_sms(self):
        src = """
        .param out
            mul.u32 $o, %ctaid.x, 4
            add.u32 $o, $o, %param.out
            setp.eq.u32 $p0, %tid.x, 0
        @$p0 st.global.s32 [$o], %ctaid.x
            exit
        """
        cfg = small_config(num_sms=2)
        res, mem, p = timed(src, block=(32, 1), grid=8, config=cfg,
                            setup=lambda m: {"out": m.alloc(32)})
        got = mem.read_array(p["out"], 8, dtype=np.int64)
        assert got.tolist() == list(range(8))
        busy_sms = sum(1 for s in res.per_sm_stats if s.instructions_executed > 0)
        assert busy_sms == 2

    def test_residency_limit_waves(self):
        """More TBs than fit concurrently still all run."""
        src = """
        .param ctr
            setp.eq.u32 $p0, %tid.x, 0
        @$p0 atom.global.add.u32 $old, [%param.ctr], 1
            exit
        """
        cfg = small_config(num_sms=1, max_tbs_per_sm=2, max_warps_per_sm=4)
        res, mem, p = timed(src, block=(32, 1), grid=6, config=cfg,
                            setup=lambda m: {"ctr": m.alloc(1)})
        assert mem.read_array(p["ctr"], 1, dtype=np.int64)[0] == 6


class TestWatchdog:
    def test_max_cycles(self):
        cfg = small_config(num_sms=1, max_cycles=500)
        with pytest.raises(DeadlockError):
            timed("top:\nadd.u32 $i, $i, 1\nbra top\nexit", config=cfg)
