"""The canonical-serialization and override contracts of the config spine."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    DEFAULT_GPU,
    ConfigError,
    ExecPolicy,
    RunConfig,
    apply_overrides,
    config_fields,
    darsie_from_dict,
    darsie_to_dict,
    gpu_from_dict,
    gpu_to_dict,
    parse_overrides,
    valid_override_paths,
)
from repro.core import DarsieConfig
from repro.timing import GPUConfig, small_config
from repro.workloads import ALL_ABBRS


# ---------------------------------------------------------------------------
# Canonical to_dict / from_dict
# ---------------------------------------------------------------------------


class TestCanonicalForm:
    def test_identity_fields_always_present(self):
        d = RunConfig(abbr="MM").to_dict()
        assert d == {"abbr": "MM", "variant": "BASE", "scale": "small"}

    def test_defaults_are_elided(self):
        cfg = RunConfig(abbr="MM", gpu=DEFAULT_GPU, energy="pascal")
        d = cfg.to_dict()
        assert "gpu" not in d and "darsie" not in d and "energy" not in d

    def test_gpu_serializes_as_diff(self):
        cfg = RunConfig(abbr="MM", gpu=small_config(num_sms=1, l1_lines=512))
        assert cfg.to_dict()["gpu"] == {"l1_lines": 512}

    def test_explicit_default_darsie_is_not_none(self):
        """darsie=None (variant defaults) and darsie=DarsieConfig()
        (explicit paper knobs) are different runs and serialize apart."""
        implicit = RunConfig(abbr="MM", variant="DARSIE")
        explicit = RunConfig(abbr="MM", variant="DARSIE", darsie=DarsieConfig())
        assert "darsie" not in implicit.to_dict()
        assert explicit.to_dict()["darsie"] == {}
        assert RunConfig.from_dict(implicit.to_dict()).darsie is None
        assert RunConfig.from_dict(explicit.to_dict()).darsie == DarsieConfig()

    def test_same_run_iff_same_canonical_dict(self):
        a = RunConfig(abbr="MM")                      # default gpu elided
        b = RunConfig(abbr="MM", gpu=small_config(num_sms=1))
        assert a.gpu == b.gpu
        assert a.canonical_json() == b.canonical_json()
        c = RunConfig(abbr="MM", gpu=small_config(num_sms=2))
        assert a.canonical_json() != c.canonical_json()

    def test_canonical_json_is_stable(self):
        cfg = RunConfig(abbr="MM", darsie=DarsieConfig(skip_ports=4))
        assert json.loads(cfg.canonical_json()) == cfg.to_dict()
        assert cfg.canonical_json() == cfg.canonical_json()

    def test_default_policy_is_elided(self):
        assert "policy" not in RunConfig(abbr="MM", policy=ExecPolicy()).to_dict()

    def test_policy_serializes_as_diff_and_round_trips(self):
        cfg = RunConfig(abbr="MM", policy=ExecPolicy(timeout_s=60.0, max_retries=3))
        d = cfg.to_dict()
        assert d["policy"] == {"timeout_s": 60.0, "max_retries": 3}
        assert RunConfig.from_dict(d) == cfg


class TestRejection:
    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigError, match="unknown key.*valid fields"):
            RunConfig.from_dict({"abbr": "MM", "gpus": {}})

    def test_unknown_nested_key_lists_valid_fields(self):
        with pytest.raises(ConfigError, match="l1_lines"):
            RunConfig.from_dict({"abbr": "MM", "gpu": {"l1_linez": 4}})

    def test_missing_abbr(self):
        with pytest.raises(ConfigError, match="abbr"):
            RunConfig.from_dict({"variant": "BASE"})

    def test_type_mismatch_int(self):
        with pytest.raises(ConfigError, match="expected int"):
            RunConfig.from_dict({"abbr": "MM", "gpu": {"l1_lines": "512"}})

    def test_type_mismatch_bool_is_not_int(self):
        with pytest.raises(ConfigError, match="expected int"):
            RunConfig.from_dict({"abbr": "MM", "gpu": {"l1_lines": True}})

    def test_type_mismatch_int_is_not_bool(self):
        with pytest.raises(ConfigError, match="expected bool"):
            RunConfig.from_dict({"abbr": "MM", "darsie": {"ignore_store": 1}})

    def test_non_mapping(self):
        with pytest.raises(ConfigError, match="expected a mapping"):
            RunConfig.from_dict({"abbr": "MM", "gpu": [1, 2]})


# ---------------------------------------------------------------------------
# Property tests: round trip over randomized configs
# ---------------------------------------------------------------------------

_GPU_INT_FIELDS = sorted(
    name for name, typ in config_fields(GPUConfig).items() if typ is int
)
_DARSIE_FIELDS = config_fields(DarsieConfig)


def _gpu_strategy():
    return st.dictionaries(
        st.sampled_from(_GPU_INT_FIELDS), st.integers(1, 4096), max_size=4
    ).map(lambda diff: gpu_from_dict(diff))


def _darsie_strategy():
    return st.dictionaries(
        st.sampled_from(sorted(_DARSIE_FIELDS)),
        st.integers(1, 64),
        max_size=3,
    ).map(
        lambda d: darsie_from_dict(
            {k: (v % 2 == 0) if _DARSIE_FIELDS[k] is bool else v for k, v in d.items()}
        )
    )


_RUN_CONFIGS = st.builds(
    RunConfig,
    abbr=st.sampled_from(ALL_ABBRS),
    variant=st.sampled_from(("BASE", "UV", "DARSIE", "DARSIE-IGNORE-STORE")),
    scale=st.sampled_from(("tiny", "small", "medium")),
    gpu=_gpu_strategy(),
    darsie=st.one_of(st.none(), _darsie_strategy()),
    energy=st.just("pascal"),
)


@settings(max_examples=200, deadline=None)
@given(cfg=_RUN_CONFIGS)
def test_round_trip_is_identity(cfg):
    assert RunConfig.from_dict(cfg.to_dict()) == cfg


@settings(max_examples=200, deadline=None)
@given(cfg=_RUN_CONFIGS, other=_RUN_CONFIGS)
def test_canonical_dict_equality_is_run_identity(cfg, other):
    """Two configs name the same run iff their canonical JSON agrees."""
    assert (cfg.canonical_json() == other.canonical_json()) == (cfg == other)


@settings(max_examples=100, deadline=None)
@given(gpu=_gpu_strategy())
def test_gpu_diff_round_trip(gpu):
    assert gpu_from_dict(gpu_to_dict(gpu)) == gpu


@settings(max_examples=100, deadline=None)
@given(darsie=_darsie_strategy())
def test_darsie_diff_round_trip(darsie):
    assert darsie_from_dict(darsie_to_dict(darsie)) == darsie


# ---------------------------------------------------------------------------
# Dotted-path overrides
# ---------------------------------------------------------------------------


class TestOverrides:
    BASE = RunConfig(abbr="MM")

    def test_parse_pairs(self):
        assert parse_overrides(["gpu.l1_lines=512", "scale=tiny"]) == {
            "gpu.l1_lines": "512",
            "scale": "tiny",
        }

    def test_parse_rejects_malformed(self):
        with pytest.raises(ConfigError, match="PATH=VALUE"):
            parse_overrides(["gpu.l1_lines"])
        with pytest.raises(ConfigError, match="PATH=VALUE"):
            parse_overrides(["=512"])

    def test_gpu_int_override_from_string(self):
        cfg = apply_overrides(self.BASE, {"gpu.l1_lines": "512"})
        assert cfg.gpu.l1_lines == 512
        assert self.BASE.gpu.l1_lines != 512  # original untouched

    def test_int_override_accepts_hex(self):
        cfg = apply_overrides(self.BASE, {"gpu.l1_lines": "0x100"})
        assert cfg.gpu.l1_lines == 256

    def test_optional_int_override_from_string(self):
        cfg = apply_overrides(self.BASE, {"gpu.rename_ports": "2"})
        assert cfg.gpu.rename_ports == 2

    @pytest.mark.parametrize("text", ["none", "None", "NULL", " none "])
    def test_optional_int_override_back_to_ideal(self, text):
        limited = apply_overrides(self.BASE, {"gpu.version_table_ports": "4"})
        assert limited.gpu.version_table_ports == 4
        ideal = apply_overrides(limited, {"gpu.version_table_ports": text})
        assert ideal.gpu.version_table_ports is None

    @pytest.mark.parametrize("text,expected", [
        ("true", True), ("1", True), ("yes", True), ("ON", True),
        ("false", False), ("0", False), ("no", False), ("off", False),
    ])
    def test_bool_override_spellings(self, text, expected):
        cfg = apply_overrides(self.BASE, {"darsie.sync_on_write": text})
        assert cfg.darsie.sync_on_write is expected

    def test_bool_override_rejects_garbage(self):
        with pytest.raises(ConfigError, match="as bool"):
            apply_overrides(self.BASE, {"darsie.sync_on_write": "maybe"})

    def test_int_override_rejects_garbage(self):
        with pytest.raises(ConfigError, match="as int"):
            apply_overrides(self.BASE, {"gpu.l1_lines": "many"})

    def test_darsie_override_starts_from_paper_defaults(self):
        cfg = apply_overrides(self.BASE, {"darsie.skip_ports": 4})
        assert cfg.darsie == DarsieConfig(skip_ports=4)

    def test_darsie_override_layers_on_existing_knobs(self):
        base = RunConfig(abbr="MM", darsie=DarsieConfig(ignore_store=True))
        cfg = apply_overrides(base, {"darsie.skip_ports": 4})
        assert cfg.darsie == DarsieConfig(ignore_store=True, skip_ports=4)

    def test_top_level_override(self):
        cfg = apply_overrides(self.BASE, {"scale": "tiny", "variant": "UV"})
        assert (cfg.scale, cfg.variant) == ("tiny", "UV")

    def test_already_typed_values_pass_through(self):
        cfg = apply_overrides(self.BASE, {"gpu.l1_lines": 512,
                                          "darsie.no_cf_sync": True})
        assert cfg.gpu.l1_lines == 512 and cfg.darsie.no_cf_sync is True

    def test_bad_path_lists_valid_fields(self):
        with pytest.raises(ConfigError, match="l1_lines"):
            apply_overrides(self.BASE, {"gpu.l1_linez": 4})
        with pytest.raises(ConfigError, match="valid paths"):
            apply_overrides(self.BASE, {"cache.lines": 4})
        with pytest.raises(ConfigError, match="valid paths"):
            apply_overrides(self.BASE, {"gpu": 4})  # root without a leaf

    def test_valid_override_paths_cover_all_fields(self):
        paths = valid_override_paths()
        assert "gpu.l1_lines" in paths
        assert "darsie.sync_on_write" in paths
        assert "scale" in paths and "variant" in paths
        for name in config_fields(GPUConfig):
            assert f"gpu.{name}" in paths
        for name in config_fields(ExecPolicy):
            assert f"policy.{name}" in paths

    def test_policy_override_coerces_types(self):
        cfg = apply_overrides(self.BASE, {"policy.max_retries": "3",
                                          "policy.timeout_s": "60"})
        assert cfg.policy.max_retries == 3
        assert cfg.policy.timeout_s == 60.0
        assert self.BASE.policy == ExecPolicy()  # original untouched

    def test_policy_override_rejects_bad_field(self):
        with pytest.raises(ConfigError, match="max_retries"):
            apply_overrides(self.BASE, {"policy.max_retriez": 3})

    @settings(max_examples=100, deadline=None)
    @given(value=st.integers(1, 10000))
    def test_override_then_round_trip(self, value):
        cfg = apply_overrides(RunConfig(abbr="MM"), {"gpu.l1_lines": str(value)})
        assert RunConfig.from_dict(cfg.to_dict()) == cfg
