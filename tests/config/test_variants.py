"""The variant registry: legacy views, tag queries, one-call extension."""

import pytest

from repro.core import DarsieConfig, DarsieFrontend
from repro.variants import REGISTRY, Variant, VariantRegistry


class TestRegistryBasics:
    def test_paper_variants_registered_in_legend_order(self):
        assert REGISTRY.names() == (
            "BASE", "UV", "DAC-IDEAL", "DARSIE", "DARSIE-IGNORE-STORE",
            "DARSIE-NO-CF-SYNC", "DARSIE-SYNC-ON-WRITE", "SILICON-SYNC",
            "DUAL-ISSUE", "DARM", "DARM-IDEAL",
        )

    def test_get_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="unknown configuration"):
            REGISTRY.get("DARSIE-TURBO")

    def test_double_registration_rejected(self):
        reg = VariantRegistry()
        reg.register(Variant(name="X", make_frontend=lambda i, d: None))
        with pytest.raises(ValueError, match="already registered"):
            reg.register(Variant(name="X", make_frontend=lambda i, d: None))
        reg.register(Variant(name="X", make_frontend=lambda i, d: None),
                     replace=True)

    def test_contains_iter_len(self):
        assert "DARSIE" in REGISTRY and "NOPE" not in REGISTRY
        assert len(REGISTRY) == len(REGISTRY.names())
        assert [v.name for v in REGISTRY] == list(REGISTRY.names())


class TestLegacyViewsAreTagQueries:
    """The historical name tuples are live registry queries, not copies."""

    def test_fig8_configs(self):
        from repro.harness import experiments

        assert experiments.FIG8_CONFIGS == (
            "BASE", "UV", "DAC-IDEAL", "DARSIE", "DARSIE-IGNORE-STORE"
        )
        assert experiments.FIG8_CONFIGS == REGISTRY.by_tag("fig8")

    def test_reduction_configs(self):
        from repro.harness import experiments

        assert experiments.REDUCTION_CONFIGS == ("UV", "DAC-IDEAL", "DARSIE")

    def test_fig12_configs(self):
        from repro.harness import experiments

        assert experiments.FIG12_CONFIGS == (
            "DARSIE", "DARSIE-NO-CF-SYNC", "SILICON-SYNC"
        )

    def test_config_names_everywhere(self):
        import repro.harness
        import repro.harness.runner

        assert repro.harness.CONFIG_NAMES == REGISTRY.names()
        assert repro.harness.runner.CONFIG_NAMES == REGISTRY.names()

    def test_bench_configs(self):
        from repro.harness import bench

        assert bench.BENCH_CONFIGS == (
            "BASE", "UV", "DAC-IDEAL", "DARSIE", "DARSIE-IGNORE-STORE"
        )

    def test_no_orphans(self):
        """Every registered variant is selected by at least one tag, and
        every tag the experiment layer queries selects at least one
        variant — nothing is registered into the void or queried from it."""
        queried_tags = {"fig8", "reduction", "fig12", "golden", "bench",
                        "baseline", "ablation", "technique"}
        for variant in REGISTRY:
            assert variant.tags, f"{variant.name} has no tags"
            assert set(variant.tags) & queried_tags, (
                f"{variant.name} tagged {variant.tags}, none of which "
                "any experiment queries"
            )
        for tag in queried_tags:
            assert REGISTRY.by_tag(tag), f"tag {tag!r} selects no variant"


class TestDualIssueReachable:
    """DUAL-ISSUE rides the same rails as every other registered
    variant: runner, CLI, sweep views and the bench harness all resolve
    it straight from the registry — no special-case wiring anywhere."""

    def test_runner_resolves_dual_issue(self):
        from repro.harness.runner import WorkloadRunner
        from repro.workloads import build_workload

        runner = WorkloadRunner(build_workload("MM", "tiny"))
        base = runner.run("BASE")
        dual = runner.run("DUAL-ISSUE")
        # same work, different schedule: the second issue slot is real
        assert dual.stats.instructions_executed == base.stats.instructions_executed
        assert dual.cycles != base.cycles

    def test_cli_runs_dual_issue(self, capsys):
        from repro.__main__ import main

        assert main(["run", "MM", "--scale", "tiny", "--config", "DUAL-ISSUE",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "DUAL-ISSUE" in out and "cycles" in out

    def test_bench_harness_accepts_dual_issue(self):
        from repro.harness.bench import run_bench

        report = run_bench(scale="tiny", abbrs=("FW",),
                           configs=("DUAL-ISSUE",), repeats=1)
        assert ["DUAL-ISSUE"] == report.variants()

    def test_live_views_see_dual_issue(self):
        import repro.harness

        assert "DUAL-ISSUE" in repro.harness.CONFIG_NAMES
        assert "DUAL-ISSUE" in REGISTRY.by_tag("ablation")


class TestOneRegistrationExtension:
    """A new variant is one register() call: the runner, the sweeps and
    the CLI all pick it up with no other edits."""

    NAME = "DARSIE-TEST-PORTS16"

    @pytest.fixture
    def ports16(self):
        def make_frontend(inputs, darsie):
            analysis = inputs.analysis
            return lambda: DarsieFrontend(analysis, darsie)

        variant = REGISTRY.register(Variant(
            name=self.NAME,
            make_frontend=make_frontend,
            requires=("analysis",),
            tags=("test",),
            darsie_defaults=DarsieConfig(skip_ports=16),
            description="test-only ablation point",
        ))
        yield variant
        REGISTRY.unregister(self.NAME)

    def test_runner_resolves_new_variant(self, ports16):
        from repro.harness.runner import WorkloadRunner
        from repro.workloads import build_workload

        runner = WorkloadRunner(build_workload("MM", "tiny"))
        result = runner.run(self.NAME)
        # the frontend really carried the registered knob preset
        explicit = runner.run("DARSIE", DarsieConfig(skip_ports=16))
        assert result.cycles == explicit.cycles
        assert result.stats == explicit.stats

    def test_cli_runs_new_variant(self, ports16, capsys):
        from repro.__main__ import main

        assert main(["run", "MM", "--scale", "tiny", "--config", self.NAME,
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert self.NAME in out and "cycles" in out

    def test_live_views_see_new_variant(self, ports16):
        import repro.harness

        assert self.NAME in repro.harness.CONFIG_NAMES
        assert REGISTRY.by_tag("test") == (self.NAME,)
