"""Property-style tests for the marking lattice and skip-eligibility.

Satellite checks for the static-analysis layer: the lattice algebra the
fixpoint iteration relies on, exhaustively over all 4 elements, and the
paper's invariant that only value-producing instructions are ever
eligible for the PC skip table — for every registered kernel, under both
static and launch-promoted markings.
"""

import itertools

import pytest

from repro import ALL_ABBRS, Marking, analyze_program, build_workload, promote_markings

ALL = list(Marking)


class TestMeetIsASemilattice:
    @pytest.mark.parametrize("a,b", list(itertools.product(ALL, ALL)))
    def test_commutative(self, a, b):
        assert Marking.meet(a, b) is Marking.meet(b, a)

    @pytest.mark.parametrize("a,b,c", list(itertools.product(ALL, ALL, ALL)))
    def test_associative(self, a, b, c):
        assert Marking.meet(Marking.meet(a, b), c) is Marking.meet(a, Marking.meet(b, c))

    @pytest.mark.parametrize("a", ALL)
    def test_idempotent(self, a):
        assert Marking.meet(a, a) is a

    @pytest.mark.parametrize("a,b", list(itertools.product(ALL, ALL)))
    def test_lower_bound(self, a, b):
        m = Marking.meet(a, b)
        assert m <= a and m <= b

    @pytest.mark.parametrize("a,b,c", list(itertools.product(ALL, ALL, ALL)))
    def test_monotone(self, a, b, c):
        if b <= c:
            assert Marking.meet(a, b) <= Marking.meet(a, c)

    def test_top_and_bottom(self):
        for a in ALL:
            assert Marking.meet(a, Marking.REDUNDANT) is a   # top is identity
            assert Marking.meet(a, Marking.VECTOR) is Marking.VECTOR  # bottom absorbs


class TestSkippablePCsInvariant:
    """Stores, branches, barriers, atomics and exits never skip."""

    @pytest.mark.parametrize("abbr", ALL_ABBRS)
    def test_static_and_promoted(self, abbr):
        workload = build_workload(abbr, "tiny")
        analysis = analyze_program(workload.program)
        by_pc = {inst.pc: inst for inst in workload.program.instructions}
        promoted = promote_markings(analysis.instruction_markings, workload.launch)
        for markings in (analysis.instruction_markings, promoted):
            for pc in analysis.skippable_pcs(markings):
                inst = by_pc[pc]
                assert not inst.is_store, f"{abbr}: store at {pc:#x} skippable"
                assert not inst.is_branch, f"{abbr}: branch at {pc:#x} skippable"
                assert not inst.is_barrier, f"{abbr}: barrier at {pc:#x} skippable"
                assert not inst.is_atomic, f"{abbr}: atomic at {pc:#x} skippable"
                assert not inst.is_exit, f"{abbr}: exit at {pc:#x} skippable"
                assert (
                    inst.dest_register() is not None
                    or inst.dest_predicate() is not None
                ), f"{abbr}: non-value-producer at {pc:#x} skippable"
