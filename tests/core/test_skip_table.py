"""Unit tests for the PC Skip Table (Section 4.3.2)."""

import pytest

from repro.core.skip_table import PCSkipTable


class TestBasicOperation:
    def test_insert_and_lookup(self):
        t = PCSkipTable(capacity=4)
        e = t.insert(0x40, leader_warp=2, is_load=False)
        assert e is not None and e.leader_warp == 2
        assert t.lookup(0x40) is e
        assert t.lookup(0x48) is None

    def test_duplicate_insert_rejected(self):
        t = PCSkipTable(capacity=4)
        t.insert(0x40, leader_warp=0, is_load=False)
        with pytest.raises(ValueError, match="duplicate"):
            t.insert(0x40, leader_warp=1, is_load=False)

    def test_remove(self):
        t = PCSkipTable(capacity=4)
        t.insert(0x40, leader_warp=0, is_load=False)
        assert t.remove(0x40) is not None
        assert t.lookup(0x40) is None
        assert t.remove(0x40) is None

    def test_capacity_enforced(self):
        t = PCSkipTable(capacity=2)
        t.insert(0x00, leader_warp=0, is_load=False)
        t.insert(0x08, leader_warp=0, is_load=False)
        assert t.full
        assert t.insert(0x10, leader_warp=0, is_load=False) is None


class TestEviction:
    def test_victim_is_lru_with_leaderwb(self):
        t = PCSkipTable(capacity=2)
        a = t.insert(0x00, leader_warp=0, is_load=False, now=1)
        b = t.insert(0x08, leader_warp=0, is_load=False, now=2)
        a.leader_wb = True
        b.leader_wb = True
        t.lookup(0x00, now=9)  # refresh a
        victim = t.eviction_victim()
        assert victim is b

    def test_no_victim_when_waiting_or_pending(self):
        t = PCSkipTable(capacity=2)
        a = t.insert(0x00, leader_warp=0, is_load=False)
        t.insert(0x08, leader_warp=0, is_load=False)
        a.leader_wb = True
        a.warps_waiting.add(3)   # synchronizing: not evictable
        # b: leader not written back yet: not evictable
        assert t.eviction_victim() is None


class TestLoadInvalidation:
    def test_invalidate_loads_only(self):
        """Section 4.4: stores remove load PCs from the skip table."""
        t = PCSkipTable(capacity=4)
        t.insert(0x00, leader_warp=0, is_load=True)
        t.insert(0x08, leader_warp=0, is_load=False)
        t.insert(0x10, leader_warp=1, is_load=True)
        removed = t.invalidate_loads()
        assert {e.pc for e in removed} == {0x00, 0x10}
        assert t.lookup(0x08) is not None
        assert t.load_invalidations == 2
