"""Tests for the 3D-TB extension (Section 2's 3D observation).

The paper notes its observations "also apply to 3D TBs, where both the
tid.x and tid.y registers can be conditionally redundant" but limits its
evaluation to 2D.  This repository implements the extension behind
``analyze_program(..., enable_3d=True)``; these tests verify both the
static lattice and end-to-end skipping on a genuinely 3D kernel.
"""

import numpy as np

from repro import (
    DarsieFrontend,
    Dim3,
    GlobalMemory,
    LaunchConfig,
    Marking,
    analyze_program,
    assemble,
    promote_markings,
    run_functional,
    simulate,
    small_config,
)
from repro.core.promotion import promotion_applies_y
from repro.simt.grid import tidy_is_tb_redundant

CFG = small_config(num_sms=1)

KERNEL_3D = """
.param tab
.param out
    # tid.y-derived chain: redundant only under the 3D (x*y) criterion
    mul.u32        $row, %tid.y, %ntid.x
    add.u32        $idx, $row, %tid.x
    shl.u32        $a, $idx, 2
    add.u32        $a, $a, %param.tab
    ld.global.s32  $v, [$a]
    # per-thread output address (z makes it vector)
    mul.u32        $o, %tid.z, %ntid.y
    add.u32        $o, $o, %tid.y
    mul.u32        $o, $o, %ntid.x
    add.u32        $o, $o, %tid.x
    shl.u32        $o, $o, 2
    add.u32        $o, $o, %param.out
    st.global.s32  [$o], $v
    exit
"""


class TestCriterion:
    def test_tidy_criterion(self):
        assert tidy_is_tb_redundant(Dim3(8, 4, 4))       # x*y = 32
        assert tidy_is_tb_redundant(Dim3(4, 4, 2))       # x*y = 16
        assert not tidy_is_tb_redundant(Dim3(8, 8, 2))   # x*y = 64 > 32
        assert not tidy_is_tb_redundant(Dim3(8, 4, 1))   # not 3D
        assert not tidy_is_tb_redundant(Dim3(6, 4, 2))   # x*y not pow2

    def test_y_criterion_implies_x_criterion(self):
        """The lattice's linearity requirement."""
        from repro.simt.grid import tidx_is_tb_redundant

        for x in (1, 2, 4, 8, 16, 32):
            for y in (1, 2, 4, 8):
                for z in (2, 4):
                    d = Dim3(x, y, z)
                    if tidy_is_tb_redundant(d):
                        assert tidx_is_tb_redundant(d), d


class TestStaticLattice:
    def test_tidy_seeds_conditional_y_when_enabled(self):
        prog = assemble("mov.u32 $a, %tid.y\nexit")
        off = analyze_program(prog)
        on = analyze_program(prog, enable_3d=True)
        assert off.instruction_markings[0] is Marking.VECTOR
        assert on.instruction_markings[0] is Marking.CONDITIONAL_Y

    def test_meet_of_x_and_y_chains(self):
        prog = assemble("add.u32 $a, %tid.x, %tid.y\nexit")
        on = analyze_program(prog, enable_3d=True)
        assert on.instruction_markings[0] is Marking.CONDITIONAL_Y

    def test_promotion_resolution(self):
        marks = {0: Marking.CONDITIONAL, 8: Marking.CONDITIONAL_Y}
        launch_3d = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(8, 4, 4))
        out = promote_markings(marks, launch_3d)
        assert out[0] is Marking.REDUNDANT
        assert out[8] is Marking.REDUNDANT
        launch_2d = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(16, 16))
        out = promote_markings(marks, launch_2d)
        assert out[0] is Marking.REDUNDANT   # x criterion holds
        assert out[8] is Marking.VECTOR      # y criterion needs 3D

    def test_default_behaviour_unchanged(self):
        """With enable_3d off (the paper's configuration), 2D kernels
        mark exactly as before."""
        prog = assemble("mul.u32 $a, %tid.y, %ntid.x\nexit")
        assert analyze_program(prog).instruction_markings[0] is Marking.VECTOR


class TestEndToEnd:
    def _run(self, launch):
        prog = assemble(KERNEL_3D)
        analysis = analyze_program(prog, enable_3d=True)
        n = launch.block_dim.count
        data = np.arange(1000, 1000 + launch.block_dim.x * launch.block_dim.y)

        mem_f = GlobalMemory(1 << 14)
        pf = {"tab": mem_f.alloc_array(data), "out": mem_f.alloc(n)}
        run_functional(prog, launch, mem_f, params=pf)

        mem_d = GlobalMemory(1 << 14)
        pd = {"tab": mem_d.alloc_array(data), "out": mem_d.alloc(n)}
        res = simulate(prog, launch, mem_d, params=pd, config=CFG,
                       frontend_factory=lambda: DarsieFrontend(analysis))
        return res, np.array_equal(mem_f.words, mem_d.words)

    def test_3d_launch_skips_tidy_chain(self):
        launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(8, 4, 8))
        assert promotion_applies_y(launch)
        res, ok = self._run(launch)
        assert ok
        # The tid.y-derived load chain is skipped, including the load.
        assert res.stats.skipped_by_class.get("unstructured", 0) > 0
        assert res.stats.instructions_skipped > 0

    def test_wide_3d_launch_does_not_skip_tidy(self):
        launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(8, 8, 4))  # x*y=64
        assert not promotion_applies_y(launch)
        res, ok = self._run(launch)
        assert ok
        assert res.stats.instructions_skipped == 0  # whole chain is tid.y-based
