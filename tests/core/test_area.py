"""Unit tests for the Section 6.3 area model."""

from repro.core.area import AreaModel, paper_area_model


class TestPaperNumbers:
    """Every number in Section 6.3, verbatim."""

    def test_skip_entry_is_82_bits(self):
        m = paper_area_model()
        assert m.skip_entry_bits == 48 + 32 + 1 + 1 == 82

    def test_skip_table(self):
        m = paper_area_model()
        assert m.skip_table_entries == 256
        assert m.skip_table_bits == 20992
        assert m.skip_table_bytes == 2624

    def test_majority_mask(self):
        m = paper_area_model()
        assert m.majority_mask_bits == 1024
        assert m.majority_mask_bytes == 128

    def test_rename_tables(self):
        m = paper_area_model()
        assert m.rename_entry_bits == 8 + 8 + 5 == 21
        assert m.rename_table_bits == 21 * 32 * 32 == 21504
        assert m.rename_table_bytes == 2688

    def test_total(self):
        m = paper_area_model()
        assert m.total_bytes == 2624 + 128 + 2688
        assert round(m.total_kb, 2) == 5.31
        assert 0.020 <= m.fraction_of_register_file <= 0.022

    def test_report_mentions_totals(self):
        text = paper_area_model().report()
        assert "5.31" in text and "82 bits" in text


class TestParameterisation:
    def test_halving_entries_halves_table(self):
        m = AreaModel(skip_entries_per_tb=4)
        assert m.skip_table_bytes == 2624 // 2

    def test_register_file_fraction_scales(self):
        m = AreaModel(register_file_bytes=2 * 2048 * 32 * 4)
        assert abs(m.fraction_of_register_file - 0.0105) < 0.001
