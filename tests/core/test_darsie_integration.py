"""Integration tests: the DARSIE frontend on the timing model.

Each test builds a small kernel that provokes one mechanism — leader
election, load invalidation, branch synchronization, warp-level
divergence — and checks both functional correctness (against a plain
functional run) and the expected microarchitectural statistics.
"""

import numpy as np

from repro import (
    DarsieConfig,
    DarsieFrontend,
    Dim3,
    GlobalMemory,
    LaunchConfig,
    analyze_program,
    assemble,
    run_functional,
    simulate,
    small_config,
)

CFG = small_config(num_sms=1)


def run_pair(src, launch, setup, darsie_config=None, out_words=256):
    """Run BASE functionally and DARSIE on the timing model; return
    (functional memory, darsie memory, darsie result, params)."""
    prog = assemble(src)
    analysis = analyze_program(prog)

    mem_f = GlobalMemory(1 << 14)
    params = setup(mem_f)
    run_functional(prog, launch, mem_f, params=params)

    mem_d = GlobalMemory(1 << 14)
    params_d = setup(mem_d)
    res = simulate(
        prog, launch, mem_d, params=params_d, config=CFG,
        frontend_factory=lambda: DarsieFrontend(analysis, darsie_config or DarsieConfig()),
    )
    return mem_f, mem_d, res, params_d


REDUNDANT_CHAIN = """
.param tab
.param out
    mul.u32        $a, %tid.x, 4
    add.u32        $a, $a, %param.tab
    ld.global.s32  $v, [$a]
    mul.u32        $o, %tid.y, %ntid.x
    add.u32        $o, $o, %tid.x
    shl.u32        $o, $o, 2
    add.u32        $o, $o, %param.out
    st.global.s32  [$o], $v
    exit
"""


def chain_setup(mem):
    tab = mem.alloc_array(np.arange(100, 132))
    out = mem.alloc(512)
    return {"tab": tab, "out": out}


class TestSkipping:
    def test_2d_launch_skips_and_matches_oracle(self):
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(16, 16))
        mem_f, mem_d, res, p = run_pair(REDUNDANT_CHAIN, launch, chain_setup)
        assert np.array_equal(mem_f.words, mem_d.words)
        assert res.stats.instructions_skipped > 0
        assert res.stats.leaders_elected > 0
        assert res.stats.follower_skips == res.stats.instructions_skipped

    def test_1d_launch_skips_only_uniform(self):
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(256))
        mem_f, mem_d, res, p = run_pair(REDUNDANT_CHAIN, launch, chain_setup)
        assert np.array_equal(mem_f.words, mem_d.words)
        # The tid.x chain is demoted in 1D: nothing skippable remains
        # in this kernel (no DR register producers).
        assert res.stats.skipped_by_class.get("affine", 0) == 0
        assert res.stats.skipped_by_class.get("unstructured", 0) == 0

    def test_skipped_loads_classified_unstructured(self):
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(16, 16))
        _, _, res, _ = run_pair(REDUNDANT_CHAIN, launch, chain_setup)
        assert res.stats.skipped_by_class.get("unstructured", 0) > 0


LOAD_AFTER_STORE = """
.param buf
.param out
    # Redundant load address (tid.x based).
    mul.u32        $a, %tid.x, 4
    add.u32        $a, $a, %param.buf
    mov.u32        $i, 0
loop:
    ld.global.s32  $v, [$a]
    # Every warp stores its warp id to its own slot each iteration;
    # the store must invalidate the skipped load.
    mul.u32        $so, %warpid, 4
    add.u32        $so, $so, %param.buf
    st.global.s32  [$so], $i
    add.u32        $i, $i, 1
    setp.lt.u32    $p0, $i, 4
@$p0 bra loop
    mul.u32        $o, %tid.y, %ntid.x
    add.u32        $o, $o, %tid.x
    shl.u32        $o, $o, 2
    add.u32        $o, $o, %param.out
    st.global.s32  [$o], $v
    exit
"""


def las_setup(mem):
    buf = mem.alloc_array(np.arange(50, 82))
    out = mem.alloc(512)
    return {"buf": buf, "out": out}


class TestLoadInvalidation:
    def test_stores_invalidate_load_entries(self):
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(16, 16))
        mem_f, mem_d, res, p = run_pair(LOAD_AFTER_STORE, launch, las_setup)
        assert res.stats.load_entries_invalidated > 0

    def test_ignore_store_keeps_entries(self):
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(16, 16))
        _, _, res, _ = run_pair(
            LOAD_AFTER_STORE, launch, las_setup,
            darsie_config=DarsieConfig(ignore_store=True),
        )
        assert res.stats.load_entries_invalidated == 0


ATOMIC_KERNEL = """
.param ctr
.param tab
.param out
    mul.u32        $a, %tid.x, 4
    add.u32        $a, $a, %param.tab
    ld.global.s32  $v, [$a]
    atom.global.add.u32 $old, [%param.ctr], 1
    ld.global.s32  $w, [$a]
    mul.u32        $o, %tid.y, %ntid.x
    add.u32        $o, $o, %tid.x
    shl.u32        $o, $o, 2
    add.u32        $o, $o, %param.out
    add.u32        $s, $v, $w
    st.global.s32  [$o], $s
    exit
"""


class TestGlobalCommunication:
    def test_atomics_disable_global_load_skipping(self):
        def setup(mem):
            ctr = mem.alloc(1)
            tab = mem.alloc_array(np.arange(16))
            out = mem.alloc(512)
            return {"ctr": ctr, "tab": tab, "out": out}

        launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(16, 16))
        prog = assemble(ATOMIC_KERNEL)
        analysis = analyze_program(prog)
        mem = GlobalMemory(1 << 14)
        params = setup(mem)
        frontends = []

        def factory():
            f = DarsieFrontend(analysis)
            frontends.append(f)
            return f

        simulate(prog, launch, mem, params=params, config=CFG,
                 frontend_factory=factory)
        assert frontends[0]._global_loads_disabled
        # Counter must still be exact: atomics are never skipped.
        assert mem.read_array(params["ctr"], 1, dtype=np.int64)[0] == 2 * 256


DIVERGE_BY_WARP = """
.param out
    # warps 0..1 take one path, warps 2+ another (warp-level divergence)
    setp.lt.u32    $p0, %warpid, 2
    mov.u32        $r, 0
@$p0 bra low
    add.u32        $r, $r, 111
    bra join
low:
    add.u32        $r, $r, 222
join:
    mul.u32        $b, %ctaid.x, %ntid.x
    mul.u32        $b, $b, %ntid.y
    mul.u32        $o, %tid.y, %ntid.x
    add.u32        $o, $o, %tid.x
    add.u32        $o, $o, $b
    shl.u32        $o, $o, 2
    add.u32        $o, $o, %param.out
    st.global.s32  [$o], $r
    exit
"""


class TestMajorityPath:
    def test_warp_level_divergence_drops_minority(self):
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(16, 16))

        def setup(mem):
            return {"out": mem.alloc(512)}

        mem_f, mem_d, res, p = run_pair(DIVERGE_BY_WARP, launch, setup)
        assert np.array_equal(mem_f.words, mem_d.words)
        # Two warps took the minority (taken) path and left the majority.
        assert res.stats.warps_left_majority == 2
        assert res.stats.branch_barriers >= 1


SYNC_RESET = """
.param out
    mul.u32        $a, %tid.x, 3
    bar.sync
    add.u32        $a, $a, 5
    mul.u32        $o, %tid.y, %ntid.x
    add.u32        $o, $o, %tid.x
    shl.u32        $o, $o, 2
    add.u32        $o, $o, %param.out
    st.global.s32  [$o], $a
    exit
"""


class TestSyncthreadsReset:
    def test_values_survive_reset(self):
        """bar.sync resets the rename tables; renamed values must be
        materialised into private registers first."""
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(16, 16))

        def setup(mem):
            return {"out": mem.alloc(512)}

        mem_f, mem_d, res, p = run_pair(SYNC_RESET, launch, setup)
        expected = np.array([(i % 16) * 3 + 5 for i in range(256)])
        got = mem_d.read_array(p["out"], 256, dtype=np.int64)
        assert np.array_equal(got, expected)


class TestVariantFlags:
    def test_frontend_names(self):
        analysis = analyze_program(assemble("exit"))
        assert DarsieFrontend(analysis).name == "DARSIE"
        assert DarsieFrontend(analysis, DarsieConfig(ignore_store=True)).name == "DARSIE-IGNORE-STORE"
        assert DarsieFrontend(analysis, DarsieConfig(no_cf_sync=True)).name == "DARSIE-NO-CF-SYNC"
