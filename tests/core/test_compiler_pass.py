"""Unit tests for the static DR/CR/V compiler pass (Section 4.2)."""


from repro import Marking, analyze_program, assemble


def markings_of(src):
    prog = assemble(src)
    analysis = analyze_program(prog)
    return prog, analysis


class TestSeeds:
    def test_intrinsic_seeds(self):
        prog, a = markings_of("""
            mov.u32 $a, %ctaid.x
            mov.u32 $b, %ntid.y
            mov.u32 $c, %tid.x
            mov.u32 $d, %tid.y
            mov.u32 $e, %laneid
            mov.u32 $f, 42
            exit
        """)
        m = a.instruction_markings
        assert m[0x00] is Marking.REDUNDANT     # blockIdx
        assert m[0x08] is Marking.REDUNDANT     # blockDim
        assert m[0x10] is Marking.CONDITIONAL   # tid.x
        assert m[0x18] is Marking.VECTOR        # tid.y (2D analysis limit)
        assert m[0x20] is Marking.VECTOR        # laneid
        assert m[0x28] is Marking.REDUNDANT     # scalar constant

    def test_params_are_redundant(self):
        _, a = markings_of(".param n\nmov.u32 $a, %param.n\nexit")
        assert a.instruction_markings[0] is Marking.REDUNDANT


class TestPropagation:
    def test_chain_propagation(self):
        """Redundancy propagates through register dependences."""
        _, a = markings_of("""
            mul.u32 $r1, %tid.x, 4
            add.u32 $r2, $r1, 10
            add.u32 $r3, $r2, %ctaid.x
            add.u32 $r4, $r3, %tid.y
            exit
        """)
        m = a.instruction_markings
        assert m[0x00] is Marking.CONDITIONAL
        assert m[0x08] is Marking.CONDITIONAL
        assert m[0x10] is Marking.CONDITIONAL   # CR meet DR = CR
        assert m[0x18] is Marking.VECTOR        # CR meet V = V

    def test_loads_take_address_marking(self):
        """Loads from (conditionally) redundant addresses are marked."""
        _, a = markings_of("""
        .param base
            mul.u32 $a, %tid.x, 4
            add.u32 $a, $a, %param.base
            ld.global.s32 $v, [$a]
            add.u32 $w, $v, 1
            exit
        """)
        m = a.instruction_markings
        assert m[0x10] is Marking.CONDITIONAL  # the load itself
        assert m[0x18] is Marking.CONDITIONAL  # its consumer

    def test_flow_insensitive_meet_over_defs(self):
        """A register defined both redundantly and vectorially is vector
        everywhere (conservative, preserves non-speculation)."""
        _, a = markings_of("""
            mov.u32 $a, %ctaid.x
            mov.u32 $a, %tid.y
            add.u32 $b, $a, 1
            exit
        """)
        m = a.instruction_markings
        assert m[0x10] is Marking.VECTOR

    def test_loop_carried_fixpoint(self):
        """A vector value flowing around a loop demotes the whole cycle."""
        _, a = markings_of("""
            mov.u32 $acc, 0
            mov.u32 $i, 0
        top:
            add.u32 $acc, $acc, %tid.y
            add.u32 $i, $i, 1
            setp.lt.u32 $p0, $i, 4
        @$p0 bra top
            add.u32 $z, $acc, 0
            exit
        """)
        m = a.instruction_markings
        assert m[0x10] is Marking.VECTOR  # acc += tid.y
        assert m[0x30] is Marking.VECTOR  # consumer after the loop

    def test_guard_meets_into_marking(self):
        """A DR operation guarded by a vector predicate is not skippable."""
        _, a = markings_of("""
            setp.lt.u32 $p0, %tid.y, 2
        @$p0 mov.u32 $a, 5
            exit
        """)
        assert a.instruction_markings[0x08] is Marking.VECTOR

    def test_atomic_always_vector(self):
        _, a = markings_of("""
        .param c
            atom.global.add.u32 $old, [%param.c], 1
            exit
        """)
        assert a.instruction_markings[0x00] is Marking.VECTOR


class TestSkippablePCs:
    def test_only_value_producers_skippable(self):
        prog, a = markings_of("""
        .param base
            mov.u32 $a, %ctaid.x
            st.global.s32 [%param.base], $a
            bar.sync
            exit
        """)
        # With all-DR markings, only the mov (register producer) skips.
        pcs = a.skippable_pcs()
        assert 0x00 in pcs
        assert 0x08 not in pcs  # store
        assert 0x10 not in pcs  # bar
        assert 0x18 not in pcs  # exit

    def test_redundant_setp_skippable(self):
        _, a = markings_of("""
            mov.u32 $i, 3
            setp.lt.u32 $p0, $i, 5
            exit
        """)
        assert 0x08 in a.skippable_pcs()

    def test_conditional_not_skippable_without_promotion(self):
        _, a = markings_of("mul.u32 $a, %tid.x, 4\nexit")
        assert a.skippable_pcs() == set()


class TestAnnotatedListing:
    def test_listing_has_marks(self):
        _, a = markings_of("mov.u32 $a, %ctaid.x\nmul.u32 $b, %tid.x, 2\nmov.u32 $c, %tid.y\nexit")
        text = a.annotated_listing()
        assert "DR" in text and "CR" in text and "V" in text

    def test_counts(self):
        _, a = markings_of("mov.u32 $a, %ctaid.x\nmul.u32 $b, %tid.x, 2\nexit")
        counts = a.counts()
        assert counts[Marking.REDUNDANT] == 2  # mov + exit
        assert counts[Marking.CONDITIONAL] == 1
