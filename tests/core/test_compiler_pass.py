"""Unit tests for the static DR/CR/V compiler pass (Section 4.2)."""

import warnings

import pytest

from repro import Marking, analyze_program, assemble
from repro.core import UninitializedReadError, UninitializedReadWarning


def markings_of(src):
    prog = assemble(src)
    analysis = analyze_program(prog)
    return prog, analysis


class TestSeeds:
    def test_intrinsic_seeds(self):
        prog, a = markings_of("""
            mov.u32 $a, %ctaid.x
            mov.u32 $b, %ntid.y
            mov.u32 $c, %tid.x
            mov.u32 $d, %tid.y
            mov.u32 $e, %laneid
            mov.u32 $f, 42
            exit
        """)
        m = a.instruction_markings
        assert m[0x00] is Marking.REDUNDANT     # blockIdx
        assert m[0x08] is Marking.REDUNDANT     # blockDim
        assert m[0x10] is Marking.CONDITIONAL   # tid.x
        assert m[0x18] is Marking.VECTOR        # tid.y (2D analysis limit)
        assert m[0x20] is Marking.VECTOR        # laneid
        assert m[0x28] is Marking.REDUNDANT     # scalar constant

    def test_params_are_redundant(self):
        _, a = markings_of(".param n\nmov.u32 $a, %param.n\nexit")
        assert a.instruction_markings[0] is Marking.REDUNDANT


class TestPropagation:
    def test_chain_propagation(self):
        """Redundancy propagates through register dependences."""
        _, a = markings_of("""
            mul.u32 $r1, %tid.x, 4
            add.u32 $r2, $r1, 10
            add.u32 $r3, $r2, %ctaid.x
            add.u32 $r4, $r3, %tid.y
            exit
        """)
        m = a.instruction_markings
        assert m[0x00] is Marking.CONDITIONAL
        assert m[0x08] is Marking.CONDITIONAL
        assert m[0x10] is Marking.CONDITIONAL   # CR meet DR = CR
        assert m[0x18] is Marking.VECTOR        # CR meet V = V

    def test_loads_take_address_marking(self):
        """Loads from (conditionally) redundant addresses are marked."""
        _, a = markings_of("""
        .param base
            mul.u32 $a, %tid.x, 4
            add.u32 $a, $a, %param.base
            ld.global.s32 $v, [$a]
            add.u32 $w, $v, 1
            exit
        """)
        m = a.instruction_markings
        assert m[0x10] is Marking.CONDITIONAL  # the load itself
        assert m[0x18] is Marking.CONDITIONAL  # its consumer

    def test_flow_insensitive_meet_over_defs(self):
        """A register defined both redundantly and vectorially is vector
        everywhere (conservative, preserves non-speculation)."""
        _, a = markings_of("""
            mov.u32 $a, %ctaid.x
            mov.u32 $a, %tid.y
            add.u32 $b, $a, 1
            exit
        """)
        m = a.instruction_markings
        assert m[0x10] is Marking.VECTOR

    def test_loop_carried_fixpoint(self):
        """A vector value flowing around a loop demotes the whole cycle."""
        _, a = markings_of("""
            mov.u32 $acc, 0
            mov.u32 $i, 0
        top:
            add.u32 $acc, $acc, %tid.y
            add.u32 $i, $i, 1
            setp.lt.u32 $p0, $i, 4
        @$p0 bra top
            add.u32 $z, $acc, 0
            exit
        """)
        m = a.instruction_markings
        assert m[0x10] is Marking.VECTOR  # acc += tid.y
        assert m[0x30] is Marking.VECTOR  # consumer after the loop

    def test_guard_meets_into_marking(self):
        """A DR operation guarded by a vector predicate is not skippable."""
        _, a = markings_of("""
            setp.lt.u32 $p0, %tid.y, 2
        @$p0 mov.u32 $a, 5
            exit
        """)
        assert a.instruction_markings[0x08] is Marking.VECTOR

    def test_atomic_always_vector(self):
        _, a = markings_of("""
        .param c
            atom.global.add.u32 $old, [%param.c], 1
            exit
        """)
        assert a.instruction_markings[0x00] is Marking.VECTOR


class TestSkippablePCs:
    def test_only_value_producers_skippable(self):
        prog, a = markings_of("""
        .param base
            mov.u32 $a, %ctaid.x
            st.global.s32 [%param.base], $a
            bar.sync
            exit
        """)
        # With all-DR markings, only the mov (register producer) skips.
        pcs = a.skippable_pcs()
        assert 0x00 in pcs
        assert 0x08 not in pcs  # store
        assert 0x10 not in pcs  # bar
        assert 0x18 not in pcs  # exit

    def test_redundant_setp_skippable(self):
        _, a = markings_of("""
            mov.u32 $i, 3
            setp.lt.u32 $p0, $i, 5
            exit
        """)
        assert 0x08 in a.skippable_pcs()

    def test_conditional_not_skippable_without_promotion(self):
        _, a = markings_of("mul.u32 $a, %tid.x, 4\nexit")
        assert a.skippable_pcs() == set()


class TestUninitializedReadPrecondition:
    """The "unwritten register is DR" default is now a checked precondition."""

    UNINIT_SRC = "add.u32 $b, $a, 1\nexit"

    def test_default_mode_warns_and_records(self):
        with pytest.warns(UninitializedReadWarning, match=r"\$a"):
            analysis = analyze_program(assemble(self.UNINIT_SRC))
        assert len(analysis.uninitialized_reads) == 1
        assert analysis.uninitialized_reads[0].pc == 0x00
        # The default still applies: the implicit zero is TB-uniform.
        assert analysis.instruction_markings[0x00] is Marking.REDUNDANT

    def test_strict_mode_raises(self):
        with pytest.raises(UninitializedReadError, match="never-written"):
            analyze_program(assemble(self.UNINIT_SRC), strict=True)

    def test_clean_kernel_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            analysis = analyze_program(assemble("mov.u32 $a, 1\nadd.u32 $b, $a, 1\nexit"))
        assert analysis.uninitialized_reads == ()


class TestConvergenceBound:
    """The iteration cap is lattice height x variables, not program length."""

    @staticmethod
    def chain_source(length):
        """A dependence chain of `length` distinct registers, vector at
        the top — markings propagate one register per sweep, the
        worst case for the fixpoint iteration."""
        lines = ["mov.u32 $r0, %tid.y"]
        lines += [f"add.u32 $r{i}, $r{i - 1}, 1" for i in range(1, length)]
        lines.append("exit")
        return "\n".join(lines)

    def test_long_chain_near_old_bound_converges(self):
        # The old cap was `len(program) + 2`; a chain of one register per
        # instruction converged within one sweep of it.  The principled
        # bound (3 markings x N registers) leaves real headroom.
        length = 40
        analysis = analyze_program(assemble(self.chain_source(length)))
        marks = analysis.instruction_markings
        # The vector seed reached the very bottom of the chain.
        assert marks[(length - 1) * 8] is Marking.VECTOR
        assert analysis.register_markings[f"r{length - 1}"] is Marking.VECTOR

    def test_bound_scales_with_variables_not_instructions(self):
        # Many instructions over few registers: the two-register program
        # converges even though its variable count is far below its
        # instruction count (the old bound's proxy).
        lines = ["mov.u32 $a, %tid.y"]
        lines += ["add.u32 $a, $a, 1" for _ in range(50)]
        lines.append("exit")
        analysis = analyze_program(assemble("\n".join(lines)))
        assert analysis.register_markings["a"] is Marking.VECTOR

class TestAnnotatedListing:
    def test_listing_has_marks(self):
        _, a = markings_of("mov.u32 $a, %ctaid.x\nmul.u32 $b, %tid.x, 2\nmov.u32 $c, %tid.y\nexit")
        text = a.annotated_listing()
        assert "DR" in text and "CR" in text and "V" in text

    def test_counts(self):
        _, a = markings_of("mov.u32 $a, %ctaid.x\nmul.u32 $b, %tid.x, 2\nexit")
        counts = a.counts()
        assert counts[Marking.REDUNDANT] == 2  # mov + exit
        assert counts[Marking.CONDITIONAL] == 1
