"""Unit tests for the redundancy taxonomy and marking lattice."""

import numpy as np

from repro.core.taxonomy import (
    Marking,
    RedundancyClass,
    STATIC_MARKING_OF_CLASS,
    classify_group,
    classify_tb_groups,
)
from repro.simt.tracer import DynamicInstruction, ValueSummary


def rec(warp, values, divergent=False, pc=0, occ=0):
    return DynamicInstruction(
        tb_index=0, warp_id=warp, pc=pc, occurrence=occ, opclass="alu",
        summary=ValueSummary.of(np.asarray(values)), divergent=divergent,
    )


class TestMarkingLattice:
    def test_ordering(self):
        assert Marking.VECTOR < Marking.CONDITIONAL < Marking.REDUNDANT

    def test_meet_is_weakest(self):
        """Section 4.2: 'we assign the weakest of the definitions'."""
        assert Marking.meet(Marking.REDUNDANT, Marking.CONDITIONAL) is Marking.CONDITIONAL
        assert Marking.meet(Marking.CONDITIONAL, Marking.VECTOR) is Marking.VECTOR
        assert Marking.meet(Marking.REDUNDANT, Marking.REDUNDANT) is Marking.REDUNDANT

    def test_meet_commutes(self):
        for a in Marking:
            for b in Marking:
                assert Marking.meet(a, b) is Marking.meet(b, a)

    def test_short_names(self):
        assert Marking.REDUNDANT.short == "DR"
        assert Marking.CONDITIONAL.short == "CR"
        assert Marking.VECTOR.short == "V"


class TestClassifyGroup:
    def test_uniform_redundant(self):
        group = [rec(0, [5, 5, 5, 5]), rec(1, [5, 5, 5, 5])]
        assert classify_group(group, 2) is RedundancyClass.UNIFORM

    def test_affine_redundant(self):
        group = [rec(0, [0, 4, 8, 12]), rec(1, [0, 4, 8, 12])]
        assert classify_group(group, 2) is RedundancyClass.AFFINE

    def test_unstructured_redundant(self):
        group = [rec(0, [7, 3, 0, 90]), rec(1, [7, 3, 0, 90])]
        assert classify_group(group, 2) is RedundancyClass.UNSTRUCTURED

    def test_different_values_non_redundant(self):
        group = [rec(0, [0, 4, 8, 12]), rec(1, [16, 20, 24, 28])]
        assert classify_group(group, 2) is RedundancyClass.NON_REDUNDANT

    def test_missing_warp_non_redundant(self):
        group = [rec(0, [5, 5, 5, 5])]
        assert classify_group(group, 2) is RedundancyClass.NON_REDUNDANT

    def test_divergent_non_redundant(self):
        """Figure 2 caption: diverged control flow counts non-redundant."""
        group = [rec(0, [5, 5, 5, 5], divergent=True), rec(1, [5, 5, 5, 5])]
        assert classify_group(group, 2) is RedundancyClass.NON_REDUNDANT

    def test_counts_weighted_by_executions(self):
        groups = [
            ((0, 0, 0), [rec(0, [1, 1]), rec(1, [1, 1])]),
            ((0, 8, 0), [rec(0, [1, 2]), rec(1, [9, 9])]),
        ]
        counts = classify_tb_groups(iter(groups), expected_warps=2)
        assert counts[RedundancyClass.UNIFORM] == 2
        assert counts[RedundancyClass.NON_REDUNDANT] == 2


class TestStaticMapping:
    def test_uniform_is_definitely_redundant(self):
        assert STATIC_MARKING_OF_CLASS[RedundancyClass.UNIFORM] is Marking.REDUNDANT

    def test_affine_and_unstructured_are_conditional(self):
        assert STATIC_MARKING_OF_CLASS[RedundancyClass.AFFINE] is Marking.CONDITIONAL
        assert STATIC_MARKING_OF_CLASS[RedundancyClass.UNSTRUCTURED] is Marking.CONDITIONAL
