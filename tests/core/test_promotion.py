"""Unit tests for kernel-launch-time promotion (Section 4.2)."""

from repro import Dim3, LaunchConfig, Marking, promote_markings, promotion_applies
from repro.core.promotion import describe_promotion


def launch(block, warp=32):
    return LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(*block), warp_size=warp)


class TestCriterion:
    def test_2d_power_of_two_applies(self):
        assert promotion_applies(launch((16, 16)))
        assert promotion_applies(launch((32, 32)))
        assert promotion_applies(launch((8, 8)))
        assert promotion_applies(launch((16, 8)))

    def test_1d_does_not_apply(self):
        assert not promotion_applies(launch((256, 1)))
        assert not promotion_applies(launch((1024, 1)))

    def test_non_power_of_two_x(self):
        assert not promotion_applies(launch((48, 4)))

    def test_x_wider_than_warp(self):
        assert not promotion_applies(launch((64, 4)))


class TestPromotion:
    MARKS = {0: Marking.REDUNDANT, 8: Marking.CONDITIONAL, 16: Marking.VECTOR}

    def test_cr_promoted_to_dr(self):
        out = promote_markings(self.MARKS, launch((16, 16)))
        assert out[8] is Marking.REDUNDANT

    def test_cr_demoted_to_vector(self):
        out = promote_markings(self.MARKS, launch((256, 1)))
        assert out[8] is Marking.VECTOR

    def test_dr_and_vector_untouched(self):
        for shape in ((16, 16), (256, 1)):
            out = promote_markings(self.MARKS, launch(shape))
            assert out[0] is Marking.REDUNDANT
            assert out[16] is Marking.VECTOR

    def test_original_not_mutated(self):
        promote_markings(self.MARKS, launch((16, 16)))
        assert self.MARKS[8] is Marking.CONDITIONAL


class TestDescription:
    def test_describe_both_cases(self):
        assert "promoted" in describe_promotion(launch((16, 16)))
        assert "demoted" in describe_promotion(launch((256, 1)))
