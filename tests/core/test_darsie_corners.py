"""Corner-case tests for the DARSIE frontend: starved structures,
partial warps, instance catch-up, multi-TB isolation."""

import numpy as np
import pytest

from repro import (
    DarsieConfig,
    DarsieFrontend,
    Dim3,
    GlobalMemory,
    LaunchConfig,
    analyze_program,
    assemble,
    run_functional,
    simulate,
    small_config,
)

CFG = small_config(num_sms=1)

MANY_SKIPPABLE = """
.param tab
.param out
    mul.u32 $a, %tid.x, 4
    add.u32 $b, $a, 8
    add.u32 $c, $b, 8
    add.u32 $d, $c, 8
    add.u32 $e, $d, 8
    add.u32 $f, $e, 8
    add.u32 $g, $f, 8
    add.u32 $h, $g, 8
    add.u32 $i2, $h, 8
    add.u32 $j, $i2, 8
    add.u32 $k, $j, 8
    add.u32 $l, $k, 8
    add.u32 $res, $l, %tid.y
    mul.u32 $o, %tid.y, %ntid.x
    add.u32 $o, $o, %tid.x
    shl.u32 $o, $o, 2
    add.u32 $o, $o, %param.out
    st.global.s32 [$o], $res
    exit
"""


def run_darsie(src, launch, setup, cfg: DarsieConfig):
    prog = assemble(src)
    analysis = analyze_program(prog)
    mem_f = GlobalMemory(1 << 14)
    pf = setup(mem_f)
    run_functional(prog, launch, mem_f, params=pf)
    mem_d = GlobalMemory(1 << 14)
    pd = setup(mem_d)
    res = simulate(prog, launch, mem_d, params=pd, config=CFG,
                   frontend_factory=lambda: DarsieFrontend(analysis, cfg))
    return res, np.array_equal(mem_f.words, mem_d.words)


def basic_setup(mem):
    return {"tab": mem.alloc_array(np.arange(64)), "out": mem.alloc(1024)}


LAUNCH_2D = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(16, 16))


class TestStarvedStructures:
    @pytest.mark.parametrize("entries", [1, 2, 4])
    def test_tiny_skip_table_correct(self, entries):
        """13 skippable PCs through a 1-4 entry table: constant
        eviction churn must stay correct."""
        res, ok = run_darsie(MANY_SKIPPABLE, LAUNCH_2D, basic_setup,
                             DarsieConfig(skip_entries_per_tb=entries))
        assert ok
        assert res.stats.instructions_skipped > 0

    @pytest.mark.parametrize("regs", [1, 2, 3])
    def test_tiny_freelist_correct(self, regs):
        res, ok = run_darsie(MANY_SKIPPABLE, LAUNCH_2D, basic_setup,
                             DarsieConfig(rename_regs_per_tb=regs))
        assert ok

    def test_smaller_table_skips_no_more(self):
        big, _ = run_darsie(MANY_SKIPPABLE, LAUNCH_2D, basic_setup,
                            DarsieConfig(skip_entries_per_tb=16))
        small_, _ = run_darsie(MANY_SKIPPABLE, LAUNCH_2D, basic_setup,
                               DarsieConfig(skip_entries_per_tb=1))
        assert small_.stats.instructions_skipped <= big.stats.instructions_skipped

    def test_one_port_skips_same_work_slower_or_equal(self):
        p1, _ = run_darsie(MANY_SKIPPABLE, LAUNCH_2D, basic_setup,
                           DarsieConfig(skip_ports=1))
        p4, _ = run_darsie(MANY_SKIPPABLE, LAUNCH_2D, basic_setup,
                           DarsieConfig(skip_ports=4))
        assert p1.stats.instructions_skipped == p4.stats.instructions_skipped
        assert p1.cycles >= p4.cycles


class TestSyncOnWrite:
    def test_sync_on_write_correct_and_slower(self):
        fast, ok1 = run_darsie(MANY_SKIPPABLE, LAUNCH_2D, basic_setup, DarsieConfig())
        slow, ok2 = run_darsie(MANY_SKIPPABLE, LAUNCH_2D, basic_setup,
                               DarsieConfig(sync_on_write=True))
        assert ok1 and ok2
        assert slow.stats.freelist_syncs > 0  # every write synchronizes
        assert slow.cycles >= fast.cycles


class TestPartialWarps:
    def test_tb_not_multiple_of_warp(self):
        """Partial warps are permanently SIMD-divergent (Section 4.5):
        they never skip, and results stay correct."""
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(16, 10))  # 160 thr: 5 warps
        res, ok = run_darsie(MANY_SKIPPABLE, launch, basic_setup, DarsieConfig())
        assert ok


class TestMultiTBIsolation:
    def test_tb_structures_are_independent(self):
        """Leaders/versions of one TB must never leak into another."""
        launch = LaunchConfig(grid_dim=Dim3(4), block_dim=Dim3(16, 8))
        src = MANY_SKIPPABLE.replace("%tid.y", "%ctaid.x")  # value differs per TB
        res, ok = run_darsie(src, launch, basic_setup, DarsieConfig())
        assert ok
        assert res.stats.leaders_elected >= 4  # at least one leader per TB


class TestMultiSM:
    def test_darsie_across_sms(self):
        prog = assemble(MANY_SKIPPABLE)
        analysis = analyze_program(prog)
        launch = LaunchConfig(grid_dim=Dim3(6), block_dim=Dim3(16, 8))
        cfg2 = small_config(num_sms=2)
        mem_f = GlobalMemory(1 << 14)
        pf = basic_setup(mem_f)
        run_functional(prog, launch, mem_f, params=pf)
        mem_d = GlobalMemory(1 << 14)
        pd = basic_setup(mem_d)
        res = simulate(prog, launch, mem_d, params=pd, config=cfg2,
                       frontend_factory=lambda: DarsieFrontend(analysis))
        assert np.array_equal(mem_f.words, mem_d.words)
        busy = [s for s in res.per_sm_stats if s.instructions_executed]
        assert len(busy) == 2
