"""Equivalence and no-op properties of the DARSIE frontend."""

import numpy as np

from repro import (
    DarsieConfig,
    DarsieFrontend,
    Dim3,
    GlobalMemory,
    LaunchConfig,
    analyze_program,
    assemble,
    simulate,
    small_config,
)

CFG = small_config(num_sms=1)

#: A kernel with zero skippable instructions: every value chain is
#: lane-varying (laneid-seeded).
ALL_VECTOR = """
.param out
    mov.u32 $a, %laneid
    mul.u32 $a, $a, 3
    add.u32 $a, $a, %tid.y
    mul.u32 $o, %tid.y, %ntid.x
    add.u32 $o, $o, %tid.x
    shl.u32 $o, $o, 2
    add.u32 $o, $o, %param.out
    st.global.s32 [$o], $a
    exit
"""


def run(src, launch, factory=None):
    prog = assemble(src)
    mem = GlobalMemory(1 << 13)
    p = {"out": mem.alloc(1024)}
    res = simulate(prog, launch, mem, params=p, config=CFG, frontend_factory=factory)
    return res, mem.words.copy()


class TestNoSkippableWork:
    def test_darsie_on_all_vector_kernel_equals_base(self):
        """With nothing promoted, DARSIE must behave exactly like BASE —
        same cycles, same fetches, same memory."""
        launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(16, 16))
        prog = assemble(ALL_VECTOR)
        analysis = analyze_program(prog)
        # mov $a, %laneid is vector, so only... verify no skippable PCs
        # actually survive (the address chain involves tid.x though).
        base, base_mem = run(ALL_VECTOR, launch)
        dar, dar_mem = run(ALL_VECTOR, launch, lambda: DarsieFrontend(analysis))
        assert np.array_equal(base_mem, dar_mem)
        # DARSIE never slows a kernel where it skips nothing... it may
        # still skip the tid.x-based address chain; just require
        # correctness plus bounded deviation here.
        assert abs(dar.cycles - base.cycles) / base.cycles < 0.5

    def test_darsie_on_1d_uniform_free_kernel_is_identical(self):
        """A 1D launch of a kernel with no uniform chains: the skip set
        is empty, so the timing must be cycle-identical to BASE."""
        launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(128))
        prog = assemble(ALL_VECTOR)
        analysis = analyze_program(prog)
        from repro.core import promote_markings

        promoted = promote_markings(analysis.instruction_markings, launch)
        assert analysis.skippable_pcs(promoted) == set()
        base, base_mem = run(ALL_VECTOR, launch)
        dar, dar_mem = run(ALL_VECTOR, launch, lambda: DarsieFrontend(analysis))
        assert dar.cycles == base.cycles
        assert dar.stats.instructions_fetched == base.stats.instructions_fetched
        assert np.array_equal(base_mem, dar_mem)


class TestVariantEquivalences:
    SRC = """
    .param tab
    .param out
        mul.u32 $a, %tid.x, 4
        add.u32 $a, $a, %param.tab
        ld.global.s32 $v, [$a]
        mul.u32 $o, %tid.y, %ntid.x
        add.u32 $o, $o, %tid.x
        shl.u32 $o, $o, 2
        add.u32 $o, $o, %param.out
        st.global.s32 [$o], $v
        exit
    """

    def _run(self, cfg):
        prog = assemble(self.SRC)
        analysis = analyze_program(prog)
        mem = GlobalMemory(1 << 13)
        p = {"tab": mem.alloc_array(np.arange(16)), "out": mem.alloc(1024)}
        launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(16, 16))
        return simulate(prog, launch, mem, params=p, config=CFG,
                        frontend_factory=lambda: DarsieFrontend(analysis, cfg))

    def test_ignore_store_skips_at_least_as_much(self):
        """Stores invalidate in-flight load entries before lagging
        followers consume them, so conservative DARSIE can only skip
        less than IGNORE-STORE — and the performance gap stays small
        (Section 6.1: 'the performance impact is minimal')."""
        a = self._run(DarsieConfig())
        b = self._run(DarsieConfig(ignore_store=True))
        assert a.stats.load_entries_invalidated > 0
        assert b.stats.load_entries_invalidated == 0
        assert b.stats.instructions_skipped >= a.stats.instructions_skipped
        assert abs(a.cycles - b.cycles) / a.cycles < 0.10

    def test_no_cf_sync_never_skips_less(self):
        a = self._run(DarsieConfig())
        b = self._run(DarsieConfig(no_cf_sync=True))
        assert b.stats.instructions_skipped >= a.stats.instructions_skipped
        assert b.cycles <= a.cycles + 2
