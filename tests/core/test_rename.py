"""Unit tests for the rename/version unit (Figure 5 semantics)."""

import numpy as np
import pytest

from repro.core.rename import RegisterRenameUnit, RenameError

R1 = ("r", "r1")
P0 = ("p", "p0")


def unit(warps=3, regs=4):
    return RegisterRenameUnit(num_warps=warps, freelist_size=regs)


def lead(u, warp, key, value, members, is_pred=False):
    v = u.reserve_version(warp, key)
    return u.leader_write(warp, key, v, np.asarray(value), is_pred, members)


class TestFigure5Flow:
    """Replays the paper's Figure 5 scenario: three warps, R1 written
    twice, warp 2 trailing one version behind."""

    def test_two_live_versions(self):
        u = unit()
        members = [0, 1, 2]
        # Warp 0 leads PC0 -> R1(v1); warp 1 skips it.
        v1 = lead(u, 0, R1, [10, 11, 12], members)
        assert v1.version == 1
        assert u.follower_skip(1, R1).version == 1
        # Warp 0 leads PC2 (another write to R1) -> R1(v2).
        v2 = lead(u, 0, R1, [20, 21, 22], members)
        assert v2.version == 2
        assert u.live_versions == 2  # both versions alive (warp 2 trails)
        # Warp 2 finally skips PC0: it reads v1 (one write seen).
        vv = u.follower_skip(2, R1)
        assert vv.version == 1
        assert vv.value.tolist() == [10, 11, 12]
        # Warp 1 then skips PC2 -> v2; v1 has no readers left.
        assert u.follower_skip(1, R1).version == 2
        u.follower_skip(2, R1)
        assert u.live_versions == 1  # v1 reclaimed

    def test_reads_follow_rename_entry(self):
        u = unit()
        lead(u, 0, R1, [5, 5], [0, 1])
        u.follower_skip(1, R1)
        assert u.read(1, R1).value.tolist() == [5, 5]
        # Warp 2 never skipped: no rename entry.
        assert u.read(2, R1) is None


class TestFreelist:
    def test_exhaustion(self):
        u = unit(warps=2, regs=2)
        lead(u, 0, R1, [1], [0, 1])
        lead(u, 0, ("r", "r2"), [2], [0, 1])
        assert not u.can_allocate()
        with pytest.raises(RenameError, match="empty freelist"):
            lead(u, 0, ("r", "r3"), [3], [0, 1])

    def test_frees_return_to_list(self):
        u = unit(warps=2, regs=1)
        lead(u, 0, R1, [1], [0, 1])
        assert not u.can_allocate()
        u.follower_skip(1, R1)
        # Both warps advance past v1 when v2 is reserved by the leader.
        u.reserve_version(0, R1)
        u.private_instance_write(1, R1)
        assert u.can_allocate()

    def test_peak_tracking(self):
        u = unit(regs=8)
        for i in range(3):
            lead(u, 0, ("r", f"x{i}"), [i], [0])
        assert u.peak_live >= 1
        assert u.allocations == 3


class TestPrivateWrites:
    def test_private_write_clears_entry(self):
        u = unit()
        lead(u, 0, R1, [1, 2], [0, 1])
        u.follower_skip(1, R1)
        u.private_write(1, R1)
        assert u.read(1, R1) is None
        # The write count is untouched (not a skip-set instruction).
        assert u.count(1, R1) == 1

    def test_private_instance_write_advances_count(self):
        u = unit()
        u.private_instance_write(1, R1)
        assert u.count(1, R1) == 1
        assert u.read(1, R1) is None

    def test_private_instance_releases_version_ref(self):
        u = unit(warps=2, regs=2)
        lead(u, 0, R1, [1], [0, 1])
        # Warp 1 executes the instance privately instead of skipping.
        u.private_instance_write(1, R1)
        # Nobody can read v1 anymore; it is reclaimed.
        assert u.live_versions == 0


class TestPathEvents:
    def test_clear_warp_materialises(self):
        u = unit()
        lead(u, 0, R1, [7, 8], [0, 1, 2])
        lead(u, 0, P0, [True, False], [0, 1, 2], is_pred=True)
        u.follower_skip(1, R1)
        u.follower_skip(1, P0)
        mats = u.clear_warp(1)
        got = {m.key: (m.value.tolist(), m.is_pred) for m in mats}
        assert got[R1] == ([7, 8], False)
        assert got[P0][1] is True
        assert u.read(1, R1) is None

    def test_clear_warp_releases_refs(self):
        u = unit(warps=2, regs=1)
        lead(u, 0, R1, [1], [0, 1])
        u.reserve_version(0, R1)  # leader advances past v1
        assert u.live_versions == 1  # warp 1 still pins v1
        u.clear_warp(1)
        assert u.live_versions == 0

    def test_reset_all(self):
        u = unit()
        lead(u, 0, R1, [3, 4], [0, 1])
        u.follower_skip(1, R1)
        mats = u.reset_all()
        assert 1 in mats  # warp 1's value must be materialised
        assert u.live_versions == 0
        assert u.can_allocate()
        assert u.count(0, R1) == 0  # counts restart


class TestInvariants:
    def test_duplicate_version_rejected(self):
        u = unit()
        v = u.reserve_version(0, R1)
        u.leader_write(0, R1, v, np.array([1]), False, [0, 1])
        with pytest.raises(RenameError, match="duplicate"):
            u.leader_write(0, R1, v, np.array([2]), False, [0, 1])

    def test_follower_cannot_outrun_leader(self):
        u = unit()
        with pytest.raises(RenameError, match="before the leader"):
            u.follower_skip(1, R1)

    def test_banks_strided(self):
        u = unit(regs=32)
        banks = {u.bank_of(p) for p in range(32)}
        assert len(banks) == u.rf_banks
