"""Unit tests for the PC coalescer (4.3.4) and majority mask (4.3.3)."""

import pytest

from repro.core.coalescer import PCCoalescer
from repro.core.majority import MajorityPathMask


class TestCoalescer:
    def test_same_pc_coalesces_into_one_access(self):
        c = PCCoalescer(ports=2)
        serviced, deferred = c.arbitrate([(0, 0x40), (1, 0x40), (2, 0x40)])
        assert serviced == [(0x40, [0, 1, 2])]
        assert deferred == []
        assert c.coalesced_accesses == 1

    def test_port_limit_defers_excess_pcs(self):
        c = PCCoalescer(ports=2)
        serviced, deferred = c.arbitrate(
            [(0, 0x00), (1, 0x08), (2, 0x10), (3, 0x10)]
        )
        assert len(serviced) == 2
        assert deferred == [(2, 0x10), (3, 0x10)]

    def test_insertion_order_no_starvation(self):
        c = PCCoalescer(ports=1)
        serviced, _ = c.arbitrate([(0, 0x10), (1, 0x08)])
        assert serviced[0][0] == 0x10  # first-come first-served

    def test_requires_port(self):
        with pytest.raises(ValueError):
            PCCoalescer(ports=0)

    def test_stats(self):
        c = PCCoalescer(ports=1)
        c.arbitrate([(0, 0), (1, 8)])
        assert c.requests == 2 and c.deferred == 1


class TestMajorityMask:
    def test_starts_all_on_path(self):
        m = MajorityPathMask(4)
        assert m.members() == [0, 1, 2, 3]
        assert m.count == 4

    def test_clear_removes(self):
        m = MajorityPathMask(4)
        m.clear(2)
        assert not m.is_on_path(2)
        assert m.members() == [0, 1, 3]

    def test_syncthreads_resets(self):
        """Section 4.3.3: bits set back to one at syncthreads."""
        m = MajorityPathMask(4)
        m.clear(1)
        m.clear(3)
        m.reset_at_syncthreads()
        assert m.members() == [0, 1, 2, 3]

    def test_exited_warps_stay_out(self):
        m = MajorityPathMask(4)
        m.warp_exited(0)
        m.reset_at_syncthreads()
        assert m.members() == [1, 2, 3]

    def test_bitmask(self):
        m = MajorityPathMask(4)
        m.clear(1)
        assert m.bitmask() == 0b1101
